// allconcur_topo — deployment planning tool.
//
// Given a system size and a reliability target, prints the recommended
// overlay configuration (§4.4) and its analytic performance envelope
// (§4.1/§4.2), plus a comparison with the alternative overlay families.
//
//   $ allconcur_topo --n=200 --nines=6
//   $ allconcur_topo --n=64 --nines=4 --mttf-years=1 --delta-hours=12
//   $ allconcur_topo --n=32 --dual        # paired ⟨G_U, G_R⟩ overlays
#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/logp_model.hpp"
#include "core/view.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/connectivity.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/kautz.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"
#include "plus/dual_overlay.hpp"

using namespace allconcur;

namespace {

void describe(const std::string& name, const graph::Digraph& g,
              const graph::FailureModel& fm, Rng& rng) {
  const std::size_t n = g.order();
  const std::size_t d = g.degree();
  const auto diam = graph::diameter(g);
  const std::size_t k =
      n <= 128 ? graph::vertex_connectivity(g) : d;  // k = d for our families
  std::optional<std::size_t> delta_hat;
  if (k >= 1 && diam) {
    delta_hat = n <= 32 ? graph::fault_diameter_bound(g, k - 1)
                        : graph::fault_diameter_bound_sampled(g, k - 1,
                                                              200, rng);
  }
  const core::LogP tcp{12000.0, 1800.0};
  std::printf(
      "  %-10s n=%-5zu d=%-3zu D=%-2zu k=%-3zu δ̂_{k-1}=%-3s "
      "nines=%-6.2f msgs/srv=%-6zu work=%.0fus depth=%.0fus\n",
      name.c_str(), n, d, diam.value_or(0), k,
      delta_hat ? std::to_string(*delta_hat).c_str() : "-",
      graph::system_reliability_nines(n, k, fm),
      core::messages_per_server(n, d, 0),
      core::logp_work_bound_ns(n, d, tcp) / 1e3,
      core::logp_depth_ns(d, diam.value_or(0), tcp) / 1e3);
}

}  // namespace

namespace {

/// --dual: the AllConcur+ pairing table — the two overlays a dual-digraph
/// deployment routes, with the per-round message cost of each path.
int print_dual_pairing(std::size_t n) {
  std::printf("AllConcur+ dual-digraph pairing at n=%zu\n", n);
  std::printf(
      "  (fast rounds relay G_U untracked; fallback re-executes over G_R "
      "with full tracking;\n   the FD monitors G_U ∪ G_R)\n\n");
  std::printf("%10s %6s %4s %4s %4s %6s %14s\n", "overlay", "n", "d", "D",
              "k", "D_f", "msgs/round");
  const auto p = plus::analyze_pairing(n, plus::make_unreliable_builder(),
                                       core::make_default_graph_builder());
  std::printf("%10s %6zu %4zu %4zu %4zu %6s %14zu\n", "G_U (fast)", p.n,
              p.u_degree, p.u_diameter.value_or(0), p.u_connectivity, "-",
              p.u_edges);
  std::printf("%10s %6zu %4zu %4zu %4zu %6zu %14zu\n", "G_R (rel.)", p.n,
              p.r_degree, p.r_diameter.value_or(0), p.r_connectivity,
              p.r_fault_diameter.value_or(0), p.r_edges);
  std::printf(
      "\nfast round cost: %zu relays (%.1fx fewer than reliable's %zu); "
      "fault tolerance\ncomes entirely from the fallback path "
      "(f < k(G_R) = %zu).\n",
      p.u_edges,
      p.u_edges > 0 ? static_cast<double>(p.r_edges) /
                          static_cast<double>(p.u_edges)
                    : 0.0,
      p.r_edges, p.r_connectivity);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 64));
  if (flags.get_bool("dual", false)) return print_dual_pairing(n);
  const double target = flags.get_double("nines", 6.0);
  graph::FailureModel fm;
  fm.mttf_hours = flags.get_double("mttf-years", 2.0) * 365.25 * 24.0;
  fm.delta_hours = flags.get_double("delta-hours", 24.0);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));

  std::printf("AllConcur deployment plan: n=%zu, target %.1f nines "
              "(MTTF %.2fy, window %.0fh, p_f=%.5f)\n",
              n, target, fm.mttf_hours / (365.25 * 24.0), fm.delta_hours,
              fm.p_f());

  const auto d = graph::min_gs_degree_for_target(n, target, fm);
  if (!d) {
    std::printf("  no GS degree reaches the target at this size — add "
                "servers or relax the target.\n");
    return 1;
  }
  std::printf("\nrecommended: GS(%zu,%zu)\n", n, *d);
  describe("GS", graph::make_gs_digraph(n, *d), fm, rng);

  std::printf("\nalternatives at the same size:\n");
  describe("binomial", graph::make_binomial_graph(n), fm, rng);
  if ((n & (n - 1)) == 0 && n >= 4) {
    describe("hypercube", graph::make_hypercube(n), fm, rng);
  }
  // Nearest Kautz digraph with the recommended degree.
  for (std::size_t D = 1; D <= 6; ++D) {
    if (graph::kautz_order(*d, D) >= n) {
      const auto k = graph::make_kautz(*d, D);
      std::printf("  (nearest Kautz at degree %zu:)\n", *d);
      describe("kautz", k, fm, rng);
      break;
    }
  }
  std::printf(
      "\nliveness: tolerates up to %zu concurrent failures (f < k);\n"
      "rounds stay within the fault diameter with probability %.6f\n",
      *d - 1,
      core::prob_depth_within_fault_diameter(n, *d, 1800.0,
                                             fm.mttf_hours * 3600e9));
  return 0;
}
