// allconcur_trace — merges per-node causal-trace dumps into the round's
// propagation DAG and reports what the tracer measured.
//
// Sources (either or both):
//   --port=<admin base> --nodes=<n> [--timeout-ms=<ms>]
//       fetches /trace from each node's admin endpoint (port + id), the
//       same convention as allconcur_inspect;
//   --in=<a.jsonl,b.jsonl,...>
//       reads dump_json() files saved earlier (e.g. by a failing CI run).
//
// Output:
//   * one line per traced (round, origin) broadcast: depth D-hat, nodes
//     reached, measured dissemination time, the frame's cumulative wire
//     estimate, and whether the round fell back to the reliable overlay;
//   * the per-hop latency breakdown (process / queue / serialize / wire)
//     averaged over every matched span pair;
//   * the critical path of the deepest broadcast;
//   * with --out=<file>, Chrome trace-event JSON — open it in
//     chrome://tracing or https://ui.perfetto.dev.
//
//   $ allconcur_trace --port=41000 --nodes=8 --out=trace.json
//   $ allconcur_trace --in=flight/node0.jsonl,flight/node1.jsonl
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "obs/inspect.hpp"
#include "obs/trace.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = s.find(',', at);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > at) out.push_back(s.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;
    out.append(buf, n);
  }
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace allconcur;
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: allconcur_trace [--port=<admin base> --nodes=<n> "
        "[--node-base=<id>] [--timeout-ms=<ms>]] [--in=<a.jsonl,...>] "
        "[--out=<chrome_trace.json>]\n"
        "merges per-node /trace dumps into the propagation DAG: depth "
        "D-hat, per-hop breakdown, critical path, Chrome trace JSON\n");
    return 0;
  }

  obs::TraceMerge merge;
  std::size_t sources = 0;

  const auto base = flags.get_int("port", 0);
  const auto nodes = flags.get_int("nodes", 0);
  if ((base > 0) != (nodes > 0)) {
    std::fprintf(stderr,
                 "allconcur_trace: --port and --nodes go together\n");
    return 2;
  }
  if (base > 0) {
    const auto timeout_ms = flags.get_int("timeout-ms", 2000);
    const auto node_base = flags.get_int("node-base", 0);
    for (std::int64_t id = node_base; id < node_base + nodes; ++id) {
      const std::int64_t port = base + id;
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "allconcur_trace: node %lld is out of port "
                             "range\n", static_cast<long long>(id));
        return 2;
      }
      obs::FetchStatus st = obs::FetchStatus::kOk;
      const auto body =
          obs::admin_fetch(static_cast<std::uint16_t>(port), "/trace",
                           static_cast<int>(timeout_ms), &st);
      if (!body) {
        std::fprintf(stderr,
                     "allconcur_trace: node %lld (port %lld): %s\n",
                     static_cast<long long>(id), static_cast<long long>(port),
                     st == obs::FetchStatus::kTimeout ? "timed out"
                                                      : "fetch failed");
        return st == obs::FetchStatus::kTimeout ? 3 : 1;
      }
      merge.add_dump(*body);
      ++sources;
    }
  }
  for (const std::string& path : split_csv(flags.get("in", ""))) {
    std::string blob;
    if (!read_file(path, blob)) {
      std::fprintf(stderr, "allconcur_trace: cannot read %s\n", path.c_str());
      return 1;
    }
    merge.add_dump(blob);
    ++sources;
  }
  if (sources == 0) {
    std::fprintf(stderr, "allconcur_trace: no sources — pass --port/--nodes "
                         "or --in (see --help)\n");
    return 2;
  }

  const auto broadcasts = merge.broadcasts();
  std::printf("spans merged: %zu from %zu source(s); traced broadcasts: "
              "%zu\n", merge.spans().size(), sources, broadcasts.size());
  if (broadcasts.empty()) {
    std::printf("no sampled broadcasts in the dumps (is "
                "trace_sample_period set?)\n");
    return 0;
  }

  std::printf("\n%8s %8s %7s %8s %12s %12s %9s\n", "round", "origin",
              "D-hat", "reached", "span [us]", "est [us]", "fellback");
  const obs::BroadcastTrace* deepest = nullptr;
  for (const auto& b : broadcasts) {
    const double span_us =
        b.origin_t > 0 && b.completed_t >= b.origin_t
            ? static_cast<double>(b.completed_t - b.origin_t) / 1e3
            : 0.0;
    std::printf("%8llu %8u %7zu %8zu %12.1f %12.1f %9s\n",
                static_cast<unsigned long long>(b.round), b.origin, b.depth,
                b.reached, span_us, static_cast<double>(b.max_est_ns) / 1e3,
                b.fell_back ? "yes" : "no");
    if (deepest == nullptr || b.depth > deepest->depth) deepest = &b;
  }
  std::printf("\nempirical depth D-hat = %zu (max over %zu broadcasts)\n",
              merge.empirical_depth(), broadcasts.size());

  const obs::TraceBreakdown bd = merge.breakdown();
  if (bd.hops > 0) {
    const double h = static_cast<double>(bd.hops);
    std::printf("\nper-hop breakdown over %llu matched wire edges [us]:\n"
                "  process %10.2f   (recv -> relay decision)\n"
                "  queue   %10.2f   (relay -> enqueued on the conn)\n"
                "  serial  %10.2f   (enqueued -> handed to the wire)\n"
                "  wire    %10.2f   (sender send -> receiver recv)\n",
                static_cast<unsigned long long>(bd.hops),
                bd.process_ns / h / 1e3, bd.queue_ns / h / 1e3,
                bd.serialize_ns / h / 1e3, bd.wire_ns / h / 1e3);
  }

  if (deepest != nullptr && !deepest->critical_path.empty()) {
    std::printf("\ncritical path (round %llu, origin %u, depth %zu):\n",
                static_cast<unsigned long long>(deepest->round),
                deepest->origin, deepest->depth);
    for (const auto& step : deepest->critical_path) {
      if (step.dist == 0) {
        std::printf("  node %u (origin)\n", step.node);
      } else {
        std::printf("  node %u <- node %u  dist %zu  t=%.1f us\n", step.node,
                    step.from, step.dist, static_cast<double>(step.t) / 1e3);
      }
    }
  }

  const std::string out_path = flags.get("out", "");
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "allconcur_trace: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    const std::string json = merge.chrome_trace_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                out_path.c_str());
  }
  return 0;
}
