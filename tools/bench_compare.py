#!/usr/bin/env python3
"""Diff two bench JSON files and fail on regressions beyond a threshold.

Walks every numeric leaf present in both files (dotted paths, list indices
by the entry's "window"/"n" key when present, positional otherwise) and
classifies each metric's direction from its name:

  higher-is-better:  *per_sec*, *speedup*, *rounds*, *ops*
  lower-is-better:   *latency*, *_us, *_ns, *allocs*, p50*, p99*
  ignored:           everything else (counts, flags, parameters)

A metric that moved against its direction by more than --threshold
(default 20%) is a regression; the tool prints every comparison and exits
1 if any metric regressed.

The "metrics" subtree (the unified metrics plane every bench embeds) is
excluded from this default classification: its names collide with the
perf heuristics (a drop *counter* matching "ops", histogram p50/p99
leaves reading as latencies), and counters legitimately scale with run
length. Entries are diffed opt-in via --metric (repeatable), which gates
on drift in EITHER direction:

  tools/bench_compare.py a.json b.json --metric engine_rounds_completed

Intended CI use — deterministic virtual-time metrics only (wall-clock
sections are excluded with --only):

  tools/bench_compare.py bench/baselines/round_pipeline_smoke.json \
      bench-out/round_pipeline.json --only sim
"""

import argparse
import json
import re
import sys

HIGHER = re.compile(r"(per_sec|speedup|rounds_per|ops)", re.IGNORECASE)
LOWER = re.compile(r"(latency|_us$|_ns$|allocs|^p50|^p99|p50_|p99_)",
                   re.IGNORECASE)
# Experiment parameters, not measurements: never gated, even when their
# name looks like a unit-suffixed metric (pace_us) or a rate (rate_per_sec).
PARAMS = {"pace_us", "skew_us", "rate_per_sec", "window", "n"}


def leaves(node, path=""):
    """Yields (dotted_path, number) for every numeric leaf."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield path, float(node)
    elif isinstance(node, dict):
        for key, value in sorted(node.items()):
            yield from leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Stable addressing: key list entries by *all* their identity
            # fields, so reordering or extending a sweep does not misalign
            # the comparison — and entries that vary along several axes
            # (e.g. fig8 cells vary by both n and rate) stay distinct
            # instead of overwriting each other.
            label = str(i)
            if isinstance(value, dict):
                ids = [f"{k}={value[k]}"
                       for k in ("window", "n", "rate_per_sec")
                       if k in value]
                if ids:
                    label = ",".join(ids)
            yield from leaves(value, f"{path}[{label}]")


def direction(path):
    """Returns +1 (higher is better), -1 (lower is better) or 0 (ignore)."""
    metric = path.rsplit(".", 1)[-1]
    if metric in PARAMS:
        return 0
    if HIGHER.search(metric):
        return +1
    if LOWER.search(metric):
        return -1
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold regressions between two bench JSONs")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--only", default=None,
                        help="compare only paths starting with this prefix "
                             "(e.g. 'sim' to skip wall-clock sections)")
    parser.add_argument("--metric", action="append", default=[],
                        help="opt-in diff of one metrics-plane entry by "
                             "name (e.g. engine_rounds_completed); "
                             "repeatable; gates on drift in either "
                             "direction beyond --threshold")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = dict(leaves(json.load(f)))
    with open(args.candidate) as f:
        cand = dict(leaves(json.load(f)))

    def metric_entry(path):
        """The metrics-plane entry name of a metrics.* path, else None."""
        parts = path.split(".")
        return parts[1] if len(parts) > 1 and parts[0] == "metrics" else None

    compared = 0
    regressions = []
    for path in sorted(base.keys() & cand.keys()):
        if args.only and not path.startswith(args.only):
            continue
        entry = metric_entry(path)
        if entry is not None:
            # Metrics plane: opt-in only, drift gated both ways. Compare
            # the entry's value-like leaves, not its schema/shape fields.
            leaf = path.rsplit(".", 1)[-1]
            if entry not in args.metric or leaf not in (
                    "value", "count", "sum", "p50", "p90", "p99"):
                continue
            old, new = base[path], cand[path]
            compared += 1
            if old == 0:
                status = "SKIP (zero baseline)"
            else:
                change = (new - old) / abs(old)
                status = f"{change:+.1%}"
                if abs(change) > args.threshold:
                    status += f"  REGRESSION (> {args.threshold:.0%} drift)"
                    regressions.append(path)
            print(f"  {path} [= drift]: {old:g} -> {new:g}  {status}")
            continue
        sign = direction(path)
        if sign == 0:
            continue
        old, new = base[path], cand[path]
        compared += 1
        if old == 0:
            status = "SKIP (zero baseline)"
        else:
            change = (new - old) / abs(old)
            regressed = sign * change < -args.threshold
            status = f"{change:+.1%}"
            if regressed:
                status += f"  REGRESSION (> {args.threshold:.0%} worse)"
                regressions.append(path)
        arrow = "↑" if sign > 0 else "↓"
        print(f"  {path} [{arrow} better]: {old:g} -> {new:g}  {status}")

    missing = sorted(base.keys() - cand.keys())
    if args.only:
        missing = [p for p in missing if p.startswith(args.only)]
    missing = [p for p in missing
               if (metric_entry(p) in args.metric
                   if metric_entry(p) is not None else direction(p) != 0)]
    for path in missing:
        print(f"  {path}: present in baseline, missing in candidate  "
              f"REGRESSION (metric disappeared)")
        regressions.append(path)

    if compared == 0 and not missing:
        print("error: no comparable metrics found "
              "(wrong file, or --only prefix matches nothing)")
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}:")
        for path in regressions:
            print(f"  - {path}")
        return 1
    print(f"\nOK: {compared} metric(s) within {args.threshold:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
