// allconcur_run — run a simulated AllConcur deployment from the command
// line and report agreement statistics.
//
//   $ allconcur_run --n=16 --fabric=tcp --seconds=2 --rate=10000
//   $ allconcur_run --n=32 --crashes=2 --joins=2 --heartbeat-fd --dp
//   $ allconcur_run --n=8 --fabric=ibv --rate=1000000 --req-bytes=64
#include <cstdio>
#include <string>

#include "api/allconcur.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "sim/workload.hpp"

using namespace allconcur;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 16));
  if (n < 2) {
    // A single server has no successors to relay through: the simulated
    // round loop would spin at one instant forever.
    std::fprintf(stderr, "allconcur_run: --n must be >= 2 (got %zu)\n", n);
    return 2;
  }
  const std::string fabric_name = flags.get("fabric", "tcp");
  const double seconds = flags.get_double("seconds", 1.0);
  const double rate = flags.get_double("rate", 10000.0);
  const std::size_t req_bytes =
      static_cast<std::size_t>(flags.get_int("req-bytes", 64));
  const std::size_t crashes =
      static_cast<std::size_t>(flags.get_int("crashes", 0));
  const std::size_t joins = static_cast<std::size_t>(flags.get_int("joins", 0));

  api::ClusterOptions opt;
  opt.n = n;
  if (fabric_name == "ibv") {
    opt.fabric = sim::FabricParams::infiniband();
  } else if (fabric_name == "xc40") {
    opt.fabric = sim::FabricParams::tcp_xc40();
  } else {
    opt.fabric = sim::FabricParams::tcp_ib();
  }
  opt.heartbeat_fd = flags.get_bool("heartbeat-fd", false);
  opt.auto_heal = flags.get_bool("auto-heal", false);
  if (flags.get_bool("dp", false)) {
    opt.fd_mode = core::FdMode::kEventuallyPerfect;
  }
  api::SimCluster cluster(opt);

  std::vector<sim::FluidRate> sources;
  sources.reserve(n + opt.max_joins);
  for (std::size_t i = 0; i < n + opt.max_joins; ++i) {
    sources.emplace_back(rate, req_bytes);
  }

  Summary latency_us;
  std::uint64_t requests_agreed = 0;
  std::uint64_t rounds = 0;
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (who == 0 || !cluster.exists(0) || !cluster.alive(0)) {
      if (who == cluster.live_nodes().front()) {
        ++rounds;
        for (const auto& d : r.deliveries) {
          requests_agreed += d.bytes / req_bytes;
        }
        const auto started = cluster.broadcast_time(who, r.round);
        if (started) latency_us.add(to_us(t - *started));
      }
    }
    const std::size_t bytes = sources[who].take(t);
    if (bytes > 0) cluster.submit_opaque(who, bytes);
    cluster.broadcast_now(who);
  };

  // Failure/join schedule spread over the first half of the run.
  for (std::size_t i = 0; i < crashes && i + 1 < n; ++i) {
    cluster.crash_at(static_cast<NodeId>(n - 1 - i),
                     sec(seconds * 0.1 * static_cast<double>(i + 1)));
  }
  for (std::size_t i = 0; i < joins; ++i) {
    cluster.schedule_join(sec(seconds * 0.3 + 0.05 * static_cast<double>(i)),
                          /*sponsor=*/0);
  }

  cluster.broadcast_all_now();
  cluster.run_for(sec(seconds));

  std::printf("allconcur_run: n=%zu fabric=%s %.1fs simulated\n", n,
              fabric_name.c_str(), seconds);
  std::printf("  rounds completed      : %llu\n",
              static_cast<unsigned long long>(rounds));
  std::printf("  requests agreed       : %llu (%.0f req/s)\n",
              static_cast<unsigned long long>(requests_agreed),
              static_cast<double>(requests_agreed) / seconds);
  if (!latency_us.empty()) {
    const auto ci = latency_us.median_ci95();
    std::printf("  agreement latency     : median %.1f us  [%.1f, %.1f] 95%% CI\n",
                ci.median, ci.lo, ci.hi);
    std::printf("  latency p99           : %.1f us\n", latency_us.quantile(0.99));
  }
  const auto stats = cluster.aggregate_stats();
  std::printf("  messages (bcast/fail) : %llu / %llu\n",
              static_cast<unsigned long long>(stats.bcast_received),
              static_cast<unsigned long long>(stats.fail_received));
  std::printf("  final live nodes      : %zu\n", cluster.live_nodes().size());
  return 0;
}
