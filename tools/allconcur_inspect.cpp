// allconcur_inspect — live introspection client for a running TcpNode.
//
// Fetches the admin endpoint (TcpNodeOptions::admin_port + node id) and
// prints the body: the unified metrics plane in Prometheus text or JSON,
// the round flight recorder as JSON-lines or text, the causal-trace span
// dump (merge with tools/allconcur_trace), or a health probe.
//
//   $ allconcur_inspect --port=41000                       # /metrics
//   $ allconcur_inspect --port=41000 --path=/metrics.json
//   $ allconcur_inspect --port=41000 --node=3 --path=/recorder
//   $ allconcur_inspect --port=41000 --path=/healthz
//
// --port names the cluster's admin base port; --node (default 0) is added
// to it, mirroring how TcpNode computes its listen port. The whole client
// is obs::run_inspect(), which net_tcp_test drives in-process against a
// live node — this file is only the argv shell around it.
#include <cstdio>
#include <string>

#include "common/flags.hpp"
#include "obs/inspect.hpp"

int main(int argc, char** argv) {
  const allconcur::Flags flags(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: allconcur_inspect --port=<admin base port> "
        "[--node=<id>] [--path=/metrics|/metrics.json|/recorder|"
        "/recorder.txt|/trace|/healthz] [--timeout-ms=<n>]\n"
        "exit codes: 0 ok, 1 connect/malformed, 2 bad args, 3 timeout, "
        "4 non-200\n");
    return 0;
  }
  const auto base = flags.get_int("port", 0);
  if (base <= 0 || base > 65535) {
    std::fprintf(stderr,
                 "allconcur_inspect: --port=<admin base port> required "
                 "(see --help)\n");
    return 2;
  }
  const auto node = flags.get_int("node", 0);
  const auto port = base + node;
  if (node < 0 || port <= 0 || port > 65535) {
    std::fprintf(stderr, "allconcur_inspect: --node puts the port out of "
                         "range\n");
    return 2;
  }
  const std::string path = flags.get("path", "/metrics");
  const auto timeout_ms = flags.get_int("timeout-ms", 2000);
  if (timeout_ms <= 0) {
    std::fprintf(stderr, "allconcur_inspect: --timeout-ms must be > 0\n");
    return 2;
  }
  return allconcur::obs::run_inspect(static_cast<std::uint16_t>(port), path,
                                     stdout, static_cast<int>(timeout_ms));
}
