// allconcur_kv: drive a replicated KV store over a real TCP AllConcur
// cluster (the multi-process-on-one-server shape: every node runs its
// own epoll event loop on its own thread, exactly as separate processes
// would).
//
//   $ allconcur_kv put --key=motd --value=hello [--n=5]
//   $ allconcur_kv get --key=motd [--n=5] [--put-first=hello]
//   $ allconcur_kv bench [--n=5] [--ops=500] [--value-bytes=64] [--smoke]
//
// put: writes through the agreed stream, barriers every replica to the
//      write's round and verifies the value landed everywhere.
// get: linearizable read through the stream (optionally seeding the key
//      first with --put-first so the read has something to find).
// bench: streams puts from one client and reports applied ops/s plus
//      the cross-replica convergence check.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/flags.hpp"
#include "smr/tcp_kv.hpp"

using namespace allconcur;

namespace {

struct Cluster {
  std::vector<std::unique_ptr<smr::KvNode>> nodes;

  explicit Cluster(std::size_t n, std::uint16_t admin_port = 0,
                   std::uint32_t trace_period = 0) {
    const auto base = static_cast<std::uint16_t>(
        20000 + (static_cast<unsigned>(::getpid()) * 137) % 30000);
    std::vector<NodeId> members(n);
    for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
    for (std::size_t i = 0; i < n; ++i) {
      net::TcpNodeOptions opt;
      opt.self = static_cast<NodeId>(i);
      opt.members = members;
      opt.base_port = base;
      opt.admin_port = admin_port;
      opt.trace_sample_period = trace_period;
      nodes.push_back(std::make_unique<smr::KvNode>(std::move(opt)));
    }
    for (auto& node : nodes) node->start();
    for (auto& node : nodes) node->wait_connected(sec(10));
    std::printf("# %zu nodes connected over localhost TCP (ports %u..%u)\n",
                n, base, base + static_cast<unsigned>(n) - 1);
    if (admin_port != 0) {
      std::printf("# admin endpoints live on ports %u..%u "
                  "(allconcur_inspect --port=%u)\n",
                  admin_port, admin_port + static_cast<unsigned>(n) - 1,
                  admin_port);
    }
  }

  /// Barriers every replica to node 0's tip, waits for all of them to
  /// quiesce at one common round (barrier nudges can start extra empty
  /// rounds), then compares every state hash — never vacuously true.
  bool converged() {
    const Round tip = nodes[0]->next_round();
    if (tip == 0) return true;
    for (auto& node : nodes) {
      if (!node->read_barrier(tip - 1, sec(30))) return false;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      Round lo = nodes[0]->next_round(), hi = lo;
      for (auto& node : nodes) {
        lo = std::min(lo, node->next_round());
        hi = std::max(hi, node->next_round());
      }
      if (lo == hi) break;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto& node : nodes) {
      if (node->state_hash() != nodes[0]->state_hash()) return false;
    }
    return true;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: allconcur_kv <put|get|bench> [--n=5] [--key=...] "
               "[--value=...] [--put-first=...] [--ops=500] "
               "[--value-bytes=64] [--smoke] [--admin-port=0] "
               "[--trace-period=0]\n");
  return 2;
}

int cmd_put(Cluster& cluster, const std::string& key,
            const std::string& value) {
  smr::KvSession session(1);
  const auto resp = cluster.nodes[0]->execute(
      session, smr::Command::put(smr::to_bytes(key), smr::to_bytes(value)));
  if (!resp || !resp->ok()) {
    std::fprintf(stderr, "put failed\n");
    return 1;
  }
  std::printf("put %s=%s agreed in round %llu\n", key.c_str(), value.c_str(),
              static_cast<unsigned long long>(
                  cluster.nodes[0]->next_round() - 1));
  // Verify the write is on every replica.
  const Round observed = cluster.nodes[0]->next_round() - 1;
  for (auto& node : cluster.nodes) {
    if (!node->read_barrier(observed, sec(30)) ||
        node->get_local(smr::to_bytes(key)) != smr::to_bytes(value)) {
      std::fprintf(stderr, "replica %u did not converge on the write\n",
                   node->self());
      return 1;
    }
  }
  std::printf("all %zu replicas hold the value\n", cluster.nodes.size());
  return 0;
}

int cmd_get(Cluster& cluster, const std::string& key,
            const Flags& flags) {
  smr::KvSession session(1);
  if (flags.has("put-first")) {
    const auto seeded = flags.get("put-first", "");
    if (!cluster.nodes[0]->execute(
            session,
            smr::Command::put(smr::to_bytes(key), smr::to_bytes(seeded)))) {
      std::fprintf(stderr, "seeding put failed\n");
      return 1;
    }
  }
  // Linearizable read: through the stream, from a different node.
  const auto resp = cluster.nodes[cluster.nodes.size() - 1]->execute(
      session, smr::Command::get(smr::to_bytes(key)));
  if (!resp) {
    std::fprintf(stderr, "get timed out\n");
    return 1;
  }
  if (resp->status == smr::KvResponse::Status::kNotFound) {
    std::printf("%s: (not found)\n", key.c_str());
  } else {
    std::printf("%s=%s\n", key.c_str(),
                std::string(smr::to_view(resp->value)).c_str());
  }
  return 0;
}

int cmd_bench(Cluster& cluster, const Flags& flags) {
  const bool smoke = flags.get_bool("smoke", false);
  const std::size_t ops =
      static_cast<std::size_t>(flags.get_int("ops", smoke ? 40 : 500));
  const std::size_t value_bytes =
      static_cast<std::size_t>(flags.get_int("value-bytes", 64));
  smr::KvSession session(1);
  const smr::Bytes value(value_bytes, 0x61);

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    const auto key = smr::to_bytes("key-" + std::to_string(i % 64));
    const auto resp = cluster.nodes[0]->execute(
        session, smr::Command::put(key, value), sec(30));
    if (!resp || !resp->ok()) {
      std::fprintf(stderr, "op %zu failed\n", i);
      return 1;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!cluster.converged()) {
    std::fprintf(stderr, "replicas diverged\n");
    return 1;
  }
  std::printf(
      "%zu ops x %zu B over %zu nodes: %.0f ops/s agreed+applied "
      "(%.2f ms/op), replicas converged\n",
      ops, value_bytes, cluster.nodes.size(),
      static_cast<double>(ops) / secs,
      1e3 * secs / static_cast<double>(ops));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') return usage();
  const std::string sub = argv[1];
  const Flags flags(argc - 1, argv + 1);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 5));
  if (sub != "put" && sub != "get" && sub != "bench") return usage();

  // --admin-port: serve the obs admin endpoint on admin-port + node id
  // while the command runs (0 = off) — allconcur_inspect can fetch live
  // metrics/recorder snapshots from another terminal. --trace-period
  // additionally arms the causal tracer (sample 1 round in N, 0 = off);
  // `allconcur_trace --port=<admin-port> --nodes=<n>` then merges the
  // live span dumps into the propagation DAG.
  Cluster cluster(n,
                  static_cast<std::uint16_t>(flags.get_int("admin-port", 0)),
                  static_cast<std::uint32_t>(
                      std::max<std::int64_t>(0, flags.get_int("trace-period",
                                                              0))));
  int rc = 2;
  if (sub == "put") {
    rc = cmd_put(cluster, flags.get("key", "motd"),
                 flags.get("value", "hello"));
  } else if (sub == "get") {
    rc = cmd_get(cluster, flags.get("key", "motd"), flags);
  } else {
    rc = cmd_bench(cluster, flags);
  }
  for (auto& node : cluster.nodes) node->stop();
  return rc;
}
