// Distributed exchange (§1.1 scenario 3): a limit order book replicated
// over geographically distributed servers. Fairness comes from the
// leaderless design: no client is privileged by co-location with a
// coordinator, because there is none — orders submitted at any server
// enter the same agreed sequence.
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "api/allconcur.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace allconcur;

namespace {

// A tiny price-time-priority matching engine, applied identically at every
// server from the agreed order stream.
class OrderBook {
 public:
  // Order payload: [side u8][price u32][qty u32][owner u32] padded to 40B.
  static core::Request order(bool buy, std::uint32_t price, std::uint32_t qty,
                             std::uint32_t owner) {
    std::vector<std::uint8_t> bytes(40, 0);
    bytes[0] = buy ? 1 : 0;
    std::memcpy(bytes.data() + 1, &price, 4);
    std::memcpy(bytes.data() + 5, &qty, 4);
    std::memcpy(bytes.data() + 9, &owner, 4);
    return core::Request::of_data(std::move(bytes));
  }

  void apply(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() != 40) return;
    const bool buy = bytes[0] != 0;
    std::uint32_t price, qty, owner;
    std::memcpy(&price, bytes.data() + 1, 4);
    std::memcpy(&qty, bytes.data() + 5, 4);
    std::memcpy(&owner, bytes.data() + 9, 4);
    if (buy) {
      match(asks_, price, qty, /*buy_side=*/true);
      if (qty > 0) bids_[price] += qty;
    } else {
      match(bids_, price, qty, /*buy_side=*/false);
      if (qty > 0) asks_[price] += qty;
    }
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [p, q] : bids_) h = (h ^ p ^ (q << 1)) * 1099511628211ull;
    for (const auto& [p, q] : asks_) h = (h ^ p ^ (q << 3)) * 1099511628211ull;
    return h ^ trades_;
  }

  std::uint64_t trades() const { return trades_; }

 private:
  void match(std::map<std::uint32_t, std::uint32_t>& book,
             std::uint32_t price, std::uint32_t& qty, bool buy_side) {
    while (qty > 0 && !book.empty()) {
      // Buys match the lowest ask <= price; sells the highest bid >= price.
      auto it = buy_side ? book.begin() : std::prev(book.end());
      if (buy_side ? it->first > price : it->first < price) break;
      const std::uint32_t traded = std::min(qty, it->second);
      qty -= traded;
      it->second -= traded;
      ++trades_;
      if (it->second == 0) book.erase(it);
    }
  }

  std::map<std::uint32_t, std::uint32_t> bids_, asks_;
  std::uint64_t trades_ = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kServers = 8;
  constexpr int kRounds = 20;

  api::ClusterOptions options;
  options.n = kServers;
  options.fabric = sim::FabricParams::tcp_xc40();
  api::SimCluster cluster(options);

  std::vector<OrderBook> books(kServers);
  std::vector<std::uint64_t> orders_per_server(kServers, 0);
  Summary latency_us;

  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    for (const auto& d : r.deliveries) {
      const auto batch = core::unpack_batch(d.payload);
      if (!batch) continue;
      for (const auto& req : *batch) books[who].apply(req.data);
    }
    if (who == 0) {
      const auto started = cluster.broadcast_time(0, r.round);
      if (started) latency_us.add(to_us(t - *started));
    }
  };

  // A globally constant order flow, spread evenly across the servers —
  // every client sees the same median latency regardless of where it
  // connects (the fairness property §1.1 motivates).
  Rng rng(99);
  for (int round = 0; round < kRounds; ++round) {
    for (NodeId s = 0; s < kServers; ++s) {
      for (int k = 0; k < 4; ++k) {
        const bool buy = rng.next_below(2) == 0;
        const auto price = static_cast<std::uint32_t>(95 + rng.next_below(11));
        const auto qty = static_cast<std::uint32_t>(1 + rng.next_below(50));
        cluster.submit(s, OrderBook::order(buy, price, qty, 100 * s + k));
        ++orders_per_server[s];
      }
    }
    cluster.broadcast_all_now();
    cluster.run_until_round_done(static_cast<Round>(round), sec(1));
  }

  bool consistent = true;
  for (NodeId s = 1; s < kServers; ++s) {
    consistent &= (books[s].fingerprint() == books[0].fingerprint());
  }

  std::printf("distributed exchange demo: %zu servers, %d rounds\n", kServers,
              kRounds);
  std::printf("  orders entered per server: %llu (even spread = fairness)\n",
              static_cast<unsigned long long>(orders_per_server[0]));
  std::printf("  trades matched: %llu (identical on every server)\n",
              static_cast<unsigned long long>(books[0].trades()));
  std::printf("  order books consistent: %s\n", consistent ? "YES" : "NO");
  std::printf("  median agreement latency: %.1f us\n", latency_us.median());
  return consistent ? 0 : 1;
}
