// Travel reservation system (§1.1 scenario 1): a seat inventory replicated
// across servers with strong consistency.
//
// Queries are answered locally (cheap, §1: "locally performed queries
// cannot be outdated by more than one round"); bookings are updates agreed
// via atomic broadcast. Conflicting bookings for the same seat race
// through concurrent rounds; every server resolves every conflict
// identically because deliveries are totally ordered.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/allconcur.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace allconcur;

namespace {

// The replicated state machine: seat -> customer. Applied identically at
// every server from the agreed request stream.
class SeatMap {
 public:
  // Request payload: [seat u16][customer u32].
  static core::Request book(std::uint16_t seat, std::uint32_t customer) {
    std::vector<std::uint8_t> bytes(6);
    std::memcpy(bytes.data(), &seat, 2);
    std::memcpy(bytes.data() + 2, &customer, 4);
    return core::Request::of_data(std::move(bytes));
  }

  void apply(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() != 6) return;
    std::uint16_t seat;
    std::uint32_t customer;
    std::memcpy(&seat, bytes.data(), 2);
    std::memcpy(&customer, bytes.data() + 2, 4);
    ++attempts_;
    if (!seats_.count(seat)) {
      seats_[seat] = customer;  // first agreed booking wins — everywhere
    } else {
      ++rejected_;
    }
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [seat, customer] : seats_) {
      h = (h ^ seat) * 1099511628211ull;
      h = (h ^ customer) * 1099511628211ull;
    }
    return h;
  }

  std::size_t booked() const { return seats_.size(); }
  std::size_t rejected() const { return rejected_; }
  std::size_t attempts() const { return attempts_; }

 private:
  std::map<std::uint16_t, std::uint32_t> seats_;
  std::size_t attempts_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace

int main() {
  constexpr std::size_t kServers = 16;
  constexpr std::uint16_t kSeats = 120;
  constexpr int kRounds = 12;

  api::ClusterOptions options;
  options.n = kServers;
  options.fabric = sim::FabricParams::infiniband();
  api::SimCluster cluster(options);

  std::vector<SeatMap> replicas(kServers);
  Summary round_latency_us;
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    for (const auto& d : r.deliveries) {
      const auto batch = core::unpack_batch(d.payload);
      if (!batch) continue;
      for (const auto& req : *batch) replicas[who].apply(req.data);
    }
    if (who == 0) {
      const auto started = cluster.broadcast_time(0, r.round);
      if (started) round_latency_us.add(to_us(t - *started));
    }
  };

  // Each round, every server books a few random seats on behalf of its
  // local clients — many of them collide.
  Rng rng(2024);
  for (int round = 0; round < kRounds; ++round) {
    for (NodeId s = 0; s < kServers; ++s) {
      const int bookings = 1 + static_cast<int>(rng.next_below(3));
      for (int b = 0; b < bookings; ++b) {
        cluster.submit(
            s, SeatMap::book(
                   static_cast<std::uint16_t>(rng.next_below(kSeats)),
                   static_cast<std::uint32_t>(1000 * s + rng.next_below(100))));
      }
    }
    cluster.broadcast_all_now();
    cluster.run_until_round_done(static_cast<Round>(round), sec(1));
  }

  // Every replica must be byte-identical.
  bool consistent = true;
  for (NodeId s = 1; s < kServers; ++s) {
    consistent &= (replicas[s].fingerprint() == replicas[0].fingerprint());
  }

  std::printf("travel reservation demo: %zu servers, %d rounds\n", kServers,
              kRounds);
  std::printf("  bookings attempted : %zu\n", replicas[0].attempts());
  std::printf("  seats booked       : %zu / %u\n", replicas[0].booked(),
              kSeats);
  std::printf("  conflicts rejected : %zu (identically on every server)\n",
              replicas[0].rejected());
  std::printf("  replicas consistent: %s\n", consistent ? "YES" : "NO");
  std::printf("  median agreement   : %.1f us per round (IBV fabric)\n",
              round_latency_us.median());
  return consistent ? 0 : 1;
}
