// Real-transport deployment: n AllConcur nodes over localhost TCP sockets
// (the multi-process-on-one-server shape; each node runs its own epoll
// event loop on its own thread, exactly as separate processes would).
//
//   $ ./tcp_cluster            # 5 nodes, 10 rounds, one crash
//   $ ./tcp_cluster --n=8 --rounds=20
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/flags.hpp"
#include "net/tcp_transport.hpp"

using namespace allconcur;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 5));
  const std::uint64_t rounds =
      static_cast<std::uint64_t>(flags.get_int("rounds", 10));
  const auto base_port =
      static_cast<std::uint16_t>(20000 + (::getpid() * 137) % 30000);

  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  std::vector<std::unique_ptr<net::TcpNode>> nodes;
  std::atomic<std::uint64_t> deliveries{0};
  for (std::size_t i = 0; i < n; ++i) {
    net::TcpNodeOptions opt;
    opt.self = static_cast<NodeId>(i);
    opt.members = members;
    opt.base_port = base_port;
    const NodeId id = static_cast<NodeId>(i);
    nodes.push_back(std::make_unique<net::TcpNode>(
        opt, [id, &deliveries](const core::RoundResult& r) {
          deliveries.fetch_add(1);
          if (id == 0) {
            std::printf("node 0: round %llu delivered, %zu messages, "
                        "view %zu\n",
                        static_cast<unsigned long long>(r.round),
                        r.deliveries.size(), r.view_size);
          }
        }));
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node->run(); });
  }
  for (auto& node : nodes) node->wait_connected(sec(10));
  std::printf("%zu nodes connected over localhost TCP (ports %u..%u)\n", n,
              base_port, base_port + static_cast<unsigned>(n) - 1);

  const NodeId victim = static_cast<NodeId>(n - 1);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    if (r == rounds / 2) {
      std::printf("-- crashing node %u --\n", victim);
      nodes[victim]->stop();
    }
    for (auto& node : nodes) {
      if (r >= rounds / 2 && node->self() == victim) continue;
      node->submit(core::Request::of_data(
          {static_cast<std::uint8_t>(r), node->self() == 0 ? uint8_t{1}
                                                            : uint8_t{0}}));
      node->broadcast_now();
    }
    // Wait for node 0 to finish the round (bounded so a protocol stall
    // fails the smoke test instead of hanging it).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (nodes[0]->rounds_completed() <= r) {
      if (std::chrono::steady_clock::now() > deadline) {
        std::fprintf(stderr, "stalled waiting for round %llu\n",
                     static_cast<unsigned long long>(r));
        for (auto& node : nodes) node->stop();
        for (auto& t : threads) t.join();
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  const bool completed = nodes[0]->rounds_completed() >= rounds;
  for (auto& node : nodes) node->stop();
  for (auto& t : threads) t.join();
  std::printf("done: %llu total deliveries across %zu nodes\n",
              static_cast<unsigned long long>(deliveries.load()), n);
  return completed && deliveries.load() > 0 ? 0 : 1;
}
