// Replicated KV store over AllConcur: the SMR layer end to end.
//
//   $ ./kv_store
//
// Demonstrates: puts/gets/CAS through the totally-ordered stream, a
// linearizable read barrier, exactly-once retry across a server crash,
// and a fresh replica catching up from a snapshot — with the
// cross-replica state-hash divergence guard asserted throughout.
#include <cstdio>
#include <string>

#include "api/allconcur.hpp"

using namespace allconcur;

namespace {

smr::Bytes b(const std::string& s) { return smr::to_bytes(s); }

std::string show(const std::optional<smr::KvResponse>& r) {
  if (!r) return "(timeout)";
  switch (r->status) {
    case smr::KvResponse::Status::kOk:
      return r->has_value ? std::string(smr::to_view(r->value)) : "ok";
    case smr::KvResponse::Status::kNotFound: return "(not found)";
    case smr::KvResponse::Status::kCasFailed: return "(cas failed)";
    case smr::KvResponse::Status::kBadCommand: return "(bad command)";
  }
  return "?";
}

}  // namespace

int main() {
  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "CHECK FAILED: %s\n", what);
      ok = false;
    }
  };

  smr::SimKvOptions options;
  options.cluster.n = 5;
  options.cluster.detection_delay = ms(1);
  options.snapshot_every = 4;
  smr::SimKvCluster cluster(options);

  // Two clients, each with a session (the exactly-once identity).
  auto alice = cluster.make_session();
  auto bob = cluster.make_session();

  std::printf("== writes through the agreed stream ==\n");
  auto r = cluster.execute(0, alice, smr::Command::put(b("motd"), b("hello")));
  std::printf("alice: put motd=hello      -> %s\n", show(r).c_str());
  check(r && r->ok(), "alice's put applies");

  // Two clients race a create-if-absent CAS on the same key; atomic
  // broadcast arbitrates identically on every replica.
  cluster.submit(1, alice, smr::Command::cas_absent(b("owner"), b("alice")));
  cluster.submit(4, bob, smr::Command::cas_absent(b("owner"), b("bob")));
  cluster.cluster().broadcast_all_now();
  cluster.cluster().run_until_round_done(1, cluster.sim().now() + sec(2));
  const auto alice_cas = cluster.replica(1).response(alice.id(), 2);
  const auto bob_cas = cluster.replica(1).response(bob.id(), 1);
  check(alice_cas && bob_cas, "both CAS outcomes are known");
  if (alice_cas && bob_cas) {
    const bool alice_won = smr::decode_response(*alice_cas)->ok();
    const bool bob_won = smr::decode_response(*bob_cas)->ok();
    std::printf("cas race: alice %s, bob %s\n",
                alice_won ? "won" : "lost", bob_won ? "won" : "lost");
    check(alice_won != bob_won, "exactly one CAS winner");
  }

  std::printf("\n== linearizable read barrier ==\n");
  // Alice observed her write at node 0 in some round; a barrier on that
  // round makes a local read at any other node linearizable.
  const Round observed = cluster.replica(0).next_round() - 1;
  check(cluster.read_barrier(3, observed, sec(2)), "node 3 reaches barrier");
  const auto motd = cluster.kv(3).get_local(b("motd"));
  std::printf("node 3 reads motd locally  -> %s\n",
              motd ? std::string(smr::to_view(*motd)).c_str() : "(miss)");
  check(motd == b("hello"), "barriered local read sees the write");

  std::printf("\n== exactly-once retry across a crash ==\n");
  // Bob submits through node 2, which dies right after the broadcast
  // escapes: the command is agreed, but bob never hears back.
  cluster.submit(2, bob, smr::Command::put(b("balance"), b("100")));
  cluster.cluster().broadcast_all_now();
  cluster.cluster().crash_at(2, cluster.sim().now());
  cluster.cluster().run_until_round_done(2, cluster.sim().now() + sec(2));
  // Bob retries the identical envelope at node 4 — applied exactly once.
  const auto retried = cluster.retry(4, bob, sec(5));
  std::printf("bob retries at node 4      -> %s\n", show(retried).c_str());
  check(retried && retried->ok(), "retry succeeds");
  // The answer came from the session cache; drive the round carrying the
  // duplicate envelope so the replicas demonstrably suppress it.
  cluster.cluster().run_until_round_done(3, cluster.sim().now() + sec(2));
  const Round tip = cluster.replica(4).next_round() - 1;
  std::uint64_t duplicates = 0;
  for (NodeId id : cluster.cluster().live_nodes()) {
    cluster.read_barrier(id, tip, sec(5));
    duplicates += cluster.replica(id).duplicates_suppressed();
  }
  std::printf("duplicate applications suppressed across replicas: %llu\n",
              static_cast<unsigned long long>(duplicates));
  check(duplicates > 0, "the duplicate envelope was suppressed");
  check(cluster.kv(0).get_local(b("balance")) == b("100"),
        "the balance was written once");

  std::printf("\n== snapshot catch-up ==\n");
  // A fresh replica mounts from the newest retained snapshot plus log
  // replay — no round-0 history needed.
  const Round end = cluster.replica(0).next_round();
  const auto spawned = cluster.spawn_replica_at(end);
  check(spawned != nullptr, "snapshot + log replay covers the gap");
  if (spawned) {
    std::printf("fresh replica restored to round %llu, hash %s\n",
                static_cast<unsigned long long>(spawned->next_round()),
                spawned->state_hash() == cluster.replica(0).state_hash()
                    ? "matches"
                    : "DIVERGED");
    check(spawned->state_hash() == cluster.replica(0).state_hash(),
          "restored replica matches the live tip");
  }

  // Divergence guard: every live replica agrees with the reference hash
  // (the cluster also asserts this after every single round).
  check(cluster.converged(), "all replicas converged");

  std::printf("\nreplicated KV store over atomic broadcast: %s\n",
              ok ? "all checks passed" : "CHECKS FAILED");
  return ok ? 0 : 1;
}
