// Multiplayer video game (§1.1 scenario 2): a shared world updated every
// 50 ms frame; each player's actions are 40-byte updates agreed via atomic
// broadcast, so every game server simulates the identical world without
// ever shipping the (large) world state itself.
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/allconcur.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

using namespace allconcur;

namespace {

// Deterministic mini game world: player positions on a 2-D map.
struct World {
  struct Pos {
    std::int32_t x = 0, y = 0;
  };
  std::vector<Pos> players;

  explicit World(std::size_t n) : players(n) {}

  // Action payload: [player u32][dx i32][dy i32] + padding to 40 bytes
  // (the paper's typical update size).
  static core::Request move(std::uint32_t player, std::int32_t dx,
                            std::int32_t dy) {
    std::vector<std::uint8_t> bytes(40, 0);
    std::memcpy(bytes.data(), &player, 4);
    std::memcpy(bytes.data() + 4, &dx, 4);
    std::memcpy(bytes.data() + 8, &dy, 4);
    return core::Request::of_data(std::move(bytes));
  }

  void apply(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() != 40) return;
    std::uint32_t player;
    std::int32_t dx, dy;
    std::memcpy(&player, bytes.data(), 4);
    std::memcpy(&dx, bytes.data() + 4, 4);
    std::memcpy(&dy, bytes.data() + 8, 4);
    if (player >= players.size()) return;
    players[player].x += dx;
    players[player].y += dy;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& p : players) {
      h = (h ^ static_cast<std::uint32_t>(p.x)) * 1099511628211ull;
      h = (h ^ static_cast<std::uint32_t>(p.y)) * 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

int main() {
  constexpr std::size_t kPlayers = 64;  // one server per player
  constexpr int kFrames = 10;
  const DurationNs kFrame = ms(50);  // 20 frames per second

  api::ClusterOptions options;
  options.n = kPlayers;
  options.fabric = sim::FabricParams::tcp_xc40();
  api::SimCluster cluster(options);

  std::vector<World> worlds(kPlayers, World(kPlayers));
  Summary frame_latency_ms;
  std::size_t frames_within_budget = 0;

  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    for (const auto& d : r.deliveries) {
      const auto batch = core::unpack_batch(d.payload);
      if (!batch) continue;
      for (const auto& req : *batch) worlds[who].apply(req.data);
    }
    if (who == 0) {
      const auto started = cluster.broadcast_time(0, r.round);
      if (started) {
        const double lat_ms = to_ms(t - *started);
        frame_latency_ms.add(lat_ms);
        if (lat_ms < to_ms(kFrame)) ++frames_within_budget;
      }
    }
  };

  // Each frame: every player performs ~0..2 actions (≈200-400 APM ⇒ far
  // fewer than one action per frame; we exaggerate for a livelier demo),
  // then the frame's actions are agreed.
  Rng rng(7);
  for (int frame = 0; frame < kFrames; ++frame) {
    const TimeNs at = static_cast<TimeNs>(frame) * kFrame;
    for (NodeId p = 0; p < kPlayers; ++p) {
      const std::size_t actions = rng.next_below(3);
      for (std::size_t a = 0; a < actions; ++a) {
        cluster.submit(p, World::move(p,
                                      static_cast<std::int32_t>(
                                          rng.next_below(5)) - 2,
                                      static_cast<std::int32_t>(
                                          rng.next_below(5)) - 2));
      }
      cluster.sim().schedule_at(at, [&cluster, p] {
        cluster.engine(p).broadcast_now();
      });
    }
    cluster.run_for(kFrame);
  }
  cluster.run_for(sec(1));

  bool consistent = true;
  for (NodeId p = 1; p < kPlayers; ++p) {
    consistent &= (worlds[p].fingerprint() == worlds[0].fingerprint());
  }

  std::printf("multiplayer game demo: %zu players, %d frames @ 20 fps\n",
              kPlayers, kFrames);
  std::printf("  world state fingerprints identical: %s\n",
              consistent ? "YES" : "NO");
  std::printf("  median frame agreement latency: %.2f ms (budget 50 ms)\n",
              frame_latency_ms.median());
  std::printf("  frames within budget: %zu / %zu\n", frames_within_budget,
              frame_latency_ms.count());
  return consistent ? 0 : 1;
}
