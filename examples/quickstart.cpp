// Quickstart: 8 servers agree on a stream of requests with AllConcur.
//
//   $ ./quickstart
//
// Demonstrates the core API surface: build a cluster, submit requests,
// observe totally-ordered deliveries, survive a server crash.
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/allconcur.hpp"

using namespace allconcur;

int main() {
  // 8 servers over GS(8,3) (Table 3 of the paper), TCP-like fabric.
  api::ClusterOptions options;
  options.n = 8;
  options.fabric = sim::FabricParams::tcp_ib();
  options.detection_delay = ms(1);
  api::SimCluster cluster(options);

  // Every delivery callback sees the same requests in the same order on
  // every server — that is the atomic broadcast guarantee. We record each
  // server's (round, origin) stream and verify it below.
  std::map<NodeId, std::vector<std::pair<Round, NodeId>>> streams;
  cluster.on_deliver = [&streams](NodeId who, const core::RoundResult& r,
                                  TimeNs t) {
    for (const auto& d : r.deliveries) streams[who].emplace_back(r.round, d.origin);
    if (who != 0) return;  // print one server's view; all views are equal
    std::printf("[%7.1f us] round %llu delivered (n=%zu):", to_us(t),
                static_cast<unsigned long long>(r.round), r.view_size);
    for (const auto& d : r.deliveries) {
      const auto batch = core::unpack_batch(d.payload);
      if (batch && !batch->empty()) {
        for (const auto& req : *batch) {
          std::printf(" [p%u: %s]", d.origin,
                      std::string(req.data.begin(), req.data.end()).c_str());
        }
      }
    }
    if (!r.removed.empty()) {
      std::printf("  -- removed:");
      for (NodeId x : r.removed) std::printf(" p%u", x);
    }
    std::printf("\n");
  };

  // Round 0: three servers have something to say; the others contribute
  // empty messages automatically.
  const auto say = [&](NodeId who, const std::string& text) {
    cluster.submit(who, core::Request::of_data(
                            {text.begin(), text.end()}));
  };
  say(1, "reserve seat 12A");
  say(5, "reserve seat 12A");  // the conflict is resolved identically everywhere
  say(7, "reserve seat 30C");
  cluster.broadcast_all_now();
  cluster.run_until_round_done(0, sec(1));

  // Round 1: server 3 crashes mid-round; agreement still completes.
  cluster.crash_at(3, cluster.sim().now() + us(1));
  say(2, "reserve seat 14F");
  cluster.broadcast_all_now();
  cluster.run_until_round_done(1, sec(1));

  // Round 2 runs on the shrunk membership.
  say(6, "cancel seat 30C");
  cluster.broadcast_all_now();
  cluster.run_until_round_done(2, sec(1));

  // Self-check (makes this demo a real end-to-end smoke test): every
  // surviving server saw the identical totally-ordered delivery stream.
  bool consistent = true;
  for (NodeId id : cluster.live_nodes()) {
    consistent &= (streams[id] == streams[cluster.live_nodes().front()]);
  }
  consistent &= !streams[0].empty();

  std::printf("\nall servers observed identical delivery order: %s; "
              "p3's crash cost one round of membership reconfiguration.\n",
              consistent ? "YES" : "NO");
  return consistent ? 0 : 1;
}
