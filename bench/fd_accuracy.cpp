// Reproduces the §3.2 failure-detector accuracy analysis: the lower bound
//   P >= (1 - Π_k Pr[T > Δto - k·Δhb])^{n·d}
// on the probability that the heartbeat FD behaves like a perfect one,
// swept over the timeout and heartbeat periods.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/math.hpp"
#include "core/failure_detector.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double delay_mean_us = flags.get_double("delay-mean-us", 2000.0);
  const auto tail = core::exponential_delay_tail(delay_mean_us);

  print_title("§3.2: FD accuracy lower bound (exponential delays, mean " +
              std::to_string(delay_mean_us) + " us)");
  row("%8s %8s %12s %16s %16s", "Δhb[ms]", "Δto[ms]", "beats",
      "P(n=32,d=4)", "P(n=512,d=8)");
  const bool smoke = smoke_mode(flags);
  for (const double hb_ms : {1.0, 2.0, 5.0}) {
    if (smoke && hb_ms > 1.0) continue;
    for (const double to_ms : {5.0, 10.0, 20.0, 50.0}) {
      if (to_ms < hb_ms) continue;
      const double hb = hb_ms * 1e3, to = to_ms * 1e3;  // us
      row("%8.1f %8.1f %12zu %16.12f %16.12f", hb_ms, to_ms,
          static_cast<std::size_t>(to / hb),
          core::fd_accuracy_lower_bound(32, 4, hb, to, tail),
          core::fd_accuracy_lower_bound(512, 8, hb, to, tail));
    }
  }

  print_title("system reliability = FD accuracy x P[fewer than k failures]");
  graph::FailureModel fm;
  for (const auto& spec : graph::paper_table3()) {
    if (spec.n > 512) break;
    const double fd = core::fd_accuracy_lower_bound(
        spec.n, spec.d, 2e3, 20e3, tail);
    const double rel = graph::system_reliability(spec.n, spec.d, fm);
    row("  n=%-5zu d=%-3zu  FD accuracy %.9f  x  ρ_G %.9f  = %.9f", spec.n,
        spec.d, fd, rel, fd * rel);
  }
  print_note("increasing Δto and the heartbeat frequency both push the "
             "accuracy toward 1 (§3.2).");
  return 0;
}
