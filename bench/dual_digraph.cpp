// Dual-digraph fast path (AllConcur+): failure-free rounds/s and p50
// latency of the untracked G_U fast path vs the always-reliable G_R
// engine, plus a measured fallback-cost column, reproducing the paper
// family's claim that racing an unreliable digraph against the reliable
// one buys large failure-free speedups.
//
//   1. round engine — in-process n-engine cluster, allocations per round
//      (operator-new counted in this TU): the fast path must do zero
//      tracking work (EngineStats::tracking_resets == 0) and no more
//      heap churn than the classic pooled engine.
//   2. sim fabric — TCP-over-IB LogP model at n in {8,16,32}: rounds/s
//      and p50 own-broadcast->deliver latency, fast vs always-reliable,
//      and a forced-fallback column (every round spuriously re-executed
//      over G_R — the measured cost of a fallback transition). The
//      >= 1.3x speedup at n=32 is asserted (virtual time, deterministic).
//   3. TCP localhost — real sockets over both overlays' links, wall
//      clock; reported, not asserted.
//
//   $ ./dual_digraph              # full run
//   $ ./dual_digraph --smoke      # ~2 s shape check (same assertions)
//   $ ./dual_digraph --json=out.json
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <new>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/tcp_transport.hpp"
#include "plus/plus.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (this TU only): measures heap churn per round.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t a =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, a, size) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace allconcur {
namespace {

using core::Engine;
using core::FrameRef;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// 1. Round engine: allocations and rounds/s, dual vs classic, in-process.
// ---------------------------------------------------------------------------

struct EngineRun {
  double allocs_per_round_per_node = 0;
  double rounds_per_sec = 0;
  std::uint64_t tracking_resets = 0;
  std::uint64_t fallback_rounds = 0;
};

EngineRun bench_engines(bool dual, std::size_t n, std::size_t payload_bytes,
                        std::size_t rounds) {
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  const core::GraphBuilder builder = core::make_default_graph_builder();
  core::Engine::Options opts;
  if (dual) opts.fast_builder = plus::make_unreliable_builder();

  std::deque<std::tuple<NodeId, NodeId, FrameRef>> queue;
  std::vector<std::unique_ptr<Engine>> engines;
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    Engine::Hooks hooks;
    hooks.send = [&queue, id](NodeId dst, const FrameRef& f) {
      queue.emplace_back(id, dst, f);
    };
    hooks.deliver = [&delivered](const core::RoundResult&) { ++delivered; };
    engines.push_back(std::make_unique<Engine>(
        id, core::View(members, builder, opts.fast_builder), builder, hooks,
        opts));
  }

  const auto run_round = [&] {
    for (auto& e : engines) {
      e->submit_opaque(payload_bytes);
      e->broadcast_now();
    }
    while (!queue.empty()) {
      auto [src, dst, f] = queue.front();
      queue.pop_front();
      engines[dst]->on_message(src, f->msg());
    }
  };

  for (int i = 0; i < 3; ++i) run_round();  // warmup fills every pool

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) run_round();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs0;

  EngineRun out;
  out.allocs_per_round_per_node = static_cast<double>(allocs) /
                                  static_cast<double>(rounds) /
                                  static_cast<double>(n);
  out.rounds_per_sec = static_cast<double>(rounds) / secs;
  for (const auto& e : engines) {
    out.tracking_resets += e->stats().tracking_resets;
    out.fallback_rounds += e->stats().fallback_rounds;
  }
  return out;
}

// ---------------------------------------------------------------------------
// 2. Sim fabric: rounds/s + p50 latency, fast vs reliable vs forced-fallback.
// ---------------------------------------------------------------------------

enum class SimMode { kReliable, kFast, kForcedFallback };

struct SimRun {
  double rounds_per_sec = 0;
  double p50_us = 0;
  std::uint64_t rounds = 0;
  core::EngineStats stats;
};

SimRun run_sim(SimMode mode, std::size_t n, std::size_t payload_bytes,
               Round rounds, TimeNs deadline) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.fabric = sim::FabricParams::tcp_ib();
  if (mode != SimMode::kReliable) {
    opt.fast_builder = plus::make_unreliable_builder();
    // Forced runs inject their fallbacks explicitly; the watchdog stays
    // out of the way in both dual variants (virtual rounds are ~us).
    opt.fallback_timeout = 0;
  }
  api::SimCluster cluster(opt);

  const Round warmup = 3;
  Summary latency_us;
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (who == 0 && r.round >= warmup && r.round < rounds) {
      if (const auto started = cluster.broadcast_time(0, r.round)) {
        latency_us.add(to_us(t - *started));
      }
    }
    if (r.round + 1 < rounds) {
      cluster.submit_opaque(who, payload_bytes);
      cluster.broadcast_now(who);
      // Forced-fallback column: node 0 spuriously times every round out
      // the moment it starts — the full measured cost of re-executing
      // over G_R after the fast attempt already began.
      if (mode == SimMode::kForcedFallback && who == 0) {
        cluster.force_fallback(0);
      }
    }
  };
  for (NodeId id : cluster.live_nodes()) {
    cluster.submit_opaque(id, payload_bytes);
  }
  cluster.broadcast_all_now();
  if (mode == SimMode::kForcedFallback) cluster.force_fallback(0);

  SimRun out;
  if (!cluster.run_until_round_done(rounds - 1, deadline)) {
    std::fprintf(stderr, "FAIL: sim run (mode %d, n=%zu) stalled\n",
                 static_cast<int>(mode), n);
    std::exit(1);
  }
  out.rounds = rounds;
  out.rounds_per_sec =
      static_cast<double>(rounds) / to_sec(cluster.sim().now());
  if (latency_us.count() > 0) out.p50_us = latency_us.quantile(0.5);
  out.stats = cluster.aggregate_stats();
  return out;
}

// ---------------------------------------------------------------------------
// 3. TCP localhost: fast rounds over real sockets.
// ---------------------------------------------------------------------------

double run_tcp(std::size_t n, DurationNs horizon) {
  const auto base_port = bench::draw_port_base(17);
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  std::vector<std::unique_ptr<net::TcpNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    net::TcpNodeOptions opt;
    opt.self = static_cast<NodeId>(i);
    opt.members = members;
    opt.base_port = base_port;
    opt.fast_builder = plus::make_unreliable_builder();
    opt.fallback_timeout = ms(200);
    nodes.push_back(std::make_unique<net::TcpNode>(
        opt, [](const core::RoundResult&) {}));
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node->run(); });
  }
  for (auto& node : nodes) node->wait_connected(sec(10));

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::nanoseconds(horizon);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& node : nodes) {
      node->submit(core::Request::of_data({0x42}));
      node->broadcast_now();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double secs = seconds_since(t0);
  const double rps =
      static_cast<double>(nodes[0]->rounds_completed()) / secs;
  for (auto& node : nodes) node->stop();
  for (auto& t : threads) t.join();
  return rps;
}

}  // namespace
}  // namespace allconcur

int main(int argc, char** argv) {
  using namespace allconcur;
  const Flags flags(argc, argv);
  const bool smoke = bench::smoke_mode(flags);

  const std::size_t payload = static_cast<std::size_t>(
      flags.get_int("payload-bytes", 64));
  const Round rounds = static_cast<Round>(
      flags.get_int("rounds", smoke ? 40 : 300));
  const TimeNs deadline = sec(smoke ? 60 : 600);

  bench::print_title("Dual-digraph fast path (AllConcur+)");
  bench::print_note(
      "G_U = binary de Bruijn (degree <= 2, untracked bitmap completion); "
      "G_R = GS(n,d) Table 3 (full tracking); fallback = spurious "
      "re-execution of every round over G_R");

  // --- 1. engine allocations ---
  bench::print_title("Round engine: heap churn per round (in-process)");
  const std::size_t alloc_n = smoke ? 8 : 16;
  const std::size_t alloc_rounds = smoke ? 50 : 400;
  const auto classic_run =
      bench_engines(false, alloc_n, 1024, alloc_rounds);
  const auto dual_run = bench_engines(true, alloc_n, 1024, alloc_rounds);
  bench::row("%10s %22s %14s %16s", "variant", "allocs/round/node",
             "rounds/s", "tracking resets");
  bench::row("%10s %22.1f %14.0f %16llu", "reliable",
             classic_run.allocs_per_round_per_node,
             classic_run.rounds_per_sec,
             static_cast<unsigned long long>(classic_run.tracking_resets));
  bench::row("%10s %22.1f %14.0f %16llu", "fast",
             dual_run.allocs_per_round_per_node, dual_run.rounds_per_sec,
             static_cast<unsigned long long>(dual_run.tracking_resets));

  // --- 2. sim fabric ---
  bench::print_title("Sim fabric (TCP-IB model): fast vs always-reliable");
  bench::row("%6s %14s %14s %9s %12s %12s %14s %12s", "n", "fast rnd/s",
             "reliable r/s", "speedup", "fast p50us", "rel p50us",
             "fallback r/s", "fb cost");
  struct Point {
    std::size_t n;
    SimRun fast, reliable, forced;
    double speedup, fallback_cost;
  };
  std::vector<Point> points;
  const std::vector<std::int64_t> sizes =
      flags.get_int_list("sizes", {8, 16, 32});
  for (const std::int64_t n_i : sizes) {
    const auto n = static_cast<std::size_t>(n_i);
    Point p;
    p.n = n;
    p.fast = run_sim(SimMode::kFast, n, payload, rounds, deadline);
    p.reliable = run_sim(SimMode::kReliable, n, payload, rounds, deadline);
    p.forced =
        run_sim(SimMode::kForcedFallback, n, payload, rounds, deadline);
    p.speedup = p.fast.rounds_per_sec / p.reliable.rounds_per_sec;
    p.fallback_cost = p.fast.rounds_per_sec / p.forced.rounds_per_sec;
    points.push_back(p);
    bench::row("%6zu %14.0f %14.0f %8.2fx %12.1f %12.1f %14.0f %11.2fx",
               p.n, p.fast.rounds_per_sec, p.reliable.rounds_per_sec,
               p.speedup, p.fast.p50_us, p.reliable.p50_us,
               p.forced.rounds_per_sec, p.fallback_cost);
  }
  bench::print_note(
      "fb cost = fast rounds/s over forced-fallback rounds/s (every round "
      "spuriously re-executed over G_R after the fast attempt started)");

  // --- 3. TCP localhost ---
  bench::print_title("TCP localhost (real sockets, both overlays dialed)");
  const double tcp_rps = run_tcp(smoke ? 3 : 5, ms(smoke ? 250 : 1500));
  bench::row("%6s %16s", "n", "fast rounds/s");
  bench::row("%6d %16.0f", smoke ? 3 : 5, tcp_rps);

  // --- JSON ---
  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"dual_digraph\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"alloc\": {\"reliable_allocs_per_round_per_node\": "
                 "%.1f, \"fast_allocs_per_round_per_node\": %.1f},\n"
                 "  \"sim\": {\n    \"payload_bytes\": %zu,\n"
                 "    \"points\": [",
                 smoke ? "true" : "false",
                 classic_run.allocs_per_round_per_node,
                 dual_run.allocs_per_round_per_node, payload);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::fprintf(
          f,
          "%s\n      {\"n\": %zu, \"fast_rounds_per_sec\": %.0f, "
          "\"reliable_rounds_per_sec\": %.0f, \"speedup\": %.2f, "
          "\"fast_p50_us\": %.1f, \"reliable_p50_us\": %.1f, "
          "\"forced_fallback_rounds_per_sec\": %.0f, "
          "\"fallback_cost_x\": %.2f}",
          i ? "," : "", p.n, p.fast.rounds_per_sec,
          p.reliable.rounds_per_sec, p.speedup, p.fast.p50_us,
          p.reliable.p50_us, p.forced.rounds_per_sec, p.fallback_cost);
    }
    std::fprintf(f,
                 "\n    ]\n  },\n"
                 "  \"tcp\": {\"fast_rounds_per_sec\": %.0f}",
                 tcp_rps);
    bench::write_metrics_key(
        f, points.empty()
               ? std::string()
               : bench::metrics_snapshot_json(points.back().fast.stats));
    std::fprintf(f, "}\n");
    std::fclose(f);
    bench::print_note("wrote " + json_path);
  }

  // --- Acceptance gates (virtual-time/deterministic: hard failures) ---
  int rc = 0;
  for (const Point& p : points) {
    // Zero tracking work on the failure-free fast path, at every size.
    if (p.fast.stats.tracking_resets != 0 ||
        p.fast.stats.fallback_rounds != 0) {
      std::fprintf(stderr,
                   "FAIL: n=%zu fast run did tracking work (%llu resets, "
                   "%llu fallback rounds) — the fast path is not fast\n",
                   p.n,
                   static_cast<unsigned long long>(
                       p.fast.stats.tracking_resets),
                   static_cast<unsigned long long>(
                       p.fast.stats.fallback_rounds));
      rc = 1;
    }
    if (p.n == 32 && p.speedup < 1.3) {
      std::fprintf(stderr,
                   "FAIL: n=32 fast path only %.2fx of always-reliable "
                   "(< 1.3x)\n",
                   p.speedup);
      rc = 1;
    }
    // The forced-fallback run must terminate with every round delivered
    // (checked inside run_sim) and must actually have fallen back.
    if (p.forced.stats.fallback_rounds == 0) {
      std::fprintf(stderr,
                   "FAIL: n=%zu forced-fallback run never fell back\n",
                   p.n);
      rc = 1;
    }
  }
  if (dual_run.tracking_resets != 0) {
    std::fprintf(stderr,
                 "FAIL: in-process fast engines reset %llu tracking "
                 "digraphs (expected 0)\n",
                 static_cast<unsigned long long>(dual_run.tracking_resets));
    rc = 1;
  }
  // Deterministic alloc budget: the fast path must not out-allocate the
  // pooled classic engine (it does strictly less work per round).
  if (dual_run.allocs_per_round_per_node >
      classic_run.allocs_per_round_per_node + 1.0) {
    std::fprintf(stderr,
                 "FAIL: fast path allocates %.1f/round/node vs classic "
                 "%.1f — retention/fallback state leaked into the "
                 "steady-state round loop\n",
                 dual_run.allocs_per_round_per_node,
                 classic_run.allocs_per_round_per_node);
    rc = 1;
  }
  return rc;
}
