// Reproduces Fig. 6: agreement latency for a single 64-byte request as a
// function of system size, for AllConcur-IBV (Fig. 6a) and AllConcur-TCP
// (Fig. 6b), next to the paper's LogP work and depth model curves.
//
// One server A-broadcasts the request; everyone else answers with empty
// messages (not the intended use case — it isolates the latency paths).
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "core/logp_model.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

void run_series(const char* name, const sim::FabricParams& fabric,
                const std::vector<std::int64_t>& sizes) {
  print_title(std::string("Fig. 6 (") + name +
              "): single 64-byte request agreement latency");
  row("%6s %4s %4s %14s %14s %14s %14s", "n", "d", "D", "median[us]",
      "p95[us]", "work model", "depth model");
  const core::LogP logp{static_cast<double>(fabric.latency),
                        static_cast<double>(fabric.overhead)};
  for (std::int64_t n_signed : sizes) {
    const std::size_t n = static_cast<std::size_t>(n_signed);
    const std::size_t d = graph::paper_gs_degree(n);
    const auto g = graph::make_gs_digraph(n, d);
    const auto diam = graph::diameter(g).value_or(0);

    api::ClusterOptions opt;
    opt.n = n;
    opt.fabric = fabric;
    api::SimCluster cluster(opt);
    Summary latency;
    cluster.on_deliver = [&](NodeId, const core::RoundResult&, TimeNs t) {
      latency.add(to_us(t));
    };
    cluster.submit(0, core::Request::of_data(std::vector<std::uint8_t>(64)));
    cluster.broadcast_now(0);  // everyone else reacts with empty messages
    if (!cluster.run_until_round_done(0, sec(10))) {
      row("%6zu  did not complete", n);
      continue;
    }
    row("%6zu %4zu %4zu %14.2f %14.2f %14.2f %14.2f", n, d, diam,
        latency.median(), latency.quantile(0.95),
        core::logp_work_bound_ns(n, d, logp) / 1e3,
        core::logp_depth_ns(d, diam, logp) / 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::vector<std::int64_t> default_sizes =
      smoke_mode(flags) ? std::vector<std::int64_t>{6, 8, 11, 16}
                        : std::vector<std::int64_t>{6, 8, 11, 16, 22,
                                                    32, 45, 64, 90};
  const auto sizes = flags.get_int_list("sizes", default_sizes);
  run_series("IBV, IB-hsw", sim::FabricParams::infiniband(), sizes);
  run_series("TCP, IB-hsw", sim::FabricParams::tcp_ib(), sizes);
  print_note("paper shape: latency tracks the depth model at small n and "
             "bends toward the work model as n grows; TCP ~3-10x IBV.");
  return 0;
}
