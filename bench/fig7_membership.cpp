// Reproduces Fig. 7: agreement throughput during membership changes —
// servers failing (F) and joining (J) — for a 32-server deployment where
// every server generates 10,000 64-byte requests per second, with a
// heartbeat failure detector (Δhb = 10 ms, Δto = 100 ms).
//
// The paper's shape: a failure causes ~Δto of unavailability, followed by
// a throughput spike from the accumulated requests; joins cause a shorter
// unavailability; the system then stabilizes at a slightly different
// level. The event script (scaled to a 12 s run): F, J, FF, JJ, FFF, JJJ.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/flags.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("n", smoke ? 16 : 32));
  const double rate = flags.get_double("rate", 10000.0);  // req/s/server
  const std::size_t req_bytes = 64;
  const DurationNs pace = ms(flags.get_double("pace-ms", 5.0));
  const DurationNs horizon =
      sec(flags.get_double("seconds", smoke ? 1.5 : 12.0));
  const DurationNs bin = ms(100);

  api::ClusterOptions opt;
  opt.n = n;
  opt.fabric = sim::FabricParams::tcp_ib();
  opt.heartbeat_fd = true;
  opt.fd_params.period = ms(10);
  opt.fd_params.timeout = ms(100);
  opt.max_joins = 8;
  api::SimCluster cluster(opt);

  // Node 0 is the observer: all servers agree on the same sequence, so its
  // deliveries define the agreement throughput.
  std::map<std::int64_t, double> bins;  // bin index -> requests agreed
  std::vector<TimeNs> last_pack(n + opt.max_joins, 0);
  std::vector<TimeNs> last_start(n + opt.max_joins, 0);

  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (who == 0) {
      double requests = 0;
      for (const auto& d : r.deliveries) {
        requests += static_cast<double>(d.bytes) /
                    static_cast<double>(req_bytes);
      }
      bins[t / bin] += requests;
    }
    // Fluid request accumulation, then pace the next round.
    const double accumulated = rate * static_cast<double>(req_bytes) *
                               static_cast<double>(t - last_pack[who]) / 1e9;
    last_pack[who] = t;
    const std::size_t bytes =
        (static_cast<std::size_t>(accumulated) / req_bytes) * req_bytes;
    // Structured (not size-only) so that join requests can share batches.
    if (bytes > 0) {
      cluster.submit(who, core::Request::of_data(
                              std::vector<std::uint8_t>(bytes)));
    }
    const TimeNs next = std::max(t, last_start[who] + pace);
    last_start[who] = next;
    cluster.sim().schedule_at(next, [&cluster, who] {
      if (cluster.alive(who)) cluster.engine(who).broadcast_now();
    });
  };

  // Event script (F = fail, J = join), scaled across the horizon.
  struct Event {
    double at_s;
    char kind;
    std::size_t count;
  };
  const std::vector<Event> script = {{1.5, 'F', 1}, {3.0, 'J', 1},
                                     {4.5, 'F', 2}, {6.0, 'J', 2},
                                     {7.5, 'F', 3}, {9.0, 'J', 3}};
  // The script is written for the default 12 s horizon; compress it
  // proportionally when --seconds (or --smoke) shortens the run so every
  // event still fires. Never stretch: longer runs keep the schedule and
  // gain a steady-state tail.
  const double event_scale = std::min(to_sec(horizon) / 12.0, 1.0);
  NodeId next_victim = 1;  // never crash the observer
  for (const auto& ev : script) {
    for (std::size_t i = 0; i < ev.count; ++i) {
      const TimeNs at =
          sec(ev.at_s * event_scale) + ms(20.0 * static_cast<double>(i));
      if (ev.kind == 'F') {
        cluster.crash_at(next_victim++, at);
      } else {
        cluster.schedule_join(at, /*sponsor=*/0);
      }
    }
  }

  cluster.broadcast_all_now();
  cluster.run_for(horizon);

  print_title("Fig. 7: agreement throughput under membership changes");
  char note[160];
  std::snprintf(note, sizeof(note),
                "n=%zu, %.0fk 64B req/s/server, heartbeat FD Δhb=10ms "
                "Δto=100ms",
                n, rate / 1e3);
  print_note(note);
  std::snprintf(note, sizeof(note),
                "events (times x%.2f): F@1.5s J@3s FF@4.5s JJ@6s FFF@7.5s "
                "JJJ@9s",
                event_scale);
  print_note(note);
  row("%10s %16s", "time[s]", "throughput[req/s]");
  const std::int64_t nbins = horizon / bin;
  for (std::int64_t b = 0; b < nbins; ++b) {
    const double reqs = bins.count(b) ? bins[b] : 0.0;
    row("%10.1f %16.0f", static_cast<double>(b) * to_sec(bin),
        reqs / to_sec(bin));
  }
  print_note("expect ~Δto dips at each F followed by spikes (accumulated "
             "requests), shorter dips at each J — the Fig. 7 shape.");
  return 0;
}
