// SMR KV throughput: applied-ops/s of the replicated KV store vs
// cluster size and value size, on the simulated fabric.
//
// Workload: every node hosts one client session; each round every
// client packs `cmds` puts into its node's broadcast, rounds run
// back-to-back (the §5 batching regime, but with real KV commands
// through the full SMR stack: envelopes, dedup, apply, divergence
// hash). Reported ops/s are commands *applied on every replica* per
// simulated second — agreement + application, not just agreement.
//
//   $ ./smr_kv_throughput            # full sweep
//   $ ./smr_kv_throughput --smoke    # ~1 s shape check
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "smr/kv_cluster.hpp"

using namespace allconcur;

namespace {

struct SmrRunResult {
  double ops_per_sec = 0.0;
  double agreement_mbps = 0.0;
  bool completed = false;
  bool converged = false;
  std::string metrics_json;  ///< end-of-run unified metrics snapshot
};

SmrRunResult run_smr_kv(std::size_t n, const sim::FabricParams& fabric,
                        std::size_t value_bytes, std::size_t cmds_per_round,
                        std::size_t rounds) {
  smr::SimKvOptions opt;
  opt.cluster.n = n;
  opt.cluster.fabric = fabric;
  smr::SimKvCluster cluster(opt);

  std::vector<smr::KvSession> sessions;
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sessions.push_back(cluster.make_session());
  }
  const smr::Bytes value(value_bytes, 0x61);
  const auto load = [&](NodeId who) {
    for (std::size_t k = 0; k < cmds_per_round; ++k) {
      const auto key =
          smr::to_bytes("key-" + std::to_string((who + k * 131) % 256));
      cluster.submit(who, sessions[who], smr::Command::put(key, value));
    }
  };

  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs) {
    if (r.round + 1 < rounds) {
      load(who);
      cluster.cluster().broadcast_now(who);
    }
  };
  for (NodeId id : cluster.cluster().live_nodes()) load(id);
  cluster.cluster().broadcast_all_now();

  SmrRunResult out;
  out.completed = cluster.cluster().run_until_round_done(
      rounds - 1, sec(600));
  out.metrics_json = cluster.cluster().metrics_json();
  if (!out.completed) return out;
  out.converged = cluster.converged();
  const double secs = to_sec(cluster.sim().now());
  const double applied =
      static_cast<double>(cluster.replica(0).commands_applied());
  out.ops_per_sec = applied / secs;
  out.agreement_mbps =
      applied * static_cast<double>(value_bytes) / secs / 1e6;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = bench::smoke_mode(flags);

  bench::print_title("SMR replicated KV: applied throughput vs n");
  bench::print_note(
      "ops/s = commands applied on every replica per simulated second "
      "(agreement + SMR apply), InfiniBand fabric, 4 cmds/client/round");

  const std::vector<std::int64_t> sizes =
      flags.get_int_list("n", smoke ? std::vector<std::int64_t>{5, 8}
                                    : std::vector<std::int64_t>{8, 16, 32});
  const std::vector<std::int64_t> value_sizes = flags.get_int_list(
      "value-bytes", smoke ? std::vector<std::int64_t>{16}
                           : std::vector<std::int64_t>{16, 256, 1024});
  const std::size_t rounds =
      static_cast<std::size_t>(flags.get_int("rounds", smoke ? 10 : 60));
  const std::size_t cmds =
      static_cast<std::size_t>(flags.get_int("cmds", 4));

  bench::row("%4s %12s %14s %14s %10s", "n", "value B", "ops/s",
             "MB/s agreed", "replicas");
  bool all_ok = true;
  std::vector<std::string> json_rows;
  std::string last_metrics_json;
  for (const std::int64_t n : sizes) {
    for (const std::int64_t vb : value_sizes) {
      const auto r = run_smr_kv(static_cast<std::size_t>(n),
                                sim::FabricParams::infiniband(),
                                static_cast<std::size_t>(vb), cmds, rounds);
      if (!r.metrics_json.empty()) last_metrics_json = r.metrics_json;
      if (!r.completed) {
        bench::row("%4lld %12lld %14s", static_cast<long long>(n),
                   static_cast<long long>(vb), "stalled");
        all_ok = false;
        continue;
      }
      all_ok &= r.converged;
      bench::row("%4lld %12lld %14.0f %14.2f %10s",
                 static_cast<long long>(n), static_cast<long long>(vb),
                 r.ops_per_sec, r.agreement_mbps,
                 r.converged ? "converged" : "DIVERGED");
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    {\"n\": %lld, \"value_bytes\": %lld, "
                    "\"ops_per_sec\": %.0f, \"agreement_mbps\": %.2f, "
                    "\"converged\": %s}",
                    static_cast<long long>(n), static_cast<long long>(vb),
                    r.ops_per_sec, r.agreement_mbps,
                    r.converged ? "true" : "false");
      json_rows.emplace_back(buf);
    }
  }
  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"smr_kv_throughput\",\n  \"smoke\": %s,"
                 "\n  \"rows\": [\n", smoke ? "true" : "false");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(f, "%s%s\n", json_rows[i].c_str(),
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
    bench::write_metrics_key(f, last_metrics_json);
    std::fprintf(f, "}\n");
    std::fclose(f);
    bench::print_note("wrote " + json_path);
  }
  if (!all_ok) {
    std::fprintf(stderr, "bench failed: stall or replica divergence\n");
    return 1;
  }
  return 0;
}
