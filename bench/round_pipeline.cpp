// Round pipelining: rounds/s and per-round latency vs the window size W,
// with and without an induced slow node.
//
// The paper's performance model (§5, Fig. 8) assumes rounds are not
// globally synchronized: a server that finished round R immediately
// starts R+1 while slower peers are still relaying R, so the steady-state
// rate is bound by per-round message work, not by round latency. The
// windowed engine makes that real: a producer paced faster than the round
// latency keeps up to W rounds in flight, and one slow server (the convoy
// that serializes a stop-and-wait deployment) no longer gates throughput.
//
//   * sim fabric — deterministic virtual time, TCP-over-IB LogP model,
//     one server's traffic delayed by --skew-us (the induced skew). The
//     ≥ 1.5x W=4 vs W=1 rounds/s claim and the p99-no-worse-without-skew
//     claim are asserted here (virtual time makes them machine-stable).
//   * TCP localhost — real sockets, epoll event loops, wall-clock paced
//     producers; scheduling skew only (reported, not asserted).
//
//   $ ./round_pipeline              # full run
//   $ ./round_pipeline --smoke      # ~2 s shape check (same assertions)
//   $ ./round_pipeline --json=out.json
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/tcp_transport.hpp"

namespace allconcur {
namespace {

// ---------------------------------------------------------------------------
// Simulated fabric: paced producers on every node, one skewed sender.
// ---------------------------------------------------------------------------

struct SimPoint {
  std::size_t window = 1;
  double rounds_per_sec = 0;  ///< delivered rounds/s of virtual time
  double p50_us = 0;          ///< per-round latency, own broadcast -> deliver
  double p99_us = 0;
  std::uint64_t rounds = 0;
  double wall_secs = 0;  ///< real time the run took (the virtual-time
                         ///< rate is identical with/without tracing, so
                         ///< the obs overhead gate compares wall clock)
};

SimPoint run_sim(std::size_t n, std::size_t window, DurationNs skew,
                 DurationNs pace, DurationNs horizon,
                 bool flight_recorder = true,
                 std::string* metrics_out = nullptr) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.window = window;
  opt.fabric = sim::FabricParams::tcp_ib();
  opt.flight_recorder = flight_recorder;
  api::SimCluster cluster(opt);
  if (skew > 0) cluster.set_send_delay(1, skew);

  // Warmup cut: latency samples only after the pipeline filled.
  const Round warmup = 2 * window + 4;
  Summary latency_us;
  std::uint64_t delivered = 0;
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (who != 0) return;
    ++delivered;
    if (r.round < warmup) return;
    if (const auto started = cluster.broadcast_time(0, r.round)) {
      latency_us.add(to_us(t - *started));
    }
  };

  // Paced producer per node: submit a small payload and nudge the engine
  // every `pace`. With W=1 the nudge no-ops while a round is in flight
  // (stop-and-wait); with W>1 up to W rounds overlap.
  std::function<void(NodeId)> tick = [&](NodeId id) {
    cluster.sim().schedule(pace, [&, id] {
      if (cluster.alive(id)) {
        cluster.submit_opaque(id, 64);
        cluster.engine(id).broadcast_now();
      }
      tick(id);
    });
  };
  for (NodeId id : cluster.live_nodes()) tick(id);
  const auto wall0 = std::chrono::steady_clock::now();
  cluster.run_for(horizon);
  const double wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (metrics_out != nullptr) *metrics_out = cluster.metrics_json();

  SimPoint out;
  out.window = window;
  out.wall_secs = wall_secs;
  out.rounds = delivered;
  out.rounds_per_sec = static_cast<double>(delivered) / to_sec(horizon);
  if (latency_us.count() > 0) {
    out.p50_us = latency_us.quantile(0.5);
    out.p99_us = latency_us.quantile(0.99);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TCP localhost: real TcpNodes, wall-clock paced producer.
// ---------------------------------------------------------------------------

struct TcpPoint {
  std::size_t window = 1;
  double rounds_per_sec = 0;
  std::uint64_t rounds = 0;
};

TcpPoint run_tcp(std::size_t n, std::size_t window, DurationNs pace,
                 DurationNs horizon, DurationNs skew = 0) {
  const auto base_port =
      bench::draw_port_base(window + static_cast<std::uint64_t>(skew));
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  std::vector<std::unique_ptr<net::TcpNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    net::TcpNodeOptions opt;
    opt.self = static_cast<NodeId>(i);
    opt.members = members;
    opt.base_port = base_port;
    opt.window = window;
    // netem-style induced skew on one real socket sender — the TCP
    // mirror of SimCluster::set_send_delay, so the convoy claim is
    // testable on actual sockets instead of scheduler noise.
    if (skew > 0 && i == 1) opt.send_delay = skew;
    nodes.push_back(std::make_unique<net::TcpNode>(
        opt, [](const core::RoundResult&) {}));
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node->run(); });
  }
  for (auto& node : nodes) node->wait_connected(sec(10));

  // Paced producer: every node submits and nudges each tick. With W=1
  // the nudge no-ops while the round is in flight; with W>1 the pipeline
  // keeps several rounds on the wire.
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::nanoseconds(horizon);
  const std::uint64_t before = nodes[0]->rounds_completed();
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& node : nodes) {
      node->submit(core::Request::of_data({0x42}));
      node->broadcast_now();
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(pace));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t rounds = nodes[0]->rounds_completed() - before;
  for (auto& node : nodes) node->stop();
  for (auto& t : threads) t.join();

  TcpPoint out;
  out.window = window;
  out.rounds = rounds;
  out.rounds_per_sec = static_cast<double>(rounds) / secs;
  return out;
}

}  // namespace
}  // namespace allconcur

int main(int argc, char** argv) {
  using namespace allconcur;
  const Flags flags(argc, argv);
  const bool smoke = bench::smoke_mode(flags);

  const std::size_t n = static_cast<std::size_t>(
      flags.get_int("n", smoke ? 8 : 16));
  // The producer paces at (just above) the cluster's per-round message
  // work, so the pipeline hides *latency* instead of masking overload: a
  // window cannot beat the work bound, and overdriving it would only
  // queue rounds and inflate tail latency at every W.
  const DurationNs pace = us(flags.get_int("pace-us", smoke ? 100 : 250));
  const DurationNs skew = us(flags.get_int("skew-us", 3 * pace / 1000));
  const DurationNs horizon = ms(smoke ? 80 : 500);
  const std::vector<std::int64_t> windows =
      flags.get_int_list("windows", {1, 2, 4, 8});

  bench::print_title("Round pipelining (sim fabric, TCP-IB model)");
  bench::print_note(
      "paced producer per server (pace " + std::to_string(pace / 1000) +
      "us); skewed runs delay every message of one server by " +
      std::to_string(skew / 1000) + "us; latency = own broadcast -> "
      "A-delivery at server 0");

  std::vector<SimPoint> sim_skewed, sim_clean;
  bench::row("%8s %6s %16s %12s %12s %10s", "variant", "W", "rounds/s",
             "p50 us", "p99 us", "rounds");
  for (const auto w : windows) {
    const auto p = run_sim(n, static_cast<std::size_t>(w), skew, pace,
                           horizon);
    sim_skewed.push_back(p);
    bench::row("%8s %6zu %16.0f %12.1f %12.1f %10llu", "skew", p.window,
               p.rounds_per_sec, p.p50_us, p.p99_us,
               static_cast<unsigned long long>(p.rounds));
  }
  std::string sim_metrics_json;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto p = run_sim(n, static_cast<std::size_t>(windows[i]), 0, pace,
                           horizon, /*flight_recorder=*/true,
                           i + 1 == windows.size() ? &sim_metrics_json
                                                   : nullptr);
    sim_clean.push_back(p);
    bench::row("%8s %6zu %16.0f %12.1f %12.1f %10llu", "no-skew", p.window,
               p.rounds_per_sec, p.p50_us, p.p99_us,
               static_cast<unsigned long long>(p.rounds));
  }

  // The acceptance gates compare W=4 against W=1; a custom --windows list
  // may omit either, in which case the gates are skipped (with a note)
  // instead of dereferencing a missing entry.
  const auto find_w = [](const std::vector<SimPoint>& v,
                         std::size_t w) -> const SimPoint* {
    const auto it =
        std::find_if(v.begin(), v.end(),
                     [w](const SimPoint& p) { return p.window == w; });
    return it == v.end() ? nullptr : &*it;
  };
  const SimPoint* skew_w1 = find_w(sim_skewed, 1);
  const SimPoint* skew_w4 = find_w(sim_skewed, 4);
  const bool gated = skew_w1 != nullptr && skew_w4 != nullptr;
  const double speedup_skew =
      gated ? skew_w4->rounds_per_sec / skew_w1->rounds_per_sec : 0.0;
  if (gated) {
    bench::print_note("skewed W=4 vs W=1 rounds/s: " +
                      std::to_string(speedup_skew) + "x");
  } else {
    bench::print_note("--windows omits 1 and/or 4: speedup/p99 gates "
                      "skipped");
  }

  // ---- Observability overhead gate (tentpole acceptance: <= 5%) ----
  // Virtual-time rates are identical with tracing on or off by
  // construction, so this gate compares the WALL CLOCK of identical W=4
  // workloads. Off/on runs alternate back-to-back and the gate takes the
  // median of the per-pair ratios (same estimator as bench/wire_path.cpp:
  // machine throughput drifts too much for independent best-of runs to
  // resolve a small effect).
  bench::print_title("Observability: flight-recorder overhead (wall clock)");
  // Each timed run needs tens of ms of wall time or scheduler jitter
  // swamps the effect being measured.
  const DurationNs obs_horizon = ms(smoke ? 80 : 200);
  const std::size_t obs_pairs = smoke ? 10 : 12;
  Summary obs_ratios;
  double obs_best_off = 0.0, obs_best_on = 0.0;  // min wall secs seen
  // Discarded warmup: the first run pays allocator growth and page faults
  // that would bias whichever configuration goes first.
  (void)run_sim(n, 4, 0, pace, obs_horizon, false);
  for (std::size_t pair = 0; pair < obs_pairs; ++pair) {
    SimPoint off, on;
    if (pair % 2 == 0) {
      off = run_sim(n, 4, 0, pace, obs_horizon, false);
      on = run_sim(n, 4, 0, pace, obs_horizon, true);
    } else {
      on = run_sim(n, 4, 0, pace, obs_horizon, true);
      off = run_sim(n, 4, 0, pace, obs_horizon, false);
    }
    obs_ratios.add(on.wall_secs / off.wall_secs);
    if (obs_best_off == 0.0 || off.wall_secs < obs_best_off) {
      obs_best_off = off.wall_secs;
    }
    if (obs_best_on == 0.0 || on.wall_secs < obs_best_on) {
      obs_best_on = on.wall_secs;
    }
  }
  const double obs_overhead_pct = 100.0 * (obs_ratios.median() - 1.0);
  bench::row("%6s %16s %16s %12s", "W", "off wall ms", "on wall ms",
             "overhead");
  bench::row("%6d %16.1f %16.1f %11.1f%%", 4, 1e3 * obs_best_off,
             1e3 * obs_best_on, obs_overhead_pct);

  bench::print_title("Round pipelining (TCP localhost, real sockets)");
  bench::print_note("scheduling skew only; wall clock — reported, not "
                    "asserted");
  std::vector<TcpPoint> tcp_points;
  bench::row("%6s %16s %10s", "W", "rounds/s", "rounds");
  for (const std::size_t w : {std::size_t{1}, std::size_t{4}}) {
    const auto p = run_tcp(smoke ? 3 : 5, w, us(smoke ? 200 : 100),
                           ms(smoke ? 250 : 1500));
    tcp_points.push_back(p);
    bench::row("%6zu %16.0f %10llu", p.window, p.rounds_per_sec,
               static_cast<unsigned long long>(p.rounds));
  }

  // Real induced skew: one node's sends held back by the netem-style
  // TcpNodeOptions::send_delay knob. The convoy is now physical (bytes
  // really arrive late), so the W=4-hides-the-slow-sender claim is
  // asserted on actual sockets too — with a generous margin, since the
  // measurement is still wall clock.
  const DurationNs tcp_skew = us(flags.get_int("tcp-skew-us", 3000));
  bench::print_title("Round pipelining (TCP localhost, induced skew)");
  bench::print_note("node 1 send_delay = " +
                    std::to_string(tcp_skew / 1000) +
                    "us (TcpNodeOptions::send_delay); W=4 >= 1.2x W=1 "
                    "asserted");
  std::vector<TcpPoint> tcp_skewed;
  bench::row("%6s %16s %10s", "W", "rounds/s", "rounds");
  for (const std::size_t w : {std::size_t{1}, std::size_t{4}}) {
    const auto p = run_tcp(smoke ? 3 : 5, w, us(smoke ? 200 : 100),
                           ms(smoke ? 300 : 1500), tcp_skew);
    tcp_skewed.push_back(p);
    bench::row("%6zu %16.0f %10llu", p.window, p.rounds_per_sec,
               static_cast<unsigned long long>(p.rounds));
  }
  const double tcp_skew_speedup =
      tcp_skewed[0].rounds_per_sec > 0
          ? tcp_skewed[1].rounds_per_sec / tcp_skewed[0].rounds_per_sec
          : 0.0;
  bench::print_note("skewed TCP W=4 vs W=1 rounds/s: " +
                    std::to_string(tcp_skew_speedup) + "x");

  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const auto dump_points = [f](const char* key,
                                 const std::vector<SimPoint>& pts) {
      std::fprintf(f, "    \"%s\": [", key);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        std::fprintf(f,
                     "%s\n      {\"window\": %zu, \"rounds_per_sec\": %.0f, "
                     "\"p50_us\": %.1f, \"p99_us\": %.1f}",
                     i ? "," : "", pts[i].window, pts[i].rounds_per_sec,
                     pts[i].p50_us, pts[i].p99_us);
      }
      std::fprintf(f, "\n    ]");
    };
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"round_pipeline\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"sim\": {\n"
                 "    \"n\": %zu, \"pace_us\": %lld, \"skew_us\": %lld,\n",
                 smoke ? "true" : "false", n,
                 static_cast<long long>(pace / 1000),
                 static_cast<long long>(skew / 1000));
    dump_points("skew", sim_skewed);
    std::fprintf(f, ",\n");
    dump_points("no_skew", sim_clean);
    std::fprintf(f,
                 ",\n    \"speedup_w4_over_w1_skew\": %.2f\n  },\n"
                 "  \"tcp\": {\n    \"points\": [",
                 speedup_skew);
    for (std::size_t i = 0; i < tcp_points.size(); ++i) {
      std::fprintf(f,
                   "%s\n      {\"window\": %zu, \"rounds_per_sec\": %.0f}",
                   i ? "," : "", tcp_points[i].window,
                   tcp_points[i].rounds_per_sec);
    }
    std::fprintf(f,
                 "\n    ],\n    \"skew_us\": %lld,\n    \"skewed\": [",
                 static_cast<long long>(tcp_skew / 1000));
    for (std::size_t i = 0; i < tcp_skewed.size(); ++i) {
      std::fprintf(f,
                   "%s\n      {\"window\": %zu, \"rounds_per_sec\": %.0f}",
                   i ? "," : "", tcp_skewed[i].window,
                   tcp_skewed[i].rounds_per_sec);
    }
    std::fprintf(f,
                 "\n    ],\n    \"speedup_w4_over_w1_skew\": %.2f\n  },\n",
                 tcp_skew_speedup);
    std::fprintf(f,
                 "  \"obs_overhead\": {\"disabled_wall_secs\": %.4f, "
                 "\"enabled_wall_secs\": %.4f, \"overhead_pct\": %.1f}",
                 obs_best_off, obs_best_on, obs_overhead_pct);
    bench::write_metrics_key(f, sim_metrics_json);
    std::fprintf(f, "}\n");
    std::fclose(f);
    bench::print_note("wrote " + json_path);
  }

  // Acceptance gates — virtual-time measurements, deterministic on any
  // machine, so these are hard failures rather than warnings.
  int rc = 0;
  if (gated && speedup_skew < 1.5) {
    std::fprintf(stderr,
                 "FAIL: skewed W=4 rounds/s only %.2fx of W=1 (< 1.5x): the "
                 "window no longer hides the convoy\n",
                 speedup_skew);
    rc = 1;
  }
  if (tcp_skew_speedup > 0 && tcp_skew_speedup < 1.2) {
    std::fprintf(stderr,
                 "FAIL: real-socket skewed W=4 rounds/s only %.2fx of W=1 "
                 "(< 1.2x): the window no longer hides a physically slow "
                 "sender\n",
                 tcp_skew_speedup);
    rc = 1;
  }
  const SimPoint* clean_w1 = find_w(sim_clean, 1);
  const SimPoint* clean_w4 = find_w(sim_clean, 4);
  if (clean_w1 != nullptr && clean_w4 != nullptr &&
      clean_w4->p99_us > 1.25 * clean_w1->p99_us) {
    std::fprintf(stderr,
                 "FAIL: no-skew p99 round latency at W=4 (%.1fus) exceeds "
                 "1.25x the W=1 baseline (%.1fus)\n",
                 clean_w4->p99_us, clean_w1->p99_us);
    rc = 1;
  }
  if (obs_overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder overhead %.1f%% exceeds the 5%% "
                 "budget (%.1fms wall enabled vs %.1fms disabled)\n",
                 obs_overhead_pct, 1e3 * obs_best_on, 1e3 * obs_best_off);
    rc = 1;
  }
  return rc;
}
