// Reproduces Table 3: GS(n,d) parameters (vertex count, degree, diameter)
// for 6-nines reliability over 24h with server MTTF ≈ 2 years, next to the
// Moore-bound diameter lower bound D_L(n,d).
//
// Columns: published (n,d,D) from the paper; computed minimal degree from
// our reliability model; diameter of our GS construction; D_L.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  graph::FailureModel fm;
  fm.delta_hours = flags.get_double("delta-hours", 24.0);
  fm.mttf_hours = flags.get_double("mttf-years", 2.0) * 365.25 * 24.0;
  const double target = flags.get_double("nines", 6.0);

  print_title("Table 3: GS(n,d) for 6-nines reliability");
  print_note("MTTF = " + std::to_string(fm.mttf_hours / (365.25 * 24.0)) +
             " years, Δ = " + std::to_string(fm.delta_hours) + " h, p_f = " +
             std::to_string(fm.p_f()));
  row("%6s %10s %10s %8s %8s %6s %12s", "n", "d(paper)", "d(comp)", "D(GS)",
      "D(paper)", "D_L", "nines@paper");

  const bool smoke = smoke_mode(flags);
  for (const auto& published : graph::paper_table3()) {
    if (smoke && published.n > 128) continue;
    const auto computed = graph::min_gs_degree_for_target(published.n, target, fm);
    const graph::Digraph g = graph::make_gs_digraph(published.n, published.d);
    const auto diam = graph::diameter(g);
    row("%6zu %10zu %10s %8zu %8zu %6zu %12.2f", published.n, published.d,
        computed ? std::to_string(*computed).c_str() : "-",
        diam.value_or(0), published.diameter,
        graph::gs_moore_diameter_lower_bound(published.n, published.d),
        graph::system_reliability_nines(published.n, published.d, fm));
  }
  print_note("d(comp) may differ by 1 on the borderline rows n=128/1024 — "
             "see DESIGN.md; all diameters must match Table 3.");
  return 0;
}
