// Reproduces Fig. 9b: distributed exchanges — agreement latency as a
// function of the system-wide (40-byte) request rate, for n from 8 to 512
// (1024 with --full), on the XC40 TCP fabric.
//
// Paper anchors: 8 servers handle 100M req/s below 90 us; 512 servers
// handle 1M req/s below 20 ms; at 1024 the 11x GS redundancy for 6-nines
// costs ~4x latency.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  std::vector<std::int64_t> sizes = flags.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{8, 32}
                     : std::vector<std::int64_t>{8, 32, 128});
  if (flags.get_bool("full", false)) {
    sizes.push_back(512);
    sizes.push_back(1024);
  }
  const auto rates = flags.get_int_list(
      "rates", smoke ? std::vector<std::int64_t>{10000, 1000000}
                     : std::vector<std::int64_t>{10000, 100000, 1000000,
                                                 10000000, 100000000});

  print_title("Fig. 9b: latency vs system-wide request rate (40B, XC40 TCP)");
  std::printf("%14s", "rate[/s]");
  for (auto n : sizes) std::printf(" %9s%-4lld", "n=", (long long)n);
  std::printf("\n");
  for (auto rate : rates) {
    std::printf("%14lld", static_cast<long long>(rate));
    for (auto n : sizes) {
      const double per_server =
          static_cast<double>(rate) / static_cast<double>(n);
      const std::size_t warmup = n >= 512 ? 2u : 5u;
      const std::size_t measured = n >= 512 ? 4u : 15u;
      const auto r = run_allconcur_rate(static_cast<std::size_t>(n),
                                        sim::FabricParams::tcp_xc40(), 40,
                                        per_server, warmup, measured,
                                        /*deadline=*/sec(5));
      if (r.unstable) {
        std::printf(" %13s", "unstable");
      } else {
        std::printf(" %11.1fus", r.latency_us.median());
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  print_note("expect: small n flat in the ~100us range up to 100M/s; large "
             "n in the ms range, rising with rate (Fig. 9b shape).");
  return 0;
}
