// Reproduces §4.2.3: fault-diameter estimation via the min-sum disjoint
// paths heuristic — including the paper's worked example (binomial graph,
// n=12: 3 <= δ_f <= 4) — and the bound δ̂_f for the Table 3 GS digraphs
// ("low fault diameter bounds, experimentally verified").
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  print_title("§4.2.3 worked example: binomial graph n=12, paths p0 -> p3");
  {
    const auto g = graph::make_binomial_graph(12);
    const auto dp = graph::min_sum_disjoint_paths(g, 0, 3, 6);
    if (dp) {
      row("  six vertex-disjoint paths, min-sum: avg %.2f edges, max %zu",
          dp->avg_length, dp->max_length);
      for (const auto& path : dp->paths) {
        std::printf("    ");
        for (std::size_t i = 0; i < path.size(); ++i) {
          std::printf("p%u%s", path[i], i + 1 < path.size() ? " -> " : "\n");
        }
      }
      row("  paper: 3 <= δ_f <= 4 (one path has length four)");
    }
    const auto exact = graph::fault_diameter_exact(g, 5);
    row("  exact D_f(G,5) by enumeration: %zu", exact.value_or(0));
  }

  print_title("GS(n,d) fault-diameter bounds (f = d-1, min-sum heuristic)");
  row("%6s %4s %4s %10s %14s", "n", "d", "D", "δ̂_{d-1}", "pairs checked");
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 42)));
  const std::size_t max_n = static_cast<std::size_t>(
      flags.get_int("max-n", smoke_mode(flags) ? 16 : 128));
  for (const auto& rowspec : graph::paper_table3()) {
    if (rowspec.n > max_n) {
      continue;
    }
    const auto g = graph::make_gs_digraph(rowspec.n, rowspec.d);
    const auto diam = graph::diameter(g).value_or(0);
    const std::size_t f = rowspec.d - 1;
    std::optional<std::size_t> bound;
    std::size_t pairs;
    if (rowspec.n <= 32) {
      bound = graph::fault_diameter_bound(g, f);
      pairs = rowspec.n * (rowspec.n - 1);
    } else {
      pairs = 500;
      bound = graph::fault_diameter_bound_sampled(g, f, pairs, rng);
    }
    row("%6zu %4zu %4zu %10zu %14zu", rowspec.n, rowspec.d, diam,
        bound.value_or(0), pairs);
  }
  print_note("expect δ̂ within ~2 of D — the early-termination depth "
             "stays close to the failure-free diameter.");
  return 0;
}
