// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one artifact of the paper's evaluation
// (see DESIGN.md §3 for the index) and prints the same rows/series the
// paper reports. Absolute numbers come from the simulated fabric — the
// *shape* (who wins, scaling, crossovers) is the reproduction target.
#pragma once

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "api/sim_cluster.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/schema.hpp"

namespace allconcur::bench {

/// Port block for the localhost TCP harness legs: mixed from pid *and*
/// wall time, because parallel ctest runs several TCP binaries at once
/// and pid-only draws collide once in a while (the bind asserts).
inline std::uint16_t draw_port_base(std::uint64_t salt) {
  Rng rng(static_cast<std::uint64_t>(::getpid()) * 2654435761u + salt +
          static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
  return static_cast<std::uint16_t>(21000 + rng.next_below(28000));
}

inline void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_note(const std::string& note) {
  std::printf("  # %s\n", note.c_str());
}

/// Smoke mode (--smoke): shrink the experiment so the binary exercises its
/// full code path in about a second. The build registers every bench with
/// ctest under the `smoke` label this way, so the harnesses are verified
/// runnable — not merely compilable — on every run.
inline bool smoke_mode(const Flags& flags) {
  const bool on = flags.get_bool("smoke", false);
  if (on) print_note("smoke mode: reduced sizes/horizons, shapes only");
  return on;
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

// ----------------------------------------------------------------------
// Metrics embedding: every bench --json carries a snapshot of the
// unified metrics plane (obs/schema.hpp names) under a stable "metrics"
// key, so a run's internal counters travel with its perf numbers.
// bench_compare.py excludes the subtree from default direction gating
// (counters like "drops" would pattern-match perf heuristics) — metric
// diffs are opt-in via its --metric allowlist.
// ----------------------------------------------------------------------

/// Registry JSON for an aggregate EngineStats snapshot — for harnesses
/// that drive engines directly instead of through a SimCluster (which
/// has its own richer metrics_json()).
inline std::string metrics_snapshot_json(const core::EngineStats& stats) {
  obs::Registry registry;
  obs::fill_engine_stats(registry, stats);
  return registry.to_json(2);
}

/// Emits the "metrics" key at top-level depth. Call between the last
/// sibling key and the closing `}` of the bench's JSON object.
inline void write_metrics_key(std::FILE* f, const std::string& metrics_json) {
  std::fprintf(f, ",\n  \"metrics\": %s\n",
               metrics_json.empty() ? "{}" : metrics_json.c_str());
}

// ----------------------------------------------------------------------
// AllConcur round loops on the simulated fabric.
// ----------------------------------------------------------------------

struct BatchRunResult {
  double avg_round_ns = 0.0;
  double agreement_gbps = 0.0;   ///< n * batch_bytes per round
  double aggregate_gbps = 0.0;   ///< agreement * n (Fig. 10d)
  bool completed = false;
  std::string metrics_json;      ///< end-of-run unified metrics snapshot
};

/// Fixed-size message per server per round (the Fig. 10 workload):
/// every server contributes `batch_bytes` each round, rounds run
/// back-to-back for `rounds` rounds.
inline BatchRunResult run_allconcur_batch(std::size_t n,
                                          const sim::FabricParams& fabric,
                                          std::size_t batch_bytes,
                                          std::size_t rounds,
                                          TimeNs deadline = sec(300)) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.fabric = fabric;
  api::SimCluster cluster(opt);
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs) {
    if (r.round + 1 < rounds) {
      cluster.submit_opaque(who, batch_bytes);
      cluster.broadcast_now(who);
    }
  };
  for (NodeId id : cluster.live_nodes()) {
    cluster.submit_opaque(id, batch_bytes);
  }
  cluster.broadcast_all_now();
  BatchRunResult out;
  out.completed = cluster.run_until_round_done(rounds - 1, deadline);
  out.metrics_json = cluster.metrics_json();
  if (!out.completed) return out;
  out.avg_round_ns = static_cast<double>(cluster.sim().now()) /
                     static_cast<double>(rounds);
  out.agreement_gbps = 8.0 * static_cast<double>(n) *
                       static_cast<double>(batch_bytes) / out.avg_round_ns;
  out.aggregate_gbps = out.agreement_gbps * static_cast<double>(n);
  return out;
}

struct RateRunResult {
  Summary latency_us;      ///< per-node agreement latency samples
  bool unstable = false;   ///< offered load exceeded agreement throughput
  std::string metrics_json;  ///< end-of-run unified metrics snapshot
};

/// Constant request rate per server (the Fig. 8/9 workloads), fluid
/// approximation: at each broadcast a server packs rate * elapsed bytes of
/// requests accumulated since its previous broadcast. Rounds run
/// back-to-back; the system destabilizes exactly like the paper describes
/// (§5: bigger messages -> longer rounds -> bigger messages) once the rate
/// exceeds the agreement throughput. `window` > 1 runs the same workload
/// on the pipelined engine (up to W rounds in flight), which moves the
/// destabilization knee right.
inline RateRunResult run_allconcur_rate(std::size_t n,
                                        const sim::FabricParams& fabric,
                                        std::size_t request_bytes,
                                        double requests_per_sec_per_server,
                                        std::size_t warmup_rounds,
                                        std::size_t measured_rounds,
                                        TimeNs deadline = sec(120),
                                        std::size_t window = 1) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.fabric = fabric;
  opt.window = window;
  api::SimCluster cluster(opt);

  const double bytes_per_ns = requests_per_sec_per_server *
                              static_cast<double>(request_bytes) / 1e9;
  std::vector<TimeNs> last_pack(n, 0);
  std::vector<double> carry(n, 0.0);
  RateRunResult out;
  const std::size_t total_rounds = warmup_rounds + measured_rounds;

  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (r.round >= warmup_rounds && r.round < total_rounds) {
      const auto started = cluster.broadcast_time(who, r.round);
      if (started) out.latency_us.add(to_us(t - *started));
    }
    if (r.round + 1 >= total_rounds) return;
    const double accumulated =
        carry[who] + bytes_per_ns * static_cast<double>(t - last_pack[who]);
    const double whole_requests =
        std::floor(accumulated / static_cast<double>(request_bytes));
    const std::size_t bytes =
        static_cast<std::size_t>(whole_requests) * request_bytes;
    carry[who] = accumulated - static_cast<double>(bytes);
    last_pack[who] = t;
    if (bytes > 0) cluster.submit_opaque(who, bytes);
    cluster.broadcast_now(who);
  };
  cluster.broadcast_all_now();
  if (!cluster.run_until_round_done(total_rounds - 1, deadline)) {
    out.unstable = true;
  }
  out.metrics_json = cluster.metrics_json();
  if (!out.unstable && out.latency_us.count() >= 4) {
    // Blow-up detection: the tail of the run is far above its median.
    const double med = out.latency_us.median();
    if (out.latency_us.max() > 20.0 * med && med > 0.0) out.unstable = true;
  }
  return out;
}

}  // namespace allconcur::bench
