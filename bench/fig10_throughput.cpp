// Reproduces Fig. 10: agreement throughput vs batching factor (8-byte
// requests) on the XC40 TCP fabric for:
//   (a) MPI_Allgather-style unreliable agreement (ring),
//   (b) AllConcur,
//   (c) leader-based agreement (Libpaxos-style deployment of §4.5),
//   (d) AllConcur's aggregated throughput (agreement * n).
// Ends with the paper's two headline comparisons: AllConcur vs Libpaxos
// (>= 17x) and the average fault-tolerance overhead vs allgather (~58%).
#include <cstdio>
#include <map>
#include <string>

#include "baseline/allgather.hpp"
#include "baseline/leader_based.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  std::vector<std::int64_t> sizes = flags.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{8, 32}
                     : std::vector<std::int64_t>{8, 32, 128});
  if (flags.get_bool("full", false)) {
    sizes.push_back(512);
    sizes.push_back(1024);
  }
  const auto batches = flags.get_int_list(
      "batches", smoke ? std::vector<std::int64_t>{128, 2048}
                       : std::vector<std::int64_t>{128, 512, 2048, 8192,
                                                   32768});  // 2^7..2^15 reqs
  const std::size_t rounds =
      static_cast<std::size_t>(flags.get_int("rounds", smoke ? 2 : 4));
  const std::string series = flags.get("series", "all");
  const auto fabric = sim::FabricParams::tcp_xc40();
  const DurationNs decree_fixed = us(flags.get_double("decree-cpu-us", 150.0));
  const double decree_per_byte = flags.get_double("decree-ns-per-byte", 15.0);

  // results[series][n][batch] = Gbit/s
  std::map<std::string, std::map<std::int64_t, std::map<std::int64_t, double>>>
      results;

  for (auto n : sizes) {
    for (auto batch : batches) {
      const std::size_t bytes = static_cast<std::size_t>(batch) * 8;
      if (series == "all" || series == "allgather") {
        baseline::AllgatherParams p;
        p.n = static_cast<std::size_t>(n);
        p.block_bytes = bytes;
        p.rounds = rounds;
        results["allgather"][n][batch] =
            baseline::run_allgather(p, fabric).agreement_gbps;
      }
      if (series == "all" || series == "allconcur" || series == "aggregate") {
        const auto r = run_allconcur_batch(static_cast<std::size_t>(n),
                                           fabric, bytes, rounds);
        results["allconcur"][n][batch] = r.agreement_gbps;
        results["aggregate"][n][batch] = r.aggregate_gbps;
      }
      if (series == "all" || series == "paxos") {
        baseline::LeaderBasedParams p;
        p.n = static_cast<std::size_t>(n);
        p.batch_bytes = bytes;
        p.rounds = rounds;
        p.decree_cpu_fixed = decree_fixed;
        p.decree_cpu_ns_per_byte = decree_per_byte;
        results["paxos"][n][batch] =
            baseline::run_leader_based(p, fabric).agreement_gbps;
      }
    }
  }

  const auto print_series = [&](const std::string& name, const char* title) {
    if (!results.count(name)) return;
    print_title(title);
    std::printf("%10s", "batch");
    for (auto n : sizes) std::printf(" %7s%-5lld", "n=", (long long)n);
    std::printf("\n");
    for (auto batch : batches) {
      std::printf("%10lld", static_cast<long long>(batch));
      for (auto n : sizes) {
        std::printf(" %12.3f", results[name][n][batch]);
      }
      std::printf("\n");
    }
  };

  print_series("allgather",
               "Fig. 10a: MPI_Allgather agreement throughput [Gbps]");
  print_series("allconcur", "Fig. 10b: AllConcur agreement throughput [Gbps]");
  print_series("paxos", "Fig. 10c: leader-based (Libpaxos) throughput [Gbps]");
  print_series("aggregate", "Fig. 10d: AllConcur aggregated throughput [Gbps]");

  if (results.count("allconcur") && results.count("paxos")) {
    print_title("headline comparisons");
    for (auto n : sizes) {
      double best_ac = 0, best_px = 0, best_ag = 0;
      for (auto batch : batches) {
        best_ac = std::max(best_ac, results["allconcur"][n][batch]);
        best_px = std::max(best_px, results["paxos"][n][batch]);
        if (results.count("allgather")) {
          best_ag = std::max(best_ag, results["allgather"][n][batch]);
        }
      }
      row("  n=%-5lld AllConcur peak %7.2f Gbps | %5.1fx vs Libpaxos | "
          "overhead vs allgather %4.0f%%",
          static_cast<long long>(n), best_ac,
          best_px > 0 ? best_ac / best_px : 0.0,
          best_ag > 0 ? 100.0 * (1.0 - best_ac / best_ag) : 0.0);
    }
    print_note("paper: AllConcur-TCP peaks at 8.6 Gbps, >= 17x Libpaxos, "
               "~58% average overhead vs unreliable allgather; aggregated "
               "throughput grows with n (peaks ~750 Gbps at 512/1024).");
  }
  return 0;
}
