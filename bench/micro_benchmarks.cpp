// Micro-benchmarks (google-benchmark): hot paths of the implementation —
// tracking-digraph updates, message serialization, GS construction,
// graph analyses, and whole in-process protocol rounds.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "core/message.hpp"
#include "core/tracking.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/connectivity.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

namespace {

using namespace allconcur;

void BM_GsConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = graph::paper_gs_degree(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::make_gs_digraph(n, d));
  }
}
BENCHMARK(BM_GsConstruction)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

void BM_Diameter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_gs_digraph(n, graph::paper_gs_degree(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::diameter(g));
  }
}
BENCHMARK(BM_Diameter)->Arg(64)->Arg(256);

void BM_VertexConnectivity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_gs_digraph(n, graph::paper_gs_degree(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::vertex_connectivity(g));
  }
}
BENCHMARK(BM_VertexConnectivity)->Arg(16)->Arg(45);

void BM_MinSumDisjointPaths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = graph::paper_gs_degree(n);
  const auto g = graph::make_gs_digraph(n, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::min_sum_disjoint_paths(g, 0, 1, d));
  }
}
BENCHMARK(BM_MinSumDisjointPaths)->Arg(64)->Arg(256);

void BM_MessageEncode(benchmark::State& state) {
  const auto m = core::Message::bcast(
      7, 3,
      core::make_payload(
          std::vector<std::uint8_t>(static_cast<std::size_t>(state.range(0)))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode(m));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MessageEncode)->Arg(64)->Arg(4096)->Arg(262144);

void BM_MessageDecode(benchmark::State& state) {
  const auto bytes = core::encode(core::Message::bcast(
      7, 3,
      core::make_payload(
          std::vector<std::uint8_t>(static_cast<std::size_t>(state.range(0))))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MessageDecode)->Arg(64)->Arg(4096)->Arg(262144);

class Knowledge final : public core::FailureKnowledge {
 public:
  bool is_failed(NodeId rank) const override { return rank < failed_below; }
  bool has_pair(NodeId, NodeId) const override { return false; }
  NodeId failed_below = 0;
};

void BM_TrackingExpansion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto overlay = graph::make_gs_digraph(n, graph::paper_gs_degree(n));
  Knowledge fk;
  fk.failed_below = 2;  // failure chaining through one extra server
  for (auto _ : state) {
    core::TrackingDigraph g;
    g.reset(5);
    g.on_failure(5, overlay.successors(5)[0], overlay, fk);
    benchmark::DoNotOptimize(g.vertex_count());
  }
}
BENCHMARK(BM_TrackingExpansion)->Arg(64)->Arg(256)->Arg(1024);

// One full failure-free agreement round across n in-process engines wired
// back-to-back (no simulated network): the pure protocol-processing cost.
void BM_ProtocolRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  using core::Engine;
  using core::Message;
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  const auto builder = core::make_default_graph_builder();

  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<Engine>> engines(n);
    std::vector<std::tuple<NodeId, NodeId, Message>> queue;
    std::size_t delivered = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = static_cast<NodeId>(i);
      Engine::Hooks hooks;
      hooks.send = [&queue, id](NodeId dst, const core::FrameRef& f) {
        queue.emplace_back(id, dst, f->msg());
      };
      hooks.deliver = [&delivered](const core::RoundResult&) { ++delivered; };
      engines[i] = std::make_unique<Engine>(id, core::View(members, builder),
                                            builder, hooks);
    }
    state.ResumeTiming();

    for (auto& e : engines) e->broadcast_now();
    std::size_t head = 0;
    while (head < queue.size()) {
      auto [src, dst, msg] = queue[head++];
      engines[dst]->on_message(src, msg);
    }
    if (delivered != n) state.SkipWithError("round did not complete");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProtocolRound)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
