// Reproduces Fig. 8: agreement latency as a function of the per-server
// request rate (64-byte requests), for n in {8,16,32,64}, over the IBV
// (Fig. 8a) and TCP (Fig. 8b) fabrics — the travel-reservation workload.
//
// Paper shape: latency is flat (single-request regime) until the offered
// rate approaches the agreement throughput, then rises and finally
// destabilizes (unbounded batching); IBV sustains ~100M req/s/server at
// n=8 in ~35us, TCP is ~3x slower.
//
//   $ ./fig8_request_rate --smoke --json=out.json
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

struct Cell {
  std::int64_t n = 0;
  std::int64_t rate = 0;
  bool unstable = false;
  double median_us = 0;
};

struct Series {
  std::string name;
  std::vector<Cell> cells;
};

Series run_series(const std::string& name, const sim::FabricParams& fabric,
                  const std::vector<std::int64_t>& sizes,
                  const std::vector<std::int64_t>& rates,
                  std::size_t window,
                  std::string* metrics_out = nullptr) {
  print_title("Fig. 8 (" + name +
              "): latency vs per-server request rate (64B), W=" +
              std::to_string(window));
  Series out;
  out.name = name;
  std::printf("%12s", "rate[/s]");
  for (auto n : sizes) std::printf(" %9s%-3lld", "n=", (long long)n);
  std::printf("\n");
  for (auto rate : rates) {
    std::printf("%12lld", static_cast<long long>(rate));
    for (auto n : sizes) {
      const auto r = run_allconcur_rate(
          static_cast<std::size_t>(n), fabric, 64,
          static_cast<double>(rate), /*warmup=*/5, /*measured=*/20,
          /*deadline=*/sec(5), window);
      if (metrics_out != nullptr && !r.metrics_json.empty()) {
        *metrics_out = r.metrics_json;
      }
      Cell cell;
      cell.n = n;
      cell.rate = rate;
      cell.unstable = r.unstable;
      if (r.unstable) {
        std::printf(" %12s", "unstable");
      } else {
        cell.median_us = r.latency_us.median();
        std::printf(" %10.1fus", cell.median_us);
      }
      out.cells.push_back(cell);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  const auto sizes = flags.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{8, 16}
                     : std::vector<std::int64_t>{8, 16, 32, 64});
  const auto rates = flags.get_int_list(
      "rates", smoke ? std::vector<std::int64_t>{10, 10000, 10000000}
                     : std::vector<std::int64_t>{10, 100, 1000, 10000, 100000,
                                                 1000000, 10000000, 100000000});
  // --window: run the whole figure at each listed pipeline width. The
  // smoke default {1, 4} emits the destabilization curve with and without
  // the window into one JSON (the "Fig. 8 with W>1" comparison: the knee
  // moves right with a window, per the paper's §5 pipelining argument);
  // the full run defaults to the paper's classic W=1.
  const auto windows = flags.get_int_list(
      "window", smoke ? std::vector<std::int64_t>{1, 4}
                      : std::vector<std::int64_t>{1});
  std::vector<Series> series;
  std::string last_metrics_json;
  for (const std::int64_t w : windows) {
    const auto window = static_cast<std::size_t>(w);
    const std::string suffix = window > 1 ? "_w" + std::to_string(window) : "";
    series.push_back(run_series("ibv" + suffix,
                                sim::FabricParams::infiniband(), sizes,
                                rates, window, &last_metrics_json));
    series.push_back(run_series("tcp" + suffix, sim::FabricParams::tcp_ib(),
                                sizes, rates, window, &last_metrics_json));
  }
  print_note("paper anchors: IBV n=8 @ 100M req/s/server agrees in ~35us; "
             "n=64 @ 32k req/s/server in < 0.75ms; TCP ~3x higher.");

  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig8_request_rate\",\n"
                 "  \"smoke\": %s,\n  \"series\": {",
                 smoke ? "true" : "false");
    for (std::size_t s = 0; s < series.size(); ++s) {
      std::fprintf(f, "%s\n    \"%s\": [", s ? "," : "",
                   series[s].name.c_str());
      for (std::size_t i = 0; i < series[s].cells.size(); ++i) {
        const Cell& c = series[s].cells[i];
        // Unstable cells omit the latency field entirely: a 0.0 would
        // read as a ~100% improvement to a baseline-diffing tool, while a
        // vanished metric reads as the regression it is.
        std::fprintf(f, "%s\n      {\"n\": %lld, \"rate_per_sec\": %lld, "
                        "\"unstable\": %s",
                     i ? "," : "", static_cast<long long>(c.n),
                     static_cast<long long>(c.rate),
                     c.unstable ? "true" : "false");
        if (!c.unstable) {
          std::fprintf(f, ", \"median_latency_us\": %.1f", c.median_us);
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n    ]");
    }
    std::fprintf(f, "\n  }");
    write_metrics_key(f, last_metrics_json);
    std::fprintf(f, "}\n");
    std::fclose(f);
    print_note("wrote " + json_path);
  }
  return 0;
}
