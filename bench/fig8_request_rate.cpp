// Reproduces Fig. 8: agreement latency as a function of the per-server
// request rate (64-byte requests), for n in {8,16,32,64}, over the IBV
// (Fig. 8a) and TCP (Fig. 8b) fabrics — the travel-reservation workload.
//
// Paper shape: latency is flat (single-request regime) until the offered
// rate approaches the agreement throughput, then rises and finally
// destabilizes (unbounded batching); IBV sustains ~100M req/s/server at
// n=8 in ~35us, TCP is ~3x slower.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

void run_series(const char* name, const sim::FabricParams& fabric,
                const std::vector<std::int64_t>& sizes,
                const std::vector<std::int64_t>& rates) {
  print_title(std::string("Fig. 8 (") + name +
              "): latency vs per-server request rate (64B)");
  std::printf("%12s", "rate[/s]");
  for (auto n : sizes) std::printf(" %9s%-3lld", "n=", (long long)n);
  std::printf("\n");
  for (auto rate : rates) {
    std::printf("%12lld", static_cast<long long>(rate));
    for (auto n : sizes) {
      const auto r = run_allconcur_rate(
          static_cast<std::size_t>(n), fabric, 64,
          static_cast<double>(rate), /*warmup=*/5, /*measured=*/20,
          /*deadline=*/sec(5));
      if (r.unstable) {
        std::printf(" %12s", "unstable");
      } else {
        std::printf(" %10.1fus", r.latency_us.median());
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  const auto sizes = flags.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{8, 16}
                     : std::vector<std::int64_t>{8, 16, 32, 64});
  const auto rates = flags.get_int_list(
      "rates", smoke ? std::vector<std::int64_t>{10, 10000, 10000000}
                     : std::vector<std::int64_t>{10, 100, 1000, 10000, 100000,
                                                 1000000, 10000000, 100000000});
  run_series("IBV, IB-hsw", sim::FabricParams::infiniband(), sizes, rates);
  run_series("TCP, IB-hsw", sim::FabricParams::tcp_ib(), sizes, rates);
  print_note("paper anchors: IBV n=8 @ 100M req/s/server agrees in ~35us; "
             "n=64 @ 32k req/s/server in < 0.75ms; TCP ~3x higher.");
  return 0;
}
