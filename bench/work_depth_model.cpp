// Reproduces the §4.1/§4.2 analysis tables: per-server message counts
// (n·d + f·d²), the LogP work lower bound 2(n-1)d·o, the depth model
// 2(L + o_s + o)·D, the worst case without early termination
// (f + D_f steps), and the §4.2.2 probability that a round's depth stays
// within the fault diameter.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "core/logp_model.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t max_n = static_cast<std::size_t>(
      flags.get_int("max-n", smoke_mode(flags) ? 128 : 1024));
  const core::LogP ibv{1250.0, 380.0};
  const core::LogP tcp{12000.0, 1800.0};

  print_title("§4.1: work per server (messages received = sent)");
  row("%6s %4s %12s %12s %12s", "n", "d", "f=0", "f=1", "f=d-1");
  for (const auto& spec : graph::paper_table3()) {
    row("%6zu %4zu %12zu %12zu %12zu", spec.n, spec.d,
        core::messages_per_server(spec.n, spec.d, 0),
        core::messages_per_server(spec.n, spec.d, 1),
        core::messages_per_server(spec.n, spec.d, spec.d - 1));
  }

  print_title("§4.2: LogP work & depth bounds [us]");
  row("%6s %4s %4s %12s %12s %12s %12s", "n", "d", "D", "work(IBV)",
      "depth(IBV)", "work(TCP)", "depth(TCP)");
  for (const auto& spec : graph::paper_table3()) {
    if (spec.n > max_n) break;
    row("%6zu %4zu %4zu %12.1f %12.1f %12.1f %12.1f", spec.n, spec.d,
        spec.diameter, core::logp_work_bound_ns(spec.n, spec.d, ibv) / 1e3,
        core::logp_depth_ns(spec.d, spec.diameter, ibv) / 1e3,
        core::logp_work_bound_ns(spec.n, spec.d, tcp) / 1e3,
        core::logp_depth_ns(spec.d, spec.diameter, tcp) / 1e3);
  }

  print_title("§4.2.2: probability the depth stays within the fault diameter");
  const double mttf_ns = 2.0 * 365.25 * 24 * 3600 * 1e9;
  row("%6s %4s %22s %22s", "n", "d", "P[D <= D_f] (1 round)",
      "P over 1M rounds");
  for (const auto& spec : graph::paper_table3()) {
    const double p = core::prob_depth_within_fault_diameter(
        spec.n, spec.d, tcp.overhead_ns, mttf_ns);
    row("%6zu %4zu %22.10f %22.6f", spec.n, spec.d, p, std::pow(p, 1e6));
  }
  print_note("paper: 256 servers, d=7 finish 1M rounds within D_f with "
             "probability > 99.99% — early termination pays off because "
             "failures are rare.");
  return 0;
}
