// Reproduces the §4.1/§4.2 analysis tables: per-server message counts
// (n·d + f·d²), the LogP work lower bound 2(n-1)d·o, the depth model
// 2(L + o_s + o)·D, the worst case without early termination
// (f + D_f steps), and the §4.2.2 probability that a round's depth stays
// within the fault diameter.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/sim_cluster.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "core/logp_model.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"
#include "obs/trace.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

/// One measured-vs-model comparison: a SimCluster round with every origin
/// traced (sampling 1/1) against the analytic depth and LogP time.
struct MeasuredRow {
  std::size_t n = 0;
  std::size_t d = 0;
  std::size_t depth_model = 0;     ///< diameter of the G_R overlay
  std::size_t depth_measured = 0;  ///< D-hat from the merged trace
  double t_model_ns = 0;   ///< one-way (L + o_s + o) * D, uncontended
  double t_measured_ns = 0;  ///< slowest origin's broadcast -> last receipt
  double ratio = 0;        ///< measured / model (contention shows up here)
};

MeasuredRow measure_depth(std::size_t n, const sim::FabricParams& fabric) {
  api::ClusterOptions copts;
  copts.n = n;
  copts.fabric = fabric;
  copts.trace_sample_period = 1;  // every round sampled
  api::SimCluster cluster(copts);
  // Nudge the virtual clock off zero so origin spans are distinguishable
  // from "origin span lost" (t = 0) in the merge.
  cluster.run_for(us(1));
  cluster.broadcast_all_now();
  cluster.run_until_round_done(0, sec(30));

  MeasuredRow row;
  row.n = n;
  const graph::Digraph g = cluster.options().builder(n);
  row.d = g.out_degree(0);
  row.depth_model = graph::diameter(g).value_or(0);
  const obs::TraceMerge merged = cluster.merged_trace();
  row.depth_measured = merged.empirical_depth();
  // Measured one-way propagation: the slowest origin's span from its
  // broadcast to the last node's first receipt, over the first round only
  // (later rounds overlap with delivery work).
  Round first_round = ~Round{0};
  for (const auto& b : merged.broadcasts()) {
    first_round = std::min(first_round, b.round);
  }
  for (const auto& b : merged.broadcasts()) {
    if (b.round != first_round || b.origin_t == 0) continue;
    row.t_measured_ns = std::max(
        row.t_measured_ns, static_cast<double>(b.completed_t - b.origin_t));
  }
  const core::LogP p{static_cast<double>(fabric.latency),
                     static_cast<double>(fabric.overhead)};
  // logp_depth_ns is the §4.2.1 round-trip bound (message + empty echoes);
  // the trace measures the forward dissemination, i.e. half of it.
  row.t_model_ns = core::logp_depth_ns(row.d, row.depth_model, p) / 2.0;
  row.ratio = row.t_model_ns > 0 ? row.t_measured_ns / row.t_model_ns : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t max_n = static_cast<std::size_t>(
      flags.get_int("max-n", smoke_mode(flags) ? 128 : 1024));
  const core::LogP ibv{1250.0, 380.0};
  const core::LogP tcp{12000.0, 1800.0};

  print_title("§4.1: work per server (messages received = sent)");
  row("%6s %4s %12s %12s %12s", "n", "d", "f=0", "f=1", "f=d-1");
  for (const auto& spec : graph::paper_table3()) {
    row("%6zu %4zu %12zu %12zu %12zu", spec.n, spec.d,
        core::messages_per_server(spec.n, spec.d, 0),
        core::messages_per_server(spec.n, spec.d, 1),
        core::messages_per_server(spec.n, spec.d, spec.d - 1));
  }

  print_title("§4.2: LogP work & depth bounds [us]");
  row("%6s %4s %4s %12s %12s %12s %12s", "n", "d", "D", "work(IBV)",
      "depth(IBV)", "work(TCP)", "depth(TCP)");
  for (const auto& spec : graph::paper_table3()) {
    if (spec.n > max_n) break;
    row("%6zu %4zu %4zu %12.1f %12.1f %12.1f %12.1f", spec.n, spec.d,
        spec.diameter, core::logp_work_bound_ns(spec.n, spec.d, ibv) / 1e3,
        core::logp_depth_ns(spec.d, spec.diameter, ibv) / 1e3,
        core::logp_work_bound_ns(spec.n, spec.d, tcp) / 1e3,
        core::logp_depth_ns(spec.d, spec.diameter, tcp) / 1e3);
  }

  print_title("§4.2.2: probability the depth stays within the fault diameter");
  const double mttf_ns = 2.0 * 365.25 * 24 * 3600 * 1e9;
  row("%6s %4s %22s %22s", "n", "d", "P[D <= D_f] (1 round)",
      "P over 1M rounds");
  for (const auto& spec : graph::paper_table3()) {
    const double p = core::prob_depth_within_fault_diameter(
        spec.n, spec.d, tcp.overhead_ns, mttf_ns);
    row("%6zu %4zu %22.10f %22.6f", spec.n, spec.d, p, std::pow(p, 1e6));
  }
  print_note("paper: 256 servers, d=7 finish 1M rounds within D_f with "
             "probability > 99.99% — early termination pays off because "
             "failures are rare.");

  // ---- Measured vs model: the causal tracer closes the loop (§4.2) ----
  // Every origin of one sim round is trace-sampled; the merged span DAG
  // yields the empirical depth D-hat and the slowest origin's measured
  // dissemination time, next to the analytic diameter and the one-way
  // LogP depth (L + o_s + o)·D. D-hat must equal the diameter at f=0
  // (obs_trace_test asserts it); the time ratio > 1 is the contention of
  // n simultaneous broadcasts, which the uncontended model ignores.
  print_title("measured vs model: traced sim rounds (TCP/IB fabric, f=0)");
  const std::vector<std::int64_t> trace_sizes = flags.get_int_list(
      "trace-sizes", smoke_mode(flags) ? std::vector<std::int64_t>{8, 16}
                                       : std::vector<std::int64_t>{8, 16, 32});
  std::vector<MeasuredRow> measured;
  row("%6s %4s %8s %8s %12s %12s %8s", "n", "d", "D model", "D-hat",
      "model [us]", "meas [us]", "ratio");
  for (const std::int64_t sz : trace_sizes) {
    const MeasuredRow m =
        measure_depth(static_cast<std::size_t>(sz), sim::FabricParams::tcp_ib());
    row("%6zu %4zu %8zu %8zu %12.1f %12.1f %7.2fx", m.n, m.d, m.depth_model,
        m.depth_measured, m.t_model_ns / 1e3, m.t_measured_ns / 1e3, m.ratio);
    measured.push_back(m);
  }

  if (flags.has("json")) {
    // Bare --json (the Flags bool idiom stores "true") streams to stdout;
    // --json=<path> writes the file.
    std::string json_path = flags.get("json", "");
    if (json_path == "true") json_path.clear();
    std::FILE* f = json_path.empty() ? stdout : std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"work_depth_model\",\n"
                    "  \"measured_vs_model\": [\n");
    for (std::size_t i = 0; i < measured.size(); ++i) {
      const MeasuredRow& m = measured[i];
      std::fprintf(f,
                   "    {\"n\": %zu, \"d\": %zu, \"depth_model\": %zu, "
                   "\"depth_measured\": %zu, \"t_model_ns\": %.0f, "
                   "\"t_measured_ns\": %.0f, \"ratio\": %.3f}%s\n",
                   m.n, m.d, m.depth_model, m.depth_measured, m.t_model_ns,
                   m.t_measured_ns, m.ratio,
                   i + 1 < measured.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (f != stdout) {
      std::fclose(f);
      print_note("wrote " + json_path);
    }
  }
  return 0;
}
