// Wire-path micro-benchmarks: the cost of getting one message to d
// successors, measured three ways.
//
//   1. encode+relay — the old per-successor contiguous encode
//      (core::encode once per destination, as the transport did before
//      frames) vs the encode-once shared core::Frame path.
//   2. transmit — one send() syscall per frame vs one vectored sendmsg
//      batching the same frames, over a UNIX socketpair.
//   3. round state — allocations per engine round and rounds/s of an
//      in-process n-engine cluster (the start_round_state pooling).
//
// The "baseline" columns reproduce the pre-frame wire path with the same
// primitives it used, so the speedup column is a like-for-like before/after.
//
//   $ ./wire_path              # full run
//   $ ./wire_path --smoke      # ~1 s shape check
//   $ ./wire_path --json=out.json
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <new>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "graph/gs_digraph.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (this TU only): measures heap churn per round.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t a =
      std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, a, size) == 0) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace allconcur {
namespace {

using core::Engine;
using core::Frame;
using core::FrameRef;
using core::Message;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// 1. encode+relay: one message to `degree` successors.
// ---------------------------------------------------------------------------

struct RelayResult {
  double baseline_ops = 0;  ///< messages relayed/s, encode per successor
  double frame_ops = 0;     ///< messages relayed/s, encode-once frames
  double speedup = 0;
};

RelayResult bench_relay(std::size_t payload_bytes, std::size_t degree,
                        std::size_t iters) {
  const Message m = Message::bcast(
      1, 0, core::make_payload(
                std::vector<std::uint8_t>(payload_bytes, 0xab)));
  RelayResult out;
  volatile std::uint64_t sink = 0;

  {
    // Old path: the send hook serialized the full frame once per
    // destination and handed the transport an owned byte vector.
    std::deque<std::vector<std::uint8_t>> wqueue;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      for (std::size_t d = 0; d < degree; ++d) {
        wqueue.push_back(core::encode(m));
        sink += wqueue.back()[Message::kHeaderBytes];
      }
      wqueue.clear();
    }
    out.baseline_ops = static_cast<double>(iters) / seconds_since(t0);
  }
  {
    // New path: one Frame per message; destinations share it by reference.
    std::deque<FrameRef> wqueue;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      const FrameRef f = Frame::make(m);
      for (std::size_t d = 0; d < degree; ++d) {
        wqueue.push_back(f);
        sink += wqueue.back()->header()[0];
      }
      wqueue.clear();
    }
    out.frame_ops = static_cast<double>(iters) / seconds_since(t0);
  }
  out.speedup = out.frame_ops / out.baseline_ops;
  return out;
}

// ---------------------------------------------------------------------------
// 2. transmit: syscalls per flushed batch over a socketpair.
// ---------------------------------------------------------------------------

struct TransmitResult {
  double per_frame_ops = 0;  ///< frames/s with one send() each
  double vectored_ops = 0;   ///< frames/s with one sendmsg per batch
  double speedup = 0;
};

TransmitResult bench_transmit(std::size_t payload_bytes, std::size_t batch,
                              std::size_t iters) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return {};
  // A draining reader so the writer never blocks on a full buffer.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!done.load(std::memory_order_acquire)) {
      if (::read(fds[1], buf.data(), buf.size()) <= 0) break;
    }
  });

  std::vector<FrameRef> frames;
  for (std::size_t i = 0; i < batch; ++i) {
    frames.push_back(Frame::make(Message::bcast(
        1, 0,
        core::make_payload(std::vector<std::uint8_t>(payload_bytes, 0x5a)))));
  }
  std::vector<std::vector<std::uint8_t>> contiguous;
  for (const auto& f : frames) contiguous.push_back(f->to_bytes());

  TransmitResult out;
  {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      for (const auto& bytes : contiguous) {
        if (::send(fds[0], bytes.data(), bytes.size(), MSG_NOSIGNAL) < 0) {
          break;
        }
      }
    }
    out.per_frame_ops =
        static_cast<double>(iters * batch) / seconds_since(t0);
  }
  {
    std::vector<iovec> iov(2 * batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      std::size_t niov = 0;
      for (const auto& f : frames) {
        const auto header = f->header();
        iov[niov].iov_base = const_cast<std::uint8_t*>(header.data());
        iov[niov].iov_len = header.size();
        ++niov;
        const core::Payload& p = f->wire_payload();
        if (p) {
          iov[niov].iov_base = const_cast<std::uint8_t*>(p->data());
          iov[niov].iov_len = p->size();
          ++niov;
        }
      }
      msghdr mh{};
      mh.msg_iov = iov.data();
      mh.msg_iovlen = niov;
      if (::sendmsg(fds[0], &mh, MSG_NOSIGNAL) < 0) break;
    }
    out.vectored_ops =
        static_cast<double>(iters * batch) / seconds_since(t0);
  }
  done.store(true, std::memory_order_release);
  ::shutdown(fds[0], SHUT_RDWR);
  ::close(fds[0]);
  reader.join();
  ::close(fds[1]);
  out.speedup = out.vectored_ops / out.per_frame_ops;
  return out;
}

// ---------------------------------------------------------------------------
// 3. round state: allocations per round on an in-process engine cluster.
// ---------------------------------------------------------------------------

struct RoundResultBench {
  double allocs_per_round_per_node = 0;
  double rounds_per_sec = 0;
  core::EngineStats node0_stats;  ///< for the --json metrics snapshot
};

/// `with_obs` wires a default-sized flight recorder (no time source) AND a
/// causal tracer sampling 1 round in 64 into every engine — the
/// enabled-observability configuration the ≤5% overhead gate below
/// compares against this function's plain mode. `wire_codec` routes
/// every hop through the serialize → checksum-verify → copy path the TCP
/// transport executes per frame; without it messages pass by reference
/// (the round-state section wants the bare engine loop, the overhead gate
/// wants the deployment's real per-hop cost).
RoundResultBench bench_rounds(std::size_t n, std::size_t payload_bytes,
                              std::size_t rounds, bool with_obs = false,
                              bool wire_codec = false) {
  const core::GraphBuilder builder = [](std::size_t size) {
    return graph::make_gs_digraph(size, 3);
  };
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  std::deque<std::tuple<NodeId, NodeId, FrameRef>> queue;
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders;
  std::vector<std::unique_ptr<obs::TraceBuffer>> tracers;
  // Shared hop-latency histogram: the tracer reads its running mean on
  // every sampled relay, so the gate pays the real estimate-stamping cost.
  static obs::Histogram hop_hist;
  std::vector<std::unique_ptr<Engine>> engines;
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    Engine::Hooks hooks;
    hooks.send = [&queue, id](NodeId dst, const FrameRef& f) {
      queue.emplace_back(id, dst, f);
    };
    hooks.deliver = [&delivered](const core::RoundResult&) { ++delivered; };
    Engine::Options eopts;
    if (with_obs) {
      recorders.push_back(std::make_unique<obs::FlightRecorder>());
      eopts.recorder = recorders.back().get();
      tracers.push_back(std::make_unique<obs::TraceBuffer>());
      tracers.back()->set_self(id);
      tracers.back()->set_hop_histogram(&hop_hist);
      eopts.tracer = tracers.back().get();
      eopts.trace_sample_period = 64;
    }
    engines.push_back(std::make_unique<Engine>(
        id, core::View(members, builder), builder, hooks, eopts));
  }

  const auto run_round = [&] {
    for (auto& e : engines) {
      e->submit_opaque(payload_bytes);
      e->broadcast_now();
    }
    while (!queue.empty()) {
      auto [src, dst, f] = queue.front();
      queue.pop_front();
      if (wire_codec) {
        const std::vector<std::uint8_t> bytes = f->to_bytes();
        if (const auto m =
                core::decode(std::span<const std::uint8_t>(bytes))) {
          engines[dst]->on_message(src, *m);
        }
      } else {
        engines[dst]->on_message(src, f->msg());
      }
    }
  };

  // Warmup fills every pool (tracking digraphs, queues, flag vectors).
  for (int i = 0; i < 3; ++i) run_round();

  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) run_round();
  const double secs = seconds_since(t0);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs0;

  RoundResultBench out;
  out.allocs_per_round_per_node = static_cast<double>(allocs) /
                                  static_cast<double>(rounds) /
                                  static_cast<double>(n);
  out.rounds_per_sec = static_cast<double>(rounds) / secs;
  out.node0_stats = engines[0]->stats();
  return out;
}

}  // namespace
}  // namespace allconcur

int main(int argc, char** argv) {
  using namespace allconcur;
  const Flags flags(argc, argv);
  const bool smoke = bench::smoke_mode(flags);

  const std::size_t relay_iters = smoke ? 20'000 : 400'000;
  const std::size_t tx_iters = smoke ? 2'000 : 40'000;
  const std::size_t rounds = smoke ? 50 : 500;
  const std::size_t degree =
      static_cast<std::size_t>(flags.get_int("degree", 6));

  bench::print_title("Wire path: encode-once shared frames");
  bench::print_note(
      "baseline = pre-frame path (contiguous encode per successor, one "
      "syscall per frame); ops are whole messages relayed to all "
      "successors");

  bench::row("%10s %7s %16s %16s %9s", "payload B", "degree",
             "baseline msg/s", "frames msg/s", "speedup");
  const std::vector<std::int64_t> payloads = flags.get_int_list(
      "payload-bytes", smoke ? std::vector<std::int64_t>{64, 4096}
                             : std::vector<std::int64_t>{16, 64, 512, 4096,
                                                         65536});
  RelayResult relay_last;
  for (const std::int64_t p : payloads) {
    const auto r = bench_relay(static_cast<std::size_t>(p), degree,
                               static_cast<std::size_t>(p) > 8192
                                   ? relay_iters / 10
                                   : relay_iters);
    bench::row("%10lld %7zu %16.0f %16.0f %8.1fx",
               static_cast<long long>(p), degree, r.baseline_ops,
               r.frame_ops, r.speedup);
    relay_last = r;
  }

  bench::print_title("Transmit: vectored sendmsg vs send-per-frame");
  bench::row("%10s %7s %16s %16s %9s", "payload B", "batch",
             "send() frm/s", "sendmsg frm/s", "speedup");
  const auto tx = bench_transmit(smoke ? 256 : 1024, 16, tx_iters);
  bench::row("%10d %7d %16.0f %16.0f %8.1fx", smoke ? 256 : 1024, 16,
             tx.per_frame_ops, tx.vectored_ops, tx.speedup);

  bench::print_title("Round state: pooled per-round allocations");
  bench::print_note(
      "in-process GS(n,3) cluster, size-only payloads; allocations counted "
      "per round per node after warmup (frames + queue included)");
  bench::row("%6s %12s %22s %14s", "n", "payload B", "allocs/round/node",
             "rounds/s");
  const auto rr = bench_rounds(smoke ? 8 : 16, 1024, rounds);
  bench::row("%6d %12d %22.1f %14.0f", smoke ? 8 : 16, 1024,
             rr.allocs_per_round_per_node, rr.rounds_per_sec);

  // ---- Observability overhead gate (tentpole acceptance: <= 5%) ----
  // Same engine cluster, flight recorder plus causal tracer (sampling
  // 1/64) wired into every engine vs neither, every hop routed through
  // the real wire path (serialize, checksum
  // verify, payload copy) — the per-hop cost any deployment actually pays,
  // which the bare by-reference loop above deliberately skips. Machine
  // throughput here drifts by ~10% on 50 ms timescales, so comparing two
  // independent best-of runs cannot resolve a small effect: instead
  // off/on chunks run back-to-back in alternating order and the gate
  // takes the MEDIAN of the per-pair ratios — each pair sees
  // near-identical machine conditions, and the median discards pairs a
  // noise spike split.
  bench::print_title(
      "Observability: recorder + tracer (1/64) overhead (wire path)");
  const std::size_t obs_n = 8;
  const std::size_t obs_rounds = smoke ? 200 : 400;
  const std::size_t obs_pairs = smoke ? 14 : 16;
  Summary obs_ratios;
  RoundResultBench best_off, best_on;
  // Discarded warmup chunk: the first codec run pays allocator growth and
  // page faults that would bias whichever configuration goes first.
  (void)bench_rounds(obs_n, 1024, obs_rounds / 2, false, true);
  for (std::size_t pair = 0; pair < obs_pairs; ++pair) {
    RoundResultBench off, on;
    if (pair % 2 == 0) {
      off = bench_rounds(obs_n, 1024, obs_rounds, false, true);
      on = bench_rounds(obs_n, 1024, obs_rounds, true, true);
    } else {
      on = bench_rounds(obs_n, 1024, obs_rounds, true, true);
      off = bench_rounds(obs_n, 1024, obs_rounds, false, true);
    }
    obs_ratios.add(off.rounds_per_sec / on.rounds_per_sec);
    if (off.rounds_per_sec > best_off.rounds_per_sec) best_off = off;
    if (on.rounds_per_sec > best_on.rounds_per_sec) best_on = on;
  }
  const double obs_overhead_pct = 100.0 * (obs_ratios.median() - 1.0);
  bench::row("%6s %18s %18s %12s", "n", "off rounds/s", "on rounds/s",
             "overhead");
  bench::row("%6zu %18.0f %18.0f %11.1f%%", obs_n, best_off.rounds_per_sec,
             best_on.rounds_per_sec, obs_overhead_pct);

  const std::string json_path = flags.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"wire_path\",\n"
        "  \"smoke\": %s,\n"
        "  \"encode_relay\": {\"baseline_msgs_per_sec\": %.0f, "
        "\"frame_msgs_per_sec\": %.0f, \"speedup\": %.2f},\n"
        "  \"transmit\": {\"send_per_frame_frames_per_sec\": %.0f, "
        "\"vectored_frames_per_sec\": %.0f, \"speedup\": %.2f},\n"
        "  \"round_state\": {\"allocs_per_round_per_node\": %.1f, "
        "\"rounds_per_sec\": %.0f},\n"
        "  \"obs_overhead\": {\"disabled_rounds_per_sec\": %.0f, "
        "\"enabled_rounds_per_sec\": %.0f, \"overhead_pct\": %.2f}",
        smoke ? "true" : "false", relay_last.baseline_ops,
        relay_last.frame_ops, relay_last.speedup, tx.per_frame_ops,
        tx.vectored_ops, tx.speedup, rr.allocs_per_round_per_node,
        rr.rounds_per_sec, best_off.rounds_per_sec, best_on.rounds_per_sec,
        obs_overhead_pct);
    bench::write_metrics_key(
        f, bench::metrics_snapshot_json(best_on.node0_stats));
    std::fprintf(f, "}\n");
    std::fclose(f);
    bench::print_note("wrote " + json_path);
  }

  // The zero-copy relay path should beat per-successor encoding clearly;
  // a low ratio hints at a regression in Frame::make. Warning only: this
  // is a timing measurement, and CI runners are noisy neighbors — the
  // uploaded JSON is the trajectory record, not a hard gate.
  if (relay_last.speedup < 1.2) {
    std::fprintf(stderr,
                 "WARNING: frame relay speedup %.2fx < 1.2x (noisy run, or "
                 "a regression in the frame path)\n",
                 relay_last.speedup);
  }
  // Steady-state heap churn is a hard budget, not a timing measurement:
  // allocation counts are deterministic, so a regression here is real.
  // PR 3 measured 24.2 allocs/round/node; the pooled round-state engine
  // sits near 13 — fail loudly if a change regresses past the budget.
  constexpr double kAllocBudget = 30.0;
  if (rr.allocs_per_round_per_node > kAllocBudget) {
    std::fprintf(stderr,
                 "FAIL: %.1f allocs/round/node exceeds the %.1f budget "
                 "(round-state pooling regressed)\n",
                 rr.allocs_per_round_per_node, kAllocBudget);
    return 1;
  }
  // Enabled-mode observability (recorder + tracer at 1/64 sampling) must
  // stay within 5% of the bare engine loop (acceptance gate; median of
  // interleaved pairs, so this holds on noisy runners too — a trip means
  // the record()/trace path grew real work).
  if (obs_overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.1f%% exceeds the 5%% "
                 "budget (%.0f rounds/s enabled vs %.0f disabled)\n",
                 obs_overhead_pct, best_on.rounds_per_sec,
                 best_off.rounds_per_sec);
    return 1;
  }
  return 0;
}
