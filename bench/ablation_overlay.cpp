// Ablation: the overlay choice (§4.4). Same workload, same fabric, four
// overlays — GS(n,d), binomial graph, hypercube, complete digraph —
// comparing agreement latency, per-server message load and the
// reliability each overlay's connectivity buys.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

struct OverlayResult {
  std::size_t degree;
  std::size_t diameter;
  double latency_us;
  double msgs_per_server;
  double nines;
};

OverlayResult run_overlay(const std::string&, core::GraphBuilder builder,
                          std::size_t n) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.builder = std::move(builder);
  opt.fabric = sim::FabricParams::tcp_ib();
  api::SimCluster c(opt);
  TimeNs last = 0;
  c.on_deliver = [&](NodeId, const core::RoundResult&, TimeNs t) {
    last = std::max(last, t);
  };
  for (NodeId id : c.live_nodes()) c.submit_opaque(id, 64);
  c.broadcast_all_now();
  c.run_until_round_done(0, sec(10));

  OverlayResult out{};
  const auto& g = c.engine(0).view().overlay();
  out.degree = g.degree();
  out.diameter = graph::diameter(g).value_or(0);
  out.latency_us = to_us(last);
  const auto stats = c.aggregate_stats();
  // Sends are charged synchronously, so this captures the full work of the
  // round including relays still in flight when agreement is reached.
  out.msgs_per_server = static_cast<double>(stats.bcast_sent) /
                        static_cast<double>(n);
  out.nines = graph::system_reliability_nines(n, out.degree,
                                              graph::FailureModel{});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(
      flags.get_int("n", smoke_mode(flags) ? 16 : 64));

  print_title("Ablation: overlay digraph choice at n = " + std::to_string(n));
  row("%12s %4s %4s %14s %16s %8s", "overlay", "d", "D", "latency[us]",
      "sent/server", "nines");

  const std::size_t d = graph::paper_gs_degree(n);
  const struct {
    const char* name;
    core::GraphBuilder builder;
  } overlays[] = {
      {"GS(n,d)",
       [d](std::size_t m) { return graph::make_gs_digraph(m, d); }},
      {"binomial",
       [](std::size_t m) { return graph::make_binomial_graph(m); }},
      {"hypercube",
       [](std::size_t m) { return graph::make_hypercube(m); }},
      {"complete",
       [](std::size_t m) { return graph::make_complete(m); }},
  };
  for (const auto& o : overlays) {
    const auto r = run_overlay(o.name, o.builder, n);
    row("%12s %4zu %4zu %14.1f %16.1f %8.2f", o.name, r.degree, r.diameter,
        r.latency_us, r.msgs_per_server, r.nines);
  }
  print_note("GS hits the reliability target with the smallest degree; "
             "binomial/hypercube overshoot connectivity (extra work); "
             "complete minimizes depth but pays O(n^2) sends per round.");
  return 0;
}
