// Ablation: what early termination buys (§2.3, §4.2.2).
//
// Without early termination, a safe f-resilient algorithm must always wait
// the worst case of f + D_f(G,f) communication steps. AllConcur instead
// terminates as soon as the tracking digraphs resolve. We measure actual
// agreement latency in failure-free and crash rounds and compare with the
// conservative worst-case model on the same fabric.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/logp_model.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

struct Measured {
  double no_fail_us = 0;
  double with_crash_us = 0;
};

Measured measure(std::size_t n, const sim::FabricParams& fabric) {
  Measured out;
  {
    api::ClusterOptions opt;
    opt.n = n;
    opt.fabric = fabric;
    api::SimCluster c(opt);
    TimeNs last = 0;
    c.on_deliver = [&](NodeId, const core::RoundResult&, TimeNs t) {
      last = std::max(last, t);
    };
    c.broadcast_all_now();
    c.run_until_round_done(0, sec(10));
    out.no_fail_us = to_us(last);
  }
  {
    api::ClusterOptions opt;
    opt.n = n;
    opt.fabric = fabric;
    opt.detection_delay = us(100);  // isolate the algorithmic depth
    api::SimCluster c(opt);
    TimeNs last = 0;
    c.on_deliver = [&](NodeId, const core::RoundResult&, TimeNs t) {
      last = std::max(last, t);
    };
    c.crash_after_sends(static_cast<NodeId>(n / 2), 0, 1);
    c.broadcast_all_now();
    c.run_until_round_done(0, sec(10));
    out.with_crash_us = to_us(last);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto fabric = sim::FabricParams::tcp_ib();
  const core::LogP logp{static_cast<double>(fabric.latency),
                        static_cast<double>(fabric.overhead)};
  Rng rng(7);

  print_title("Ablation: early termination vs f + D_f worst-case waiting");
  row("%6s %4s %4s %6s %12s %14s %12s %16s %9s", "n", "d", "D", "δ̂_f",
      "no-fail[us]", "1 crash[us]", "hops[us]", "conserv.[us]", "saving");
  const std::vector<std::int64_t> default_sizes =
      smoke_mode(flags) ? std::vector<std::int64_t>{8, 16}
                        : std::vector<std::int64_t>{8, 16, 32, 64};
  for (const auto n : flags.get_int_list("sizes", default_sizes)) {
    const std::size_t d = graph::paper_gs_degree(static_cast<std::size_t>(n));
    const auto g = graph::make_gs_digraph(static_cast<std::size_t>(n), d);
    const auto diam = graph::diameter(g).value_or(0);
    const std::size_t f = d - 1;
    const auto delta_hat =
        n <= 16 ? graph::fault_diameter_bound(g, f)
                : graph::fault_diameter_bound_sampled(g, f, 300, rng);
    const auto m = measure(static_cast<std::size_t>(n), fabric);
    // A safe algorithm without message tracking must always assume the
    // worst case (§2.2.1): f + D_f steps, and in an asynchronous system
    // each step can only be closed out by a conservative timeout of at
    // least the failure-detection period (100 ms here, the Fig. 7
    // setting). Early termination replaces that with the actual message
    // flow. The LogP hop bound is shown for reference.
    const double kDetectMs = 100.0;
    const std::size_t steps = f + delta_hat.value_or(diam + 2);
    const double conservative_us = static_cast<double>(steps) * kDetectMs * 1e3;
    const double logp_hops_us =
        core::worst_case_depth_ns(f, delta_hat.value_or(diam + 2), d, logp) /
        1e3;
    row("%6lld %4zu %4zu %6zu %12.1f %14.1f %12.1f %16.1f %9.0fx",
        static_cast<long long>(n), d, diam, delta_hat.value_or(0),
        m.no_fail_us, m.with_crash_us, logp_hops_us, conservative_us,
        m.no_fail_us > 0 ? conservative_us / m.no_fail_us : 0.0);
  }
  print_note("early termination delivers failure-free rounds at depth ~D "
             "and crash rounds at the detection delay plus a few hops — "
             "not at the f + D_f worst case the lower bound forces on "
             "non-tracking algorithms.");
  return 0;
}
