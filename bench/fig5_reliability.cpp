// Reproduces Fig. 5: AllConcur reliability (in nines) as a function of the
// system size, comparing binomial graphs (connectivity fixed by n) with
// GS(n,d) digraphs (degree chosen for the 6-nines target).
//
// The paper's observation: the binomial graph gives either too much
// reliability (wasted work) or too little, while GS(n,d) tracks the
// target.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/reliability.hpp"

using namespace allconcur;
using namespace allconcur::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  graph::FailureModel fm;
  fm.delta_hours = flags.get_double("delta-hours", 24.0);
  fm.mttf_hours = flags.get_double("mttf-years", 2.0) * 365.25 * 24.0;
  const double target = flags.get_double("nines", 6.0);

  print_title("Fig. 5: reliability vs system size (24h, MTTF ~ 2y)");
  row("%8s %14s %16s %10s %14s", "n", "binomial d=k", "binomial nines",
      "GS d", "GS nines");
  const std::size_t max_exp = smoke_mode(flags) ? 10 : 15;
  for (std::size_t e = 3; e <= max_exp; ++e) {
    const std::size_t n = std::size_t{1} << e;
    const std::size_t k_binomial = graph::binomial_graph_degree(n);
    const double nines_binomial = graph::system_reliability_nines(
        n, k_binomial, fm);
    const auto d_gs = graph::min_gs_degree_for_target(n, target, fm);
    row("%8zu %14zu %16.2f %10s %14.2f", n, k_binomial, nines_binomial,
        d_gs ? std::to_string(*d_gs).c_str() : "-",
        d_gs ? graph::system_reliability_nines(n, *d_gs, fm) : 0.0);
  }
  print_note("binomial overshoots the 6-nines target at small n and "
             "undershoots beyond n ~ 2^13; GS stays just above it.");
  return 0;
}
