// Reproduces Fig. 9a: agreement latency in multiplayer video games —
// latency vs number of players at 200 and 400 actions per minute (APM),
// 40-byte updates, rounds paced at the 50 ms frame boundary, on the XC40
// TCP fabric.
//
// Paper anchor: 512 players at 400 APM agree in ~38 ms (28 ms at 200 APM),
// under the 50 ms frame budget — "epic battles" remain feasible.
#include <cstdio>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"

using namespace allconcur;
using namespace allconcur::bench;

namespace {

// Frame-paced run: every server broadcasts at each 50 ms frame start,
// packing the actions accumulated during the previous frame.
Summary run_frames(std::size_t n, double apm, std::size_t frames,
                   std::size_t warmup) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.fabric = sim::FabricParams::tcp_xc40();
  api::SimCluster cluster(opt);
  const DurationNs frame = ms(50);
  const double actions_per_frame = apm / 60.0 * to_sec(frame);
  const std::size_t update_bytes = 40;

  Summary latency;
  cluster.on_deliver = [&](NodeId who, const core::RoundResult& r, TimeNs t) {
    if (r.round < warmup) return;
    const auto started = cluster.broadcast_time(who, r.round);
    if (started) latency.add(to_us(t - *started));
  };
  std::vector<double> carry(n, 0.0);
  for (std::size_t f = 0; f < frames; ++f) {
    const TimeNs at = static_cast<TimeNs>(f) * frame;
    for (NodeId id = 0; id < n; ++id) {
      cluster.sim().schedule_at(at, [&cluster, &carry, id,
                                     actions_per_frame, update_bytes] {
        carry[id] += actions_per_frame;
        const auto whole = static_cast<std::size_t>(carry[id]);
        carry[id] -= static_cast<double>(whole);
        if (whole > 0) cluster.submit_opaque(id, whole * update_bytes);
        cluster.engine(id).broadcast_now();
      });
    }
  }
  cluster.run_for(static_cast<DurationNs>(frames + 40) * frame);
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = smoke_mode(flags);
  std::vector<std::int64_t> sizes = flags.get_int_list(
      "sizes", smoke ? std::vector<std::int64_t>{8, 16, 32}
                     : std::vector<std::int64_t>{8, 16, 32, 64, 128, 256});
  if (flags.get_bool("full", false)) {
    sizes.push_back(512);   // the paper's "epic battles" anchor (~40s here)
    sizes.push_back(1024);
  }
  const std::size_t frames =
      static_cast<std::size_t>(flags.get_int("frames", smoke ? 2 : 6));

  print_title("Fig. 9a: multiplayer games — latency vs players (XC40 TCP)");
  row("%8s %16s %16s %12s", "players", "200 APM [ms]", "400 APM [ms]",
      "frame budget");
  for (auto n : sizes) {
    const auto lat200 =
        run_frames(static_cast<std::size_t>(n), 200.0, frames, 2);
    const auto lat400 =
        run_frames(static_cast<std::size_t>(n), 400.0, frames, 2);
    row("%8lld %16.2f %16.2f %12s", static_cast<long long>(n),
        lat200.empty() ? -1.0 : lat200.median() / 1e3,
        lat400.empty() ? -1.0 : lat400.median() / 1e3,
        (!lat400.empty() && lat400.median() / 1e3 < 50.0) ? "OK (<50ms)"
                                                          : "exceeded");
  }
  print_note("paper anchor: 512 players < 50 ms at both APMs "
             "(28 ms / 38 ms on the real XC40).");
  return 0;
}
