#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace allconcur {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (parent.next_u64() == child.next_u64());
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace allconcur
