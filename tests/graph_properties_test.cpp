#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace allconcur::graph {
namespace {

TEST(Properties, BfsDistancesOnRing) {
  const Digraph g = make_ring(5);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[4], 4u);
}

TEST(Properties, BfsUnreachable) {
  Digraph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Properties, DiameterOfCompleteIsOne) {
  const auto d = diameter(make_complete(7));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 1u);
}

TEST(Properties, DiameterOfRing) {
  const auto d = diameter(make_ring(6));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 5u);
}

TEST(Properties, DiameterOfHypercube) {
  const auto d = diameter(make_hypercube(16));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 4u);
}

TEST(Properties, DiameterNulloptWhenDisconnected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(diameter(g).has_value());
}

TEST(Properties, DiameterAmongAliveSubset) {
  // Removing vertex 2 from a 6-ring leaves 3->4->5->0->1 reachable only
  // forward; the induced graph is a path, so no diameter.
  const Digraph g = make_ring(6);
  const Digraph h = g.without({2});
  EXPECT_FALSE(diameter_among(h, {0, 1, 3, 4, 5}).has_value());
}

TEST(Properties, StrongConnectivity) {
  EXPECT_TRUE(is_strongly_connected(make_ring(4)));
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(Properties, ReachableFrom) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto r = reachable_from(g, 0);
  EXPECT_EQ(r, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Properties, ShortestPathEndpoints) {
  const Digraph g = make_ring(6);
  const auto p = shortest_path(g, 1, 4);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 1u);
  EXPECT_EQ(p.back(), 4u);
}

TEST(Properties, ShortestPathUnreachableIsEmpty) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 1, 0).empty());
}

TEST(Properties, SccSingleComponent) {
  const auto scc = strongly_connected_components(make_ring(5));
  EXPECT_EQ(scc.count, 1u);
}

TEST(Properties, SccSplitsOnDirectedCut) {
  // Two 2-cycles joined by a one-way edge: two components.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(1, 2);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
}

TEST(Properties, SccIsolatedVertices) {
  Digraph g(3);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 3u);
}

}  // namespace
}  // namespace allconcur::graph
