// Dual-digraph fast path and the netem-style send_delay knob over real
// localhost TCP sockets: fast rounds on actual sockets (two overlays'
// worth of connections), the timeout-armed fallback on a genuinely
// delayed node, and the send_delay knob's observable latency effect.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "plus/dual_overlay.hpp"
#include "tcp_cluster.hpp"

namespace allconcur::net {
namespace {

using core::Request;
using core::RoundResult;
using testing::scaled;
using testing::TcpCluster;

std::vector<NodeId> origins(const RoundResult& r) {
  std::vector<NodeId> out;
  for (const auto& d : r.deliveries) out.push_back(d.origin);
  return out;
}

TEST(TcpDual, FastRoundsCompleteOnRealSockets) {
  TcpCluster c(5, core::FdMode::kPerfect, ms(250),
               [](TcpNodeOptions& opt) {
                 opt.fast_builder = plus::make_unreliable_builder();
               });
  const std::uint64_t kRounds = 10;
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3, 4}, kRounds, sec(30));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok);
  const auto reference = c.delivered(0);
  for (NodeId i = 0; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(rounds[r].deliveries.size(), 5u);
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]));
    }
    const auto& s = c.node(i).stats();
    EXPECT_GE(s.fast_rounds, kRounds);
    EXPECT_EQ(s.fallback_rounds, 0u);
    EXPECT_EQ(s.tracking_resets, 0u);
    EXPECT_GT(s.ubcast_sent, 0u);
  }
}

TEST(TcpDual, DelayedNodeTriggersTimeoutFallbackAndRecovers) {
  // Node 1's every send is held back well past the fallback timeout:
  // peers cannot complete fast rounds in time, fall back, and must still
  // agree — the skew/fallback claim on actual TCP, not scheduler noise.
  const DurationNs delay = scaled(ms(120));
  const DurationNs timeout = scaled(ms(30));
  TcpCluster c(4, core::FdMode::kPerfect, ms(2000),
               [&](TcpNodeOptions& opt) {
                 opt.fast_builder = plus::make_unreliable_builder();
                 opt.fallback_timeout = timeout;
                 if (opt.self == 1) opt.send_delay = delay;
               });
  const std::uint64_t kRounds = 3;
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 4; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3}, kRounds, sec(60));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok);
  const auto reference = c.delivered(0);
  std::uint64_t fallbacks = 0;
  for (NodeId i = 0; i < 4; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      // No failure: the fallback re-execution must still decide the
      // full set, identically everywhere.
      EXPECT_EQ(rounds[r].deliveries.size(), 4u) << "node " << i;
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]));
      EXPECT_TRUE(rounds[r].removed.empty());
    }
    fallbacks += c.node(i).stats().fallback_rounds;
  }
  EXPECT_GT(fallbacks, 0u) << "the induced delay never forced a fallback";
}

TEST(TcpSendDelay, KnobStretchesRoundLatency) {
  // Two classic runs, identical except every node's send_delay: the
  // delayed cluster's first rounds must take at least the delay longer.
  const DurationNs delay = scaled(ms(100));
  const auto run_once = [&](DurationNs d) {
    TcpCluster c(3, core::FdMode::kPerfect, ms(250),
                 [&](TcpNodeOptions& opt) { opt.send_delay = d; });
    const auto t0 = std::chrono::steady_clock::now();
    for (NodeId i = 0; i < 3; ++i) c.node(i).broadcast_now();
    EXPECT_TRUE(c.wait_rounds({0, 1, 2}, 1, sec(30)));
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  const auto fast_ns = run_once(0);
  const auto slow_ns = run_once(delay);
  // One round needs at least one delayed hop (in practice several); half
  // the delay is a generous slack against scheduling jitter.
  EXPECT_GT(slow_ns, fast_ns + delay / 2)
      << "send_delay had no observable effect";
}

}  // namespace
}  // namespace allconcur::net
