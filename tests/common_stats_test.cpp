#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace allconcur {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811388, 1e-6);
}

TEST(Summary, MedianOddAndEven) {
  Summary odd;
  for (double v : {5.0, 1.0, 3.0}) odd.add(v);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Summary even;
  for (double v : {4.0, 1.0, 3.0, 2.0}) even.add(v);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Summary, QuantileEndpoints) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.95), 95.05, 1e-9);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.median(), 7.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 7.5);
  const auto ci = s.median_ci95();
  EXPECT_DOUBLE_EQ(ci.lo, 7.5);
  EXPECT_DOUBLE_EQ(ci.hi, 7.5);
}

TEST(Summary, MedianCiBracketsMedian) {
  Rng rng(5);
  Summary s;
  for (int i = 0; i < 1001; ++i) s.add(rng.next_double());
  const auto ci = s.median_ci95();
  EXPECT_LE(ci.lo, ci.median);
  EXPECT_GE(ci.hi, ci.median);
  EXPECT_NEAR(ci.median, 0.5, 0.05);
  // For n=1001 uniform samples, the CI should be tight around 0.5.
  EXPECT_NEAR(ci.lo, 0.5, 0.08);
  EXPECT_NEAR(ci.hi, 0.5, 0.08);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Summary, CiWidthShrinksWithSampleCount) {
  Rng rng(6);
  Summary small, large;
  for (int i = 0; i < 51; ++i) small.add(rng.next_double());
  for (int i = 0; i < 5001; ++i) large.add(rng.next_double());
  const auto ci_small = small.median_ci95();
  const auto ci_large = large.median_ci95();
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(Summary, AddAll) {
  Summary s;
  s.add_all({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

}  // namespace
}  // namespace allconcur
