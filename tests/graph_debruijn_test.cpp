#include "graph/debruijn.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

TEST(GeneralizedDeBruijn, EdgeFormula) {
  // GB(4,2): u -> (2u+a) mod 4.
  const Multidigraph g = make_generalized_de_bruijn(4, 2);
  EXPECT_EQ(g.edge_count(), 8u);
  std::size_t found = 0;
  for (const auto& e : g.edges()) {
    if (e.tail == 1 && (e.head == 2 || e.head == 3)) ++found;
  }
  EXPECT_EQ(found, 2u);
}

TEST(GeneralizedDeBruijn, SelfLoopCountsWithinBounds) {
  for (std::size_t m : {2u, 3u, 5u, 8u}) {
    for (std::size_t d : {3u, 4u, 7u}) {
      const Multidigraph g = make_generalized_de_bruijn(m, d);
      for (NodeId v = 0; v < m; ++v) {
        const std::size_t loops = g.self_loop_count(v);
        EXPECT_GE(loops, d / m) << "m=" << m << " d=" << d << " v=" << v;
        EXPECT_LE(loops, (d + m - 1) / m) << "m=" << m << " d=" << d;
      }
    }
  }
}

TEST(DeBruijnStar, RegularAndLoopFree) {
  for (std::size_t m : {2u, 3u, 4u, 5u, 9u, 13u}) {
    for (std::size_t d : {3u, 4u, 5u, 8u, 11u}) {
      const Multidigraph g = make_de_bruijn_star(m, d);
      EXPECT_TRUE(g.is_regular(d)) << "m=" << m << " d=" << d;
      for (NodeId v = 0; v < m; ++v) {
        EXPECT_EQ(g.self_loop_count(v), 0u) << "m=" << m << " d=" << d;
      }
      EXPECT_EQ(g.edge_count(), m * d);
    }
  }
}

TEST(DeBruijnStar, SmallestCaseHasParallelEdges) {
  // G*B(2,3) is the multigraph with three parallel edges each way.
  const Multidigraph g = make_de_bruijn_star(2, 3);
  std::size_t zero_to_one = 0, one_to_zero = 0;
  for (const auto& e : g.edges()) {
    zero_to_one += (e.tail == 0 && e.head == 1);
    one_to_zero += (e.tail == 1 && e.head == 0);
  }
  EXPECT_EQ(zero_to_one, 3u);
  EXPECT_EQ(one_to_zero, 3u);
}

TEST(LineDigraph, OfDirectedTriangleIsTriangle) {
  Multidigraph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(2, 0);
  const Digraph l = line_digraph(tri);
  EXPECT_EQ(l.order(), 3u);
  EXPECT_EQ(l.edge_count(), 3u);
  EXPECT_TRUE(is_strongly_connected(l));
}

TEST(LineDigraph, DegreePreservedForRegularInput) {
  const Multidigraph g = make_de_bruijn_star(4, 3);
  const Digraph l = line_digraph(g);
  EXPECT_EQ(l.order(), 12u);
  EXPECT_TRUE(l.is_regular());
  EXPECT_EQ(l.degree(), 3u);
}

TEST(LineDigraph, ParallelEdgesBecomeDistinctVertices) {
  const Digraph l = line_digraph(make_de_bruijn_star(2, 3));
  // K_{3,3} in both directions: 6 vertices, 3-regular, diameter 2.
  EXPECT_EQ(l.order(), 6u);
  EXPECT_TRUE(l.is_regular());
  EXPECT_EQ(l.degree(), 3u);
  const auto d = diameter(l);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
}

}  // namespace
}  // namespace allconcur::graph
