// Reconfiguration policy (§4.2.2 deployment note) and SimCluster
// auto-healing: failed servers are replaced by standbys through ordinary
// agreed joins, restoring the membership and its reliability target.
#include "core/reconfig.hpp"

#include <gtest/gtest.h>

#include <map>

#include "api/sim_cluster.hpp"

namespace allconcur::core {
namespace {

TEST(Reconfig, HealthyDeploymentNeedsNothing) {
  ReconfigPolicy policy;
  policy.target_nines = 6.0;
  policy.target_size = 64;
  const auto d = evaluate_reconfig(policy, 64, 5);
  EXPECT_TRUE(d.meets_target);
  EXPECT_GE(d.current_nines, 6.0);
  EXPECT_EQ(d.replacements_needed, 0u);
  ASSERT_TRUE(d.required_degree.has_value());
  EXPECT_EQ(*d.required_degree, 5u);
}

TEST(Reconfig, ShrunkenDeploymentWantsReplacements) {
  ReconfigPolicy policy;
  policy.target_size = 64;
  const auto d = evaluate_reconfig(policy, 60, 5);
  EXPECT_EQ(d.replacements_needed, 4u);
}

TEST(Reconfig, DegreeTooLowFailsTarget) {
  ReconfigPolicy policy;
  policy.target_nines = 6.0;
  // 256 servers on a 4-connected overlay: far below 6 nines.
  const auto d = evaluate_reconfig(policy, 256, 4);
  EXPECT_FALSE(d.meets_target);
  ASSERT_TRUE(d.required_degree.has_value());
  EXPECT_GT(*d.required_degree, 4u);
}

TEST(Reconfig, TinyViewUsesCompleteOverlay) {
  ReconfigPolicy policy;
  policy.target_nines = 3.0;
  const auto d = evaluate_reconfig(policy, 4, 3);
  ASSERT_TRUE(d.required_degree.has_value());
  EXPECT_EQ(*d.required_degree, 3u);  // complete digraph on 4 vertices
}

TEST(Reconfig, SingleSurvivorIsTriviallyReliable) {
  ReconfigPolicy policy;
  const auto d = evaluate_reconfig(policy, 1, 0);
  EXPECT_TRUE(d.meets_target);
}

// ---------------------------------------------------------------------
// Auto-heal integration.
// ---------------------------------------------------------------------

TEST(AutoHeal, CrashTriggersReplacementJoin) {
  api::ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  opt.auto_heal = true;
  api::SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.crash_at(5, ms(1));
  c.broadcast_all_now();
  c.run_for(ms(20));

  // The standby (id 8) must have been admitted and the view restored to 8.
  ASSERT_TRUE(c.exists(8));
  EXPECT_TRUE(c.alive(8));
  for (NodeId id : c.live_nodes()) {
    ASSERT_FALSE(results[id].empty());
    EXPECT_EQ(results[id].back().view_size, 8u) << "node " << id;
  }
  EXPECT_FALSE(c.alive(5));
}

TEST(AutoHeal, SequentialCrashesKeepHealing) {
  api::ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  opt.auto_heal = true;
  api::SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.crash_at(3, ms(1));
  c.crash_at(6, ms(10));
  c.broadcast_all_now();
  c.run_for(ms(40));

  ASSERT_TRUE(c.exists(8));
  ASSERT_TRUE(c.exists(9));
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(results[id].back().view_size, 8u) << "node " << id;
  }
}

TEST(AutoHeal, DisabledMeansShrink) {
  api::ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  opt.auto_heal = false;
  api::SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.crash_at(5, ms(1));
  c.broadcast_all_now();
  c.run_for(ms(20));
  EXPECT_FALSE(c.exists(8));
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(results[id].back().view_size, 7u) << "node " << id;
  }
}

}  // namespace
}  // namespace allconcur::core
