// Test harness: n engines wired through an in-memory FIFO message queue
// with no notion of time. Gives protocol tests exact control over message
// interleaving, crashes (including mid-broadcast partial sends — the
// scenario of §2.3) and failure-detector verdicts.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"

namespace allconcur::testing {

using core::Engine;
using core::EngineOptions;
using core::GraphBuilder;
using core::Message;
using core::RoundResult;

class LoopbackCluster {
 public:
  LoopbackCluster(std::size_t n, GraphBuilder builder,
                  EngineOptions options = EngineOptions())
      : builder_(std::move(builder)) {
    std::vector<NodeId> members(n);
    for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = static_cast<NodeId>(i);
      Engine::Hooks hooks;
      hooks.send = [this, id](NodeId dst, const core::FrameRef& frame) {
        on_send(id, dst, frame->msg());
      };
      hooks.deliver = [this, id](const RoundResult& r) {
        delivered_[id].push_back(r);
      };
      // options.fast_builder (dual-digraph mode) flows into the View so
      // the paired G_U overlay exists for the engines.
      engines_.push_back(std::make_unique<Engine>(
          id, core::View(members, builder_, options.fast_builder), builder_,
          hooks, options));
    }
  }

  Engine& engine(NodeId id) { return *engines_[id]; }
  std::size_t size() const { return engines_.size(); }

  const std::vector<RoundResult>& delivered(NodeId id) const {
    return delivered_.at(id);
  }
  bool has_delivered(NodeId id) const { return delivered_.count(id) > 0; }

  /// Crashes a node: after `more_sends` further outgoing messages, all its
  /// sends are dropped, and it stops receiving immediately after the
  /// in-flight queue position (fail-stop).
  void crash(NodeId id, std::size_t more_sends = 0) {
    crashed_[id] = true;
    sends_left_[id] = more_sends;
  }
  bool is_crashed(NodeId id) const {
    const auto it = crashed_.find(id);
    return it != crashed_.end() && it->second;
  }

  /// Makes all live successors of `id` (in `id`'s current view) suspect
  /// it — successors along the monitor overlay, so dual-mode clusters
  /// behave like their FD (which watches G_U ∪ G_R) would.
  void suspect_everywhere(NodeId id) {
    for (const auto& e : engines_) {
      if (is_crashed(e->self()) || e->self() == id) continue;
      if (!e->view().contains(id)) continue;
      for (NodeId pred : e->view().monitor_predecessors_of(e->self())) {
        if (pred == id) {
          e->on_suspect(id);
          break;
        }
      }
    }
  }

  /// Optional message filter: return true to drop (src, dst, msg).
  std::function<bool(NodeId, NodeId, const Message&)> drop_filter;

  /// Dispatches queued messages until quiescent. Returns messages moved.
  std::size_t pump(std::size_t max_messages = 10'000'000) {
    std::size_t moved = 0;
    while (!queue_.empty() && moved < max_messages) {
      auto [src, dst, msg] = queue_.front();
      queue_.pop_front();
      ++moved;
      if (is_crashed(dst)) continue;
      engines_[dst]->on_message(src, msg);
    }
    return moved;
  }

  /// Adversarial scheduler: dispatches messages in a random global order
  /// while preserving per-link FIFO (the only ordering the algorithm may
  /// assume). Used by the property suites to explore interleavings.
  std::size_t pump_random(Rng& rng, std::size_t max_messages = 10'000'000) {
    std::size_t moved = 0;
    while (!queue_.empty() && moved < max_messages) {
      // Pick a random queued message whose (src,dst) link has no earlier
      // queued message: scan for the first occurrence per link.
      const std::size_t pick = rng.next_below(queue_.size());
      auto [src, dst, msg] = queue_[pick];
      bool earliest = true;
      for (std::size_t i = 0; i < pick; ++i) {
        if (std::get<0>(queue_[i]) == src && std::get<1>(queue_[i]) == dst) {
          earliest = false;
          break;
        }
      }
      if (!earliest) continue;  // try another pick
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      ++moved;
      if (is_crashed(dst)) continue;
      engines_[dst]->on_message(src, msg);
    }
    return moved;
  }

  std::size_t queued() const { return queue_.size(); }

 private:
  void on_send(NodeId src, NodeId dst, const Message& m) {
    const auto it = crashed_.find(src);
    if (it != crashed_.end() && it->second) {
      auto& left = sends_left_[src];
      if (left == 0) return;  // dropped: the server is gone
      --left;
    }
    if (drop_filter && drop_filter(src, dst, m)) return;
    queue_.emplace_back(src, dst, m);
  }

  GraphBuilder builder_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::map<NodeId, std::vector<RoundResult>> delivered_;
  std::map<NodeId, bool> crashed_;
  std::map<NodeId, std::size_t> sends_left_;
  std::deque<std::tuple<NodeId, NodeId, Message>> queue_;
};

}  // namespace allconcur::testing
