// Failure-free engine behaviour: Algorithm 1's happy path, round
// iteration, batching, determinism.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "graph/binomial_graph.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder gs_builder(std::size_t d) {
  return [d](std::size_t n) {
    if (n < 2 * d || n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, d);
  };
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

TEST(Engine, SingleRoundAllDeliverSameSet) {
  LoopbackCluster c(8, gs_builder(3));
  for (NodeId i = 0; i < 8; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto& rounds = c.delivered(i);
    ASSERT_EQ(rounds.size(), 1u);
    EXPECT_EQ(rounds[0].round, 0u);
    EXPECT_EQ(rounds[0].deliveries.size(), 8u);
    EXPECT_TRUE(rounds[0].removed.empty());
  }
}

TEST(Engine, DeliveriesInDeterministicOrder) {
  LoopbackCluster c(8, gs_builder(3));
  // Broadcast in scrambled order; delivery order must still be by id.
  for (NodeId i : {5u, 2u, 7u, 0u, 3u, 6u, 1u, 4u}) {
    c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    const auto& d = c.delivered(i)[0].deliveries;
    for (std::size_t k = 0; k + 1 < d.size(); ++k) {
      EXPECT_LT(d[k].origin, d[k + 1].origin);
    }
  }
}

TEST(Engine, PayloadsArriveIntact) {
  LoopbackCluster c(6, gs_builder(3));
  c.engine(2).submit(Request::of_data(bytes({0xde, 0xad, 0xbe, 0xef})));
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 6; ++i) {
    const auto& d = c.delivered(i)[0].deliveries;
    const auto batch = unpack_batch(d[2].payload);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_EQ((*batch)[0].data, bytes({0xde, 0xad, 0xbe, 0xef}));
  }
}

TEST(Engine, OneSpontaneousSenderTriggersEveryone) {
  // Only p0 has something to say; everyone else A-broadcasts empty
  // messages as a reaction (Algorithm 1 line 15).
  LoopbackCluster c(8, gs_builder(3));
  c.engine(0).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.has_delivered(i));
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 8u);
  }
}

TEST(Engine, MultipleRoundsIterate) {
  LoopbackCluster c(8, gs_builder(3));
  for (int round = 0; round < 5; ++round) {
    for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
    c.pump();
  }
  for (NodeId i = 0; i < 8; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 5u);
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(c.delivered(i)[r].round, r);
      EXPECT_EQ(c.delivered(i)[r].deliveries.size(), 8u);
    }
    EXPECT_EQ(c.engine(i).current_round(), 5u);
  }
}

TEST(Engine, RequestsBatchIntoNextRound) {
  LoopbackCluster c(6, gs_builder(3));
  c.engine(0).submit(Request::of_data(bytes({1})));
  c.engine(0).broadcast_now();
  // Submitted after the broadcast: goes into round 1's message.
  c.engine(0).submit(Request::of_data(bytes({2})));
  c.pump();
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  const auto& rounds = c.delivered(3);
  ASSERT_EQ(rounds.size(), 2u);
  const auto b0 = unpack_batch(rounds[0].deliveries[0].payload);
  const auto b1 = unpack_batch(rounds[1].deliveries[0].payload);
  ASSERT_TRUE(b0 && b1);
  ASSERT_EQ(b0->size(), 1u);
  ASSERT_EQ(b1->size(), 1u);
  EXPECT_EQ((*b0)[0].data, bytes({1}));
  EXPECT_EQ((*b1)[0].data, bytes({2}));
}

TEST(Engine, BroadcastNowIsIdempotent) {
  LoopbackCluster c(6, gs_builder(3));
  c.engine(0).broadcast_now();
  c.engine(0).broadcast_now();
  c.engine(0).broadcast_now();
  for (NodeId i = 1; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  EXPECT_EQ(c.delivered(1)[0].deliveries.size(), 6u);
}

TEST(Engine, SizeOnlyPayloadsCarrySizes) {
  LoopbackCluster c(6, gs_builder(3));
  c.engine(4).submit_opaque(4096);
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  const auto& d = c.delivered(0)[0].deliveries;
  EXPECT_EQ(d[4].bytes, 4096u);
  EXPECT_EQ(d[4].payload, nullptr);
  EXPECT_EQ(d[0].bytes, 0u);
}

TEST(Engine, WorkMatchesAnalysis) {
  // §4.1: without failures every server receives an A-broadcast message
  // from each of its d predecessors for every origin — but our relays skip
  // the link a message arrived on, so received <= (n-1)*d and > (n-1).
  const std::size_t n = 8, d = 3;
  LoopbackCluster c(n, gs_builder(d));
  for (NodeId i = 0; i < n; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < n; ++i) {
    const auto& s = c.engine(i).stats();
    EXPECT_LE(s.bcast_received, (n - 1) * d);
    EXPECT_GE(s.bcast_received, n - 1);
    EXPECT_EQ(s.fail_received, 0u);
    EXPECT_EQ(s.dropped_suspected, 0u);
    EXPECT_EQ(s.dropped_lost, 0u);
  }
}

TEST(Engine, SingleServerDeliversAlone) {
  LoopbackCluster c(1, gs_builder(3));
  c.engine(0).submit(Request::of_data(bytes({9})));
  c.engine(0).broadcast_now();
  c.pump();
  ASSERT_TRUE(c.has_delivered(0));
  EXPECT_EQ(c.delivered(0)[0].deliveries.size(), 1u);
}

TEST(Engine, TwoServers) {
  LoopbackCluster c(2, gs_builder(3));
  c.engine(0).broadcast_now();
  c.engine(1).broadcast_now();
  c.pump();
  EXPECT_EQ(c.delivered(0)[0].deliveries.size(), 2u);
  EXPECT_EQ(c.delivered(1)[0].deliveries.size(), 2u);
}

TEST(Engine, BinomialOverlayWorksToo) {
  LoopbackCluster c(9, [](std::size_t n) {
    return graph::make_binomial_graph(n);
  });
  for (NodeId i = 0; i < 9; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 9; ++i) {
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 9u);
  }
}

TEST(Engine, RelayIsEncodedOnceAndCountsActualSends) {
  // n = 4 complete graph: out-degree 3 from every node.
  std::vector<NodeId> members{0, 1, 2, 3};
  std::vector<std::pair<NodeId, FrameRef>> sent;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId dst, const FrameRef& f) {
    sent.emplace_back(dst, f);
  };
  hooks.deliver = [](const RoundResult&) {};
  const GraphBuilder complete = [](std::size_t n) {
    return graph::make_complete(n);
  };
  Engine e(0, View(members, complete), complete, hooks);

  const Payload inbound = make_payload({1, 2, 3});
  e.on_message(1, Message::bcast(0, 1, inbound));

  // Line 15 first A-broadcasts our own message (3 successors), then the
  // relay goes to every successor except the inbound link (2 sends).
  ASSERT_EQ(sent.size(), 5u);
  // All sends of one message share the same frame object: encoded once
  // per message regardless of out-degree.
  EXPECT_EQ(sent[0].second.get(), sent[1].second.get());
  EXPECT_EQ(sent[1].second.get(), sent[2].second.get());
  EXPECT_EQ(sent[3].second.get(), sent[4].second.get());
  EXPECT_NE(sent[2].second.get(), sent[3].second.get());
  EXPECT_EQ(e.stats().frames_encoded, 2u);
  // The relayed frame shares the inbound payload bytes: zero copies.
  EXPECT_EQ(sent[3].second->msg().origin, 1u);
  EXPECT_EQ(sent[3].second->wire_payload().get(), inbound.get());
  // bcast_sent counts actual sends — 3 own + 2 relayed (the inbound link
  // is skipped), not 2 * out-degree.
  EXPECT_EQ(e.stats().bcast_sent, 5u);
  for (std::size_t i = 3; i < sent.size(); ++i) {
    EXPECT_NE(sent[i].first, 1u) << "relayed back on the inbound link";
  }
}

TEST(Engine, FullRoundEncodesEachMessageOncePerNode) {
  LoopbackCluster c(8, gs_builder(3));  // GS(8, 3): out-degree 3
  for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    const auto& s = c.engine(i).stats();
    // One frame per message this node emitted: its own broadcast plus one
    // relay per peer message — n frames per failure-free round, while the
    // sends fan out over the out-degree.
    EXPECT_EQ(s.frames_encoded, 8u) << "node " << i;
    EXPECT_GT(s.bcast_sent, s.frames_encoded) << "node " << i;
  }
}

TEST(Engine, LargeDeploymentDelivers) {
  const std::size_t n = 90;
  LoopbackCluster c(n, gs_builder(5));
  for (NodeId i = 0; i < n; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_TRUE(c.has_delivered(i));
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), n);
  }
}

}  // namespace
}  // namespace allconcur::core
