#include "graph/reliability.hpp"

#include <gtest/gtest.h>

#include "graph/gs_digraph.hpp"

namespace allconcur::graph {
namespace {

TEST(Reliability, FailureProbabilityDefault) {
  const FailureModel fm;
  // Δ=24h, MTTF≈2y: p_f ≈ 1.37e-3.
  EXPECT_NEAR(fm.p_f(), 1.368e-3, 1e-5);
}

TEST(Reliability, MonotonicInConnectivity) {
  const FailureModel fm;
  double prev = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    const double r = system_reliability(64, k, fm);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Reliability, DecreasesWithSystemSize) {
  const FailureModel fm;
  EXPECT_GT(system_reliability(16, 4, fm), system_reliability(256, 4, fm));
}

TEST(Reliability, PerfectWhenNoFailuresPossible) {
  FailureModel fm;
  fm.delta_hours = 0.0;
  EXPECT_DOUBLE_EQ(system_reliability(100, 3, fm), 1.0);
}

TEST(Reliability, SixNinesDegreesMatchTable3Shape) {
  // Independent recomputation of Table 3's minimal degrees. Two rows are
  // borderline w.r.t. the paper's "MTTF ≈ 2 years" (see DESIGN.md): allow
  // the computed d to differ from the published one by at most 1, and
  // require exact match away from the boundary rows.
  const FailureModel fm;
  const std::vector<std::pair<std::size_t, std::size_t>> exact = {
      {6, 3}, {8, 3}, {11, 3}, {16, 4}, {22, 4}, {32, 4},
      {45, 4}, {64, 5}, {90, 5}, {256, 7}, {512, 8}};
  for (const auto& [n, d_published] : exact) {
    const auto d = min_gs_degree_for_target(n, 6.0, fm);
    ASSERT_TRUE(d.has_value()) << "n=" << n;
    EXPECT_EQ(*d, d_published) << "n=" << n;
  }
  for (std::size_t n : {128u, 1024u}) {
    const auto d = min_gs_degree_for_target(n, 6.0, fm);
    ASSERT_TRUE(d.has_value());
    std::size_t published = 0;
    for (const auto& row : paper_table3()) {
      if (row.n == n) published = row.d;
    }
    EXPECT_LE(*d > published ? *d - published : published - *d, 1u)
        << "n=" << n;
  }
}

TEST(Reliability, PublishedDegreesMeetNearlySixNines) {
  // Every published (n,d) must deliver at least ~6 nines under the paper's
  // failure model (tolerance for the borderline rows).
  const FailureModel fm;
  for (const auto& row : paper_table3()) {
    EXPECT_GE(system_reliability_nines(row.n, row.d, fm), 5.9)
        << "GS(" << row.n << "," << row.d << ")";
  }
}

TEST(Reliability, MinDegreeRespectsGsConstraint) {
  // n < 2d means GS cannot be built: for n=6 the max degree is 3.
  const FailureModel fm;
  const auto d = min_gs_degree_for_target(6, 6.0, fm);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 3u);
}

TEST(Reliability, UnreachableTargetIsNullopt) {
  FailureModel fm;
  fm.delta_hours = 24.0 * 365.25;  // a full year between repairs
  fm.mttf_hours = 24.0 * 30.0;     // MTTF of a month
  EXPECT_FALSE(min_gs_degree_for_target(8, 6.0, fm).has_value());
}

TEST(Reliability, PaperGsDegreeLookup) {
  EXPECT_EQ(paper_gs_degree(6), 3u);
  EXPECT_EQ(paper_gs_degree(8), 3u);
  EXPECT_EQ(paper_gs_degree(32), 4u);
  EXPECT_EQ(paper_gs_degree(64), 5u);
  EXPECT_EQ(paper_gs_degree(512), 8u);
  EXPECT_EQ(paper_gs_degree(1024), 11u);
  // Interpolation picks the next-larger published row.
  EXPECT_EQ(paper_gs_degree(100), 5u);
  EXPECT_EQ(paper_gs_degree(7), 3u);
}

TEST(Reliability, NinesIncreaseWithDegreeForFig5Curve) {
  // The Fig. 5 GS curve: at fixed n, more connectivity -> more nines.
  const FailureModel fm;
  EXPECT_LT(system_reliability_nines(1024, 5, fm),
            system_reliability_nines(1024, 11, fm));
}

}  // namespace
}  // namespace allconcur::graph
