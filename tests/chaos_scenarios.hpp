// Committed chaos-scenario catalog: the fault schedules CI replays, one
// builder per fault class. A (builder, seed) pair fully determines the
// schedule — the property suites sweep committed seeds through these, and
// the README's fault matrix documents how to replay a failing seed
// locally. Keep the knob values stable: changing them silently changes
// every committed schedule.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "chaos/scenario.hpp"

namespace allconcur::testing {

/// Reorder + duplication on every link. No loss, so this is safe for
/// classic mode (which has no retransmission): every frame still arrives
/// at least once, just late, jittered, or twice.
inline chaos::Scenario reorder_dup_scenario(std::uint64_t seed) {
  chaos::LinkFaults f;
  f.duplicate = 0.12;
  f.reorder = 0.35;
  f.reorder_jitter = us(400);
  return chaos::Scenario(seed).faults(0, kTimeNever, f);
}

/// Wire corruption (plus light duplication) on every link. Corruption
/// becomes loss at the receiver's checksum, so run this against the
/// dual-digraph mode, whose watchdog re-floods recover lost frames.
inline chaos::Scenario corruption_scenario(std::uint64_t seed) {
  chaos::LinkFaults f;
  f.corrupt = 0.05;
  f.duplicate = 0.05;
  return chaos::Scenario(seed).faults(0, kTimeNever, f);
}

/// Symmetric partition of `group` during [from, until), then heal.
inline chaos::Scenario partition_heal_scenario(std::uint64_t seed,
                                               std::vector<NodeId> group,
                                               TimeNs from, TimeNs until) {
  return chaos::Scenario(seed).partition(from, until, std::move(group));
}

/// Gray failure: `node` stays alive but every frame it sends is delayed
/// by `slowdown` and lost with probability `drop` — the trickle pattern
/// that re-arms an uncapped progress-aware watchdog forever.
inline chaos::Scenario gray_scenario(std::uint64_t seed, NodeId node,
                                     DurationNs slowdown, double drop) {
  return chaos::Scenario(seed).gray(0, kTimeNever, node, slowdown, drop);
}

}  // namespace allconcur::testing
