#include "graph/binomial_graph.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

TEST(BinomialGraph, PaperExampleN12) {
  // §4.2.3: n=12 has p_i± = {±1, ±2, ±4} (±8 ≡ ∓4), connectivity 6,
  // diameter 2.
  const Digraph g = make_binomial_graph(12);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 6u);
  EXPECT_EQ(binomial_graph_degree(12), 6u);
  const auto d = diameter(g);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 2u);
  EXPECT_EQ(vertex_connectivity(g), 6u);
}

TEST(BinomialGraph, PaperExampleN9) {
  // §2.3's example: 9 servers, offsets ±{1,2,4} -> 6-regular.
  const Digraph g = make_binomial_graph(9);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 6u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 8));  // 0 - 1 mod 9
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(0, 5));  // 0 - 4 mod 9
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(BinomialGraph, SymmetricEdges) {
  const Digraph g = make_binomial_graph(20);
  for (NodeId u = 0; u < g.order(); ++u) {
    for (NodeId v : g.successors(u)) {
      EXPECT_TRUE(g.has_edge(v, u)) << u << "->" << v;
    }
  }
}

TEST(BinomialGraph, DegreeGrowsLogarithmically) {
  // Degree is 2*floor(log2 n) + O(1) — compare a few sizes.
  EXPECT_EQ(binomial_graph_degree(16), 7u);  // ±{1,2,4,8}: 8 ≡ -8 dedupes
  EXPECT_LE(binomial_graph_degree(64), 13u);
  EXPECT_GE(binomial_graph_degree(64), 11u);
  EXPECT_LE(binomial_graph_degree(1024), 21u);
}

TEST(BinomialGraph, DegreeHelperMatchesConstruction) {
  for (std::size_t n : {5u, 9u, 12u, 17u, 33u, 100u}) {
    EXPECT_EQ(make_binomial_graph(n).degree(), binomial_graph_degree(n))
        << "n=" << n;
  }
}

TEST(BinomialGraph, OptimallyConnectedSmall) {
  for (std::size_t n : {9u, 12u, 16u}) {
    const Digraph g = make_binomial_graph(n);
    EXPECT_EQ(vertex_connectivity(g), g.degree()) << "n=" << n;
  }
}

TEST(BinomialGraph, StronglyConnected) {
  for (std::size_t n : {3u, 7u, 31u, 100u}) {
    EXPECT_TRUE(is_strongly_connected(make_binomial_graph(n))) << "n=" << n;
  }
}

}  // namespace
}  // namespace allconcur::graph
