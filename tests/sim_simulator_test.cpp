#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace allconcur::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(ms(30), [&] { order.push_back(3); });
  s.schedule(ms(10), [&] { order.push_back(1); });
  s.schedule(ms(20), [&] { order.push_back(2); });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), ms(30));
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(ms(5), [&order, i] { order.push_back(i); });
  }
  s.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, HandlersCanScheduleMore) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.schedule(ms(1), chain);
  };
  s.schedule(ms(1), chain);
  s.run_to_completion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), ms(5));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int ran = 0;
  s.schedule(ms(10), [&] { ++ran; });
  s.schedule(ms(20), [&] { ++ran; });
  s.run_until(ms(15));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), ms(15));
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(ms(25));
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(ms(100));
  EXPECT_EQ(s.now(), ms(100));
  EXPECT_TRUE(s.idle());
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  bool fired = false;
  s.schedule_at(ms(42), [&] { fired = true; });
  s.run_until(ms(41));
  EXPECT_FALSE(fired);
  s.run_until(ms(42));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventCountTracked) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run_to_completion();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(SimulatorDeath, SchedulingInThePastAborts) {
  Simulator s;
  s.schedule(ms(5), [] {});
  s.run_to_completion();
  EXPECT_DEATH(s.schedule_at(ms(1), [] {}), "past");
}

}  // namespace
}  // namespace allconcur::sim
