// Degenerate-size coverage for the overlay constructors: parameters below
// each family's validity range (n < 2d for GS, d = 1 for Kautz, n not a
// multiple of d+1 for Kautz-by-order, m < 2 for de Bruijn) must take the
// documented complete-graph fallback instead of aborting or UB.
#include <gtest/gtest.h>

#include "core/view.hpp"
#include "graph/connectivity.hpp"
#include "graph/debruijn.hpp"
#include "graph/digraph.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/kautz.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

// ----------------------------------------------------------------- GS(n,d)

TEST(GsDegenerate, BelowTwoDFallsBackToComplete) {
  // n < 2d: 5 < 6, 7 < 8, 11 < 22 — each must be K_n, not an abort.
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 3}, {7, 4}, {11, 11}}) {
    const Digraph g = make_gs_digraph(n, d);
    EXPECT_EQ(g, make_complete(n)) << "GS(" << n << "," << d << ")";
  }
}

TEST(GsDegenerate, DegreeBelowThreeFallsBackToComplete) {
  EXPECT_EQ(make_gs_digraph(8, 1), make_complete(8));
  EXPECT_EQ(make_gs_digraph(8, 2), make_complete(8));
  EXPECT_EQ(make_gs_digraph(8, 0), make_complete(8));
}

TEST(GsDegenerate, TinyOrdersAreEdgeless) {
  EXPECT_EQ(make_gs_digraph(0, 3).order(), 0u);
  const Digraph one = make_gs_digraph(1, 3);
  EXPECT_EQ(one.order(), 1u);
  EXPECT_EQ(one.edge_count(), 0u);
}

TEST(GsDegenerate, FallbackStillMeetsConnectivityTarget) {
  // The fallback's whole point: K_n has k = n-1 >= d, so every
  // fault-tolerance bound derived from the requested degree still holds.
  const Digraph g = make_gs_digraph(5, 3);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 4u);
  EXPECT_GE(vertex_connectivity(g), 3u);
}

TEST(GsDegenerate, BoundaryIsExactlyTwoD) {
  // n == 2d is the smallest genuine GS digraph; it must NOT fall back.
  const Digraph g = make_gs_digraph(6, 3);
  EXPECT_NE(g, make_complete(6));
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 3u);
  EXPECT_TRUE(is_strongly_connected(g));
}

// ------------------------------------------------------------------ Kautz

TEST(KautzDegenerate, DegreeOneIsTheTwoCycle) {
  // K(1, D) has order 2 for every D and is the complete digraph on 2
  // vertices; the Imase–Itoh arithmetic must produce it, not abort.
  for (std::size_t diameter = 1; diameter <= 4; ++diameter) {
    EXPECT_EQ(kautz_order(1, diameter), 2u);
    EXPECT_EQ(make_kautz(1, diameter), make_complete(2));
  }
}

TEST(KautzByOrder, ExactOrdersBuildKautz) {
  // d=2: orders 3, 6, 12, 24; d=3: orders 4, 12, 36.
  EXPECT_EQ(make_kautz_of_order(12, 2), make_kautz(2, 3));
  EXPECT_EQ(make_kautz_of_order(36, 3), make_kautz(3, 3));
  EXPECT_EQ(make_kautz_of_order(4, 3), make_kautz(3, 1));
  EXPECT_EQ(make_kautz_of_order(2, 1), make_kautz(1, 1));
}

TEST(KautzByOrder, NonMultipleOfDPlusOneFallsBackToComplete) {
  // 10 is not a multiple of 3 (d=2) and 13 not a multiple of 4 (d=3).
  EXPECT_EQ(make_kautz_of_order(10, 2), make_complete(10));
  EXPECT_EQ(make_kautz_of_order(13, 3), make_complete(13));
}

TEST(KautzByOrder, MultipleOfDPlusOneButNotAKautzOrderFallsBack) {
  // 9 = 3*3 is a multiple of d+1 = 3 but the d=2 orders are 3, 6, 12, ...
  EXPECT_EQ(make_kautz_of_order(9, 2), make_complete(9));
  // 24 = 6*4 is a multiple of d+1 = 4 but the d=3 orders are 4, 12, 36.
  EXPECT_EQ(make_kautz_of_order(24, 3), make_complete(24));
}

TEST(KautzByOrder, DegenerateInputs) {
  EXPECT_EQ(make_kautz_of_order(0, 2).order(), 0u);
  EXPECT_EQ(make_kautz_of_order(1, 2).order(), 1u);
  EXPECT_EQ(make_kautz_of_order(6, 0), make_complete(6));
  // d = 1, n > 2: only order 2 exists, so every larger n falls back.
  EXPECT_EQ(make_kautz_of_order(6, 1), make_complete(6));
}

// -------------------------------------------------------------- de Bruijn

TEST(DeBruijnDegenerate, TinyOrdersAreEdgeless) {
  for (std::size_t m : {0u, 1u}) {
    const Multidigraph gb = make_generalized_de_bruijn(m, 3);
    EXPECT_EQ(gb.order(), m);
    EXPECT_EQ(gb.edges().size(), 0u);
    const Multidigraph star = make_de_bruijn_star(m, 3);
    EXPECT_EQ(star.order(), m);
    EXPECT_EQ(star.edges().size(), 0u);
  }
}

TEST(DeBruijnDegenerate, ZeroDegreeIsEdgeless) {
  EXPECT_EQ(make_generalized_de_bruijn(4, 0).edges().size(), 0u);
  EXPECT_EQ(make_de_bruijn_star(4, 0).edges().size(), 0u);
}

// ------------------------------------------------- default overlay builder

TEST(DefaultBuilder, EveryMembershipSizeIsDeployable) {
  // The engine's default builder must produce a usable overlay at every
  // size without special-casing, including the degenerate ones.
  const auto builder = core::make_default_graph_builder();
  for (std::size_t n = 0; n <= 24; ++n) {
    const Digraph g = builder(n);
    ASSERT_EQ(g.order(), n) << "n=" << n;
    if (n >= 2) {
      EXPECT_TRUE(is_strongly_connected(g)) << "n=" << n;
      EXPECT_TRUE(g.is_regular()) << "n=" << n;
    }
    if (n >= 2 && n < 6) EXPECT_EQ(g, make_complete(n)) << "n=" << n;
  }
}

}  // namespace
}  // namespace allconcur::graph
