#include "core/batch.hpp"

#include <gtest/gtest.h>

namespace allconcur::core {
namespace {

TEST(Batch, EmptyBatchIsNullPayload) {
  EXPECT_EQ(pack_batch({}), nullptr);
  const auto requests = unpack_batch(nullptr);
  ASSERT_TRUE(requests.has_value());
  EXPECT_TRUE(requests->empty());
}

TEST(Batch, RoundTripData) {
  std::vector<Request> in;
  in.push_back(Request::of_data({1, 2, 3}));
  in.push_back(Request::of_data({}));
  in.push_back(Request::of_data({0xff}));
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].data, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE((*out)[1].data.empty());
  EXPECT_EQ((*out)[2].data, (std::vector<std::uint8_t>{0xff}));
  for (const auto& r : *out) EXPECT_EQ(r.kind, Request::Kind::kData);
}

TEST(Batch, RoundTripControl) {
  std::vector<Request> in{Request::join(42), Request::leave(17),
                          Request::of_data({5})};
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].kind, Request::Kind::kJoin);
  EXPECT_EQ((*out)[0].subject, 42u);
  EXPECT_EQ((*out)[1].kind, Request::Kind::kLeave);
  EXPECT_EQ((*out)[1].subject, 17u);
  EXPECT_EQ((*out)[2].kind, Request::Kind::kData);
}

TEST(Batch, SizeIsNinePlusDataPerRequest) {
  std::vector<Request> in{Request::of_data(std::vector<std::uint8_t>(64, 7))};
  const auto p = pack_batch(in);
  ASSERT_TRUE(p != nullptr);
  EXPECT_EQ(p->size(), 9u + 64u);
}

TEST(Batch, UnpackRejectsTruncated) {
  const auto p = pack_batch({Request::of_data({1, 2, 3, 4})});
  auto bytes = *p;
  bytes.pop_back();
  EXPECT_FALSE(unpack_batch(make_payload(std::move(bytes))).has_value());
}

TEST(Batch, UnpackRejectsBadKind) {
  auto bytes = *pack_batch({Request::of_data({1})});
  bytes[0] = 9;
  EXPECT_FALSE(unpack_batch(make_payload(std::move(bytes))).has_value());
}

TEST(Batch, LargeBatchRoundTrip) {
  std::vector<Request> in;
  for (int i = 0; i < 1000; ++i) {
    in.push_back(Request::of_data(
        std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(i))));
  }
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 1000u);
  EXPECT_EQ((*out)[999].data[0], static_cast<std::uint8_t>(999));
}

}  // namespace
}  // namespace allconcur::core
