#include "core/batch.hpp"

#include <gtest/gtest.h>

namespace allconcur::core {
namespace {

TEST(Batch, EmptyBatchIsNullPayload) {
  EXPECT_EQ(pack_batch({}), nullptr);
  const auto requests = unpack_batch(nullptr);
  ASSERT_TRUE(requests.has_value());
  EXPECT_TRUE(requests->empty());
}

TEST(Batch, RoundTripData) {
  std::vector<Request> in;
  in.push_back(Request::of_data({1, 2, 3}));
  in.push_back(Request::of_data({}));
  in.push_back(Request::of_data({0xff}));
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].data, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE((*out)[1].data.empty());
  EXPECT_EQ((*out)[2].data, (std::vector<std::uint8_t>{0xff}));
  for (const auto& r : *out) EXPECT_EQ(r.kind, Request::Kind::kData);
}

TEST(Batch, RoundTripControl) {
  std::vector<Request> in{Request::join(42), Request::leave(17),
                          Request::of_data({5})};
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].kind, Request::Kind::kJoin);
  EXPECT_EQ((*out)[0].subject, 42u);
  EXPECT_EQ((*out)[1].kind, Request::Kind::kLeave);
  EXPECT_EQ((*out)[1].subject, 17u);
  EXPECT_EQ((*out)[2].kind, Request::Kind::kData);
}

TEST(Batch, SizeIsNinePlusDataPerRequest) {
  std::vector<Request> in{Request::of_data(std::vector<std::uint8_t>(64, 7))};
  const auto p = pack_batch(in);
  ASSERT_TRUE(p != nullptr);
  EXPECT_EQ(p->size(), 9u + 64u);
}

TEST(Batch, UnpackRejectsTruncated) {
  const auto p = pack_batch({Request::of_data({1, 2, 3, 4})});
  auto bytes = *p;
  bytes.pop_back();
  EXPECT_FALSE(unpack_batch(make_payload(std::move(bytes))).has_value());
}

TEST(Batch, UnpackRejectsBadKind) {
  auto bytes = *pack_batch({Request::of_data({1})});
  bytes[0] = 9;
  EXPECT_FALSE(unpack_batch(make_payload(std::move(bytes))).has_value());
}

TEST(Batch, ScanMembershipFindsControlsWithoutUnpacking) {
  const Payload p = pack_batch({Request::of_data({1, 2, 3}),
                                Request::join(42), Request::of_data({}),
                                Request::leave(7), Request::join(9)});
  std::vector<std::pair<Request::Kind, NodeId>> seen;
  ASSERT_TRUE(scan_membership(
      p, [&](Request::Kind k, NodeId s) { seen.emplace_back(k, s); }));
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_pair(Request::Kind::kJoin, NodeId{42}));
  EXPECT_EQ(seen[1], std::make_pair(Request::Kind::kLeave, NodeId{7}));
  EXPECT_EQ(seen[2], std::make_pair(Request::Kind::kJoin, NodeId{9}));
}

TEST(Batch, ScanMembershipNullAndMalformed) {
  std::size_t calls = 0;
  const auto count = [&](Request::Kind, NodeId) { ++calls; };
  EXPECT_TRUE(scan_membership(nullptr, count));
  EXPECT_EQ(calls, 0u);

  // Malformed bytes are rejected atomically: nothing is emitted even if a
  // valid control entry precedes the damage.
  auto bytes = *pack_batch({Request::join(5), Request::of_data({1, 2})});
  bytes.pop_back();
  EXPECT_FALSE(scan_membership(make_payload(std::move(bytes)), count));
  EXPECT_EQ(calls, 0u);

  auto bad_kind = *pack_batch({Request::join(5)});
  bad_kind[0] = 9;
  EXPECT_FALSE(scan_membership(make_payload(std::move(bad_kind)), count));
  EXPECT_EQ(calls, 0u);
}

TEST(Batch, LargeBatchRoundTrip) {
  std::vector<Request> in;
  for (int i = 0; i < 1000; ++i) {
    in.push_back(Request::of_data(
        std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(i))));
  }
  const auto out = unpack_batch(pack_batch(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 1000u);
  EXPECT_EQ((*out)[999].data[0], static_cast<std::uint8_t>(999));
}

}  // namespace
}  // namespace allconcur::core
