// Baseline sanity: the unreliable allgather and the leader-based group
// must exhibit the structural properties §4.5 compares against.
#include <gtest/gtest.h>

#include "baseline/allgather.hpp"
#include "baseline/leader_based.hpp"

namespace allconcur::baseline {
namespace {

sim::FabricParams fast_fabric() {
  auto p = sim::FabricParams::tcp_xc40();
  p.congestion_threshold_bytes = 0;
  return p;
}

TEST(Allgather, RingCompletes) {
  AllgatherParams p;
  p.n = 8;
  p.block_bytes = 1024;
  p.rounds = 3;
  const auto r = run_allgather(p, fast_fabric());
  EXPECT_GT(r.total_time, 0);
  EXPECT_GT(r.agreement_gbps, 0.0);
}

TEST(Allgather, RecursiveDoublingCompletes) {
  AllgatherParams p;
  p.n = 16;
  p.block_bytes = 256;
  p.rounds = 3;
  p.algo = AllgatherAlgo::kRecursiveDoubling;
  const auto r = run_allgather(p, fast_fabric());
  EXPECT_GT(r.total_time, 0);
}

TEST(Allgather, ThroughputRisesWithBatching) {
  AllgatherParams small, large;
  small.n = large.n = 8;
  small.rounds = large.rounds = 3;
  small.block_bytes = 8 * 128;     // 2^7 8-byte requests
  large.block_bytes = 8 * 8192;    // 2^13
  EXPECT_GT(run_allgather(large, fast_fabric()).agreement_gbps,
            run_allgather(small, fast_fabric()).agreement_gbps);
}

TEST(Allgather, RingNearStreamRateAtLargeBatch) {
  // Ring allgather at large batch should approach the per-stream rate
  // (~1/0.65 ns per byte = 12.3 Gbps on the XC40 profile).
  AllgatherParams p;
  p.n = 8;
  p.block_bytes = 8 * 32768;
  p.rounds = 3;
  const auto r = run_allgather(p, fast_fabric());
  EXPECT_GT(r.agreement_gbps, 6.0);
  EXPECT_LT(r.agreement_gbps, 14.0);
}

TEST(LeaderBased, CompletesAndReportsThroughput) {
  LeaderBasedParams p;
  p.n = 8;
  p.batch_bytes = 1024;
  p.rounds = 3;
  const auto r = run_leader_based(p, fast_fabric());
  EXPECT_GT(r.total_time, 0);
  EXPECT_GT(r.agreement_gbps, 0.0);
}

TEST(LeaderBased, LeaderDoesQuadraticWork) {
  LeaderBasedParams p;
  p.n = 16;
  p.batch_bytes = 64;
  p.rounds = 2;
  const auto r = run_leader_based(p, fast_fabric());
  // Per round the leader handles >= n receives + n*(n + group) sends/acks.
  EXPECT_GE(r.leader_messages,
            p.rounds * (p.n + p.n * p.n));
  EXPECT_LE(r.server_messages, p.rounds * (1 + p.n));
}

TEST(LeaderBased, DecreeCpuThrottlesThroughput) {
  LeaderBasedParams fast, slow;
  fast.n = slow.n = 8;
  fast.batch_bytes = slow.batch_bytes = 8 * 4096;
  fast.rounds = slow.rounds = 3;
  fast.decree_cpu_fixed = us(50);
  fast.decree_cpu_ns_per_byte = 1.0;
  slow.decree_cpu_fixed = us(500);
  slow.decree_cpu_ns_per_byte = 10.0;
  EXPECT_GT(run_leader_based(fast, fast_fabric()).agreement_gbps,
            2 * run_leader_based(slow, fast_fabric()).agreement_gbps);
}

TEST(LeaderBased, ThroughputDropsAtLargeScale) {
  // §4.5: the leader's O(n^2) byte volume eventually dominates the decree
  // pipeline. At moderate n the single-threaded decree engine is the
  // bottleneck and throughput stays flat — exactly the bunched curves of
  // Fig. 10c — while at n=512 the leader NIC cost takes over.
  LeaderBasedParams small, mid, large;
  small.batch_bytes = mid.batch_bytes = large.batch_bytes = 8 * 4096;
  small.rounds = mid.rounds = large.rounds = 3;
  small.n = 8;
  mid.n = 64;
  large.n = 512;
  const double t_small = run_leader_based(small, fast_fabric()).agreement_gbps;
  const double t_mid = run_leader_based(mid, fast_fabric()).agreement_gbps;
  const double t_large = run_leader_based(large, fast_fabric()).agreement_gbps;
  EXPECT_GT(1.3 * t_small, t_mid);  // flat-ish up to mid scale
  EXPECT_GT(t_small, 2 * t_large);  // collapses at large n
}

}  // namespace
}  // namespace allconcur::baseline
