#include "core/failure_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/logp_model.hpp"

namespace allconcur::core {
namespace {

struct FdFixture {
  std::vector<std::pair<NodeId, Message>> sent;
  std::vector<NodeId> suspected;

  HeartbeatFd make(NodeId self, HeartbeatFd::Params params) {
    HeartbeatFd::Hooks hooks;
    hooks.send = [this](NodeId dst, const FrameRef& f) {
      sent.emplace_back(dst, f->msg());
    };
    hooks.suspect = [this](NodeId s) { suspected.push_back(s); };
    return HeartbeatFd(self, params, hooks);
  }
};

TEST(HeartbeatFd, SendsHeartbeatsAtPeriod) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100)});
  fd.set_peers({1, 2}, {3}, 0);
  fd.tick(0);
  EXPECT_EQ(fx.sent.size(), 2u);
  fd.tick(ms(5));  // not due yet
  EXPECT_EQ(fx.sent.size(), 2u);
  fd.tick(ms(10));
  EXPECT_EQ(fx.sent.size(), 4u);
  EXPECT_EQ(fx.sent[0].second.type, MsgType::kHeartbeat);
}

TEST(HeartbeatFd, SuspectsAfterTimeout) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100)});
  fd.set_peers({}, {7}, 0);
  fd.tick(ms(50));
  EXPECT_TRUE(fx.suspected.empty());
  fd.tick(ms(100));
  ASSERT_EQ(fx.suspected.size(), 1u);
  EXPECT_EQ(fx.suspected[0], 7u);
  EXPECT_TRUE(fd.is_suspected(7));
  // No duplicate verdicts.
  fd.tick(ms(200));
  EXPECT_EQ(fx.suspected.size(), 1u);
}

TEST(HeartbeatFd, HeartbeatResetsTimeout) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100)});
  fd.set_peers({}, {7}, 0);
  fd.on_heartbeat(7, ms(90));
  fd.tick(ms(150));
  EXPECT_TRUE(fx.suspected.empty());
  fd.tick(ms(190));
  EXPECT_EQ(fx.suspected.size(), 1u);
}

TEST(HeartbeatFd, AdaptiveModeRehabilitatesAndBacksOff) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100), .adaptive = true});
  fd.set_peers({}, {7}, 0);
  fd.tick(ms(100));
  EXPECT_TRUE(fd.is_suspected(7));
  const auto old_timeout = fd.current_timeout();
  fd.on_heartbeat(7, ms(120));  // peer was alive after all
  EXPECT_FALSE(fd.is_suspected(7));
  EXPECT_GT(fd.current_timeout(), old_timeout);
}

TEST(HeartbeatFd, NonAdaptiveStaysSuspected) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100)});
  fd.set_peers({}, {7}, 0);
  fd.tick(ms(100));
  fd.on_heartbeat(7, ms(120));
  EXPECT_TRUE(fd.is_suspected(7));
}

TEST(HeartbeatFd, SetPeersPreservesState) {
  FdFixture fx;
  auto fd = fx.make(0, {.period = ms(10), .timeout = ms(100)});
  fd.set_peers({}, {7, 8}, 0);
  fd.on_heartbeat(7, ms(50));
  fd.set_peers({}, {7, 9}, ms(60));  // 8 dropped, 9 added
  fd.tick(ms(155));
  // 7 heard at 50 -> timeout at 150 -> suspected; 9 joined at 60 ->
  // timeout at 160 -> not yet.
  ASSERT_EQ(fx.suspected.size(), 1u);
  EXPECT_EQ(fx.suspected[0], 7u);
  fd.tick(ms(165));
  EXPECT_EQ(fx.suspected.size(), 2u);
}

TEST(FdAccuracy, MatchesHandComputedValue) {
  // Δto/Δhb = 2 beats; exponential tail with mean 10: the probability a
  // single link misses both beats is e^{-(20-10)/10} * e^{-(20-20)/10} =
  // e^{-1} * 1; per-link accuracy 1 - e^{-1}; exponent n*d = 6.
  const double p = fd_accuracy_lower_bound(3, 2, 10.0, 20.0,
                                           exponential_delay_tail(10.0));
  const double per_link = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(p, std::pow(per_link, 6.0), 1e-12);
}

TEST(FdAccuracy, ImprovesWithLongerTimeout) {
  const auto tail = exponential_delay_tail(1.0);
  const double short_to = fd_accuracy_lower_bound(64, 5, 1.0, 4.0, tail);
  const double long_to = fd_accuracy_lower_bound(64, 5, 1.0, 16.0, tail);
  EXPECT_GT(long_to, short_to);
}

TEST(FdAccuracy, ImprovesWithFasterHeartbeats) {
  const auto tail = exponential_delay_tail(1.0);
  const double slow = fd_accuracy_lower_bound(64, 5, 4.0, 16.0, tail);
  const double fast = fd_accuracy_lower_bound(64, 5, 1.0, 16.0, tail);
  EXPECT_GT(fast, slow);
}

TEST(FdAccuracy, DegradesWithScale) {
  const auto tail = exponential_delay_tail(1.0);
  EXPECT_GT(fd_accuracy_lower_bound(8, 3, 1.0, 8.0, tail),
            fd_accuracy_lower_bound(1024, 11, 1.0, 8.0, tail));
}

TEST(LogPModel, WorkAndDepthFormulas) {
  const LogP p{.latency_ns = 1250.0, .overhead_ns = 380.0};
  // 2(n-1)do with n=8, d=3.
  EXPECT_NEAR(logp_work_bound_ns(8, 3, p), 2.0 * 7 * 3 * 380.0, 1e-9);
  // 2(L + o(d+1)/2 + o)*D with d=3, D=2.
  EXPECT_NEAR(logp_depth_ns(3, 2, p), 2.0 * (1250.0 + 760.0 + 380.0) * 2,
              1e-9);
}

TEST(LogPModel, MessagesPerServer) {
  EXPECT_EQ(messages_per_server(8, 3, 0), 24u);
  EXPECT_EQ(messages_per_server(8, 3, 2), 24u + 18u);
}

TEST(LogPModel, DepthProbabilityNearOneForPaperNumbers) {
  // §4.2.2: 256 servers, d=7, o=1.8us, MTTF=2y: 1M rounds stay within the
  // fault diameter with probability > 99.99%.
  const double mttf_ns = 2.0 * 365.25 * 24 * 3600 * 1e9;
  const double p_round =
      prob_depth_within_fault_diameter(256, 7, 1800.0, mttf_ns);
  EXPECT_GT(std::pow(p_round, 1e6), 0.9999);
}

TEST(LogPModel, WorstCaseDepthGrowsWithF) {
  const LogP p{.latency_ns = 12000.0, .overhead_ns = 1800.0};
  EXPECT_LT(worst_case_depth_ns(0, 3, 4, p), worst_case_depth_ns(3, 4, 4, p));
}

}  // namespace
}  // namespace allconcur::core
