// obs_recorder_test: the round flight recorder — ring semantics
// (power-of-two rounding, wraparound, monotone seq), per-round timelines
// on a live simulated cluster, and the auto-dump-on-trip path exercised
// end to end by forcing an SMR hash-guard divergence.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/sim_cluster.hpp"
#include "smr/command.hpp"
#include "smr/kv_cluster.hpp"

namespace allconcur::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------------

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(128).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(129).capacity(), 256u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
}

TEST(FlightRecorder, WraparoundKeepsTheMostRecentEvents) {
  FlightRecorder rec(100);  // rounds to 128
  for (std::uint64_t i = 0; i < 300; ++i) {
    rec.record(EventKind::kMsgRecv, i % 7, /*a=*/i, /*b=*/2 * i);
  }
  EXPECT_EQ(rec.total_recorded(), 300u);
  EXPECT_EQ(rec.size(), 128u);
  EXPECT_EQ(rec.dropped(), 300u - 128u);

  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 128u);
  // Oldest first, seq strictly increasing, and the retained window is
  // exactly the last 128 records (a mirrors the record index).
  EXPECT_EQ(evs.front().seq, 300u - 128u);
  EXPECT_EQ(evs.back().seq, 299u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, evs.front().seq + i);
    EXPECT_EQ(evs[i].a, evs[i].seq);
    EXPECT_EQ(evs[i].b, 2 * evs[i].seq);
  }
}

TEST(FlightRecorder, ExactCapacityBoundaryDropsNothing) {
  FlightRecorder rec(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    rec.record(EventKind::kMsgRecv, 0, i);
  }
  EXPECT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.events().front().seq, 0u);
  // One past capacity evicts exactly the oldest record.
  rec.record(EventKind::kMsgRecv, 0, 64);
  EXPECT_EQ(rec.size(), 64u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.events().front().seq, 1u);
  EXPECT_EQ(rec.events().back().a, 64u);
}

TEST(FlightRecorder, ClearAfterWrapRestartsSequencing) {
  FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 11; ++i) {
    rec.record(EventKind::kMsgRecv, i, i);
  }
  ASSERT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.record(EventKind::kRoundOpen, 99);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].seq, 0u);  // seq restarts, no ghost of the wrapped ring
  EXPECT_EQ(evs[0].round, 99u);
}

TEST(FlightRecorder, EventsForRoundSurvivesWraparound) {
  FlightRecorder rec(8);
  // 24 records across rounds 0..2; only the last 8 (seq 16..23) survive.
  for (std::uint64_t i = 0; i < 24; ++i) {
    rec.record(EventKind::kMsgRecv, i % 3, i);
  }
  const auto r0 = rec.events_for_round(0);
  ASSERT_FALSE(r0.empty());
  for (const Event& e : r0) {
    EXPECT_EQ(e.round, 0u);
    EXPECT_GE(e.seq, 16u);  // nothing from the evicted prefix leaks back
    EXPECT_EQ(e.a % 3, 0u);
  }
  // 8 retained records spread evenly over 3 rounds: |round 0| is 3 or 2.
  EXPECT_GE(r0.size(), 2u);
  EXPECT_LE(r0.size(), 3u);
}

TEST(FlightRecorder, EventsForRoundFiltersAndPreservesOrder) {
  FlightRecorder rec(64);
  for (std::uint64_t i = 0; i < 30; ++i) {
    rec.record(i % 2 == 0 ? EventKind::kMsgRecv : EventKind::kParked, i % 3,
               i);
  }
  const auto r1 = rec.events_for_round(1);
  ASSERT_FALSE(r1.empty());
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const Event& e : r1) {
    EXPECT_EQ(e.round, 1u);
    if (!first) EXPECT_GT(e.seq, prev_seq);
    prev_seq = e.seq;
    first = false;
  }
  EXPECT_EQ(r1.size(), 10u);
  EXPECT_TRUE(rec.events_for_round(99).empty());
}

TEST(FlightRecorder, TimeSourceIsReadPerRecord) {
  FlightRecorder rec(16);
  TimeNs clock = 42;
  rec.set_time_source(&clock);
  rec.record(EventKind::kRoundOpen, 0);
  clock = 99;
  rec.record(EventKind::kDelivered, 0);
  rec.set_time_source(nullptr);
  rec.record(EventKind::kComplete, 0);

  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].t, 42);
  EXPECT_EQ(evs[1].t, 99);
  EXPECT_EQ(evs[2].t, 0);
}

TEST(FlightRecorder, DisabledRecordsNothingAndClearResets) {
  FlightRecorder rec(16, /*enabled=*/false);
  EXPECT_FALSE(rec.enabled());
  rec.record(EventKind::kRoundOpen, 0);
  EXPECT_EQ(rec.total_recorded(), 0u);

  rec.set_enabled(true);
  rec.record(EventKind::kRoundOpen, 0);
  rec.record(EventKind::kDelivered, 0);
  EXPECT_EQ(rec.size(), 2u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(FlightRecorder, DumpsCarryLabelAndEventNames) {
  FlightRecorder rec(16);
  rec.record(EventKind::kBcastSent, 7, 128, 1);
  rec.record(EventKind::kDroppedMsg, 7,
             static_cast<std::uint64_t>(DropReason::kStale), 3);

  const std::string text = rec.dump_text("node3");
  EXPECT_NE(text.find("[node3] seq=0"), std::string::npos) << text;
  EXPECT_NE(text.find("r=7 bcast_sent a=128 b=1"), std::string::npos) << text;
  EXPECT_NE(text.find("dropped_msg"), std::string::npos);

  const std::string json = rec.dump_json("node3");
  EXPECT_NE(json.find("{\"node\": \"node3\", \"seq\": 0"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"event\": \"bcast_sent\""), std::string::npos);
  // One object per line (JSONL).
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2);
}

// ---------------------------------------------------------------------------
// Live cluster timelines
// ---------------------------------------------------------------------------

TEST(FlightRecorderSim, RoundLifecycleEventsAppearInCausalOrder) {
  api::ClusterOptions opt;
  opt.n = 4;
  api::SimCluster c(opt);
  c.submit_opaque(0, 64);
  c.broadcast_now(0);
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));

  const FlightRecorder* rec = c.recorder(0);
  ASSERT_NE(rec, nullptr);
  const auto timeline = rec->events_for_round(0);
  ASSERT_FALSE(timeline.empty());

  // The broadcaster's round-0 timeline must open the round, send its own
  // BCAST, gather the peers, and deliver — in that order (seq carries
  // causality; the virtual-clock stamps are nondecreasing with it).
  std::optional<std::uint64_t> open, sent, recv, delivered;
  TimeNs prev_t = 0;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const Event& e : timeline) {
    if (!first) {
      EXPECT_GT(e.seq, prev_seq);
      EXPECT_GE(e.t, prev_t);
    }
    prev_seq = e.seq;
    prev_t = e.t;
    first = false;
    switch (e.kind) {
      case EventKind::kRoundOpen:
        if (!open) open = e.seq;
        break;
      case EventKind::kBcastSent:
        if (!sent) sent = e.seq;
        break;
      case EventKind::kMsgRecv:
        recv = e.seq;  // keep the last receive
        break;
      case EventKind::kDelivered:
        if (!delivered) delivered = e.seq;
        break;
      default:
        break;
    }
  }
  ASSERT_TRUE(open.has_value());
  ASSERT_TRUE(sent.has_value());
  ASSERT_TRUE(recv.has_value());
  ASSERT_TRUE(delivered.has_value());
  EXPECT_LT(*open, *sent);
  EXPECT_LT(*sent, *delivered);
  EXPECT_LT(*recv, *delivered);

  // Every node kept its own timeline; a non-broadcaster still received
  // node 0's message and delivered the round.
  for (NodeId id = 1; id < 4; ++id) {
    const FlightRecorder* peer = c.recorder(id);
    ASSERT_NE(peer, nullptr) << "node " << id;
    bool saw_recv = false, saw_deliver = false;
    for (const Event& e : peer->events_for_round(0)) {
      saw_recv |= e.kind == EventKind::kMsgRecv;
      saw_deliver |= e.kind == EventKind::kDelivered;
    }
    EXPECT_TRUE(saw_recv) << "node " << id;
    EXPECT_TRUE(saw_deliver) << "node " << id;
  }

  // The cluster-level metrics plane saw the round too.
  EXPECT_GE(c.round_latency().count(), 1u);
  const std::string json = c.metrics_json();
  EXPECT_NE(json.find("engine_rounds_completed"), std::string::npos);
  EXPECT_NE(json.find("sim_round_latency_ns"), std::string::npos);
}

TEST(FlightRecorderSim, RecorderCanBeDisabledPerCluster) {
  api::ClusterOptions opt;
  opt.n = 4;
  opt.flight_recorder = false;
  api::SimCluster c(opt);
  c.submit_opaque(0, 64);
  c.broadcast_now(0);
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));
  EXPECT_EQ(c.recorder(0), nullptr);
  EXPECT_TRUE(c.recorders().empty() ||
              c.recorders().front().second == nullptr);
}

// ---------------------------------------------------------------------------
// Dump on trip
// ---------------------------------------------------------------------------

class FlightDirGuard {
 public:
  FlightDirGuard() {
    char tmpl[] = "/tmp/allconcur_flight_XXXXXX";
    if (char* d = ::mkdtemp(tmpl)) dir_ = d;
    EXPECT_NE(dir_, "") << "mkdtemp failed";
    ::setenv("ALLCONCUR_FLIGHT_DIR", dir_.c_str(), 1);
  }
  ~FlightDirGuard() { ::unsetenv("ALLCONCUR_FLIGHT_DIR"); }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

TEST(FlightDump, DumpOnTripWritesOneFilePerRecorder) {
  FlightDirGuard guard;
  FlightRecorder a(16), b(16);
  a.record(EventKind::kDelivered, 5, 1, 1);
  b.record(EventKind::kInvariantTrip, 5,
           static_cast<std::uint64_t>(TripCode::kPropertyViolation));

  const auto written =
      dump_on_trip("unit_trip", {{"node0", &a}, {"node1", &b}});
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(written[0], guard.dir() + "/flight_unit_trip_node0.jsonl");
  EXPECT_NE(slurp(written[0]).find("\"event\": \"delivered\""),
            std::string::npos);
  EXPECT_NE(slurp(written[1]).find("\"event\": \"invariant_trip\""),
            std::string::npos);
}

TEST(FlightDump, WithoutDumpDirOnlyStderrTailIsEmitted) {
  ::unsetenv("ALLCONCUR_FLIGHT_DIR");
  FlightRecorder a(16);
  a.record(EventKind::kDelivered, 1);
  EXPECT_TRUE(dump_on_trip("no_dir", {{"node0", &a}}).empty());
}

// The acceptance scenario: a forced SMR divergence must auto-dump every
// replica's flight recorder, and the diverging node's dump must identify
// the diverging round.
TEST(FlightDump, ForcedSmrDivergenceDumpsEveryReplicaWithTheRound) {
  FlightDirGuard guard;

  smr::SimKvOptions opt;
  opt.cluster.n = 4;
  opt.cluster.detection_delay = ms(1);
  smr::SimKvCluster c(opt);

  std::optional<std::pair<NodeId, Round>> tripped;
  c.on_divergence = [&](NodeId who, Round round) {
    if (!tripped) tripped = {who, round};
  };

  auto session = c.make_session();
  const auto first = c.execute(
      0, session, smr::Command::put(smr::to_bytes("k"), smr::to_bytes("v1")));
  ASSERT_TRUE(first.has_value());
  // Let every replica catch up on the agreed prefix before corrupting.
  c.cluster().run_for(sec(1));
  ASSERT_FALSE(tripped.has_value());

  // Corrupt replica 2 out-of-band: an extra command applied directly to
  // its state machine forks its history from the agreed stream.
  c.replica(2).machine().apply(
      smr::encode_command(smr::Command::put(smr::to_bytes("rogue"), smr::to_bytes("w"))));

  // The next agreed round lands replica 2 on a different hash than the
  // reference -> the divergence guard trips, dumps, and (because
  // on_divergence is set) returns instead of aborting.
  const auto second = c.execute(
      0, session, smr::Command::put(smr::to_bytes("k"), smr::to_bytes("v2")));
  ASSERT_TRUE(second.has_value());
  c.cluster().run_for(sec(1));

  ASSERT_TRUE(tripped.has_value()) << "forced divergence did not trip";
  EXPECT_EQ(tripped->first, 2u);

  // One dump per replica...
  for (NodeId id = 0; id < 4; ++id) {
    const std::string path = guard.dir() + "/flight_smr_hash_divergence_node" +
                             std::to_string(id) + ".jsonl";
    const std::string dump = slurp(path);
    EXPECT_FALSE(dump.empty()) << path;
  }
  // ...and the diverging node's dump pins the invariant trip to the
  // diverging round (grep key: round id as the correlation key).
  const std::string diverged =
      slurp(guard.dir() + "/flight_smr_hash_divergence_node2.jsonl");
  const std::string needle = "\"round\": " + std::to_string(tripped->second) +
                             ", \"event\": \"invariant_trip\"";
  EXPECT_NE(diverged.find(needle), std::string::npos)
      << "needle: " << needle << "\ndump:\n"
      << diverged;
}

}  // namespace
}  // namespace allconcur::obs
