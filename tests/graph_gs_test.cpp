// Validates the GS(n,d) construction against the published Table 3: the
// digraphs must be d-regular, strongly connected, optimally connected
// (k = d) and have exactly the published diameters. This is the strongest
// acceptance test we have for the construction.
#include "graph/gs_digraph.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"

namespace allconcur::graph {
namespace {

struct GsCase {
  std::size_t n;
  std::size_t d;
  std::size_t expected_diameter;
};

class GsTable3Test : public ::testing::TestWithParam<GsCase> {};

TEST_P(GsTable3Test, RegularAndConnectedWithPublishedDiameter) {
  const auto [n, d, expected_d] = GetParam();
  const Digraph g = make_gs_digraph(n, d);
  EXPECT_EQ(g.order(), n);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), d);
  EXPECT_TRUE(is_strongly_connected(g));
  const auto diam = diameter(g);
  ASSERT_TRUE(diam.has_value());
  EXPECT_EQ(*diam, expected_d) << "GS(" << n << "," << d << ")";
}

// All Table 3 rows small enough to diameter-check quickly; the largest
// rows are covered by gs_large tests below.
INSTANTIATE_TEST_SUITE_P(
    Table3, GsTable3Test,
    ::testing::Values(GsCase{6, 3, 2}, GsCase{8, 3, 2}, GsCase{11, 3, 3},
                      GsCase{16, 4, 2}, GsCase{22, 4, 3}, GsCase{32, 4, 3},
                      GsCase{45, 4, 4}, GsCase{64, 5, 4}, GsCase{90, 5, 3},
                      GsCase{128, 5, 4}, GsCase{256, 7, 4}),
    [](const auto& info) {
      return "GS_" + std::to_string(info.param.n) + "_" +
             std::to_string(info.param.d);
    });

TEST(GsDigraph, LargeTable3RowsMatchPublishedDiameter) {
  for (const auto& [n, d, expected] :
       {GsCase{512, 8, 3}, GsCase{1024, 11, 4}}) {
    const Digraph g = make_gs_digraph(n, d);
    EXPECT_TRUE(g.is_regular());
    EXPECT_EQ(g.degree(), d);
    const auto diam = diameter(g);
    ASSERT_TRUE(diam.has_value());
    EXPECT_EQ(*diam, expected) << "GS(" << n << "," << d << ")";
  }
}

TEST(GsDigraph, OptimallyConnectedSmallCases) {
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 3}, {8, 3}, {11, 3}, {16, 4}, {22, 4}, {32, 4}}) {
    const Digraph g = make_gs_digraph(n, d);
    EXPECT_EQ(vertex_connectivity(g), d) << "GS(" << n << "," << d << ")";
  }
}

TEST(GsDigraph, OptimallyConnectedMediumCases) {
  for (const auto& [n, d] : std::vector<std::pair<std::size_t, std::size_t>>{
           {45, 4}, {64, 5}, {90, 5}}) {
    const Digraph g = make_gs_digraph(n, d);
    EXPECT_EQ(vertex_connectivity(g), d) << "GS(" << n << "," << d << ")";
  }
}

TEST(GsDigraph, DiameterIsQuasiminimal) {
  // D(GS) <= D_L + 1 for n <= d^3 + d (§4.4).
  for (const auto& row : paper_table3()) {
    if (row.n > 256) continue;  // keep the test fast; large rows covered above
    if (row.n > row.d * row.d * row.d + row.d) continue;
    const Digraph g = make_gs_digraph(row.n, row.d);
    const auto diam = diameter(g);
    ASSERT_TRUE(diam.has_value());
    EXPECT_LE(*diam, gs_moore_diameter_lower_bound(row.n, row.d) + 1)
        << "GS(" << row.n << "," << row.d << ")";
  }
}

TEST(GsDigraph, MooreBoundValues) {
  // Lower bounds from Table 3.
  EXPECT_EQ(gs_moore_diameter_lower_bound(6, 3), 2u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(11, 3), 2u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(22, 4), 3u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(64, 5), 3u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(256, 7), 3u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(512, 8), 3u);
  EXPECT_EQ(gs_moore_diameter_lower_bound(1024, 11), 3u);
}

TEST(GsDigraph, NonTableSizesStillRegularAndConnected) {
  // The construction must work for arbitrary n >= 2d, not just Table 3.
  for (std::size_t n = 6; n <= 40; ++n) {
    for (std::size_t d : {3u, 4u, 5u}) {
      if (n < 2 * d) continue;
      const Digraph g = make_gs_digraph(n, d);
      EXPECT_TRUE(g.is_regular()) << "GS(" << n << "," << d << ")";
      EXPECT_EQ(g.degree(), d) << "GS(" << n << "," << d << ")";
      EXPECT_TRUE(is_strongly_connected(g)) << "GS(" << n << "," << d << ")";
    }
  }
}

TEST(GsDigraph, DeterministicConstruction) {
  EXPECT_EQ(make_gs_digraph(22, 4), make_gs_digraph(22, 4));
}

}  // namespace
}  // namespace allconcur::graph
