// Chaos interposition on real localhost TCP: a shared seeded
// ScenarioEngine shapes every outbound frame of every node (the
// whole-cluster scenario), and the wire checksums must turn injected
// corruption into detected drops — never silently delivered bytes. Loss
// recovery comes from the dual-digraph watchdog (classic mode has no
// retransmission), so both tests run the AllConcur+ configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "chaos/scenario.hpp"
#include "plus/dual_overlay.hpp"
#include "tcp_cluster.hpp"

namespace allconcur::net {
namespace {

using core::RoundResult;
using testing::scaled;
using testing::TcpCluster;

/// Byte-level equality of two rounds' delivery vectors — the agreement
/// assertion that would catch any silently delivered corrupt payload
/// (corruption is per-link, so a corrupt copy cannot reach every node).
void expect_same_round(const RoundResult& a, const RoundResult& b,
                       NodeId node, std::size_t r) {
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size())
      << "node " << node << " round " << r;
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_EQ(a.deliveries[i].origin, b.deliveries[i].origin);
    EXPECT_EQ(a.deliveries[i].bytes, b.deliveries[i].bytes);
    const bool pa = a.deliveries[i].payload != nullptr;
    const bool pb = b.deliveries[i].payload != nullptr;
    ASSERT_EQ(pa, pb);
    if (pa) {
      EXPECT_EQ(*a.deliveries[i].payload, *b.deliveries[i].payload)
          << "node " << node << " round " << r << " delivery " << i;
    }
  }
}

TEST(TcpChaos, CorruptionIsDetectedAndRoundsStillAgree) {
  // Every link corrupts ~3% and duplicates ~8% of frames, with reorder
  // jitter on top. Corruption becomes loss at the receiver (checksum
  // drop); the fallback watchdog's re-floods recover it.
  auto inject = std::make_shared<chaos::ScenarioEngine>([] {
    chaos::LinkFaults f;
    f.corrupt = 0.03;
    f.duplicate = 0.08;
    f.reorder = 0.2;
    f.reorder_jitter = scaled(ms(2));
    return chaos::Scenario(0xC0FFEE).faults(0, kTimeNever, f);
  }());
  TcpCluster c(4, core::FdMode::kPerfect, sec(10), [&](TcpNodeOptions& opt) {
    opt.fast_builder = plus::make_unreliable_builder();
    opt.fallback_timeout = scaled(ms(40));
    opt.chaos = inject;
  });
  const std::uint64_t kRounds = 5;
  std::atomic<bool> done{false};
  std::thread pump([&] {
    std::uint8_t tick = 0;
    while (!done.load()) {
      for (NodeId i = 0; i < 4; ++i) {
        c.node(i).submit(core::Request::of_data(
            {static_cast<std::uint8_t>(i), tick, 0x5a}));
        c.node(i).broadcast_now();
      }
      ++tick;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3}, kRounds, sec(60));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok) << "chaos prevented round completion";

  // The scenario did inject, and the wire did detect.
  EXPECT_GT(inject->stats().corrupted, 0u);
  EXPECT_GT(inject->stats().duplicated, 0u);
  std::uint64_t detected = 0;
  for (NodeId i = 0; i < 4; ++i) {
    detected += c.node(i).net_stats().checksum_drops;
  }
  EXPECT_GT(detected, 0u) << "injected corruption was never caught";

  // Agreement down to the payload bytes, against node 0's sequence.
  const auto reference = c.delivered(0);
  ASSERT_GE(reference.size(), kRounds);
  for (NodeId i = 1; i < 4; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      expect_same_round(rounds[r], reference[r], i, r);
      EXPECT_TRUE(rounds[r].removed.empty());
    }
  }
}

TEST(TcpChaos, PartitionHealsAndWatchdogRecovers) {
  // Node 3 is cut off from everyone for a while (frames dropped both
  // directions), then the partition heals. The FD timeout is far past the
  // test horizon, so no eviction: recovery must come from the fallback
  // watchdog re-flooding the stuck round after the heal.
  auto inject = std::make_shared<chaos::ScenarioEngine>(
      chaos::Scenario(0xBADBEEF).partition(0, scaled(ms(250)), {3}));
  TcpCluster c(4, core::FdMode::kPerfect, sec(30), [&](TcpNodeOptions& opt) {
    opt.fast_builder = plus::make_unreliable_builder();
    opt.fallback_timeout = scaled(ms(30));
    opt.chaos = inject;
  });
  const std::uint64_t kRounds = 3;
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 4; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3}, kRounds, sec(60));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok) << "cluster never recovered from the healed partition";

  EXPECT_GT(inject->stats().dropped, 0u) << "the partition dropped nothing";
  std::uint64_t fallbacks = 0;
  for (NodeId i = 0; i < 4; ++i) fallbacks += c.node(i).stats().fallback_rounds;
  EXPECT_GT(fallbacks, 0u) << "the partition never forced a fallback";

  const auto reference = c.delivered(0);
  ASSERT_GE(reference.size(), kRounds);
  for (NodeId i = 1; i < 4; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), kRounds);
    for (std::size_t r = 0; r < kRounds; ++r) {
      expect_same_round(rounds[r], reference[r], i, r);
      EXPECT_TRUE(rounds[r].removed.empty());
    }
  }
}

}  // namespace
}  // namespace allconcur::net
