#include "sim/network_model.hpp"

#include <gtest/gtest.h>

namespace allconcur::sim {
namespace {

FabricParams simple_params() {
  FabricParams p;
  p.latency = us(10);
  p.overhead = us(1);
  p.stream_ns_per_byte = 1.0;
  p.nic_ns_per_byte = 0.5;
  p.congestion_threshold_bytes = 0;
  return p;
}

TEST(NetworkModel, SingleMessageTiming) {
  NetworkModel m(simple_params(), 4);
  // 100 bytes at t=0: egress = o + 100*0.5 = 1.05us; stream adds 100*1 =
  // 0.1us -> sender done at 1.15us; arrival += L.
  const TimeNs done = m.sender_done(0, 1, 100, 0);
  EXPECT_EQ(done, us(1) + ns(50) + ns(100));
  EXPECT_EQ(m.arrival(done), done + us(10));
  // Receiver: o + nic bytes.
  const TimeNs handed = m.receiver_done(1, 100, m.arrival(done));
  EXPECT_EQ(handed, m.arrival(done) + us(1) + ns(50));
}

TEST(NetworkModel, EgressSerializesAcrossConnections) {
  NetworkModel m(simple_params(), 4);
  const TimeNs d1 = m.sender_done(0, 1, 1000, 0);
  const TimeNs d2 = m.sender_done(0, 2, 1000, 0);
  // Second message waits for the NIC, not for the first stream.
  EXPECT_GT(d2, d1);
}

TEST(NetworkModel, StreamPacingLimitsOneConnection) {
  FabricParams p = simple_params();
  p.nic_ns_per_byte = 0.0;  // NIC infinitely fast: stream is the limit
  p.overhead = 0;
  NetworkModel m(p, 2);
  TimeNs last = 0;
  for (int i = 0; i < 10; ++i) last = m.sender_done(0, 1, 1000, 0);
  // 10 kB at 1 ns/B on one stream: at least 10 us of pacing.
  EXPECT_GE(last, ns(10 * 1000));
}

TEST(NetworkModel, IngressSerializes) {
  NetworkModel m(simple_params(), 4);
  const TimeNs r1 = m.receiver_done(3, 100, us(100));
  const TimeNs r2 = m.receiver_done(3, 100, us(100));
  EXPECT_GT(r2, r1);
  EXPECT_EQ(r2 - r1, us(1) + ns(50));
}

TEST(NetworkModel, CongestionPenaltyAboveThreshold) {
  FabricParams p = simple_params();
  p.congestion_threshold_bytes = 1000;
  p.congestion_penalty = 2.0;
  NetworkModel small_net(p, 2), big_net(p, 2);
  const TimeNs small = small_net.sender_done(0, 1, 1000, 0);
  const TimeNs big = big_net.sender_done(0, 1, 2000, 0);
  // 2x bytes but with doubled stream time: more than 2x slower overall.
  EXPECT_GT(big - 0, 2 * (small - 0));
}

TEST(NetworkModel, UncontendedTransitMatchesLogP) {
  NetworkModel m(simple_params(), 2);
  // 2o + L + bytes*(nic+stream).
  EXPECT_EQ(m.uncontended_transit(100),
            2 * us(1) + us(10) + ns(150));
}

TEST(NetworkModel, FabricProfilesMatchPaperParameters) {
  const auto ib = FabricParams::infiniband();
  EXPECT_EQ(ib.latency, ns(1250));
  EXPECT_EQ(ib.overhead, ns(380));
  const auto tcp = FabricParams::tcp_ib();
  EXPECT_EQ(tcp.latency, us(12));
  EXPECT_EQ(tcp.overhead, us(1.8));
  // Both TCP profiles model the single-threaded event loop: rx and tx
  // share one CPU; Verbs offloads and keeps them independent.
  EXPECT_TRUE(tcp.shared_cpu);
  EXPECT_TRUE(FabricParams::tcp_xc40().shared_cpu);
  EXPECT_FALSE(ib.shared_cpu);
  // A faster per-stream path on Aries than on IPoIB.
  EXPECT_LT(FabricParams::tcp_xc40().stream_ns_per_byte,
            tcp.stream_ns_per_byte);
}

TEST(NetworkModel, TimeNeverRegresses) {
  NetworkModel m(simple_params(), 3);
  TimeNs t = 0;
  for (int i = 0; i < 100; ++i) {
    const TimeNs done = m.sender_done(0, 1 + (i % 2), 64, t);
    EXPECT_GE(done, t);
    t = done;
  }
}

}  // namespace
}  // namespace allconcur::sim
