// Property suite: the four atomic-broadcast properties (§2.1/§2.2) under
// randomized crashes, partial dissemination, suspicion timing and
// adversarial message interleavings, swept across seeds, sizes and
// overlays.
//
//   Validity   — a non-faulty broadcaster delivers its own message.
//   Agreement  — all non-faulty servers deliver the same message set.
//   Integrity  — every message delivered at most once, only if broadcast.
//   Total order— deliveries appear in the same order everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "api/sim_cluster.hpp"
#include "chaos_scenarios.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/reliability.hpp"
#include "loopback_cluster.hpp"
#include "test_env.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

struct PropertyCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;  // < k(G)
  bool binomial;        // else GS with the paper degree
  bool dp_mode;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
         "_f" + std::to_string(p.crashes) + (p.binomial ? "_binomial" : "_gs") +
         (p.dp_mode ? "_dp" : "_p");
}

GraphBuilder overlay_for(const PropertyCase& p) {
  if (p.binomial) {
    return [](std::size_t n) {
      return n < 3 ? graph::make_complete(n) : graph::make_binomial_graph(n);
    };
  }
  return [](std::size_t n) {
    if (n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, std::min(graph::paper_gs_degree(n), n / 2));
  };
}

class AgreementProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(AgreementProperty, HoldsUnderRandomFailures) {
  const PropertyCase& p = GetParam();
  // Fixed per-case schedule by default; ALLCONCUR_TEST_SEED shifts the
  // whole sweep for soak runs.
  const std::uint64_t seed = testing::test_seed_offset() + p.seed;
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);
  EngineOptions options;
  options.fd_mode = p.dp_mode ? FdMode::kEventuallyPerfect : FdMode::kPerfect;
  LoopbackCluster c(p.n, overlay_for(p), options);

  // Pick distinct victims and how much of their final broadcast escapes.
  std::set<NodeId> victims;
  while (victims.size() < p.crashes) {
    victims.insert(static_cast<NodeId>(rng.next_below(p.n)));
  }
  for (NodeId v : victims) {
    c.crash(v, rng.next_below(6));  // 0..5 sends escape
  }

  // Everyone (including the doomed) tries to broadcast a payload.
  for (NodeId i = 0; i < p.n; ++i) {
    c.engine(i).submit(Request::of_data({static_cast<std::uint8_t>(i), 0x5a}));
    c.engine(i).broadcast_now();
  }

  // Adversarial interleaving in phases, with suspicions injected at a
  // random point between phases.
  c.pump_random(rng, rng.next_below(200));
  for (NodeId v : victims) c.suspect_everywhere(v);
  c.pump_random(rng);

  // --- collect ---
  std::vector<NodeId> live;
  for (NodeId i = 0; i < p.n; ++i) {
    if (!c.is_crashed(i)) live.push_back(i);
  }
  ASSERT_FALSE(live.empty());

  // Termination of every live server.
  for (NodeId i : live) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i << " did not terminate";
    ASSERT_EQ(c.delivered(i).size(), 1u);
  }

  const auto& reference = c.delivered(live[0])[0];
  for (NodeId i : live) {
    const auto& r = c.delivered(i)[0];

    // Total order + agreement: identical delivery vector everywhere.
    ASSERT_EQ(r.deliveries.size(), reference.deliveries.size())
        << "server " << i;
    for (std::size_t k = 0; k < r.deliveries.size(); ++k) {
      EXPECT_EQ(r.deliveries[k].origin, reference.deliveries[k].origin)
          << "server " << i << " slot " << k;
    }
    EXPECT_EQ(r.removed, reference.removed) << "server " << i;

    // Integrity: no duplicate origins, origins were actual members.
    std::set<NodeId> seen;
    for (const auto& d : r.deliveries) {
      EXPECT_TRUE(seen.insert(d.origin).second) << "duplicate " << d.origin;
      EXPECT_LT(d.origin, p.n);
    }

    // Validity: every live server's own message is in the set.
    for (NodeId j : live) {
      EXPECT_TRUE(seen.count(j))
          << "server " << i << " missed live server " << j << "'s message";
    }

    // In P mode no message may be dropped by the ⋄P safeguards.
    EXPECT_EQ(c.engine(i).stats().dropped_lost, 0u);
  }
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  // GS overlays, P mode: the main sweep.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({seed, 8, seed % 3, /*binomial=*/false, /*dp=*/false});
  }
  for (std::uint64_t seed = 13; seed <= 20; ++seed) {
    cases.push_back({seed, 16, seed % 4, false, false});
  }
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    cases.push_back({seed, 32, seed % 4, false, false});
  }
  // Binomial overlays (higher connectivity: more crashes tolerated).
  for (std::uint64_t seed = 27; seed <= 32; ++seed) {
    cases.push_back({seed, 9, seed % 5, true, false});
  }
  for (std::uint64_t seed = 33; seed <= 36; ++seed) {
    cases.push_back({seed, 12, seed % 6, true, false});
  }
  // ⋄P mode (crash-free and light-crash: the gate must not break the
  // properties when suspicions are accurate).
  for (std::uint64_t seed = 37; seed <= 42; ++seed) {
    cases.push_back({seed, 8, seed % 2, false, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AgreementProperty,
                         ::testing::ValuesIn(make_cases()), case_name);

// ---------------------------------------------------------------------
// Multi-round property: agreement must hold round after round while
// membership shrinks under randomized crashes.
// ---------------------------------------------------------------------
class MultiRoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiRoundProperty, AgreementAcrossShrinkingViews) {
  // Shifted like every other sweep so ALLCONCUR_TEST_SEED soaks explore
  // fresh schedules here too.
  const std::uint64_t seed = testing::test_seed_offset() + GetParam();
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);
  const std::size_t n = 11;
  // make_gs_digraph's documented fallback covers m < 6 with K_m.
  LoopbackCluster c(n, [](std::size_t m) {
    return graph::make_gs_digraph(m, 3);
  });

  std::set<NodeId> crashed;
  for (int round = 0; round < 5; ++round) {
    // Maybe crash one more server (respecting f < k = 3 per round).
    if (round > 0 && rng.next_below(2) == 0 && crashed.size() < 4) {
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.next_below(n));
      } while (crashed.count(v));
      crashed.insert(v);
      c.crash(v, rng.next_below(4));
    }
    for (NodeId i = 0; i < n; ++i) {
      if (!c.is_crashed(i)) c.engine(i).broadcast_now();
    }
    c.pump_random(rng, rng.next_below(500));
    for (NodeId v : crashed) c.suspect_everywhere(v);
    c.pump_random(rng);

    // All live servers completed this round identically.
    std::vector<NodeId> live;
    for (NodeId i = 0; i < n; ++i) {
      if (!c.is_crashed(i)) live.push_back(i);
    }
    const auto& ref_rounds = c.delivered(live[0]);
    ASSERT_EQ(ref_rounds.size(), static_cast<std::size_t>(round + 1));
    for (NodeId i : live) {
      const auto& rounds = c.delivered(i);
      ASSERT_EQ(rounds.size(), ref_rounds.size()) << "server " << i;
      const auto& r = rounds.back();
      ASSERT_EQ(r.deliveries.size(), ref_rounds.back().deliveries.size());
      for (std::size_t k = 0; k < r.deliveries.size(); ++k) {
        EXPECT_EQ(r.deliveries[k].origin,
                  ref_rounds.back().deliveries[k].origin);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRoundProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

// ---------------------------------------------------------------------
// Chaos sweeps on the timed simulator: committed scenario seeds (see
// chaos_scenarios.hpp) replay deterministic fault schedules through the
// fabric's fault hook. Agreement must survive them, and the corruption
// counters must stay silent (these scenarios inject none).
// ---------------------------------------------------------------------

/// Cross-node agreement on the common prefix of delivered rounds:
/// identical origin vectors everywhere, no duplicate origins.
void expect_prefix_agreement(
    std::map<NodeId, std::vector<RoundResult>>& results,
    const std::vector<NodeId>& nodes, std::size_t min_rounds) {
  std::size_t prefix = SIZE_MAX;
  for (NodeId id : nodes) prefix = std::min(prefix, results[id].size());
  ASSERT_GE(prefix, min_rounds);
  const auto& ref = results[nodes[0]];
  for (NodeId id : nodes) {
    const auto& rounds = results[id];
    for (std::size_t r = 0; r < prefix; ++r) {
      ASSERT_EQ(rounds[r].deliveries.size(), ref[r].deliveries.size())
          << "node " << id << " round " << r;
      std::set<NodeId> seen;
      for (std::size_t k = 0; k < rounds[r].deliveries.size(); ++k) {
        EXPECT_EQ(rounds[r].deliveries[k].origin, ref[r].deliveries[k].origin)
            << "node " << id << " round " << r << " slot " << k;
        EXPECT_TRUE(seen.insert(rounds[r].deliveries[k].origin).second);
      }
    }
  }
}

class ChaosReorderDupProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosReorderDupProperty, AgreementUnderReorderAndDuplication) {
  // Classic mode is safe here: the scenario delays and duplicates but
  // never loses, so no retransmission is needed. Duplicates exercise the
  // receivers' in-window dedup and the park-once path.
  auto inject = std::make_shared<chaos::ScenarioEngine>(
      testing::reorder_dup_scenario(GetParam()));
  api::ClusterOptions opt;
  opt.n = 8;
  opt.chaos = inject;
  api::SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(4, sec(10)));

  EXPECT_GT(inject->stats().duplicated, 0u);
  EXPECT_GT(inject->stats().delayed, 0u);
  EXPECT_EQ(inject->stats().corrupted, 0u);
  EXPECT_EQ(c.corrupt_dropped(), 0u);
  EXPECT_EQ(c.corrupt_delivered(), 0u);
  expect_prefix_agreement(results, c.live_nodes(), 5);
  for (NodeId id : c.live_nodes()) {
    EXPECT_TRUE(results[id][0].removed.empty()) << "node " << id;
    EXPECT_EQ(c.engine(id).stats().dropped_lost, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, ChaosReorderDupProperty,
                         ::testing::Values(0xA11C21u, 0xA11C22u));

class ChaosPartitionHealProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPartitionHealProperty, MajorityAgreesAcrossPartitionAndHeal) {
  // A chaos-driven partition (not the oracle link filter): {6, 7} are cut
  // off from [20 ms, 500 ms). The heartbeat ⋄P detector suspects them
  // from the silence, the majority evicts them and keeps delivering;
  // the heal arrives after eviction, so the view stays at 6.
  auto inject = std::make_shared<chaos::ScenarioEngine>(
      testing::partition_heal_scenario(GetParam(), {6, 7}, ms(20), ms(500)));
  api::ClusterOptions opt;
  opt.n = 8;
  opt.fd_mode = FdMode::kEventuallyPerfect;
  opt.heartbeat_fd = true;
  opt.fd_params.period = ms(10);
  opt.fd_params.timeout = ms(60);
  opt.chaos = inject;
  api::SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  c.run_for(sec(2));

  EXPECT_GT(inject->stats().dropped, 0u) << "the partition dropped nothing";
  const std::vector<NodeId> majority{0, 1, 2, 3, 4, 5};
  expect_prefix_agreement(results, majority, 3);
  for (NodeId id : majority) {
    ASSERT_FALSE(results[id].empty());
    EXPECT_EQ(results[id].back().view_size, 6u) << "node " << id;
  }
  EXPECT_EQ(c.corrupt_dropped(), 0u);
  EXPECT_EQ(c.corrupt_delivered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, ChaosPartitionHealProperty,
                         ::testing::Values(0xA11C31u, 0xA11C32u));

}  // namespace
}  // namespace allconcur::core
