// Failure handling: the early-termination tracking machinery (§2.3,
// Fig. 2b), set agreement under crashes, round iteration with carried
// failure notifications, and failed-server tagging.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder binomial_builder() {
  return [](std::size_t n) {
    if (n < 3) return graph::make_complete(n);
    return graph::make_binomial_graph(n);
  };
}

GraphBuilder gs_builder(std::size_t d) {
  return [d](std::size_t n) {
    if (n < 2 * d || n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, d);
  };
}

std::vector<NodeId> delivered_origins(const RoundResult& r) {
  std::vector<NodeId> out;
  for (const auto& d : r.deliveries) out.push_back(d.origin);
  return out;
}

// ---------------------------------------------------------------------
// The paper's Fig. 2b example, replayed message by message against p6 of
// a 9-server binomial graph: the evolution of the tracking digraphs
// g6[p0] and g6[p1] must match the figure exactly.
// ---------------------------------------------------------------------
class Fig2bTest : public ::testing::Test {
 protected:
  Fig2bTest() {
    std::vector<NodeId> members{0, 1, 2, 3, 4, 5, 6, 7, 8};
    Engine::Hooks hooks;
    hooks.send = [](NodeId, const core::FrameRef&) {};
    hooks.deliver = [this](const RoundResult& r) { results_.push_back(r); };
    engine_ = std::make_unique<Engine>(
        6, View(members, binomial_builder()), binomial_builder(), hooks);
  }

  Engine& p6() { return *engine_; }
  std::unique_ptr<Engine> engine_;
  std::vector<RoundResult> results_;
};

TEST_F(Fig2bTest, TrackingDigraphsEvolveAsInThePaper) {
  // Binomial graph n=9: successors of i are i±{1,2,4} mod 9.
  // p0+: {1,2,4,5,7,8}; p1+: {0,2,3,5,6,8}.

  // (1) ⟨FAIL, p0, p2⟩: p0 may have sent m0 to any successor except p2.
  p6().on_message(2, Message::fail(0, 0, 2));
  {
    const auto& g0 = p6().tracking_of(0);
    EXPECT_TRUE(g0.contains(0));
    for (NodeId v : {1u, 4u, 5u, 7u, 8u}) {
      EXPECT_TRUE(g0.contains(v)) << "g6[p0] missing p" << v;
      EXPECT_TRUE(g0.has_edge(0, v));
    }
    EXPECT_FALSE(g0.contains(2));
    EXPECT_EQ(g0.vertex_count(), 6u);
    EXPECT_EQ(g0.edge_count(), 5u);
  }

  // (2) ⟨FAIL, p0, p5⟩: p5 did not receive m0 from p0 either; the edge
  // (p0,p5) is removed and p5 pruned as unreachable.
  p6().on_message(5, Message::fail(0, 0, 5));
  {
    const auto& g0 = p6().tracking_of(0);
    EXPECT_FALSE(g0.contains(5));
    EXPECT_FALSE(g0.has_edge(0, 5));
    EXPECT_EQ(g0.vertex_count(), 5u);  // {0,1,4,7,8}
  }

  // (3) ⟨FAIL, p1, p3⟩: both digraphs extend with p1's successors except
  // p3; g6[p1] also chains through the already-failed p0 (minus the
  // successors p2, p5 whose notifications are already in F).
  p6().on_message(3, Message::fail(0, 1, 3));
  {
    const auto& g0 = p6().tracking_of(0);
    // p1's successors except p3: {0,2,5,6,8} joined the digraph.
    for (NodeId v : {0u, 1u, 2u, 4u, 5u, 6u, 7u, 8u}) {
      EXPECT_TRUE(g0.contains(v)) << "g6[p0] missing p" << v;
    }
    EXPECT_FALSE(g0.contains(3));
    for (NodeId v : {0u, 2u, 5u, 6u, 8u}) {
      EXPECT_TRUE(g0.has_edge(1, v)) << "g6[p0] missing edge (1," << v << ")";
    }

    const auto& g1 = p6().tracking_of(1);
    // Exactly the paper's picture: p1 -> {p0,p2,p5,p6,p8} and the chained
    // p0 -> {p1,p4,p7,p8} (p2 and p5 excluded via F).
    for (NodeId v : {0u, 2u, 5u, 6u, 8u}) {
      EXPECT_TRUE(g1.has_edge(1, v)) << "g6[p1] missing edge (1," << v << ")";
    }
    for (NodeId v : {1u, 4u, 7u, 8u}) {
      EXPECT_TRUE(g1.has_edge(0, v)) << "g6[p1] missing edge (0," << v << ")";
    }
    EXPECT_FALSE(g1.has_edge(0, 2));
    EXPECT_FALSE(g1.has_edge(0, 5));
    EXPECT_FALSE(g1.contains(3));
    EXPECT_EQ(g1.vertex_count(), 8u);  // all but p3
  }

  // (4) ⟨BCAST, m1⟩ arrives: p6 stops tracking m1 entirely.
  p6().on_message(8, Message::bcast(0, 1, nullptr));
  EXPECT_TRUE(p6().tracking_of(1).empty());
  EXPECT_FALSE(p6().tracking_of(0).empty());
}

// ---------------------------------------------------------------------
// End-to-end failure scenarios on the loopback cluster.
// ---------------------------------------------------------------------

TEST(EngineFailure, LostMessageResolvedByEarlyTermination) {
  // §2.3's scenario: p0 fails after sending m0 only to p1; p1 fails
  // before relaying. All survivors must agree on a set without m0, m1.
  LoopbackCluster c(9, binomial_builder());
  c.crash(0, /*more_sends=*/1);  // first send goes to successor p1
  c.crash(1, /*more_sends=*/0);
  c.engine(0).broadcast_now();
  for (NodeId i = 2; i < 9; ++i) c.engine(i).broadcast_now();
  c.pump();
  // Nobody can terminate yet: m0 and m1 are unresolved.
  for (NodeId i = 2; i < 9; ++i) {
    EXPECT_FALSE(c.has_delivered(i)) << "server " << i;
  }
  c.suspect_everywhere(0);
  c.suspect_everywhere(1);
  c.pump();
  for (NodeId i = 2; i < 9; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto& r = c.delivered(i)[0];
    const auto origins = delivered_origins(r);
    EXPECT_EQ(origins, delivered_origins(c.delivered(2)[0]));
    EXPECT_EQ(std::count(origins.begin(), origins.end(), 0), 0);
    EXPECT_EQ(std::count(origins.begin(), origins.end(), 1), 0);
    EXPECT_EQ(r.removed, (std::vector<NodeId>{0, 1}));
  }
}

TEST(EngineFailure, PartialDisseminationStillDelivered) {
  // p0 reaches 3 of its 6 successors before failing: m0 must still be
  // delivered by everyone (agreement) — the survivors relay it.
  LoopbackCluster c(9, binomial_builder());
  c.crash(0, /*more_sends=*/3);
  c.engine(0).broadcast_now();
  for (NodeId i = 1; i < 9; ++i) c.engine(i).broadcast_now();
  c.pump();
  c.suspect_everywhere(0);
  c.pump();
  for (NodeId i = 1; i < 9; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto origins = delivered_origins(c.delivered(i)[0]);
    EXPECT_EQ(std::count(origins.begin(), origins.end(), 0), 1)
        << "server " << i << " lost m0";
    EXPECT_EQ(origins.size(), 9u);
  }
}

TEST(EngineFailure, CrashAfterFullBroadcastKeepsMessage) {
  // p0 disseminates fully, then dies. Round 0 delivers all 9 messages and
  // does NOT remove p0 (its message was A-delivered); round 1 then prunes
  // p0 via carried failure notifications and removes it.
  LoopbackCluster c(9, binomial_builder());
  c.crash(0, /*more_sends=*/6);
  c.engine(0).broadcast_now();
  for (NodeId i = 1; i < 9; ++i) c.engine(i).broadcast_now();
  // Let m0's six copies reach p0's successors first — only then do the
  // failure detectors fire (a suspicion before receipt would correctly
  // drop the direct copies under the ignore-after-suspect rule).
  c.pump(6);
  c.suspect_everywhere(0);
  c.pump();
  for (NodeId i = 1; i < 9; ++i) {
    ASSERT_TRUE(c.has_delivered(i));
    const auto& r0 = c.delivered(i)[0];
    EXPECT_EQ(r0.deliveries.size(), 9u);
    EXPECT_TRUE(r0.removed.empty());
  }
  // Round 1: survivors broadcast; p0 is dead and gets tagged.
  for (NodeId i = 1; i < 9; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 1; i < 9; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 2u) << "server " << i;
    const auto& r1 = c.delivered(i)[1];
    EXPECT_EQ(r1.deliveries.size(), 8u);
    EXPECT_EQ(r1.removed, (std::vector<NodeId>{0}));
  }
  // Round 2 runs on the shrunk 8-server view.
  for (NodeId i = 1; i < 9; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 1; i < 9; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 3u);
    EXPECT_EQ(c.delivered(i)[2].deliveries.size(), 8u);
    EXPECT_EQ(c.delivered(i)[2].view_size, 8u);
  }
}

TEST(EngineFailure, NotificationsCarryAcrossUneventfulTransitions) {
  // Regression: failure pairs learned during a round whose origin still
  // delivered (crash after a complete broadcast) must survive the
  // transition even though the round closes with no membership change —
  // the windowed engine once seeded the next round from an empty carry
  // set in exactly this case, leaving the dead server tracked forever.
  std::vector<NodeId> members{0, 1, 2};
  const auto builder = [](std::size_t n) { return graph::make_complete(n); };
  std::vector<std::pair<NodeId, Message>> sent;
  std::vector<RoundResult> delivered;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId dst, const FrameRef& f) {
    sent.emplace_back(dst, f->msg());
  };
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, builder), builder, hooks);

  // Round 0: p2 broadcast fully, then died — m2 arrives first (relayed
  // by p1), the suspicions after; the round delivers all three messages
  // with nobody removed.
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 2, nullptr));  // m2, relayed by p1
  e.on_suspect(2);                                 // pair (2, 0)
  e.on_message(1, Message::fail(0, 2, 1));         // pair (2, 1)
  e.on_message(1, Message::bcast(0, 1, nullptr));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].deliveries.size(), 3u);
  EXPECT_TRUE(delivered[0].removed.empty());

  // Transition re-disseminated the carried pairs under the new round tag.
  const auto carried_fails =
      std::count_if(sent.begin(), sent.end(), [](const auto& s) {
        return s.second.type == MsgType::kFail && s.second.round == 1;
      });
  EXPECT_GT(carried_fails, 0) << "carried pairs were not re-disseminated";

  // Round 1: p2 is silent. The carried pairs alone must resolve its
  // tracking — without them this deadlocks (no new FAIL traffic exists).
  e.broadcast_now();
  e.on_message(1, Message::bcast(1, 1, nullptr));
  ASSERT_EQ(delivered.size(), 2u) << "round 1 never resolved the dead server";
  EXPECT_EQ(delivered[1].removed, (std::vector<NodeId>{2}));
  EXPECT_EQ(delivered[1].deliveries.size(), 2u);
}

TEST(EngineFailure, MaxToleratedFailuresOnGs) {
  // GS(8,3) has vertex connectivity 3: f = 2 concurrent crashes must be
  // survivable.
  LoopbackCluster c(8, gs_builder(3));
  c.crash(3, 0);
  c.crash(5, 0);
  for (NodeId i = 0; i < 8; ++i) {
    if (!c.is_crashed(i)) c.engine(i).broadcast_now();
  }
  c.pump();
  c.suspect_everywhere(3);
  c.suspect_everywhere(5);
  c.pump();
  std::vector<NodeId> reference;
  for (NodeId i = 0; i < 8; ++i) {
    if (c.is_crashed(i)) continue;
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto origins = delivered_origins(c.delivered(i)[0]);
    if (reference.empty()) reference = origins;
    EXPECT_EQ(origins, reference) << "server " << i;
  }
  EXPECT_EQ(reference.size(), 6u);
}

TEST(EngineFailure, FailureDuringRelayChain) {
  // A mid-path relay dies while m0 is in flight: delivered copies continue
  // via disjoint paths.
  LoopbackCluster c(8, gs_builder(3));
  // Crash a successor of 0 after it relays m0 exactly once.
  const NodeId victim = c.engine(0).view().successors_of(0)[0];
  c.engine(0).broadcast_now();
  c.crash(victim, 4);
  for (NodeId i = 1; i < 8; ++i) {
    if (i != victim) c.engine(i).broadcast_now();
  }
  c.pump();
  c.suspect_everywhere(victim);
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    if (c.is_crashed(i)) continue;
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto origins = delivered_origins(c.delivered(i)[0]);
    EXPECT_EQ(std::count(origins.begin(), origins.end(), 0), 1);
  }
}

TEST(EngineFailure, SuspectedPredecessorMessagesIgnored) {
  // Once p_i suspects a predecessor, data from it is dropped (§3.3.2) —
  // here the message arrives after the local FD verdict.
  std::vector<NodeId> members{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::pair<NodeId, Message>> sent;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId dst, const FrameRef& f) {
    sent.emplace_back(dst, f->msg());
  };
  hooks.deliver = [](const RoundResult&) {};
  Engine p6(6, View(members, binomial_builder()), binomial_builder(), hooks);

  // p5 is a predecessor of p6 (6-1=5). Suspect it, then its BCAST arrives.
  p6.on_suspect(5);
  const auto before = p6.stats().dropped_suspected;
  p6.on_message(5, Message::bcast(0, 5, nullptr));
  EXPECT_EQ(p6.stats().dropped_suspected, before + 1);
  EXPECT_FALSE(p6.tracking_of(5).empty());  // still unresolved
  // The same message relayed by a non-suspected predecessor is accepted.
  p6.on_message(7, Message::bcast(0, 5, nullptr));
  EXPECT_TRUE(p6.tracking_of(5).empty());
}

TEST(EngineFailure, DuplicateFailNotificationsIgnored) {
  std::vector<NodeId> members{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::size_t sends = 0;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId, const FrameRef&) { ++sends; };
  hooks.deliver = [](const RoundResult&) {};
  Engine p6(6, View(members, binomial_builder()), binomial_builder(), hooks);

  p6.on_message(2, Message::fail(0, 0, 2));
  const std::size_t after_first = sends;
  EXPECT_GT(after_first, 0u);  // disseminated to successors
  p6.on_message(4, Message::fail(0, 0, 2));  // same pair, other path
  EXPECT_EQ(sends, after_first);             // not re-disseminated
}

TEST(EngineFailure, WorkWithFailuresWithinBound) {
  // §4.1: each server receives at most n*d + f*d^2 messages.
  const std::size_t n = 9;
  LoopbackCluster c(n, binomial_builder());
  const std::size_t d = c.engine(0).view().overlay().degree();
  c.crash(0, 2);
  c.engine(0).broadcast_now();
  for (NodeId i = 1; i < n; ++i) c.engine(i).broadcast_now();
  c.pump();
  c.suspect_everywhere(0);
  c.pump();
  for (NodeId i = 1; i < n; ++i) {
    const auto& s = c.engine(i).stats();
    EXPECT_LE(s.bcast_received + s.fail_received, n * d + 1 * d * d)
        << "server " << i;
  }
}

TEST(EngineFailure, SequentialCrashesAcrossRounds) {
  // One crash per round for three rounds on GS(11,3): view shrinks
  // 11 -> 10 -> 9 -> 8 with agreement in every round.
  LoopbackCluster c(11, gs_builder(3));
  std::size_t expected_view = 11;
  for (NodeId victim = 0; victim < 3; ++victim) {
    c.crash(victim, 0);
    for (NodeId i = 0; i < 11; ++i) {
      if (!c.is_crashed(i)) c.engine(i).broadcast_now();
    }
    c.pump();
    c.suspect_everywhere(victim);
    c.pump();
    for (NodeId i = 0; i < 11; ++i) {
      if (c.is_crashed(i)) continue;
      const auto& rounds = c.delivered(i);
      ASSERT_EQ(rounds.size(), victim + 1u) << "server " << i;
      EXPECT_EQ(rounds.back().view_size, expected_view);
      EXPECT_EQ(rounds.back().removed, (std::vector<NodeId>{victim}));
    }
    --expected_view;
  }
}

TEST(EngineFailure, PerfectFdModeNeverDropsLost) {
  // With an accurate FD, a message declared lost can never arrive later
  // (see engine.cpp); assert the counter stays zero across a random-ish
  // failure scenario.
  LoopbackCluster c(9, binomial_builder());
  c.crash(4, 2);
  for (NodeId i = 0; i < 9; ++i) {
    if (!c.is_crashed(i)) c.engine(i).broadcast_now();
  }
  c.engine(4).broadcast_now();
  c.pump();
  c.suspect_everywhere(4);
  c.pump();
  for (NodeId i = 0; i < 9; ++i) {
    if (c.is_crashed(i)) continue;
    EXPECT_EQ(c.engine(i).stats().dropped_lost, 0u) << "server " << i;
  }
}

}  // namespace
}  // namespace allconcur::core
