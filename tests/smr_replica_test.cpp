// Integration tests: the replicated KV store mounted on simulated
// AllConcur deployments — convergence, read barriers, crash-failure,
// dynamic membership with snapshot catch-up.
//
// The SimKvCluster itself asserts the per-round divergence guard (every
// replica must land on the reference state hash after every round), so
// merely running these scenarios is already a strong check; the EXPECTs
// below verify the client-visible semantics on top.
#include "smr/kv_cluster.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "test_env.hpp"

namespace allconcur::smr {
namespace {

using allconcur::testing::scaled;

Bytes b(std::string_view s) { return to_bytes(s); }

SimKvOptions small_cluster(std::size_t n) {
  SimKvOptions opt;
  opt.cluster.n = n;
  opt.cluster.detection_delay = ms(1);
  return opt;
}

// Every live replica that applied rounds agrees with the reference hash.
void expect_converged(SimKvCluster& c) {
  EXPECT_TRUE(c.converged());
  std::optional<std::uint64_t> hash;
  for (NodeId id : c.cluster().live_nodes()) {
    if (!c.has_replica(id)) continue;
    const Round next = c.replica(id).next_round();
    if (!hash && next > 0) hash = c.hash_after(next - 1);
  }
  ASSERT_TRUE(hash.has_value()) << "nobody applied anything";
}

TEST(SimKv, PutGetConvergesEverywhere) {
  SimKvCluster c(small_cluster(8));
  auto alice = c.make_session();
  auto bob = c.make_session();

  const auto put = c.execute(0, alice, Command::put(b("city"), b("zurich")));
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok());

  const auto put2 = c.execute(3, bob, Command::put(b("lake"), b("geneva")));
  ASSERT_TRUE(put2.has_value());
  EXPECT_TRUE(put2->ok());

  // A linearizable read through the stream, from yet another node.
  auto carol = c.make_session();
  const auto got = c.execute(5, carol, Command::get(b("city")));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_EQ(got->value, b("zurich"));

  // Everyone that kept up holds both keys.
  const Round seen = c.replica(0).next_round() - 1;
  for (NodeId id : c.cluster().live_nodes()) {
    ASSERT_TRUE(c.read_barrier(id, seen, scaled(sec(5)))) << "node " << id;
    EXPECT_EQ(c.kv(id).get_local(b("city")), b("zurich")) << "node " << id;
    EXPECT_EQ(c.kv(id).get_local(b("lake")), b("geneva")) << "node " << id;
  }
  expect_converged(c);
}

TEST(SimKv, ReadBarrierGivesReadYourWrites) {
  SimKvCluster c(small_cluster(8));
  auto session = c.make_session();
  ASSERT_TRUE(c.execute(1, session, Command::put(b("k"), b("v"))));
  // The client observed its command applied at node 1, i.e. some round R.
  const Round observed = c.replica(1).next_round() - 1;
  // Reading at a different node is only safe after a barrier on R.
  ASSERT_TRUE(c.read_barrier(6, observed, scaled(sec(5))));
  EXPECT_EQ(c.kv(6).get_local(b("k")), b("v"));
  expect_converged(c);
}

TEST(SimKv, CasArbitratesConcurrentWriters) {
  SimKvCluster c(small_cluster(8));
  auto s0 = c.make_session();
  auto s1 = c.make_session();
  // Two clients race create-if-absent on the same key in the same round.
  c.submit(2, s0, Command::cas_absent(b("leader"), b("node2-client")));
  c.submit(5, s1, Command::cas_absent(b("leader"), b("node5-client")));
  c.cluster().broadcast_all_now();
  ASSERT_TRUE(c.cluster().run_until_round_done(0, scaled(sec(5))));

  const auto r0 = c.replica(2).response(s0.id(), 1);
  const auto r1 = c.replica(2).response(s1.id(), 1);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  const bool ok0 = decode_response(*r0)->ok();
  const bool ok1 = decode_response(*r1)->ok();
  EXPECT_NE(ok0, ok1) << "exactly one CAS must win";
  // Delivery order is by origin id, so node 2's client wins everywhere.
  EXPECT_TRUE(ok0);
  EXPECT_EQ(c.kv(0).get_local(b("leader")), b("node2-client"));
  expect_converged(c);
}

TEST(SimKv, SurvivesCrashAndRetryAppliesExactlyOnce) {
  SimKvCluster c(small_cluster(8));
  auto session = c.make_session();
  ASSERT_TRUE(c.execute(0, session, Command::put(b("stable"), b("yes"))));

  // The client's contact node crashes right as the command is submitted:
  // the broadcast may or may not make it out (here: it does not — the
  // crash lands before the broadcast is scheduled).
  c.cluster().crash_at(3, c.sim().now());
  c.submit(3, session, Command::put(b("risky"), b("attempt-1")));
  c.cluster().broadcast_now(3);
  // No response from the dead node; the client retries elsewhere with
  // the same session envelope.
  const auto retried = c.retry(5, session, scaled(sec(10)));
  ASSERT_TRUE(retried.has_value());
  EXPECT_TRUE(retried->ok());

  // Exactly once: the key holds the value, and survivors agree.
  const Round seen = c.replica(5).next_round() - 1;
  for (NodeId id : c.cluster().live_nodes()) {
    ASSERT_TRUE(c.read_barrier(id, seen, scaled(sec(10)))) << "node " << id;
    EXPECT_EQ(c.kv(id).get_local(b("risky")), b("attempt-1"));
    EXPECT_EQ(c.kv(id).get_local(b("stable")), b("yes"));
  }
  expect_converged(c);
}

TEST(SimKv, CrashedBroadcastThatEscapedIsNotAppliedTwice) {
  SimKvCluster c(small_cluster(8));
  auto session = c.make_session();
  // The contact node dies right after its broadcast left (§2.3 fail-stop
  // timing): the command IS agreed, the client just never hears back.
  // Same-timestamp events run FIFO, so the broadcast precedes the crash.
  c.submit(3, session, Command::put(b("double"), b("once")));
  c.cluster().broadcast_all_now();
  c.cluster().crash_at(3, c.sim().now());
  ASSERT_TRUE(c.cluster().run_until_round_done(0, scaled(sec(10))));

  // The retry through a live node answers instantly from the session
  // cache (the command was agreed in round 0)...
  const auto retried = c.retry(0, session, scaled(sec(10)));
  ASSERT_TRUE(retried.has_value());
  EXPECT_TRUE(retried->ok());
  // ...and once the round carrying the duplicate envelope completes, the
  // replicas suppress it instead of re-applying.
  ASSERT_TRUE(c.cluster().run_until_round_done(1, c.sim().now() +
                                                      scaled(sec(10))));
  std::uint64_t duplicates = 0;
  for (NodeId id : c.cluster().live_nodes()) {
    duplicates += c.replica(id).duplicates_suppressed();
  }
  EXPECT_GT(duplicates, 0u) << "the duplicate must have been suppressed";
  EXPECT_EQ(c.kv(0).get_local(b("double")), b("once"));
  expect_converged(c);
}

TEST(SimKv, JoinerCatchesUpFromSnapshotAndLog) {
  SimKvOptions opt = small_cluster(8);
  opt.snapshot_every = 4;  // exercise snapshot + log-replay catch-up
  SimKvCluster c(opt);
  auto session = c.make_session();
  for (int i = 0; i < 10; ++i) {
    const auto key = b("key-" + std::to_string(i));
    ASSERT_TRUE(c.execute(0, session, Command::put(key, b("v"))));
  }

  const NodeId joiner = c.cluster().schedule_join(c.sim().now(), 0);
  c.cluster().broadcast_all_now();
  // Drive rounds until the joiner has applied some (its replica is
  // mounted via snapshot restore + bounded log replay, then verified by
  // the per-round hash guard like everyone else).
  const TimeNs deadline = c.sim().now() + scaled(sec(20));
  while (!(c.has_replica(joiner) && c.replica(joiner).next_round() > 0) &&
         c.sim().now() < deadline) {
    c.cluster().broadcast_all_now();
    c.cluster().run_for(ms(5));
  }
  ASSERT_TRUE(c.has_replica(joiner)) << "joiner never mounted a replica";
  ASSERT_GT(c.replica(joiner).next_round(), 0u);
  EXPECT_EQ(c.kv(joiner).get_local(b("key-9")), b("v"));
  expect_converged(c);
}

TEST(SimKv, LaggingReplicaSpawnsFromRetainedSnapshot) {
  SimKvOptions opt = small_cluster(5);
  opt.snapshot_every = 4;
  opt.keep_snapshots = 2;
  SimKvCluster c(opt);
  auto session = c.make_session();
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(c.execute(0, session,
                          Command::put(b("k" + std::to_string(i)), b("v"))));
  }
  const Round tip = c.replica(0).next_round();
  ASSERT_GE(tip, 9u);

  // A fresh replica built from the newest retained restore point plus
  // log replay matches the live ones bit for bit.
  const auto spawned = c.spawn_replica_at(tip);
  ASSERT_NE(spawned, nullptr);
  EXPECT_EQ(spawned->next_round(), tip);
  EXPECT_EQ(spawned->state_hash(), c.replica(0).state_hash());
  EXPECT_EQ(spawned->snapshot(), c.replica(0).snapshot());

  // Rounds below the oldest retained restore point are truncated, so a
  // from-zero spawn is (correctly) impossible.
  EXPECT_EQ(c.logged_round(0), nullptr);
  EXPECT_EQ(c.spawn_replica_at(1), nullptr);
}

}  // namespace
}  // namespace allconcur::smr
