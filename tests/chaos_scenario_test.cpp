// Scenario-engine determinism and fault semantics: the same seed must
// produce the identical fault schedule however the engine is deployed
// (sim fabric hook or TCP interposition differ only in their clock
// epoch), phases must activate exactly within their windows, and injected
// corruption must always be caught by the frame checksum.
#include <gtest/gtest.h>

#include <vector>

#include "chaos/scenario.hpp"
#include "core/message.hpp"

namespace allconcur::chaos {
namespace {

bool same_action(const Action& a, const Action& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate &&
         a.corrupt == b.corrupt && a.delay == b.delay &&
         a.corrupt_at == b.corrupt_at;
}

Scenario busy_scenario(std::uint64_t seed) {
  LinkFaults f;
  f.drop = 0.1;
  f.duplicate = 0.15;
  f.corrupt = 0.1;
  f.reorder = 0.3;
  f.reorder_jitter = us(500);
  return Scenario(seed)
      .partition(ms(10), ms(20), {2, 3})
      .link_down(ms(5), ms(30), 0, 1)
      .flap_link(0, ms(40), 1, 0, ms(4))
      .gray(ms(15), ms(35), 4, us(200), 0.25)
      .faults(0, kTimeNever, f);
}

// A deterministic pseudo-workload of (src, dst, t) frame events.
struct Ev {
  NodeId src, dst;
  TimeNs t;
};
std::vector<Ev> workload(std::size_t frames) {
  std::vector<Ev> out;
  out.reserve(frames);
  TimeNs t = 0;
  for (std::size_t i = 0; i < frames; ++i) {
    const NodeId src = static_cast<NodeId>(i % 5);
    const NodeId dst = static_cast<NodeId>((i + 1 + i / 5) % 5);
    t += us(7);
    out.push_back({src, dst, t});
  }
  return out;
}

TEST(ChaosScenario, SameSeedSameSchedule) {
  ScenarioEngine a(busy_scenario(42));
  ScenarioEngine b(busy_scenario(42));
  a.set_epoch(0);
  b.set_epoch(0);
  for (const Ev& e : workload(5000)) {
    const Action va = a.on_frame(e.src, e.dst, e.t);
    const Action vb = b.on_frame(e.src, e.dst, e.t);
    ASSERT_TRUE(same_action(va, vb));
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().delayed, b.stats().delayed);
  // The scenario actually did something.
  EXPECT_GT(a.stats().dropped, 0u);
  EXPECT_GT(a.stats().duplicated, 0u);
  EXPECT_GT(a.stats().corrupted, 0u);
  EXPECT_GT(a.stats().delayed, 0u);
}

TEST(ChaosScenario, SimAndTcpClockEpochsAlign) {
  // The sim path runs on virtual time from ~0; the TCP path runs on the
  // monotonic clock with an arbitrary origin. Identical relative times
  // must yield the identical schedule — that is what makes a committed
  // seed replayable across deployments.
  ScenarioEngine sim_path(busy_scenario(7));
  ScenarioEngine tcp_path(busy_scenario(7));
  const TimeNs boot = 123'456'789'000'000;  // some monotonic-clock origin
  for (const Ev& e : workload(3000)) {
    // Each engine's epoch auto-pins to the first frame it sees, so the
    // shifted clock cancels out.
    const Action vs = sim_path.on_frame(e.src, e.dst, e.t);
    const Action vt = tcp_path.on_frame(e.src, e.dst, boot + e.t);
    ASSERT_TRUE(same_action(vs, vt));
  }
}

TEST(ChaosScenario, DifferentSeedsDiverge) {
  ScenarioEngine a(busy_scenario(1));
  ScenarioEngine b(busy_scenario(2));
  a.set_epoch(0);
  b.set_epoch(0);
  std::size_t differ = 0;
  for (const Ev& e : workload(2000)) {
    if (!same_action(a.on_frame(e.src, e.dst, e.t),
                     b.on_frame(e.src, e.dst, e.t))) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 0u);
}

TEST(ChaosScenario, PartitionActiveOnlyInsideWindow) {
  ScenarioEngine eng(Scenario(9).partition(ms(10), ms(20), {1}));
  eng.set_epoch(0);
  EXPECT_FALSE(eng.on_frame(0, 1, ms(9)).drop);   // before
  EXPECT_TRUE(eng.on_frame(0, 1, ms(10)).drop);   // boundary crossing in
  EXPECT_TRUE(eng.on_frame(1, 0, ms(15)).drop);   // both directions
  EXPECT_FALSE(eng.on_frame(0, 2, ms(15)).drop);  // same side: untouched
  EXPECT_FALSE(eng.on_frame(0, 1, ms(20)).drop);  // healed (half-open)
}

TEST(ChaosScenario, LinkDownIsAsymmetric) {
  ScenarioEngine eng(Scenario(9).link_down(0, ms(10), 2, 3));
  eng.set_epoch(0);
  EXPECT_TRUE(eng.on_frame(2, 3, ms(5)).drop);
  EXPECT_FALSE(eng.on_frame(3, 2, ms(5)).drop);  // reverse direction up
}

TEST(ChaosScenario, FlappingLinkAlternates) {
  ScenarioEngine eng(Scenario(9).flap_link(0, ms(100), 0, 1, ms(10)));
  eng.set_epoch(0);
  EXPECT_TRUE(eng.on_frame(0, 1, ms(2)).drop);    // first half: down
  EXPECT_FALSE(eng.on_frame(0, 1, ms(7)).drop);   // second half: up
  EXPECT_TRUE(eng.on_frame(0, 1, ms(12)).drop);   // next period: down again
  EXPECT_FALSE(eng.on_frame(0, 1, ms(18)).drop);
}

TEST(ChaosScenario, GraySlowsAndTrickles) {
  ScenarioEngine eng(Scenario(11).gray(0, ms(100), 3, us(250), 0.5));
  eng.set_epoch(0);
  std::size_t dropped = 0, total = 400;
  for (std::size_t i = 0; i < total; ++i) {
    const Action a = eng.on_frame(3, static_cast<NodeId>(i % 3), ms(1));
    EXPECT_EQ(a.delay, us(250));  // slow-but-alive: every frame delayed
    if (a.drop) ++dropped;
  }
  // Half the frames trickle through, half are lost (binomial, wide band).
  EXPECT_GT(dropped, total / 4);
  EXPECT_LT(dropped, 3 * total / 4);
  // Frames from healthy nodes are untouched.
  const Action healthy = eng.on_frame(1, 2, ms(1));
  EXPECT_FALSE(healthy.drop);
  EXPECT_EQ(healthy.delay, 0);
}

TEST(ChaosScenario, CorruptionAlwaysDetectedByChecksum) {
  // Flip every single wire byte in turn: the checksum (or the magic/type
  // plausibility it anchors) must reject every variant — zero silently
  // delivered corrupt payloads, the chaos gate's core guarantee.
  const auto frame = core::Frame::make(core::Message::bcast(
      3, 1, core::make_payload({10, 20, 30, 40, 50})));
  for (std::uint64_t i = 0; i < frame->wire_size(); ++i) {
    const auto tainted = core::Frame::corrupt_copy(*frame, i);
    const auto bytes = tainted->to_bytes();
    EXPECT_FALSE(core::decode(std::span<const std::uint8_t>(bytes)))
        << "byte " << i << " flip went undetected";
  }
  // The undamaged frame still decodes.
  const auto bytes = frame->to_bytes();
  EXPECT_TRUE(core::decode(std::span<const std::uint8_t>(bytes)));
}

TEST(ChaosScenario, SizeOnlyChecksumMatchesMaterializedZeros) {
  // Size-only frames hash their zero payload in closed form (h * p^L);
  // the materialized encoding must agree bit for bit, or the sim bench
  // traffic would be undecodable on a real wire.
  for (const std::uint64_t bytes : {0ull, 1ull, 7ull, 1024ull, 65537ull}) {
    const auto m = core::Message::bcast_sized(5, 2, bytes);
    const auto frame = core::Frame::make(m);
    EXPECT_EQ(frame->to_bytes(), core::encode(m)) << bytes;
    const auto wire = frame->to_bytes();
    EXPECT_TRUE(core::decode(std::span<const std::uint8_t>(wire))) << bytes;
  }
}

TEST(ChaosScenario, InjectionStatsCount) {
  ScenarioEngine eng(Scenario(13).partition(0, kTimeNever, {0}));
  eng.set_epoch(0);
  for (int i = 0; i < 10; ++i) eng.on_frame(0, 1, ms(i));
  for (int i = 0; i < 5; ++i) eng.on_frame(1, 2, ms(i));
  EXPECT_EQ(eng.stats().frames_seen, 15u);
  EXPECT_EQ(eng.stats().dropped, 10u);
}

}  // namespace
}  // namespace allconcur::chaos
