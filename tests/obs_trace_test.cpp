// Causal tracer: span ring discipline, the wire trace context, the
// cross-node merge, and the tentpole acceptance assertion — on the sim
// fabric at f=0 the measured depth D-hat equals the analytic diameter of
// G_R (and stays within 2·log2(n) hops on the de Bruijn fast path).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "api/sim_cluster.hpp"
#include "core/message.hpp"
#include "graph/properties.hpp"
#include "plus/dual_overlay.hpp"

namespace allconcur::obs {
namespace {

// ---------------------------------------------------------------------------
// TraceBuffer ring discipline
// ---------------------------------------------------------------------------

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(5).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(8).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(1).capacity(), 2u);  // same floor as FlightRecorder
}

TEST(TraceBuffer, DisabledRecordsNothing) {
  TraceBuffer t(8, false);
  t.record(SpanKind::kOrigin, 1, 0, 0, 0, 0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(TraceBuffer, RecordsFieldsFaithfully) {
  TraceBuffer t(8);
  TimeNs clock = 42;
  t.set_time_source(&clock);
  t.set_self(3);
  t.record(SpanKind::kRecv, 7, 2, 5, 4, 12345);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].t, 42);
  EXPECT_EQ(spans[0].round, 7u);
  EXPECT_EQ(spans[0].kind, SpanKind::kRecv);
  EXPECT_EQ(spans[0].node, 3u);
  EXPECT_EQ(spans[0].origin, 2u);
  EXPECT_EQ(spans[0].peer, 5u);
  EXPECT_EQ(spans[0].hop, 4u);
  EXPECT_EQ(spans[0].est_ns, 12345u);
}

TEST(TraceBuffer, WraparoundKeepsNewestAndReconstructsSeq) {
  TraceBuffer t(4);
  t.set_self(0);
  for (Round r = 0; r < 10; ++r) {
    t.record(SpanKind::kOrigin, r, 0, 0, 0, 0);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.total_recorded(), 10u);
  const auto spans = t.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest retained first: rounds 6..9, seq 6..9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].round, 6 + i);
    EXPECT_EQ(spans[i].seq, 6 + i);
  }
}

TEST(TraceBuffer, ClearAfterWrapResets) {
  TraceBuffer t(2);
  for (Round r = 0; r < 5; ++r) t.record(SpanKind::kSend, r, 0, 1, 0, 0);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  t.record(SpanKind::kSend, 9, 0, 1, 0, 0);
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_EQ(t.spans()[0].round, 9u);
}

TEST(TraceBuffer, SpansForRoundFilters) {
  TraceBuffer t(16);
  t.record(SpanKind::kOrigin, 3, 0, 0, 0, 0);
  t.record(SpanKind::kOrigin, 4, 0, 0, 0, 0);
  t.record(SpanKind::kRecv, 3, 0, 1, 0, 0);
  EXPECT_EQ(t.spans_for_round(3).size(), 2u);
  EXPECT_EQ(t.spans_for_round(4).size(), 1u);
  EXPECT_EQ(t.spans_for_round(5).size(), 0u);
}

TEST(TraceBuffer, HopEstimateTracksHistogramMean) {
  TraceBuffer t(4);
  EXPECT_EQ(t.hop_estimate_ns(), 0u);  // no histogram donated
  Histogram h;
  t.set_hop_histogram(&h);
  EXPECT_EQ(t.hop_estimate_ns(), 0u);  // empty histogram
  h.record(1000);
  h.record(3000);
  EXPECT_EQ(t.hop_estimate_ns(), 2000u);
}

// ---------------------------------------------------------------------------
// Wire trace context (core/message.hpp header byte 1 + detector reuse)
// ---------------------------------------------------------------------------

TEST(TraceContext, OriginAndRelayHopArithmetic) {
  const std::uint8_t origin = core::Message::trace_origin_context();
  EXPECT_TRUE((origin & core::Message::kTraceSampled) != 0);
  EXPECT_EQ(origin & core::Message::kTraceHopMask, 0);
  std::uint8_t t = origin;
  for (int i = 1; i <= 130; ++i) {
    t = core::Message::trace_relay_context(t);
    EXPECT_TRUE((t & core::Message::kTraceSampled) != 0);
    EXPECT_EQ(t & core::Message::kTraceHopMask,
              std::min(i, 127));  // hop saturates, never wraps into bit 7
  }
  // An unsampled context stays unsampled through a relay.
  EXPECT_EQ(core::Message::trace_relay_context(0) &
                core::Message::kTraceSampled, 0);
}

TEST(TraceContext, SurvivesWireRoundTrip) {
  core::Message m = core::Message::bcast(5, 2, nullptr);
  m.trace = core::Message::trace_relay_context(
      core::Message::trace_origin_context());
  m.detector = 987654;  // cumulative estimate rides the detector word
  const auto bytes = core::encode(m);
  const auto back = core::decode(std::span<const std::uint8_t>(bytes));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->trace_sampled());
  EXPECT_EQ(back->trace_hop(), 1u);
  EXPECT_EQ(back->detector, 987654u);
}

TEST(TraceContext, UnsampledFrameWireImageUnchanged) {
  // trace = 0 must encode exactly as before the trace byte existed: byte 1
  // zero, so old and new binaries interoperate on unsampled traffic.
  const core::Message m = core::Message::bcast(5, 2, nullptr);
  const auto bytes = core::encode(m);
  EXPECT_EQ(bytes[1], 0u);
}

// ---------------------------------------------------------------------------
// Dump / parse round-trip and the merge
// ---------------------------------------------------------------------------

TEST(TraceMergeTest, DumpParseRoundTrip) {
  TraceBuffer t(16);
  TimeNs clock = 1000;
  t.set_time_source(&clock);
  t.set_self(4);
  t.record(SpanKind::kOrigin, 2, 4, 4, 0, 0);
  clock = 2000;
  t.record(SpanKind::kSend, 2, 4, 1, 0, 777);
  TraceMerge merge;
  EXPECT_EQ(merge.add_dump(t.dump_json("node4")), 2u);
  ASSERT_EQ(merge.spans().size(), 2u);
  const auto& s = merge.spans()[1];
  EXPECT_EQ(s.node, 4u);
  EXPECT_EQ(s.t, 2000);
  EXPECT_EQ(s.kind, SpanKind::kSend);
  EXPECT_EQ(s.peer, 1u);
  EXPECT_EQ(s.est_ns, 777u);
}

TEST(TraceMergeTest, GarbageLinesAreSkipped) {
  TraceMerge merge;
  EXPECT_EQ(merge.add_dump("not json\n{\"truncated\": 1\n\n"), 0u);
  EXPECT_TRUE(merge.spans().empty());
}

TEST(TraceMergeTest, TripDumpWritesOneFilePerTracedNode) {
  char tmpl[] = "/tmp/allconcur_trace_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  ::setenv("ALLCONCUR_FLIGHT_DIR", dir, 1);

  TraceBuffer a(16), b(16), empty(16), off(16, /*enabled=*/false);
  a.set_self(0);
  b.set_self(1);
  a.record(SpanKind::kOrigin, 3, 0, 0, 0, 0);
  b.record(SpanKind::kRecv, 3, 0, 0, 0, 500);
  off.record(SpanKind::kRecv, 3, 0, 0, 0, 0);  // dropped: disabled

  const auto written = trace_dump_on_trip(
      "unit_trip",
      {{"node0", &a}, {"node1", &b}, {"node2", &empty}, {"node3", &off}});
  ::unsetenv("ALLCONCUR_FLIGHT_DIR");
  // Empty and disabled tracers are skipped — only nodes with spans dump.
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(written[0], std::string(dir) + "/trace_unit_trip_node0.jsonl");

  // The files round-trip through the same parser allconcur_trace uses.
  TraceMerge merge;
  for (const auto& path : written) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << path;
    std::string body(4096, '\0');
    body.resize(std::fread(body.data(), 1, body.size(), f));
    std::fclose(f);
    EXPECT_GT(merge.add_dump(body), 0u) << path;
  }
  EXPECT_EQ(merge.spans().size(), 2u);
}

TEST(TraceMergeTest, TripDumpWithoutDirWritesNothing) {
  ::unsetenv("ALLCONCUR_FLIGHT_DIR");
  TraceBuffer a(16);
  a.set_self(0);
  a.record(SpanKind::kOrigin, 1, 0, 0, 0, 0);
  EXPECT_TRUE(trace_dump_on_trip("no_dir", {{"node0", &a}}).empty());
}

// ---------------------------------------------------------------------------
// Acceptance: D-hat on the sim fabric equals the analytic depth (f=0)
// ---------------------------------------------------------------------------

api::SimCluster traced_cluster(std::size_t n, bool dual) {
  api::ClusterOptions opt;
  opt.n = n;
  opt.trace_sample_period = 1;
  opt.trace_capacity = 1 << 14;
  if (dual) opt.fast_builder = plus::make_unreliable_builder();
  return api::SimCluster(std::move(opt));
}

TEST(TraceDepth, MatchesGraphDiameterOnGr) {
  for (const std::size_t n : {8u, 16u, 32u}) {
    api::SimCluster c = traced_cluster(n, false);
    c.broadcast_all_now();
    ASSERT_TRUE(c.run_until_round_done(0, sec(5))) << "n=" << n;
    const graph::Digraph g = c.options().builder(n);
    const auto diam = graph::diameter(g);
    ASSERT_TRUE(diam.has_value());
    const TraceMerge merged = c.merged_trace();
    const auto broadcasts = merged.broadcasts();
    // Every origin's broadcast is traced and reaches all n-1 others.
    std::size_t round0 = 0;
    for (const auto& b : broadcasts) {
      if (b.round != 0) continue;
      ++round0;
      EXPECT_EQ(b.reached, n - 1) << "n=" << n << " origin=" << b.origin;
      EXPECT_FALSE(b.fell_back);
      EXPECT_GE(b.depth, 1u);
      EXPECT_LE(b.depth, *diam);
      // The critical path walks back to the origin, one hop per step.
      ASSERT_FALSE(b.critical_path.empty());
      EXPECT_EQ(b.critical_path.front().node, b.origin);
      EXPECT_EQ(b.critical_path.back().dist, b.depth);
      EXPECT_EQ(b.critical_path.size(), b.depth + 1);
    }
    EXPECT_EQ(round0, n);
    // Uniform per-hop costs: first receipts follow BFS shortest paths, so
    // the max depth over all n origins is exactly the diameter.
    EXPECT_EQ(merged.empirical_depth(), *diam) << "n=" << n;
  }
}

TEST(TraceDepth, DeBruijnFastPathStaysWithinTwoLogN) {
  for (const std::size_t n : {8u, 16u, 32u}) {
    api::SimCluster c = traced_cluster(n, true);
    c.broadcast_all_now();
    ASSERT_TRUE(c.run_until_round_done(0, sec(5))) << "n=" << n;
    const TraceMerge merged = c.merged_trace();
    const auto bound = static_cast<std::size_t>(
        2.0 * std::log2(static_cast<double>(n)));
    EXPECT_GE(merged.empirical_depth(), 1u);
    EXPECT_LE(merged.empirical_depth(), bound) << "n=" << n;
    for (const auto& b : merged.broadcasts()) {
      if (b.round != 0) continue;
      EXPECT_EQ(b.reached, n - 1) << "origin=" << b.origin;
      EXPECT_FALSE(b.fell_back);
    }
  }
}

TEST(TraceDepth, BreakdownAttributesSimLatencies) {
  api::SimCluster c = traced_cluster(8, false);
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));
  const TraceMerge merged = c.merged_trace();
  const TraceBreakdown bd = merged.breakdown();
  ASSERT_GT(bd.hops, 0u);
  // The fabric's wire latency is 12us (tcp_ib): the mean matched wire
  // edge must cost at least L.
  EXPECT_GE(bd.wire_ns / static_cast<double>(bd.hops), 12'000.0);
  EXPECT_GE(bd.process_ns, 0.0);
  EXPECT_GE(bd.queue_ns, 0.0);
  EXPECT_GE(bd.serialize_ns, 0.0);
}

TEST(TraceDepth, CumulativeEstimateGrowsAlongThePath) {
  api::SimCluster c = traced_cluster(16, false);
  // Seed the relay-hop histogram with one warm round, then trace another:
  // the estimate stamped into round-1 frames uses round-0's measured mean.
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(1, sec(5)));
  const TraceMerge merged = c.merged_trace();
  bool saw_estimate = false;
  for (const auto& b : merged.broadcasts()) {
    if (b.round == 1 && b.depth >= 2 && b.max_est_ns > 0) saw_estimate = true;
  }
  EXPECT_TRUE(saw_estimate);
}

TEST(TraceDepth, FallbackAnnotatesTheRoundDag) {
  api::SimCluster c = traced_cluster(8, true);
  c.broadcast_all_now();
  c.run_for(us(5));
  c.force_fallback(0);
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));
  const TraceMerge merged = c.merged_trace();
  bool fell_back = false;
  for (const auto& b : merged.broadcasts()) {
    if (b.round == 0 && b.fell_back) fell_back = true;
  }
  EXPECT_TRUE(fell_back);
  // The handoff is an explicit DAG edge: at least the initiator recorded a
  // kFallback span for the round.
  bool has_span = false;
  for (const auto& s : merged.spans()) {
    if (s.kind == SpanKind::kFallback && s.round == 0) has_span = true;
  }
  EXPECT_TRUE(has_span);
}

TEST(TraceDepth, SamplingPeriodSkipsRounds) {
  api::ClusterOptions opt;
  opt.n = 8;
  opt.trace_sample_period = 2;  // rounds 0, 2, 4, ... sampled
  api::SimCluster c(std::move(opt));
  for (Round r = 0; r < 4; ++r) {
    c.broadcast_all_now();
    ASSERT_TRUE(c.run_until_round_done(r, sec(5)));
  }
  std::set<Round> traced;
  for (const auto& b : c.merged_trace().broadcasts()) traced.insert(b.round);
  EXPECT_TRUE(traced.count(0));
  EXPECT_TRUE(traced.count(2));
  EXPECT_FALSE(traced.count(1));
  EXPECT_FALSE(traced.count(3));
}

TEST(TraceDepth, ChromeTraceJsonIsWellFormedEnough) {
  api::SimCluster c = traced_cluster(8, false);
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(5)));
  const std::string json = c.merged_trace().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace allconcur::obs
