// Fuzz-style robustness tests: the wire decoder and the batch parser must
// handle arbitrary bytes without crashing (the TCP transport feeds them
// whatever arrives on a socket), and the engine must survive arbitrary
// well-formed-but-hostile message sequences.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/message.hpp"
#include "graph/digraph.hpp"

#include "test_env.hpp"

namespace allconcur::core {
namespace {

TEST(Fuzz, DecoderSurvivesRandomBytes) {
  Rng rng(testing::test_seed_offset() + 0xf00d);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t len = rng.next_below(96);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    // Must not crash; may or may not parse.
    const auto msg = decode(bytes);
    if (msg) {
      // If it parsed, the declared length must be consistent.
      EXPECT_LE(Message::kHeaderBytes + msg->payload_bytes, len);
    }
  }
}

TEST(Fuzz, DecoderRoundTripsMutatedHeaders) {
  Rng rng(testing::test_seed_offset() + 0xbeef);
  const auto base = encode(Message::bcast(3, 1, make_payload({1, 2, 3, 4})));
  for (int iter = 0; iter < 5000; ++iter) {
    auto bytes = base;
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto msg = decode(bytes);  // must not crash
    (void)msg;
  }
}

TEST(Fuzz, BatchParserSurvivesRandomBytes) {
  Rng rng(testing::test_seed_offset() + 0xcafe);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto batch = unpack_batch(make_payload(std::move(bytes)));
    (void)batch;  // nullopt or parsed; never a crash
  }
}

TEST(Fuzz, EngineSurvivesHostileMessageStream) {
  // An adversary that controls a peer's link can send any well-formed
  // protocol message. The engine may drop them, but must not crash,
  // deliver inconsistently, or corrupt its round state.
  Rng rng(testing::test_seed_offset() + 0xdead);
  std::vector<NodeId> members{0, 1, 2, 3, 4};
  const auto builder = [](std::size_t n) { return graph::make_complete(n); };
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  std::size_t delivered = 0;
  hooks.deliver = [&](const RoundResult&) { ++delivered; };
  Engine e(0, View(members, builder), builder, hooks);

  for (int iter = 0; iter < 50000; ++iter) {
    const NodeId from = static_cast<NodeId>(rng.next_below(8));  // some bogus
    Message m;
    switch (rng.next_below(4)) {
      case 0:
        m = Message::bcast(rng.next_below(4),
                           static_cast<NodeId>(rng.next_below(8)),
                           rng.next_below(2) ? nullptr
                                             : make_payload({1, 2, 3}));
        break;
      case 1:
        m = Message::fail(rng.next_below(4),
                          static_cast<NodeId>(rng.next_below(8)),
                          static_cast<NodeId>(rng.next_below(8)));
        break;
      case 2:
        m = Message::fwd(rng.next_below(4),
                         static_cast<NodeId>(rng.next_below(8)));
        break;
      default:
        m = Message::heartbeat(static_cast<NodeId>(rng.next_below(8)));
        break;
    }
    e.on_message(from, m);
  }
  // The engine is still sane: round number bounded by what hostile
  // traffic can legitimately complete.
  EXPECT_LE(e.current_round(), 4u);
  EXPECT_LE(delivered, 4u);
}

TEST(Fuzz, EngineSurvivesMalformedBatchPayloads) {
  // A BCAST whose payload is not a valid batch must still be relayed and
  // delivered (payload opacity), only the membership scan skips it.
  std::vector<NodeId> members{0, 1, 2};
  const auto builder = [](std::size_t n) { return graph::make_complete(n); };
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  std::vector<RoundResult> results;
  hooks.deliver = [&](const RoundResult& r) { results.push_back(r); };
  Engine e(0, View(members, builder), builder, hooks);
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, make_payload({0xff, 0xff, 0xff})));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].deliveries.size(), 3u);
  EXPECT_TRUE(results[0].joined.empty());
}

}  // namespace
}  // namespace allconcur::core
