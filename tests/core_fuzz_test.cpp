// Fuzz-style robustness tests: the wire decoder and the batch parser must
// handle arbitrary bytes without crashing (the TCP transport feeds them
// whatever arrives on a socket), and the engine must survive arbitrary
// well-formed-but-hostile message sequences.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/message.hpp"
#include "graph/digraph.hpp"

#include "test_env.hpp"

namespace allconcur::core {
namespace {

TEST(Fuzz, DecoderSurvivesRandomBytes) {
  Rng rng(testing::test_seed_offset() + 0xf00d);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t len = rng.next_below(96);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    // Must not crash; may or may not parse.
    const auto msg = decode(bytes);
    if (msg) {
      // If it parsed, the declared length must be consistent.
      EXPECT_LE(Message::kHeaderBytes + msg->payload_bytes, len);
    }
  }
}

TEST(Fuzz, DecoderRoundTripsMutatedHeaders) {
  Rng rng(testing::test_seed_offset() + 0xbeef);
  const auto base = encode(Message::bcast(3, 1, make_payload({1, 2, 3, 4})));
  for (int iter = 0; iter < 5000; ++iter) {
    auto bytes = base;
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    const auto msg = decode(bytes);  // must not crash
    (void)msg;
  }
}

TEST(Fuzz, StreamParserResyncsAcrossTornFrames) {
  // A stream of good frames with garbage runs and torn copies spliced in:
  // the parser must deliver every intact frame, drop the damage, and
  // never desync past a good frame or stall.
  Rng rng(testing::test_seed_offset() + 0xfeed);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> stream;
    std::size_t good = 0;
    for (int f = 0; f < 12; ++f) {
      const auto choice = rng.next_below(4);
      if (choice == 0) {
        // Garbage run.
        const std::size_t len = 1 + rng.next_below(40);
        for (std::size_t i = 0; i < len; ++i) {
          stream.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        }
      } else if (choice == 1) {
        // A frame with one wire byte flipped (chaos corruption).
        const auto frame = Frame::make(Message::bcast(
            f, 1, make_payload({0xaa, 0xbb, static_cast<std::uint8_t>(f)})));
        const auto bytes =
            Frame::corrupt_copy(*frame, rng.next_u64())->to_bytes();
        stream.insert(stream.end(), bytes.begin(), bytes.end());
      } else {
        // Intact frame; payload sometimes empty.
        const auto frame = Frame::make(
            choice == 2 ? Message::bcast(f, 2, make_payload({1, 2, 3, 4}))
                        : Message::fail(f, 1, 2));
        const auto bytes = frame->to_bytes();
        stream.insert(stream.end(), bytes.begin(), bytes.end());
        ++good;
      }
    }
    StreamStats stats;
    std::size_t delivered = 0;
    const std::size_t at = parse_stream(
        stream, 0, stats, [&](const Message&) { ++delivered; });
    // Every intact frame survived the surrounding damage. (Equality, not
    // >=: torn frames and garbage must never produce a delivery, and the
    // header checksum makes accidental reassembly into a valid frame a
    // 2^-32 event.)
    EXPECT_EQ(delivered, good) << "iter " << iter;
    EXPECT_EQ(stats.frames, good);
    EXPECT_LE(at, stream.size());  // parser terminated and consumed sanely
  }
}

TEST(Fuzz, StreamParserNeverStallsOnHostileLengthField) {
  // Regression: a corrupted length field declaring a huge payload must
  // not park the connection waiting for bytes that will never come. The
  // header checksum rejects the tampered header, and the parser resyncs
  // to the genuine frame behind it.
  const auto good = Frame::make(Message::bcast(7, 2, make_payload({9, 9})))
                        ->to_bytes();
  for (const std::uint32_t hostile :
       {std::uint32_t{0xffffffffu}, std::uint32_t{64u << 20},
        std::uint32_t{1u << 16}}) {
    auto evil = Frame::make(Message::bcast(3, 1, nullptr))->to_bytes();
    std::memcpy(evil.data() + 12, &hostile, sizeof(hostile));  // forge length
    std::vector<std::uint8_t> stream = evil;
    stream.insert(stream.end(), good.begin(), good.end());
    StreamStats stats;
    std::size_t delivered = 0;
    const std::size_t at = parse_stream(
        stream, 0, stats, [&](const Message& m) {
          ++delivered;
          EXPECT_EQ(m.round, 7u);
        });
    EXPECT_EQ(delivered, 1u) << "length " << hostile;
    EXPECT_EQ(at, stream.size()) << "parser stalled waiting on forged length";
    EXPECT_GE(stats.corrupt_drops, 1u);
    EXPECT_GE(stats.resyncs, 1u);
  }
}

TEST(Fuzz, StreamParserKeepsSplitFramesAcrossReads) {
  // A frame split at every possible byte boundary across two reads must
  // survive: the prefix is retained as a plausible tail, and the second
  // read completes it.
  const auto frame =
      Frame::make(Message::bcast(5, 3, make_payload({1, 2, 3, 4, 5, 6})));
  const auto bytes = frame->to_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> buf(bytes.begin(), bytes.begin() +
                                  static_cast<std::ptrdiff_t>(cut));
    StreamStats stats;
    std::size_t delivered = 0;
    const auto sink = [&](const Message& m) {
      ++delivered;
      EXPECT_EQ(m.round, 5u);
      ASSERT_TRUE(m.payload);
      EXPECT_EQ(m.payload->size(), 6u);
    };
    const std::size_t at1 = parse_stream(buf, 0, stats, sink);
    EXPECT_EQ(at1, 0u) << "cut " << cut;  // nothing consumed yet
    EXPECT_EQ(delivered, 0u);
    buf.insert(buf.end(), bytes.begin() + static_cast<std::ptrdiff_t>(cut),
               bytes.end());
    const std::size_t at2 = parse_stream(buf, at1, stats, sink);
    EXPECT_EQ(at2, bytes.size());
    EXPECT_EQ(delivered, 1u);
    EXPECT_EQ(stats.corrupt_drops, 0u);
  }
}

TEST(Fuzz, BatchParserSurvivesRandomBytes) {
  Rng rng(testing::test_seed_offset() + 0xcafe);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto batch = unpack_batch(make_payload(std::move(bytes)));
    (void)batch;  // nullopt or parsed; never a crash
  }
}

TEST(Fuzz, EngineSurvivesHostileMessageStream) {
  // An adversary that controls a peer's link can send any well-formed
  // protocol message. The engine may drop them, but must not crash,
  // deliver inconsistently, or corrupt its round state.
  Rng rng(testing::test_seed_offset() + 0xdead);
  std::vector<NodeId> members{0, 1, 2, 3, 4};
  const auto builder = [](std::size_t n) { return graph::make_complete(n); };
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  std::size_t delivered = 0;
  hooks.deliver = [&](const RoundResult&) { ++delivered; };
  Engine e(0, View(members, builder), builder, hooks);

  for (int iter = 0; iter < 50000; ++iter) {
    const NodeId from = static_cast<NodeId>(rng.next_below(8));  // some bogus
    Message m;
    switch (rng.next_below(4)) {
      case 0:
        m = Message::bcast(rng.next_below(4),
                           static_cast<NodeId>(rng.next_below(8)),
                           rng.next_below(2) ? nullptr
                                             : make_payload({1, 2, 3}));
        break;
      case 1:
        m = Message::fail(rng.next_below(4),
                          static_cast<NodeId>(rng.next_below(8)),
                          static_cast<NodeId>(rng.next_below(8)));
        break;
      case 2:
        m = Message::fwd(rng.next_below(4),
                         static_cast<NodeId>(rng.next_below(8)));
        break;
      default:
        m = Message::heartbeat(static_cast<NodeId>(rng.next_below(8)));
        break;
    }
    e.on_message(from, m);
  }
  // The engine is still sane: round number bounded by what hostile
  // traffic can legitimately complete.
  EXPECT_LE(e.current_round(), 4u);
  EXPECT_LE(delivered, 4u);
}

TEST(Fuzz, EngineSurvivesMalformedBatchPayloads) {
  // A BCAST whose payload is not a valid batch must still be relayed and
  // delivered (payload opacity), only the membership scan skips it.
  std::vector<NodeId> members{0, 1, 2};
  const auto builder = [](std::size_t n) { return graph::make_complete(n); };
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  std::vector<RoundResult> results;
  hooks.deliver = [&](const RoundResult& r) { results.push_back(r); };
  Engine e(0, View(members, builder), builder, hooks);
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, make_payload({0xff, 0xff, 0xff})));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].deliveries.size(), 3u);
  EXPECT_TRUE(results[0].joined.empty());
}

}  // namespace
}  // namespace allconcur::core
