// Integration tests over real localhost TCP sockets: the replicated KV
// store mounted on epoll-driven TcpNodes — convergence, exactly-once
// retries, snapshot equality, and a crash-failure scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.hpp"
#include "smr/tcp_kv.hpp"
#include "test_env.hpp"

namespace allconcur::smr {
namespace {

using allconcur::testing::scaled;
using allconcur::testing::test_seed;

Bytes b(std::string_view s) { return to_bytes(s); }

// n KvNodes on localhost, one event-loop thread each (the
// multi-process-on-one-server deployment shape, in-process for testing).
class KvTcpCluster {
 public:
  explicit KvTcpCluster(std::size_t n, DurationNs fd_timeout = ms(250),
                        std::size_t window = 1) {
    Rng rng(test_seed() ^ static_cast<std::uint64_t>(::getpid()) ^ 0x6b76ull);
    const std::uint16_t base =
        static_cast<std::uint16_t>(20000 + rng.next_below(30000));
    std::vector<NodeId> members(n);
    for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
    for (std::size_t i = 0; i < n; ++i) {
      net::TcpNodeOptions opt;
      opt.self = static_cast<NodeId>(i);
      opt.members = members;
      opt.base_port = base;
      opt.window = window;
      opt.fd_params.period = ms(25);
      opt.fd_params.timeout = scaled(fd_timeout);
      nodes_.push_back(std::make_unique<KvNode>(std::move(opt)));
    }
    for (auto& node : nodes_) node->start();
    for (auto& node : nodes_) node->wait_connected(scaled(sec(10)));
  }

  KvNode& node(NodeId id) { return *nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }

  /// Barriers every node in `ids` to node `from`'s applied tip, then
  /// expects identical state hashes (the cross-replica divergence check).
  void expect_converged(const std::vector<NodeId>& ids, NodeId from) {
    ASSERT_GT(nodes_[from]->next_round(), 0u);
    const Round tip = nodes_[from]->next_round() - 1;
    for (NodeId id : ids) {
      ASSERT_TRUE(nodes_[id]->read_barrier(tip, scaled(sec(30))))
          << "node " << id << " never applied round " << tip;
    }
    // Barriered replicas may have run ahead; compare at a common round.
    Round common = nodes_[ids.front()]->next_round();
    for (NodeId id : ids) common = std::min(common, nodes_[id]->next_round());
    for (NodeId id : ids) {
      ASSERT_TRUE(nodes_[id]->read_barrier(common - 1, scaled(sec(30))));
    }
    // Quiesce: wait until everyone sits at the same round, then compare.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(scaled(sec(30)));
    for (;;) {
      Round lo = nodes_[ids.front()]->next_round(), hi = lo;
      for (NodeId id : ids) {
        lo = std::min(lo, nodes_[id]->next_round());
        hi = std::max(hi, nodes_[id]->next_round());
      }
      if (lo == hi) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "replicas never quiesced at a common round";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (NodeId id : ids) {
      EXPECT_EQ(nodes_[id]->state_hash(), nodes_[from]->state_hash())
          << "node " << id << " diverged";
    }
  }

 private:
  std::vector<std::unique_ptr<KvNode>> nodes_;
};

TEST(TcpKv, PutGetConvergesAcrossRealSockets) {
  KvTcpCluster c(5);
  KvSession session(1);
  const auto put =
      c.node(0).execute(session, Command::put(b("wire"), b("survives")));
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok());

  // Linearizable read path: barrier another node to the observed round,
  // then read locally.
  const Round observed = c.node(0).next_round() - 1;
  ASSERT_TRUE(c.node(3).read_barrier(observed, scaled(sec(30))));
  EXPECT_EQ(c.node(3).get_local(b("wire")), b("survives"));

  // Linearizable read through the stream from yet another node.
  KvSession reader(2);
  const auto got = c.node(4).execute(reader, Command::get(b("wire")));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, b("survives"));

  c.expect_converged({0, 1, 2, 3, 4}, 0);
}

TEST(TcpKv, DuplicateSubmissionAppliesExactlyOnce) {
  KvTcpCluster c(4);
  KvSession session(7);
  const auto first =
      c.node(1).execute(session, Command::put(b("count"), b("one")));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->ok());

  // The client (pretending its response was lost) retries the identical
  // envelope through two other nodes.
  const auto retry2 = c.node(2).retry(session, scaled(sec(30)));
  ASSERT_TRUE(retry2.has_value());
  EXPECT_TRUE(retry2->ok());
  const auto retry3 = c.node(3).retry(session, scaled(sec(30)));
  ASSERT_TRUE(retry3.has_value());
  EXPECT_TRUE(retry3->ok());

  // Both retries answered instantly from the session cache; now drive a
  // round on each retry node so the duplicate envelopes actually land in
  // the agreed stream (the barrier's broadcast nudge packs them).
  for (const NodeId id : {NodeId{2}, NodeId{3}}) {
    const Round r = c.node(id).next_round();
    ASSERT_TRUE(c.node(id).read_barrier(r, scaled(sec(30))));
  }

  c.expect_converged({0, 1, 2, 3}, 0);
  // Each replica applied the command once; the extra copies that reached
  // the stream were suppressed identically everywhere.
  for (NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(c.node(id).commands_applied(), 1u) << "node " << id;
    EXPECT_EQ(c.node(id).duplicates_suppressed(),
              c.node(0).duplicates_suppressed())
        << "node " << id;
  }
  EXPECT_GE(c.node(0).duplicates_suppressed(), 1u);
  EXPECT_EQ(c.node(0).get_local(b("count")), b("one"));
}

TEST(TcpKv, SnapshotMatchesBitForBitAcrossNodes) {
  KvTcpCluster c(4);
  KvSession session(9);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.node(0).execute(
        session, Command::put(b("k" + std::to_string(i)),
                              b("v" + std::to_string(i)))));
  }
  c.expect_converged({0, 1, 2, 3}, 0);
  // Deterministic snapshots: once two replicas sit at the same round,
  // their serialized state is byte-identical — and a fresh replica
  // restored from it reports the same divergence hash.
  const auto snap = c.node(0).snapshot();
  EXPECT_EQ(c.node(2).snapshot(), snap);
  Replica restored(std::make_unique<KvStore>());
  ASSERT_TRUE(restored.restore(snap));
  EXPECT_EQ(restored.state_hash(), c.node(0).state_hash());
  const auto& kv = dynamic_cast<const KvStore&>(restored.machine());
  EXPECT_EQ(kv.get_local(b("k4")), b("v4"));
}

TEST(TcpKv, PipelinedWindowConvergesAndStaysExactlyOnce) {
  // W = 4 over real sockets: several sessions push writes concurrently
  // (each session keeps one contact node — the session ordering
  // contract), rounds overlap in flight, and the replicas must converge
  // on identical hashes with exactly-once semantics intact.
  KvTcpCluster c(5, ms(250), /*window=*/4);
  std::vector<KvSession> sessions;
  for (std::uint64_t s = 1; s <= 3; ++s) sessions.emplace_back(100 + s);

  for (int batch = 0; batch < 4; ++batch) {
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const std::string key = "s" + std::to_string(s);
      const std::string val =
          "b" + std::to_string(batch) + "_" + std::to_string(s);
      const auto resp = c.node(static_cast<NodeId>(s)).execute(
          sessions[s], Command::put(b(key), b(val)), scaled(sec(30)));
      ASSERT_TRUE(resp.has_value()) << "batch " << batch << " session " << s;
      EXPECT_TRUE(resp->ok());
    }
  }
  // A duplicate retry through another node must still be suppressed.
  const auto retry = c.node(4).retry(sessions[0], scaled(sec(30)));
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(retry->ok());

  c.expect_converged({0, 1, 2, 3, 4}, 0);
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(c.node(id).commands_applied(), 12u) << "node " << id;
    EXPECT_EQ(c.node(id).get_local(b("s1")), b("b3_1"));
  }
}

TEST(TcpKv, PendingBytesSurfacesBackpressure) {
  // submit() without a broadcast parks the payload in the engine; the
  // transport publishes the backlog through KvNode::pending_bytes() so a
  // client can throttle. Driving a round flushes it back to zero.
  KvTcpCluster c(3);
  KvSession session(55);
  c.node(0).transport().submit(
      core::Request::of_data(session.issue(Command::put(b("bp"), b("v")))));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(scaled(sec(10)));
  while (c.node(0).pending_bytes() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "pending bytes never surfaced";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(c.node(0).pending_bytes(), 0u);

  // Drive the round: the parked submission goes out and the signal clears.
  const Round r = c.node(0).next_round();
  ASSERT_TRUE(c.node(0).read_barrier(r, scaled(sec(30))));
  const auto clear_deadline = std::chrono::steady_clock::now() +
                              std::chrono::nanoseconds(scaled(sec(10)));
  while (c.node(0).pending_bytes() != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), clear_deadline)
        << "pending bytes never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(c.node(0).get_local(b("bp")), b("v"));
}

TEST(TcpKv, SurvivesCrashFailure) {
  KvTcpCluster c(5);
  KvSession session(11);
  ASSERT_TRUE(c.node(0).execute(session, Command::put(b("pre"), b("crash"))));

  // Node 4 fail-stops: sockets close, heartbeats cease. The survivors'
  // heartbeat FDs evict it and the store keeps serving writes.
  c.node(4).stop();
  for (int i = 0; i < 3; ++i) {
    const auto resp = c.node(0).execute(
        session, Command::put(b("post" + std::to_string(i)), b("ok")),
        scaled(sec(60)));
    ASSERT_TRUE(resp.has_value()) << "write " << i << " after the crash";
    EXPECT_TRUE(resp->ok());
  }

  c.expect_converged({0, 1, 2, 3}, 0);
  EXPECT_EQ(c.node(2).get_local(b("pre")), b("crash"));
  EXPECT_EQ(c.node(2).get_local(b("post2")), b("ok"));
}

}  // namespace
}  // namespace allconcur::smr
