// Timed property suite: full-stack runs (engines + fabric model + oracle
// FD + membership) under randomized crash schedules, swept across seeds.
// Checks per-round agreement, round monotonicity, and the absence of the
// ⋄P-only drop paths in P mode.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "api/sim_cluster.hpp"
#include "common/rng.hpp"
#include "test_env.hpp"

namespace allconcur::api {
namespace {

using core::RoundResult;
using testing::scaled;

class TimedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimedProperty, ContinuousRoundsUnderRandomCrashes) {
  // Base schedule is fixed per param; ALLCONCUR_TEST_SEED shifts the whole
  // sweep for soak runs (the effective seed is param + offset).
  const std::uint64_t seed = testing::test_seed_offset() + GetParam();
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);
  ClusterOptions opt;
  opt.n = 16;  // GS(16,4): tolerates up to 3 concurrent failures
  opt.detection_delay = us(200 + rng.next_below(800));
  opt.fabric = rng.next_below(2) ? sim::FabricParams::tcp_ib()
                                 : sim::FabricParams::infiniband();
  SimCluster c(opt);

  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.submit_opaque(who, 64);
    c.broadcast_now(who);
  };

  // Up to 3 crashes at random instants, some mid-broadcast.
  const std::size_t crashes = rng.next_below(4);
  std::set<NodeId> victims;
  while (victims.size() < crashes) {
    const NodeId v = static_cast<NodeId>(rng.next_below(opt.n));
    if (victims.insert(v).second) {
      // Drawn into locals first: argument evaluation order is unspecified
      // and must not affect which schedule a seed denotes.
      const TimeNs at = us(rng.next_below(3000));
      const std::size_t escape = rng.next_below(4);
      c.crash_after_sends(v, at, escape);
    }
  }

  c.broadcast_all_now();
  // Simulated horizon bounds real work, so it is budget-like: scale it via
  // ALLCONCUR_TEST_TIME_SCALE instead of hard-coding for fast machines.
  c.run_for(scaled(ms(50)));

  const auto live = c.live_nodes();
  ASSERT_GE(live.size(), opt.n - crashes);

  // Everyone alive made progress past the crash window.
  for (NodeId id : live) {
    ASSERT_GT(results[id].size(), 3u) << "node " << id << " stalled";
  }

  // Per-round agreement across all live nodes, for every round all of
  // them completed.
  std::size_t common = results[live[0]].size();
  for (NodeId id : live) common = std::min(common, results[id].size());
  for (std::size_t r = 0; r < common; ++r) {
    const auto& ref = results[live[0]][r];
    for (NodeId id : live) {
      const auto& mine = results[id][r];
      ASSERT_EQ(mine.round, ref.round) << "node " << id;
      ASSERT_EQ(mine.deliveries.size(), ref.deliveries.size())
          << "node " << id << " round " << r;
      for (std::size_t k = 0; k < mine.deliveries.size(); ++k) {
        EXPECT_EQ(mine.deliveries[k].origin, ref.deliveries[k].origin)
            << "node " << id << " round " << r << " slot " << k;
      }
      EXPECT_EQ(mine.removed, ref.removed) << "node " << id << " round " << r;
    }
  }

  // Rounds are monotone per node and the P-mode drop invariants hold.
  for (NodeId id : live) {
    for (std::size_t r = 1; r < results[id].size(); ++r) {
      EXPECT_EQ(results[id][r].round, results[id][r - 1].round + 1);
    }
    EXPECT_EQ(c.engine(id).stats().dropped_lost, 0u) << "node " << id;
  }

  // Every crashed server eventually left the membership.
  for (NodeId v : victims) {
    for (NodeId id : live) {
      EXPECT_FALSE(c.engine(id).view().contains(v))
          << "node " << id << " still sees crashed " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimedProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace allconcur::api
