// Dual-digraph fast path (AllConcur+ mode): paired overlay construction,
// the ⟨UBCAST⟩/⟨FALLBACK⟩ wire protocol, fast bitmap completion with zero
// tracking work, every fallback trigger (timeout, suspicion, peer
// ⟨FALLBACK⟩, ⟨FAIL⟩), the retention assist, and fast-path resumption
// after a membership change.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "loopback_cluster.hpp"
#include "plus/dual_overlay.hpp"
#include "plus/fallback_timer.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder gs_builder(std::size_t d) {
  return [d](std::size_t n) {
    if (n < 2 * d || n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, d);
  };
}

EngineOptions dual_options(std::size_t window = 1) {
  EngineOptions o;
  o.window = window;
  o.fast_builder = plus::make_unreliable_builder();
  return o;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

// ---------------------------------------------------------------------------
// Overlay pairing.
// ---------------------------------------------------------------------------

TEST(DualOverlay, UnreliableBuilderIsStronglyConnectedLowDegree) {
  const auto builder = plus::make_unreliable_builder();
  for (std::size_t n = 1; n <= 48; ++n) {
    const auto g = builder(n);
    ASSERT_EQ(g.order(), n);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_FALSE(g.has_edge(v, v)) << "self-loop at " << v << " n=" << n;
      EXPECT_LE(g.out_degree(v), 2u) << "n=" << n;
    }
    if (n >= 2) {
      EXPECT_TRUE(graph::is_strongly_connected(g)) << "n=" << n;
    }
  }
}

TEST(DualOverlay, DiameterLogarithmic) {
  const auto builder = plus::make_unreliable_builder();
  // GB(n,2) minus self-loops: diameter stays within ~log2(n) + slack.
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const auto d = graph::diameter(builder(n));
    ASSERT_TRUE(d.has_value());
    std::size_t log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    EXPECT_LE(*d, log2n + 2) << "n=" << n;
  }
}

TEST(DualOverlay, PairingTableFastPathIsCheaper) {
  for (std::size_t n : {8u, 16u, 32u}) {
    const auto p = plus::analyze_pairing(n, plus::make_unreliable_builder(),
                                         make_default_graph_builder());
    EXPECT_EQ(p.n, n);
    EXPECT_LE(p.u_degree, 2u);
    EXPECT_GE(p.u_connectivity, 1u);
    EXPECT_GE(p.r_connectivity, p.u_connectivity);
    // The point of the pairing: a fast round moves fewer messages.
    EXPECT_LT(p.u_edges, p.r_edges) << "n=" << n;
    EXPECT_FALSE(plus::describe_pairing(p).empty());
  }
}

// ---------------------------------------------------------------------------
// Wire messages.
// ---------------------------------------------------------------------------

TEST(DualWire, UbcastAndFallbackRoundTrip) {
  const Message u = Message::ubcast(
      7, 3, make_payload(bytes({0xaa, 0xbb, 0xcc})), 3);
  const auto u_bytes = encode(u);
  const auto u2 = decode(std::span(u_bytes.data(), u_bytes.size()));
  ASSERT_TRUE(u2.has_value());
  EXPECT_EQ(u2->type, MsgType::kUBcast);
  EXPECT_EQ(u2->round, 7u);
  EXPECT_EQ(u2->origin, 3u);
  ASSERT_TRUE(u2->payload != nullptr);
  EXPECT_EQ(*u2->payload, bytes({0xaa, 0xbb, 0xcc}));

  const Message f = Message::fallback(9, 5);
  const auto f_frame = Frame::make(f);
  const auto f2 = decode(*f_frame);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, MsgType::kFallback);
  EXPECT_EQ(f2->round, 9u);
  EXPECT_EQ(f2->origin, 5u);
  EXPECT_EQ(f2->payload_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Fast path.
// ---------------------------------------------------------------------------

TEST(DualEngine, FailureFreeRoundsCompleteFastWithZeroTrackingWork) {
  LoopbackCluster c(8, gs_builder(3), dual_options());
  for (Round r = 0; r < 5; ++r) {
    for (NodeId i = 0; i < 8; ++i) {
      c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(r)})));
      c.engine(i).broadcast_now();
    }
    c.pump();
  }
  for (NodeId i = 0; i < 8; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 5u);
    for (const auto& rr : c.delivered(i)) {
      EXPECT_EQ(rr.deliveries.size(), 8u);  // fast set = full view
    }
    const auto& s = c.engine(i).stats();
    EXPECT_EQ(s.fast_rounds, 5u);
    EXPECT_EQ(s.fallback_rounds, 0u);
    EXPECT_EQ(s.tracking_resets, 0u);  // the fast-path invariant
    EXPECT_EQ(s.bcast_sent, 0u);       // no G_R protocol traffic at all
    EXPECT_EQ(s.fallback_sent, 0u);
    EXPECT_GT(s.ubcast_sent, 0u);
  }
}

TEST(DualEngine, FastRelayStaysOnUnreliableOverlay) {
  // Every UBCAST a node emits must target a G_U successor.
  LoopbackCluster c(8, gs_builder(3), dual_options());
  bool checked = false;
  c.drop_filter = [&](NodeId src, NodeId dst, const Message& m) {
    if (m.type == MsgType::kUBcast) {
      const auto succs = c.engine(src).view().fast_successors_of(src);
      EXPECT_TRUE(std::find(succs.begin(), succs.end(), dst) != succs.end())
          << src << " -> " << dst;
      checked = true;
    }
    return false;
  };
  for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
  c.pump();
  EXPECT_TRUE(checked);
}

// ---------------------------------------------------------------------------
// Fallback triggers.
// ---------------------------------------------------------------------------

TEST(DualEngine, TimeoutFallbackRecoversDroppedFastTraffic) {
  // All G_U traffic from node 2 toward node 0 is lost (a lossy fast
  // overlay, no server failure). Node 0 cannot complete fast; its timeout
  // fallback must recover the full set over G_R at every node.
  LoopbackCluster c(6, gs_builder(3), dual_options());
  c.drop_filter = [](NodeId src, NodeId dst, const Message& m) {
    return m.type == MsgType::kUBcast && dst == 0 && m.origin == 2;
  };
  for (NodeId i = 0; i < 6; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  ASSERT_FALSE(c.has_delivered(0));  // stuck: missing m_2 over G_U
  c.engine(0).on_round_timeout(0);
  c.pump();
  for (NodeId i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 6u);
  }
  EXPECT_EQ(c.engine(0).stats().fallbacks_initiated, 1u);
  EXPECT_EQ(c.engine(0).stats().fallback_rounds, 1u);
  // A peer that had already fast-completed keeps the completion (its
  // delivered set is identical anyway).
  std::size_t kept_fast = 0;
  for (NodeId i = 1; i < 6; ++i) {
    kept_fast += c.engine(i).stats().fast_rounds;
  }
  EXPECT_GT(kept_fast, 0u);
}

TEST(DualEngine, SpuriousFallbackIsHarmless) {
  LoopbackCluster c(6, gs_builder(3), dual_options());
  for (NodeId i = 0; i < 6; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  // Force the fallback before any traffic moved: nothing is wrong, the
  // round simply re-executes reliably and decides the same full set.
  c.engine(3).on_round_timeout(0);
  c.pump();
  for (NodeId i = 0; i < 6; ++i) {
    ASSERT_TRUE(c.has_delivered(i));
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 6u);
    EXPECT_TRUE(c.delivered(i)[0].removed.empty());
  }
  // Idle rounds are not armed: a timeout with no activity must not spin.
  LoopbackCluster idle(4, gs_builder(3), dual_options());
  idle.engine(1).on_round_timeout(0);
  EXPECT_EQ(idle.pump(), 0u);
  EXPECT_EQ(idle.engine(1).stats().fallbacks_initiated, 0u);
}

TEST(DualEngine, CrashFallsBackRemovesAndResumesFast) {
  LoopbackCluster c(7, gs_builder(3), dual_options());
  c.crash(4);  // clean crash: nothing of round 0 ever leaves node 4
  for (NodeId i = 0; i < 7; ++i) {
    if (i == 4) continue;
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  c.suspect_everywhere(4);
  c.pump();
  for (NodeId i = 0; i < 7; ++i) {
    if (i == 4) continue;
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto& r0 = c.delivered(i)[0];
    EXPECT_EQ(r0.deliveries.size(), 6u);
    ASSERT_EQ(r0.removed.size(), 1u);
    EXPECT_EQ(r0.removed[0], 4u);
    EXPECT_EQ(c.engine(i).stats().fallback_rounds, 1u);
  }
  // The next round runs under the shrunk view — failure-free again, so
  // the fast path must resume.
  for (NodeId i = 0; i < 7; ++i) {
    if (i == 4) continue;
    c.engine(i).submit(Request::of_data(bytes({0x77})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < 7; ++i) {
    if (i == 4) continue;
    ASSERT_EQ(c.delivered(i).size(), 2u);
    EXPECT_EQ(c.delivered(i)[1].deliveries.size(), 6u);
    EXPECT_EQ(c.engine(i).stats().fast_rounds, 1u)
        << "fast path did not resume at " << i;
  }
}

TEST(DualEngine, MidBroadcastCrashStillAgrees) {
  // The §2.3 scenario on the fast overlay: node 1 dies after 1 UBCAST
  // send. Survivors must agree on one of the two outcomes (m_1 in or
  // out), identically.
  LoopbackCluster c(6, gs_builder(3), dual_options());
  for (NodeId i = 0; i < 6; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
  }
  c.engine(1).broadcast_now();
  c.crash(1, /*more_sends=*/1);
  for (NodeId i = 0; i < 6; ++i) {
    if (i != 1) c.engine(i).broadcast_now();
  }
  c.pump();
  c.suspect_everywhere(1);
  c.pump();
  // Survivors may need the timeout if m_1 spread to some but suspicion
  // resolved others — nudge any stuck round.
  for (NodeId i = 0; i < 6; ++i) {
    if (i == 1 || c.has_delivered(i)) continue;
    c.engine(i).on_round_timeout(c.engine(i).current_round());
  }
  c.pump();
  std::optional<std::vector<NodeId>> expected;
  for (NodeId i = 0; i < 6; ++i) {
    if (i == 1) continue;
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    std::vector<NodeId> origins;
    for (const auto& d : c.delivered(i)[0].deliveries) {
      origins.push_back(d.origin);
    }
    if (!expected) {
      expected = origins;
    } else {
      EXPECT_EQ(*expected, origins) << "server " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline interaction and retention assist.
// ---------------------------------------------------------------------------

TEST(DualEngine, FallbackDoesNotStallFastCompletedLaterRounds) {
  // W=4: node 0 misses m_2 of round 0 over G_U but receives rounds 1-2
  // fine. Rounds 1-2 fast-complete out of order at node 0; the round-0
  // fallback must deliver 0,1,2 in order without re-running 1-2.
  LoopbackCluster c(6, gs_builder(3), dual_options(4));
  c.drop_filter = [](NodeId src, NodeId dst, const Message& m) {
    return m.type == MsgType::kUBcast && dst == 0 && m.origin == 2 &&
           m.round == 0;
  };
  for (Round r = 0; r < 3; ++r) {
    for (NodeId i = 0; i < 6; ++i) {
      c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(r)})));
      c.engine(i).broadcast_now();
    }
    c.pump();
  }
  ASSERT_FALSE(c.has_delivered(0));
  c.engine(0).on_round_timeout(0);
  c.pump();
  ASSERT_TRUE(c.has_delivered(0));
  ASSERT_EQ(c.delivered(0).size(), 3u);
  for (Round r = 0; r < 3; ++r) {
    EXPECT_EQ(c.delivered(0)[r].round, r);
    EXPECT_EQ(c.delivered(0)[r].deliveries.size(), 6u);
  }
  const auto& s = c.engine(0).stats();
  EXPECT_EQ(s.fallback_rounds, 1u);  // only round 0 re-executed
  EXPECT_EQ(s.fast_rounds, 2u);      // rounds 1-2 kept their completion
}

TEST(DualEngine, StaleFallbackAssistedFromRetention) {
  // W=2: node 0 is cut off from ALL fast traffic of round 0, while the
  // others fast-complete rounds 0 and 1 and deliver both — recycling
  // round 0's state. Node 0's late fallback must be served out of the
  // retention ring.
  LoopbackCluster c(5, gs_builder(3), dual_options(2));
  c.drop_filter = [](NodeId src, NodeId dst, const Message& m) {
    return m.type == MsgType::kUBcast && dst == 0;
  };
  for (Round r = 0; r < 2; ++r) {
    for (NodeId i = 0; i < 5; ++i) {
      c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(r)})));
      c.engine(i).broadcast_now();
    }
    c.pump();
  }
  for (NodeId i = 1; i < 5; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 2u) << "server " << i;
  }
  ASSERT_FALSE(c.has_delivered(0));
  c.drop_filter = nullptr;  // the lossy episode ends
  // The watchdog fires per stuck round: first round 0, then (after the
  // round-0 assist advanced the window) round 1.
  c.engine(0).on_round_timeout(0);
  c.pump();
  c.engine(0).on_round_timeout(c.engine(0).current_round());
  c.pump();
  // Node 0 catches up on both rounds with the identical full sets.
  ASSERT_EQ(c.delivered(0).size(), 2u);
  for (Round r = 0; r < 2; ++r) {
    EXPECT_EQ(c.delivered(0)[r].deliveries.size(), 5u);
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(c.delivered(0)[r].deliveries[k].payload != nullptr,
                c.delivered(1)[r].deliveries[k].payload != nullptr);
    }
  }
}

TEST(DualEngine, StuckOpenedReliableRoundRecoversViaTimeout) {
  // Node 4 crashes *after* its round-0 broadcast fully spread: round 0
  // delivers with m_4 everywhere (no removal), the carried failure pair
  // makes round 1 open on the reliable path outright, and round 1 must
  // decide m_4 lost via FAIL evidence. Node 0 loses every round-1 FAIL
  // (link fault) and stalls; its watchdog timeout must trigger recovery
  // even though the round never "fell back" (it opened reliable), and
  // the peers' retention assist must re-send the *evidence*, not just
  // the messages.
  LoopbackCluster c(6, gs_builder(3), dual_options());
  for (NodeId i = 0; i < 6; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < 6; ++i) {
    ASSERT_EQ(c.delivered(i).size(), 1u);
    ASSERT_EQ(c.delivered(i)[0].deliveries.size(), 6u);  // m_4 included
  }
  c.crash(4);
  bool lossy = true;
  c.drop_filter = [&](NodeId src, NodeId dst, const Message& m) {
    return lossy && dst == 0 && m.type == MsgType::kFail;
  };
  c.suspect_everywhere(4);
  for (NodeId i = 0; i < 6; ++i) {
    if (i == 4) continue;
    c.engine(i).submit(Request::of_data(bytes({0x11})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  // Peers resolved m_4 as lost and delivered round 1; node 0 is missing
  // the evidence and is stuck in its opened-reliable round.
  for (NodeId i = 1; i < 6; ++i) {
    if (i == 4) continue;
    ASSERT_EQ(c.delivered(i).size(), 2u) << "server " << i;
  }
  ASSERT_EQ(c.delivered(0).size(), 1u);
  lossy = false;  // the link heals; the watchdog fires
  c.engine(0).on_round_timeout(1);
  c.pump();
  ASSERT_EQ(c.delivered(0).size(), 2u);
  EXPECT_EQ(c.delivered(0)[1].deliveries.size(), 5u);  // without m_4
  ASSERT_EQ(c.delivered(0)[1].removed.size(), 1u);
  EXPECT_EQ(c.delivered(0)[1].removed[0], 4u);
}

TEST(DualEngine, WatchdogRefireRecoversLostFallbackTraffic) {
  // Node 0 is missing m_2 over G_U *and* its entire first fallback flood
  // (trigger + reliable relays) is lost to a link fault. The watchdog's
  // re-fire on the stuck, already-fallen-back round must re-flood the
  // transition so the cluster still converges.
  LoopbackCluster c(5, gs_builder(3), dual_options());
  bool swallow = false;
  c.drop_filter = [&](NodeId src, NodeId dst, const Message& m) {
    if (m.type == MsgType::kUBcast && dst == 0 && m.origin == 2) return true;
    return swallow && src == 0 &&
           (m.type == MsgType::kFallback ||
            m.type == MsgType::kBroadcast);
  };
  for (NodeId i = 0; i < 5; ++i) {
    c.engine(i).submit(Request::of_data(bytes({static_cast<uint8_t>(i)})));
    c.engine(i).broadcast_now();
  }
  c.pump();
  ASSERT_FALSE(c.has_delivered(0));
  swallow = true;  // first fallback flood: fully lost
  c.engine(0).on_round_timeout(0);
  c.pump();
  ASSERT_FALSE(c.has_delivered(0)) << "flood was supposed to be swallowed";
  swallow = false;  // link heals; the watchdog fires again
  c.engine(0).on_round_timeout(0);
  c.pump();
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 5u);
  }
}

TEST(DualEngine, WatchdogPolicyFiresOnceAndRearms) {
  plus::FallbackTimer t(ms(10));
  EXPECT_FALSE(t.poll(0, 1, 0).has_value());             // starts round 0
  EXPECT_FALSE(t.poll(0, 1, ms(5)).has_value());         // not yet
  // An idle (progress 0) poll restarts the deadline: a round that sat
  // quiet past the timeout must not fall back the instant it arms.
  EXPECT_FALSE(t.poll(0, 0, ms(20)).has_value());
  EXPECT_FALSE(t.poll(0, 1, ms(25)).has_value());        // armed 5ms ago
  // Intra-round progress (new messages) also re-arms: a slow-but-moving
  // round is not stalled.
  EXPECT_FALSE(t.poll(0, 2, ms(34)).has_value());
  EXPECT_FALSE(t.poll(0, 2, ms(40)).has_value());        // 6ms stalled
  auto fired = t.poll(0, 2, ms(45));
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 0u);
  EXPECT_FALSE(t.poll(0, 2, ms(50)).has_value());        // re-armed
  EXPECT_TRUE(t.poll(0, 2, ms(56)).has_value());         // re-fires
  EXPECT_FALSE(t.poll(1, 1, ms(60)).has_value());        // round progress
  EXPECT_TRUE(t.poll(1, 1, ms(75)).has_value());
}

TEST(DualEngine, WatchdogTrickleCannotRearmForever) {
  // Gray-failure regression: a peer that trickles one frame per timeout
  // bumps the progress counter on every poll, and each bump re-arms the
  // deadline. Uncapped, the watched round never falls back.
  plus::FallbackTimer uncapped(ms(10), /*max_round_age=*/-1);
  std::size_t progress = 1;
  TimeNs now = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(uncapped.poll(0, progress++, now).has_value()) << i;
    now += ms(9);  // always inside the timeout, always fresh progress
  }

  // The max-round-age cap (default 8x timeout) bounds the deferral: once
  // the round has been armed that long, trickling progress no longer
  // buys time and the watchdog fires.
  plus::FallbackTimer capped(ms(10));
  EXPECT_EQ(capped.max_round_age(), ms(80));
  progress = 1;
  now = 0;
  std::optional<Round> fired;
  TimeNs fired_at = kTimeNever;
  for (int i = 0; i < 100 && !fired; ++i) {
    fired = capped.poll(0, progress++, now);
    if (fired) fired_at = now;
    now += ms(9);
  }
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 0u);
  EXPECT_LE(fired_at, ms(80) + ms(9));
  // The cap paces re-fires rather than firing on every subsequent poll:
  // the age window restarts, so the next trickle-deferred fire is a full
  // cap later — and a still-stuck round keeps firing, not just once.
  std::size_t refires = 0;
  const TimeNs horizon = now + ms(800);
  while (now < horizon) {
    if (capped.poll(0, progress++, now).has_value()) ++refires;
    now += ms(9);
  }
  EXPECT_GE(refires, 5u);
  EXPECT_LE(refires, 15u);
}

}  // namespace
}  // namespace allconcur::core
