#include "graph/kautz.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

TEST(Kautz, OrderFormula) {
  EXPECT_EQ(kautz_order(2, 1), 3u);    // K_3 (complete digraph on 3)
  EXPECT_EQ(kautz_order(2, 2), 6u);
  EXPECT_EQ(kautz_order(2, 3), 12u);
  EXPECT_EQ(kautz_order(3, 2), 12u);
  EXPECT_EQ(kautz_order(3, 3), 36u);
  EXPECT_EQ(kautz_order(4, 2), 20u);
}

struct KautzCase {
  std::size_t d;
  std::size_t diameter;
};

class KautzSweep : public ::testing::TestWithParam<KautzCase> {};

TEST_P(KautzSweep, RegularDiameterAndConnectivity) {
  const auto [d, D] = GetParam();
  const Digraph g = make_kautz(d, D);
  EXPECT_EQ(g.order(), kautz_order(d, D));
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), d);
  const auto diam = diameter(g);
  ASSERT_TRUE(diam.has_value());
  EXPECT_EQ(*diam, D) << "K(" << d << "," << D << ")";
  EXPECT_EQ(vertex_connectivity(g), d) << "K(" << d << "," << D << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KautzSweep,
    ::testing::Values(KautzCase{2, 1}, KautzCase{2, 2}, KautzCase{2, 3},
                      KautzCase{2, 4}, KautzCase{3, 2}, KautzCase{3, 3},
                      KautzCase{4, 2}, KautzCase{5, 2}),
    [](const auto& info) {
      return "K_" + std::to_string(info.param.d) + "_" +
             std::to_string(info.param.diameter);
    });

TEST(Kautz, DensestKnownForDegreeAndDiameter) {
  // Kautz K(d,D) beats the GS construction's quasi-Moore bound by being
  // exactly at d^D + d^(D-1) > the Moore-bound-1 attainable sizes.
  const Digraph k = make_kautz(3, 3);  // 36 vertices, d=3, D=3
  const auto diam = diameter(k);
  ASSERT_TRUE(diam.has_value());
  EXPECT_EQ(*diam, 3u);
  EXPECT_EQ(k.order(), 36u);
}

TEST(EdgeConnectivity, RingIsOne) {
  EXPECT_EQ(edge_connectivity(make_ring(6)), 1u);
}

TEST(EdgeConnectivity, CompleteIsNMinusOne) {
  EXPECT_EQ(edge_connectivity(make_complete(5)), 4u);
}

TEST(EdgeConnectivity, KautzMatchesDegree) {
  EXPECT_EQ(edge_connectivity(make_kautz(3, 2)), 3u);
}

TEST(EdgeConnectivity, AtLeastVertexConnectivity) {
  for (std::size_t d : {2u, 3u}) {
    const Digraph g = make_kautz(d, 2);
    EXPECT_GE(edge_connectivity(g), vertex_connectivity(g));
  }
}

TEST(EdgeConnectivity, LocalDirectEdgeCounts) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  // Two edge-disjoint 0->1 paths: direct, and through 2.
  EXPECT_EQ(local_edge_connectivity(g, 0, 1), 2u);
  EXPECT_EQ(local_edge_connectivity(g, 1, 0), 0u);
}

TEST(EdgeConnectivity, DisconnectedIsZero) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  EXPECT_EQ(edge_connectivity(g), 0u);
}

}  // namespace
}  // namespace allconcur::graph
