// Integration tests: full AllConcur deployments on the simulated fabric,
// with timing, oracle/heartbeat failure detection and dynamic membership.
#include "api/sim_cluster.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace allconcur::api {
namespace {

using core::Request;
using core::RoundResult;

TEST(SimCluster, SingleRoundCompletesWithPlausibleLatency) {
  ClusterOptions opt;
  opt.n = 8;
  opt.fabric = sim::FabricParams::infiniband();
  SimCluster c(opt);
  std::map<NodeId, TimeNs> delivered_at;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs t) {
    EXPECT_EQ(r.round, 0u);
    delivered_at[who] = t;
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(1)));
  EXPECT_EQ(delivered_at.size(), 8u);
  for (const auto& [who, t] : delivered_at) {
    // GS(8,3), D=2: at least 2 hops of latency; well under a millisecond
    // on InfiniBand.
    EXPECT_GT(t, 2 * ns(1250)) << "node " << who;
    EXPECT_LT(t, ms(1)) << "node " << who;
  }
}

TEST(SimCluster, LatencyScalesWithFabric) {
  auto median_latency = [](sim::FabricParams fabric) {
    ClusterOptions opt;
    opt.n = 8;
    opt.fabric = fabric;
    SimCluster c(opt);
    TimeNs last = 0;
    c.on_deliver = [&](NodeId, const RoundResult&, TimeNs t) {
      last = std::max(last, t);
    };
    c.broadcast_all_now();
    c.run_until_round_done(0, sec(1));
    return last;
  };
  // TCP (o=1.8us, L=12us) must be several times slower than IBV.
  EXPECT_GT(median_latency(sim::FabricParams::tcp_ib()),
            3 * median_latency(sim::FabricParams::infiniband()));
}

TEST(SimCluster, ManyRoundsBackToBack) {
  ClusterOptions opt;
  opt.n = 8;
  SimCluster c(opt);
  std::map<NodeId, std::size_t> rounds_done;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    ++rounds_done[who];
    EXPECT_EQ(r.deliveries.size(), 8u);
    c.broadcast_now(who);  // immediately start the next round
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(19, sec(10)));
  for (const auto& [who, n] : rounds_done) EXPECT_GE(n, 20u) << who;
}

TEST(SimCluster, OracleDetectionResolvesCrash) {
  ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  SimCluster c(opt);
  std::map<NodeId, RoundResult> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who] = r;
  };
  c.crash_at(3, 0);  // dead before it ever broadcasts
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(10)));
  for (NodeId id : c.live_nodes()) {
    ASSERT_TRUE(results.count(id)) << "node " << id;
    EXPECT_EQ(results[id].deliveries.size(), 7u);
    EXPECT_EQ(results[id].removed, (std::vector<NodeId>{3}));
  }
}

TEST(SimCluster, MidBroadcastCrashStillAgrees) {
  ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  opt.seed = 7;
  SimCluster c(opt);
  std::map<NodeId, std::vector<NodeId>> origins;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    for (const auto& d : r.deliveries) origins[who].push_back(d.origin);
  };
  c.crash_after_sends(5, us(1), 1);  // one copy escapes
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(10)));
  const auto reference = origins[c.live_nodes()[0]];
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(origins[id], reference) << "node " << id;
  }
}

TEST(SimCluster, HeartbeatFdDetectsCrash) {
  ClusterOptions opt;
  opt.n = 8;
  opt.heartbeat_fd = true;
  opt.fd_params.period = ms(10);
  opt.fd_params.timeout = ms(100);
  SimCluster c(opt);
  std::map<NodeId, RoundResult> results;
  std::map<NodeId, TimeNs> finished;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs t) {
    results[who] = r;
    finished[who] = t;
  };
  c.crash_at(2, 0);  // dead before it can broadcast: the round must stall
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(30)));
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(results[id].removed, (std::vector<NodeId>{2}));
    // Unavailability is dominated by the heartbeat timeout (~100ms),
    // the shape the paper reports in Fig. 7.
    EXPECT_GT(finished[id], ms(90));
    EXPECT_LT(finished[id], ms(400));
  }
}

TEST(SimCluster, HeartbeatFdQuietWithoutFailures) {
  ClusterOptions opt;
  opt.n = 6;
  opt.heartbeat_fd = true;
  opt.fd_params.period = ms(10);
  opt.fd_params.timeout = ms(100);
  SimCluster c(opt);
  std::size_t rounds = 0;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    ++rounds;
    EXPECT_TRUE(r.removed.empty());
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  c.run_for(sec(2));
  EXPECT_GT(rounds, 100u);  // no false suspicions stalling the pipeline
  EXPECT_EQ(c.aggregate_stats().dropped_suspected, 0u);
}

TEST(SimCluster, JoinGrowsTheView) {
  ClusterOptions opt;
  opt.n = 6;
  opt.detection_delay = ms(1);
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  const NodeId joiner = c.schedule_join(ms(1), /*sponsor=*/0);
  EXPECT_EQ(joiner, 6u);
  c.broadcast_all_now();
  // Run well past the join submission plus a few commit rounds.
  c.run_for(ms(3));
  // The joiner participates and delivers rounds after its activation.
  ASSERT_TRUE(c.exists(joiner));
  EXPECT_TRUE(c.alive(joiner));
  ASSERT_FALSE(results[joiner].empty());
  EXPECT_EQ(results[joiner].back().view_size, 7u);
  // Everyone agrees on the view growth.
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(results[id].back().view_size, 7u) << "node " << id;
  }
}

TEST(SimCluster, FailThenJoinRestoresSize) {
  ClusterOptions opt;
  opt.n = 8;
  opt.detection_delay = ms(1);
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.crash_at(4, ms(2));
  c.schedule_join(ms(4), /*sponsor=*/1);
  c.broadcast_all_now();
  // Past the crash (plus detection) and the join commit.
  c.run_for(ms(10));
  for (NodeId id : c.live_nodes()) {
    EXPECT_EQ(results[id].back().view_size, 8u) << "node " << id;
    EXPECT_NE(id, 4u);
  }
  EXPECT_GE(results[c.live_nodes().back()].size(), 3u);
}

TEST(SimCluster, PayloadsFlowThroughFabric) {
  ClusterOptions opt;
  opt.n = 6;
  SimCluster c(opt);
  std::set<NodeId> saw_payload;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    for (const auto& d : r.deliveries) {
      if (d.origin == 2 && d.payload) {
        const auto reqs = core::unpack_batch(d.payload);
        ASSERT_TRUE(reqs.has_value());
        ASSERT_EQ(reqs->size(), 1u);
        EXPECT_EQ((*reqs)[0].data, (std::vector<std::uint8_t>{1, 2, 3}));
        saw_payload.insert(who);
      }
    }
  };
  c.submit(2, Request::of_data({1, 2, 3}));
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(0, sec(1)));
  EXPECT_EQ(saw_payload.size(), 6u);
}

TEST(SimCluster, DeterministicAcrossRuns) {
  auto run = [] {
    ClusterOptions opt;
    opt.n = 8;
    SimCluster c(opt);
    TimeNs last = 0;
    c.on_deliver = [&](NodeId, const RoundResult&, TimeNs t) {
      last = std::max(last, t);
    };
    c.broadcast_all_now();
    c.run_until_round_done(0, sec(1));
    return last;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimCluster, BroadcastTimesRecorded) {
  ClusterOptions opt;
  opt.n = 6;
  SimCluster c(opt);
  c.on_deliver = [](NodeId, const RoundResult&, TimeNs) {};
  c.broadcast_all_now();
  c.run_until_round_done(0, sec(1));
  for (NodeId id : c.live_nodes()) {
    EXPECT_TRUE(c.broadcast_time(id, 0).has_value()) << "node " << id;
  }
  EXPECT_FALSE(c.broadcast_time(0, 99).has_value());
}

}  // namespace
}  // namespace allconcur::api
