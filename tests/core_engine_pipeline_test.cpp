// Round pipelining: the windowed multi-round engine. Covers the
// dropped_ahead accounting (the pre-window silent discard regression),
// immediate processing/relaying of ahead-of-round traffic, strict in-order
// A-delivery under out-of-order completion, window backpressure
// (pending_bytes), and membership changes draining the window.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <tuple>

#include "graph/digraph.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder complete_builder() {
  return [](std::size_t n) { return graph::make_complete(n); };
}

GraphBuilder gs_builder(std::size_t d) {
  return [d](std::size_t n) {
    if (n < 2 * d || n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, d);
  };
}

EngineOptions windowed(std::size_t w, FdMode fd = FdMode::kPerfect) {
  EngineOptions o;
  o.fd_mode = fd;
  o.window = w;
  return o;
}

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

// ---------------------------------------------------------------------
// dropped_ahead: the regression fix for the old silent discard of
// messages ≥ 2 rounds ahead.
// ---------------------------------------------------------------------

TEST(DroppedAhead, CountedAndBoundedAtWindowOne) {
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const FrameRef&) {};
  std::vector<RoundResult> delivered;
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(1));

  // Round 1 while still in round 0: ahead of the window (> r_delivered+W)
  // — counted, but parked for replay (a live peer can legitimately be
  // this far ahead).
  e.on_message(1, Message::bcast(1, 1, nullptr));
  EXPECT_EQ(e.stats().dropped_ahead, 1u);
  // Round 2 (≥ base + 2W): unreachable by a live peer — counted and
  // discarded for good.
  e.on_message(1, Message::bcast(2, 1, nullptr));
  EXPECT_EQ(e.stats().dropped_ahead, 2u);
  EXPECT_EQ(e.current_round(), 0u);
  EXPECT_TRUE(delivered.empty());

  // Complete round 0: the parked round-1 message replays (and is not
  // recounted); the round-2 one is gone, so round 1 needs a fresh copy.
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, nullptr));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(e.current_round(), 1u);
  EXPECT_EQ(e.stats().dropped_ahead, 2u);  // replay did not recount
}

TEST(DroppedAhead, OnlyBeyondWindowTrafficCounts) {
  // With W = 4, rounds base..base+3 process immediately — no dropped_ahead
  // — and only round ≥ base+4 traffic is counted there.
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const FrameRef&) {};
  hooks.deliver = [](const RoundResult&) {};
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(4));

  for (Round r = 0; r < 4; ++r) {
    e.on_message(1, Message::bcast(r, 1, nullptr));
  }
  EXPECT_EQ(e.stats().dropped_ahead, 0u);
  e.on_message(1, Message::bcast(4, 1, nullptr));  // > r_delivered + W
  EXPECT_EQ(e.stats().dropped_ahead, 1u);
  e.on_message(1, Message::bcast(7, 1, nullptr));  // < base + 2W: parked
  EXPECT_EQ(e.stats().dropped_ahead, 2u);
  e.on_message(1, Message::bcast(8, 1, nullptr));  // ≥ base + 2W: discarded
  EXPECT_EQ(e.stats().dropped_ahead, 3u);
}

TEST(DroppedAhead, DuplicatedFutureFramesParkOnceAndApplyOnce) {
  // Chaos-duplication regression: the same future-round frame arriving
  // twice (network duplication, link retry) must not double-count
  // dropped_ahead, must park only once, and must apply only once after
  // the window advances — a double park would replay it twice and grow
  // future_ without bound under sustained duplication.
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const FrameRef&) {};
  std::vector<RoundResult> delivered;
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(1));

  e.on_message(1, Message::bcast(1, 1, nullptr));
  e.on_message(1, Message::bcast(1, 1, nullptr));  // duplicate
  e.on_message(1, Message::bcast(1, 1, nullptr));  // and again
  EXPECT_EQ(e.stats().dropped_ahead, 1u);
  EXPECT_EQ(e.stats().parked_duplicates, 2u);

  // A same-round frame from a different origin is NOT a duplicate.
  e.on_message(2, Message::bcast(1, 2, nullptr));
  EXPECT_EQ(e.stats().dropped_ahead, 2u);
  EXPECT_EQ(e.stats().parked_duplicates, 2u);

  // Complete round 0; the parked round-1 frames replay exactly once each
  // and, with 0's own broadcast, complete round 1 immediately.
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, nullptr));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  e.broadcast_now();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(e.current_round(), 2u);
  EXPECT_EQ(delivered[1].deliveries.size(), 3u);
  // Replay did not recount, and the late duplicates were absorbed by the
  // in-window dedup, not redelivered.
  EXPECT_EQ(e.stats().dropped_ahead, 2u);
}

// ---------------------------------------------------------------------
// Window mechanics on a single engine.
// ---------------------------------------------------------------------

TEST(Window, AheadRoundsAreProcessedAndRelayedImmediately) {
  // n = 4 complete graph. A round-2 broadcast arrives while round 0 is
  // still in progress: with W = 4 it must be relayed right away (the old
  // engine would have buffered or dropped it).
  std::vector<NodeId> members{0, 1, 2, 3};
  std::vector<std::pair<NodeId, Message>> sent;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId dst, const FrameRef& f) {
    sent.emplace_back(dst, f->msg());
  };
  std::vector<RoundResult> delivered;
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(4));

  e.on_message(1, Message::bcast(2, 1, make_payload({7})));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(e.current_round(), 0u);

  // Line 15 forces our own broadcast in rounds 0..2 first (in order),
  // then the relay of m1^(2) to every successor except the inbound link.
  std::size_t own_seen = 0;
  std::size_t relays = 0;
  Round last_own = 0;
  for (const auto& [dst, m] : sent) {
    if (m.origin == 0) {
      EXPECT_GE(m.round, last_own);
      last_own = m.round;
      ++own_seen;
    } else {
      EXPECT_EQ(m.origin, 1u);
      EXPECT_EQ(m.round, 2u);
      EXPECT_NE(dst, 1u) << "relayed back on the inbound link";
      ++relays;
    }
  }
  EXPECT_EQ(own_seen, 3u * 3u);  // 3 own rounds × 3 successors
  EXPECT_EQ(relays, 2u);
  EXPECT_EQ(e.stats().dropped_ahead, 0u);
}

TEST(Window, DeliveryStaysInRoundOrderUnderOutOfOrderCompletion) {
  // Round 1 completes before round 0; nothing may deliver until round 0
  // does, then both deliver back-to-back in order.
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const FrameRef&) {};
  std::vector<RoundResult> delivered;
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(2));

  e.broadcast_now();  // round 0 own message out
  // Round 1 fully resolves first (both peers' messages arrive; our own
  // round-1 broadcast went out via line 15).
  e.on_message(1, Message::bcast(1, 1, nullptr));
  e.on_message(2, Message::bcast(1, 2, nullptr));
  EXPECT_TRUE(delivered.empty()) << "round 1 may not deliver before round 0";

  // Now round 0 resolves: both rounds deliver, in order.
  e.on_message(1, Message::bcast(0, 1, nullptr));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].round, 0u);
  EXPECT_EQ(delivered[1].round, 1u);
  EXPECT_EQ(delivered[0].deliveries.size(), 3u);
  EXPECT_EQ(delivered[1].deliveries.size(), 3u);
  EXPECT_EQ(e.current_round(), 2u);
}

TEST(Window, BroadcastsFillTheWindowAndBackpressure) {
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const FrameRef&) {};
  hooks.deliver = [](const RoundResult&) {};
  Engine e(0, View(members, complete_builder()), complete_builder(), hooks,
           windowed(2));

  EXPECT_EQ(e.next_broadcast_round(), std::optional<Round>(0));
  e.broadcast_now();  // round 0 (empty is fine for the in-progress round)
  EXPECT_EQ(e.next_broadcast_round(), std::optional<Round>(1));

  // An idle nudge must not spin an empty speculative round.
  e.broadcast_now();
  EXPECT_EQ(e.next_broadcast_round(), std::optional<Round>(1));

  // With payload, the speculative round broadcasts.
  e.submit(Request::of_data(bytes({1, 2, 3})));
  EXPECT_GT(e.pending_bytes(), 0u);
  e.broadcast_now();
  EXPECT_EQ(e.pending_bytes(), 0u);
  EXPECT_EQ(e.next_broadcast_round(), std::nullopt);  // window full

  // Window full: further submissions accumulate — the backpressure signal.
  e.submit(Request::of_data(bytes({4, 5})));
  const auto pending = e.pending_bytes();
  EXPECT_GT(pending, 0u);
  e.broadcast_now();
  EXPECT_EQ(e.pending_bytes(), pending) << "full window must not broadcast";
}

// ---------------------------------------------------------------------
// Whole-cluster pipelining on the loopback harness.
// ---------------------------------------------------------------------

TEST(Pipeline, FourRoundsInFlightDeliverIdentically) {
  const std::size_t n = 8;
  LoopbackCluster c(n, gs_builder(3), windowed(4));
  // Fill the whole window everywhere before moving a single message: four
  // rounds of distinct payloads are in flight concurrently.
  for (Round r = 0; r < 4; ++r) {
    for (NodeId i = 0; i < n; ++i) {
      c.engine(i).submit(Request::of_data(
          bytes({static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(r)})));
      c.engine(i).broadcast_now();
    }
  }
  c.pump();
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto& rounds = c.delivered(i);
    ASSERT_EQ(rounds.size(), 4u);
    for (Round r = 0; r < 4; ++r) {
      EXPECT_EQ(rounds[r].round, r);
      ASSERT_EQ(rounds[r].deliveries.size(), n);
      for (std::size_t k = 0; k < n; ++k) {
        const auto batch = unpack_batch(rounds[r].deliveries[k].payload);
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->size(), 1u);
        EXPECT_EQ((*batch)[0].data,
                  bytes({static_cast<std::uint8_t>(k),
                         static_cast<std::uint8_t>(r)}))
            << "server " << i << " round " << r << " origin " << k;
      }
    }
    EXPECT_EQ(c.engine(i).current_round(), 4u);
  }
}

TEST(Pipeline, DpModeRoundsOverlapToo) {
  const std::size_t n = 5;
  LoopbackCluster c(n, complete_builder(),
                    windowed(3, FdMode::kEventuallyPerfect));
  for (Round r = 0; r < 3; ++r) {
    for (NodeId i = 0; i < n; ++i) {
      c.engine(i).submit(Request::of_data(
          bytes({static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(r)})));
      c.engine(i).broadcast_now();
    }
  }
  c.pump();
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    ASSERT_EQ(c.delivered(i).size(), 3u);
    for (Round r = 0; r < 3; ++r) {
      EXPECT_EQ(c.delivered(i)[r].deliveries.size(), n);
    }
  }
}

// ---------------------------------------------------------------------
// Membership changes drain the window before the view switches.
// ---------------------------------------------------------------------

TEST(PipelineMembership, FailureDecidedAtRoundZeroSwitchesAfterDrain) {
  const std::size_t n = 8;
  const std::size_t w = 4;
  LoopbackCluster c(n, gs_builder(3), windowed(w));
  c.crash(5, 0);
  c.suspect_everywhere(5);

  // Drive W+1 rounds: the failure is decided at round 0, the view may only
  // switch after the window drained (epoch close = round W-1 = 3).
  for (Round r = 0; r < w + 1; ++r) {
    for (NodeId i = 0; i < n; ++i) {
      if (!c.is_crashed(i)) c.engine(i).broadcast_now();
    }
    c.pump();
  }
  for (NodeId i = 0; i < n; ++i) {
    if (c.is_crashed(i)) continue;
    const auto& rounds = c.delivered(i);
    ASSERT_EQ(rounds.size(), w + 1u) << "server " << i;
    for (Round r = 0; r < w; ++r) {
      // Old-view rounds: the dead server is still a member (absent from
      // the deliveries); removal is reported once, at the epoch close.
      EXPECT_EQ(rounds[r].view_size, n) << "round " << r;
      EXPECT_EQ(rounds[r].deliveries.size(), n - 1) << "round " << r;
      if (r < w - 1) {
        EXPECT_TRUE(rounds[r].removed.empty()) << "round " << r;
      }
    }
    EXPECT_EQ(rounds[w - 1].removed, (std::vector<NodeId>{5}));
    // First new-view round.
    EXPECT_EQ(rounds[w].view_size, n - 1);
    EXPECT_EQ(rounds[w].deliveries.size(), n - 1);
    EXPECT_FALSE(c.engine(i).view().contains(5));
  }
}

TEST(PipelineMembership, JoinCommitsAtEpochClose) {
  const std::size_t n = 6;
  const std::size_t w = 3;
  LoopbackCluster c(n, gs_builder(3), windowed(w));
  c.engine(2).submit(Request::join(17));
  for (Round r = 0; r < w; ++r) {
    for (NodeId i = 0; i < n; ++i) c.engine(i).broadcast_now();
    c.pump();
  }
  for (NodeId i = 0; i < n; ++i) {
    const auto& rounds = c.delivered(i);
    ASSERT_EQ(rounds.size(), w);
    EXPECT_TRUE(rounds[0].joined.empty());
    EXPECT_EQ(rounds[w - 1].joined, (std::vector<NodeId>{17}));
    EXPECT_TRUE(c.engine(i).view().contains(17));
  }
}

TEST(PipelineMembership, LeaverStaysUntilTheWindowDrains) {
  const std::size_t n = 8;
  const std::size_t w = 2;
  LoopbackCluster c(n, gs_builder(3), windowed(w));
  c.engine(3).submit(Request::leave(3));
  for (Round r = 0; r < w; ++r) {
    for (NodeId i = 0; i < n; ++i) {
      if (!c.engine(i).departed()) c.engine(i).broadcast_now();
    }
    c.pump();
  }
  // The leaver participated in every old-view round and departed at the
  // epoch close.
  EXPECT_TRUE(c.engine(3).departed());
  EXPECT_EQ(c.delivered(3).size(), w);
  for (NodeId i = 0; i < n; ++i) {
    if (i == 3) continue;
    const auto& rounds = c.delivered(i);
    ASSERT_EQ(rounds.size(), w);
    EXPECT_EQ(rounds[w - 1].deliveries.size(), n);  // leaver still delivers
    EXPECT_FALSE(c.engine(i).view().contains(3));
  }
  // Next round runs without the leaver.
  for (NodeId i = 0; i < n; ++i) {
    if (i != 3) c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < n; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(c.delivered(i).back().view_size, n - 1);
  }
}

TEST(PipelineMembership, DrainBlocksNewRoundsAndBackpressures) {
  // During the drain no round beyond the epoch close may open: a client
  // keeps submitting, the engine keeps refusing, pending_bytes() grows.
  const std::size_t n = 6;
  const std::size_t w = 3;
  LoopbackCluster c(n, gs_builder(3), windowed(w));
  // The committed joiner has no engine in this harness; swallow the
  // traffic the new overlay routes toward it.
  c.drop_filter = [n](NodeId, NodeId dst, const Message&) {
    return dst >= n;
  };
  c.engine(0).submit(Request::join(23));
  for (NodeId i = 0; i < n; ++i) c.engine(i).broadcast_now();
  c.pump();  // round 0 delivered: join decided, close = round 2

  // Fill the remaining drain rounds (1, 2) with broadcasts…
  c.engine(0).submit(Request::of_data(bytes({1})));
  c.engine(0).broadcast_now();
  c.engine(0).submit(Request::of_data(bytes({2})));
  c.engine(0).broadcast_now();
  // …then keep submitting: round 3 cannot open under the old view.
  EXPECT_EQ(c.engine(0).next_broadcast_round(), std::nullopt);
  c.engine(0).submit(Request::of_data(bytes({3})));
  c.engine(0).broadcast_now();
  EXPECT_GT(c.engine(0).pending_bytes(), 0u);

  // Drain the window (rounds 1 and 2); the epoch closes and the view
  // admits the joiner.
  for (Round r = 0; r < 2; ++r) {
    for (NodeId i = 0; i < n; ++i) c.engine(i).broadcast_now();
    c.pump();
  }
  EXPECT_TRUE(c.engine(0).view().contains(23));
  // The first new-view round accepts the parked submission.
  c.engine(0).broadcast_now();
  EXPECT_EQ(c.engine(0).pending_bytes(), 0u);
}

}  // namespace
}  // namespace allconcur::core
