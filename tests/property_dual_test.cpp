// Property suite for the dual-digraph fast path (AllConcur+ mode): a
// dual engine (fast rounds over G_U, fallback over G_R) must deliver
// bit-identical per-round sets, payloads and order vs the always-reliable
// classic engine — under clean crashes, adversarial delivery skew
// (randomized partial interleavings), forced spurious fallbacks (a
// fallback with no real failure must be harmless), and with the fallback
// racing the W>1 pipeline. Mid-broadcast crashes additionally assert
// within-run agreement (the decided outcome is interleaving-dependent,
// but must be identical at every survivor).
//
// A second part mounts the replicated KV store on a dual-mode simulated
// cluster: smr::Replica is mode-oblivious, and SimKvCluster's built-in
// per-round cross-replica state-hash guard must hold across a mixed
// fast/fallback history (fast rounds, a forced spurious fallback, a real
// crash with its tracked fallback, then fast resumption).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "api/sim_cluster.hpp"
#include "chaos_scenarios.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"
#include "plus/dual_overlay.hpp"
#include "smr/kv_cluster.hpp"
#include "test_env.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

struct DualCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;          ///< clean crashes, rounds drawn from seed
  std::size_t window;           ///< pipeline width of both runs
  bool spurious;                ///< inject forced no-failure fallbacks
};

std::string case_name(const ::testing::TestParamInfo<DualCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
         "_f" + std::to_string(p.crashes) + "_w" + std::to_string(p.window) +
         (p.spurious ? "_spurious" : "");
}

GraphBuilder reliable_overlay() {
  return [](std::size_t n) {
    if (n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, 3);
  };
}

constexpr Round kRounds = 7;

/// Clean-crash schedule derived from the case seed only — identical for
/// the dual and the classic run. Clean (drained boundary, zero escaping
/// sends) makes the agreed history a pure function of the workload,
/// hence comparable across modes and interleavings.
std::map<Round, std::vector<NodeId>> crash_schedule(const DualCase& p,
                                                    std::uint64_t seed) {
  Rng rng(seed * 977 + 13);
  std::map<Round, std::vector<NodeId>> out;
  std::set<NodeId> victims;
  while (victims.size() < p.crashes) {
    const NodeId v = static_cast<NodeId>(rng.next_below(p.n));
    if (!victims.insert(v).second) continue;
    out[1 + rng.next_below(kRounds - 2)].push_back(v);
  }
  return out;
}

std::vector<std::uint8_t> payload_for(NodeId i, Round r) {
  return {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(r), 0xd1};
}

bool broadcast_done(const Engine& e, Round r) {
  if (e.current_round() > r) return true;
  const auto nb = e.next_broadcast_round();
  return nb.has_value() && *nb > r;
}

/// One full run (dual or classic), mirroring the pipeline suite's driver:
/// payloads submitted before broadcasts, randomized bounded pumps between
/// rounds (the adversarial skew), clean crashes with immediate suspicion.
/// Dual runs additionally fire forced spurious fallbacks at random nodes
/// between pumps when the case asks for them.
std::map<NodeId, std::vector<RoundResult>> run_history(
    bool dual, const DualCase& p, std::uint64_t pump_seed) {
  EngineOptions options;
  options.window = p.window;
  if (dual) options.fast_builder = plus::make_unreliable_builder();
  LoopbackCluster c(p.n, reliable_overlay(), options);
  Rng pump(pump_seed);
  const auto schedule = crash_schedule(p, p.seed);

  const auto maybe_force_fallback = [&] {
    if (!dual || !p.spurious) return;
    if (pump.next_below(4) != 0) return;
    const NodeId id = static_cast<NodeId>(pump.next_below(p.n));
    if (!c.is_crashed(id)) {
      c.engine(id).on_round_timeout(c.engine(id).current_round());
    }
  };

  for (Round r = 0; r < kRounds; ++r) {
    const auto it = schedule.find(r);
    if (it != schedule.end()) {
      c.pump();
      for (NodeId v : it->second) c.crash(v, 0);
      for (NodeId v : it->second) c.suspect_everywhere(v);
    }
    for (NodeId i = 0; i < p.n; ++i) {
      if (!c.is_crashed(i)) {
        c.engine(i).submit(Request::of_data(payload_for(i, r)));
      }
    }
    for (std::size_t guard = 0;; ++guard) {
      bool all = true;
      for (NodeId i = 0; i < p.n; ++i) {
        if (c.is_crashed(i)) continue;
        if (!broadcast_done(c.engine(i), r)) {
          c.engine(i).broadcast_now();
          if (!broadcast_done(c.engine(i), r)) all = false;
        }
      }
      if (all) break;
      maybe_force_fallback();
      c.pump_random(pump, 1 + pump.next_below(64));
      if (guard > 100000) {
        ADD_FAILURE() << "round " << r << " never became broadcastable";
        return {};
      }
    }
    maybe_force_fallback();
    // Induced skew: only a random slice of the queue moves before the
    // next round's broadcasts pile on top.
    c.pump_random(pump, pump.next_below(400));
  }
  maybe_force_fallback();
  c.pump();

  std::map<NodeId, std::vector<RoundResult>> out;
  for (NodeId i = 0; i < p.n; ++i) {
    if (!c.is_crashed(i)) out[i] = c.delivered(i);
  }
  return out;
}

class DualEquivalence : public ::testing::TestWithParam<DualCase> {};

TEST_P(DualEquivalence, DualAgreesWithAlwaysReliable) {
  const DualCase& p = GetParam();
  const std::uint64_t seed = testing::test_seed_offset() + p.seed;
  SCOPED_TRACE("effective seed " + std::to_string(seed));

  // Different pump seeds on purpose: the agreed history must not depend
  // on the interleaving, the engine mode, or any spurious fallback.
  const auto classic = run_history(false, p, seed * 3 + 1);
  const auto dual = run_history(true, p, seed * 7 + 5);
  ASSERT_FALSE(classic.empty());
  ASSERT_EQ(classic.size(), dual.size());

  for (const auto& [node, reference] : classic) {
    ASSERT_TRUE(dual.count(node)) << "survivor sets differ";
    const auto& fast = dual.at(node);
    ASSERT_GE(reference.size(), kRounds) << "server " << node;
    ASSERT_GE(fast.size(), kRounds) << "server " << node;
    for (Round r = 0; r < kRounds; ++r) {
      const auto& a = reference[r];
      const auto& b = fast[r];
      ASSERT_EQ(a.round, r);
      ASSERT_EQ(b.round, r);
      ASSERT_EQ(a.deliveries.size(), b.deliveries.size())
          << "server " << node << " round " << r;
      for (std::size_t k = 0; k < a.deliveries.size(); ++k) {
        EXPECT_EQ(a.deliveries[k].origin, b.deliveries[k].origin)
            << "server " << node << " round " << r << " slot " << k;
        const bool a_null = a.deliveries[k].payload == nullptr;
        const bool b_null = b.deliveries[k].payload == nullptr;
        ASSERT_EQ(a_null, b_null);
        if (!a_null) {
          EXPECT_EQ(*a.deliveries[k].payload, *b.deliveries[k].payload)
              << "server " << node << " round " << r << " slot " << k;
        }
      }
      EXPECT_EQ(a.removed, b.removed)
          << "server " << node << " round " << r;
    }
  }

  // Sanity on the mode itself: without crashes and without spurious
  // fallbacks every dual round must have completed on the fast path.
  if (p.crashes == 0 && !p.spurious) {
    // (Stats live in the engines, which run_history dropped; assert on a
    // dedicated quick run instead.)
    EngineOptions options;
    options.window = p.window;
    options.fast_builder = plus::make_unreliable_builder();
    LoopbackCluster c(p.n, reliable_overlay(), options);
    for (Round r = 0; r < 3; ++r) {
      for (NodeId i = 0; i < p.n; ++i) c.engine(i).broadcast_now();
      c.pump();
    }
    for (NodeId i = 0; i < p.n; ++i) {
      EXPECT_EQ(c.engine(i).stats().fallback_rounds, 0u);
      EXPECT_EQ(c.engine(i).stats().tracking_resets, 0u);
    }
  }
}

std::vector<DualCase> make_cases() {
  std::vector<DualCase> cases;
  // Failure-free, W=1 and W=4, with and without forced fallbacks.
  cases.push_back({1, 9, 0, 1, false});
  cases.push_back({2, 9, 0, 4, false});
  cases.push_back({3, 11, 0, 1, true});
  cases.push_back({4, 11, 0, 4, true});
  // Clean crashes, classic and pipelined, fallback racing the window.
  for (std::uint64_t seed = 5; seed <= 8; ++seed) {
    cases.push_back({seed, 11, 1 + seed % 2, 1, false});
  }
  for (std::uint64_t seed = 9; seed <= 12; ++seed) {
    cases.push_back({seed, 11, 1 + seed % 2, 4, false});
  }
  // Everything at once: crashes + spurious fallbacks + window.
  for (std::uint64_t seed = 13; seed <= 16; ++seed) {
    cases.push_back({seed, 9, 1, 4, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualEquivalence,
                         ::testing::ValuesIn(make_cases()), case_name);

// ---------------------------------------------------------------------
// Mid-broadcast crashes over G_U: the outcome (victim's message in or
// out) legitimately depends on the interleaving, so the assertion is
// within-run agreement — every survivor delivers the identical history.
// ---------------------------------------------------------------------

class DualMidBroadcast : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualMidBroadcast, SurvivorsAgreeOnEveryRound) {
  const std::uint64_t seed = testing::test_seed_offset() + GetParam();
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);

  const std::size_t n = 7 + rng.next_below(4);
  EngineOptions options;
  options.window = 1 + rng.next_below(4);
  options.fast_builder = plus::make_unreliable_builder();
  LoopbackCluster c(n, reliable_overlay(), options);

  const NodeId victim = static_cast<NodeId>(rng.next_below(n));
  const Round crash_round = 1 + rng.next_below(3);
  bool crashed = false;

  for (Round r = 0; r < 5; ++r) {
    for (NodeId i = 0; i < n; ++i) {
      if (!c.is_crashed(i)) {
        c.engine(i).submit(Request::of_data(payload_for(i, r)));
        c.engine(i).broadcast_now();
      }
    }
    if (!crashed && r == crash_round) {
      // Die with a few sends still escaping — partially disseminated
      // UBCASTs are exactly the ambiguity the fallback must resolve.
      c.crash(victim, rng.next_below(4));
      crashed = true;
    }
    c.pump_random(rng, rng.next_below(600));
    if (crashed) c.suspect_everywhere(victim);
    c.pump_random(rng, rng.next_below(600));
  }
  c.pump();
  // Drain: a node whose window was full when the driver broadcast may
  // still hold its last payload pending (broadcast_now no-ops on a full
  // window) — re-nudge it; any round left incomplete by the lossy G_U
  // dissemination times out.
  for (int nudges = 0; nudges < 8; ++nudges) {
    for (NodeId i = 0; i < n; ++i) {
      if (c.is_crashed(i)) continue;
      c.engine(i).broadcast_now();
      c.engine(i).on_round_timeout(c.engine(i).current_round());
    }
    c.pump();
  }

  std::optional<std::vector<std::vector<NodeId>>> expected;
  for (NodeId i = 0; i < n; ++i) {
    if (c.is_crashed(i)) continue;
    ASSERT_GE(c.delivered(i).size(), 5u) << "server " << i << " stalled";
    std::vector<std::vector<NodeId>> history;
    for (Round r = 0; r < 5; ++r) {
      std::vector<NodeId> origins;
      for (const auto& d : c.delivered(i)[r].deliveries) {
        origins.push_back(d.origin);
      }
      history.push_back(std::move(origins));
    }
    if (!expected) {
      expected = std::move(history);
    } else {
      EXPECT_EQ(*expected, history) << "server " << i << " diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualMidBroadcast,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace allconcur::core

// ---------------------------------------------------------------------
// SMR over a dual-mode cluster: Replica is mode-oblivious and the
// per-round cross-replica hash guard (asserted inside SimKvCluster on
// every apply) must hold across a mixed fast / spurious-fallback /
// crash-fallback / fast-again history.
// ---------------------------------------------------------------------
namespace allconcur::smr {
namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

class DualSmrProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualSmrProperty, HashGuardHoldsAcrossMixedFastFallbackHistory) {
  const std::uint64_t seed = testing::test_seed_offset() + GetParam();
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);

  SimKvOptions opt;
  opt.cluster.n = 8;
  opt.cluster.window = 1 + 3 * (seed % 2);  // alternate W=1 / W=4
  opt.cluster.fast_builder = plus::make_unreliable_builder();
  opt.cluster.fallback_timeout = ms(20);
  opt.cluster.detection_delay = ms(1);
  SimKvCluster c(opt);
  // One slow server: real skew for the fast path to absorb.
  c.cluster().set_send_delay(static_cast<NodeId>(1 + rng.next_below(7)),
                             us(300));

  std::vector<KvSession> sessions;
  for (std::size_t i = 0; i < opt.cluster.n; ++i) {
    sessions.push_back(c.make_session());
  }

  const NodeId victim = static_cast<NodeId>(2 + rng.next_below(6));
  const std::size_t kPhases = 8;
  const std::size_t crash_phase = 2 + rng.next_below(kPhases - 4);
  const std::size_t spurious_phase = crash_phase - 1;

  Round round = 0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    if (phase == crash_phase) {
      c.cluster().crash_after_sends(victim, c.sim().now(),
                                    rng.next_below(4));
    } else if (phase == spurious_phase) {
      // A forced fallback with nothing wrong: must be invisible to SMR.
      const auto live = c.cluster().live_nodes();
      c.cluster().force_fallback(live[rng.next_below(live.size())]);
    }
    const std::size_t fresh = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < fresh; ++i) {
      auto& session = sessions[rng.next_below(sessions.size())];
      const Bytes key = to_bytes("k" + std::to_string(rng.next_below(8)));
      const Bytes value =
          to_bytes("v" + std::to_string(rng.next_u64() & 0xffff));
      const auto live = c.cluster().live_nodes();
      c.cluster().submit(live[rng.next_below(live.size())],
                         core::Request::of_data(
                             session.issue(Command::put(key, value))));
    }
    c.cluster().broadcast_all_now();
    ASSERT_TRUE(c.cluster().run_until_round_done(
        round, c.sim().now() + allconcur::testing::scaled(sec(20))))
        << "phase " << phase << " stalled";
    for (NodeId id : c.cluster().live_nodes()) {
      round = std::max(round, c.replica(id).next_round());
    }
  }

  EXPECT_TRUE(c.converged());
  std::set<std::uint64_t> hashes;
  Round max_round = 0;
  for (NodeId id : c.cluster().live_nodes()) {
    max_round = std::max(max_round, c.replica(id).next_round());
  }
  for (NodeId id : c.cluster().live_nodes()) {
    if (c.replica(id).next_round() == max_round) {
      hashes.insert(c.replica(id).state_hash());
    }
  }
  EXPECT_EQ(hashes.size(), 1u) << "replicas at the same round diverged";

  // The history really was mixed: fast rounds on both sides of a tracked
  // fallback.
  const auto stats = c.cluster().aggregate_stats();
  EXPECT_GT(stats.fast_rounds, 0u);
  EXPECT_GT(stats.fallback_rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualSmrProperty,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace allconcur::smr

// ---------------------------------------------------------------------
// Chaos sweeps: the dual-digraph mode against committed fault schedules
// on the timed simulator. Corruption becomes loss at the receivers'
// checksums and the watchdog's re-floods must recover it — with zero
// silently delivered corrupt payloads (the acceptance gate). The gray
// scenario trickles just enough traffic to re-arm an uncapped
// progress-aware watchdog forever; the capped timer must fall back
// anyway and the cluster must keep agreeing.
// ---------------------------------------------------------------------
namespace allconcur::api {
namespace {

using core::RoundResult;

void expect_chaos_agreement(
    std::map<NodeId, std::vector<RoundResult>>& results,
    const std::vector<NodeId>& nodes, std::size_t min_rounds) {
  std::size_t prefix = SIZE_MAX;
  for (NodeId id : nodes) {
    prefix = std::min(prefix, results[id].size());
  }
  ASSERT_GE(prefix, min_rounds);
  const auto& ref = results[nodes[0]];
  for (NodeId id : nodes) {
    const auto& rounds = results[id];
    for (std::size_t r = 0; r < prefix; ++r) {
      ASSERT_EQ(rounds[r].deliveries.size(), ref[r].deliveries.size())
          << "node " << id << " round " << r;
      for (std::size_t k = 0; k < rounds[r].deliveries.size(); ++k) {
        EXPECT_EQ(rounds[r].deliveries[k].origin, ref[r].deliveries[k].origin)
            << "node " << id << " round " << r << " slot " << k;
      }
    }
  }
}

class ChaosCorruptionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosCorruptionProperty, CorruptionNeverDeliversSilently) {
  auto inject = std::make_shared<chaos::ScenarioEngine>(
      testing::corruption_scenario(GetParam()));
  ClusterOptions opt;
  opt.n = 8;
  opt.fast_builder = plus::make_unreliable_builder();
  opt.fallback_timeout = ms(30);
  opt.chaos = inject;
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(3, sec(30)))
      << "corruption-induced loss was never recovered";

  // The acceptance gate: every injected corruption was detected at a
  // receiver's checksum; none decoded into a delivery.
  EXPECT_GT(inject->stats().corrupted, 0u);
  EXPECT_GT(c.corrupt_dropped(), 0u);
  EXPECT_LE(c.corrupt_dropped(), inject->stats().corrupted);
  EXPECT_EQ(c.corrupt_delivered(), 0u)
      << "corrupt frames were silently delivered";
  expect_chaos_agreement(results, c.live_nodes(), 4);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, ChaosCorruptionProperty,
                         ::testing::Values(0xA11C51u, 0xA11C52u));

class ChaosGrayFallbackProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosGrayFallbackProperty, CappedWatchdogFallsBackUnderTrickle) {
  // Node 7 stays alive but delays everything by 1 ms and loses 35% — a
  // trickle that keeps bumping peers' progress counters. The capped
  // watchdog (4x timeout) must fire anyway, and the fallback re-floods
  // must carry the lossy rounds through.
  auto inject = std::make_shared<chaos::ScenarioEngine>(
      testing::gray_scenario(GetParam(), 7, ms(1), 0.35));
  ClusterOptions opt;
  opt.n = 8;
  opt.fast_builder = plus::make_unreliable_builder();
  opt.fallback_timeout = ms(25);
  opt.fallback_max_round_age = ms(100);
  opt.chaos = inject;
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(2, sec(30)))
      << "gray failure starved the cluster";

  EXPECT_GT(inject->stats().dropped, 0u);
  EXPECT_GT(inject->stats().delayed, 0u);
  const auto stats = c.aggregate_stats();
  EXPECT_GT(stats.fallback_rounds, 0u)
      << "the gray trickle never drove a fallback";
  EXPECT_EQ(c.corrupt_delivered(), 0u);
  expect_chaos_agreement(results, c.live_nodes(), 3);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, ChaosGrayFallbackProperty,
                         ::testing::Values(0xA11C61u, 0xA11C62u));

}  // namespace
}  // namespace allconcur::api
