#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace allconcur::graph {
namespace {

TEST(Digraph, AddAndQueryEdges) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  EXPECT_EQ(g.order(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(2), 2u);
}

TEST(Digraph, SuccessorsAndPredecessorsSorted) {
  Digraph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  const auto& s = g.successors(0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 4u);
}

TEST(Digraph, AddEdgeIfAbsent) {
  Digraph g(3);
  EXPECT_TRUE(g.add_edge_if_absent(0, 1));
  EXPECT_FALSE(g.add_edge_if_absent(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, RemoveEdge) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.in_degree(1), 0u);
}

TEST(Digraph, Transpose) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Digraph t = g.transpose();
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_TRUE(t.has_edge(2, 1));
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_EQ(t.edge_count(), 2u);
}

TEST(Digraph, WithoutRemovesVertexAndItsEdges) {
  Digraph g = make_complete(4);
  const Digraph h = g.without({2});
  EXPECT_EQ(h.out_degree(2), 0u);
  EXPECT_EQ(h.in_degree(2), 0u);
  EXPECT_EQ(h.out_degree(0), 2u);
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_FALSE(h.has_edge(0, 2));
}

TEST(Digraph, CompleteGraphProperties) {
  const Digraph g = make_complete(6);
  EXPECT_EQ(g.edge_count(), 30u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 5u);
}

TEST(Digraph, RingProperties) {
  const Digraph g = make_ring(5);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 1u);
  EXPECT_TRUE(g.has_edge(4, 0));
}

TEST(Digraph, BidirectionalRing) {
  const Digraph g = make_bidirectional_ring(6);
  EXPECT_EQ(g.edge_count(), 12u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 2u);
}

TEST(Digraph, HypercubeProperties) {
  const Digraph g = make_hypercube(8);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(), 3u);
  EXPECT_EQ(g.edge_count(), 24u);
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(4, 0));
}

TEST(Digraph, IrregularDetected) {
  Digraph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.is_regular());
}

TEST(Digraph, EqualityComparesStructure) {
  EXPECT_EQ(make_ring(4), make_ring(4));
  EXPECT_FALSE(make_ring(4) == make_complete(4));
}

}  // namespace
}  // namespace allconcur::graph
