#include "graph/fault_diameter.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/binomial_graph.hpp"
#include "graph/digraph.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

TEST(DisjointPaths, CompleteGraphShortPaths) {
  const Digraph g = make_complete(5);
  const auto dp = min_sum_disjoint_paths(g, 0, 1, 4);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->paths.size(), 4u);
  // One direct edge (length 1) plus three 2-hop paths.
  EXPECT_EQ(dp->max_length, 2u);
  EXPECT_NEAR(dp->avg_length, (1.0 + 2.0 + 2.0 + 2.0) / 4.0, 1e-9);
}

TEST(DisjointPaths, PathsAreVertexDisjoint) {
  const Digraph g = make_binomial_graph(12);
  const auto dp = min_sum_disjoint_paths(g, 0, 3, 6);
  ASSERT_TRUE(dp.has_value());
  std::set<NodeId> internal;
  for (const auto& path : dp->paths) {
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), 3u);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(internal.insert(path[i]).second)
          << "vertex " << path[i] << " shared between paths";
    }
  }
}

TEST(DisjointPaths, PathsFollowEdges) {
  const Digraph g = make_gs_digraph(16, 4);
  const auto dp = min_sum_disjoint_paths(g, 2, 9, 4);
  ASSERT_TRUE(dp.has_value());
  for (const auto& path : dp->paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(DisjointPaths, NulloptWhenNotEnoughPaths) {
  const Digraph g = make_ring(5);
  EXPECT_FALSE(min_sum_disjoint_paths(g, 0, 2, 2).has_value());
  EXPECT_TRUE(min_sum_disjoint_paths(g, 0, 2, 1).has_value());
}

TEST(DisjointPaths, PaperBinomialExample) {
  // §4.2.3: binomial graph n=12; min-sum over the 6 disjoint 0->3 paths
  // gives 3 <= δ_f <= 4 (one path, e.g. p0-p10-p6-p5-p3, has length 4).
  const Digraph g = make_binomial_graph(12);
  const auto dp = min_sum_disjoint_paths(g, 0, 3, 6);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->max_length, 4u);
  EXPECT_GE(dp->avg_length, 2.0);
  EXPECT_LE(dp->avg_length, 4.0);
}

TEST(FaultDiameter, BoundDominatesExactSmall) {
  const Digraph g = make_gs_digraph(8, 3);
  const auto exact = fault_diameter_exact(g, 2);
  const auto bound = fault_diameter_bound(g, 2);
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(bound.has_value());
  EXPECT_GE(*bound, *exact);
  const auto diam = diameter(g);
  ASSERT_TRUE(diam.has_value());
  EXPECT_GE(*exact, *diam);
}

TEST(FaultDiameter, ExactZeroFaultsIsDiameter) {
  const Digraph g = make_gs_digraph(11, 3);
  const auto exact = fault_diameter_exact(g, 0);
  const auto diam = diameter(g);
  ASSERT_TRUE(exact.has_value() && diam.has_value());
  EXPECT_EQ(*exact, *diam);
}

TEST(FaultDiameter, SampledIsLowerBoundOnExact) {
  const Digraph g = make_binomial_graph(12);
  Rng rng(17);
  const auto exact = fault_diameter_exact(g, 3);
  const auto sampled = fault_diameter_sampled(g, 3, 50, rng);
  ASSERT_TRUE(exact.has_value() && sampled.has_value());
  EXPECT_LE(*sampled, *exact);
}

TEST(FaultDiameter, SampledBoundMatchesFullBoundOnSmallGraph) {
  const Digraph g = make_gs_digraph(16, 4);
  Rng rng(23);
  const auto full = fault_diameter_bound(g, 2);
  const auto sampled = fault_diameter_bound_sampled(g, 2, 400, rng);
  ASSERT_TRUE(full.has_value() && sampled.has_value());
  EXPECT_LE(*sampled, *full);
}

TEST(FaultDiameter, DisconnectingRemovalYieldsNullopt) {
  // Ring: removing any vertex breaks strong connectivity.
  const Digraph g = make_ring(6);
  EXPECT_FALSE(fault_diameter_exact(g, 1).has_value());
}

TEST(FaultDiameter, GsFaultDiameterStaysLow) {
  // The paper reports low fault-diameter bounds for GS digraphs
  // ("experimentally verified"); check ˆδ_f <= D + 2 for a mid-size case.
  const Digraph g = make_gs_digraph(22, 4);
  const auto diam = diameter(g);
  const auto bound = fault_diameter_bound(g, 3);
  ASSERT_TRUE(diam.has_value() && bound.has_value());
  EXPECT_LE(*bound, *diam + 2);
}

}  // namespace
}  // namespace allconcur::graph
