// Integration tests over real localhost TCP sockets: the same engine that
// runs under the simulator, driven by the epoll transport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/inspect.hpp"
#include "obs/trace.hpp"
#include "tcp_cluster.hpp"

namespace allconcur::net {
namespace {

using core::Request;
using core::RoundResult;
using testing::TcpCluster;

std::vector<NodeId> origins(const RoundResult& r) {
  std::vector<NodeId> out;
  for (const auto& d : r.deliveries) out.push_back(d.origin);
  return out;
}

TEST(TcpCluster, SingleRoundDeliversEverywhere) {
  TcpCluster c(5);
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  for (NodeId i = 0; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u) << "node " << i;
    EXPECT_EQ(rounds[0].deliveries.size(), 5u);
    EXPECT_TRUE(rounds[0].removed.empty());
  }
}

TEST(TcpCluster, PayloadSurvivesTheWire) {
  TcpCluster c(5);
  const std::vector<std::uint8_t> blob{0xca, 0xfe, 0xba, 0xbe, 0x00, 0x42};
  c.node(2).submit(Request::of_data(blob));
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  for (NodeId i = 0; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u);
    const auto batch = core::unpack_batch(rounds[0].deliveries[2].payload);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_EQ((*batch)[0].data, blob);
  }
}

TEST(TcpCluster, ManyRoundsStayConsistent) {
  TcpCluster c(5);
  const std::uint64_t kRounds = 20;
  // Drive rounds from a pump thread: each node re-broadcasts as soon as
  // its previous round completes.
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3, 4}, kRounds, sec(30));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok);
  // All nodes delivered identical rounds.
  const auto reference = c.delivered(0);
  for (NodeId i = 1; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]))
          << "node " << i << " round " << r;
    }
  }
}

TEST(TcpCluster, GsOverlayAcrossSockets) {
  // 8 nodes -> GS(8,3): messages reach everyone through relays only.
  TcpCluster c(8);
  c.node(0).submit(Request::of_data({1, 2, 3}));
  for (NodeId i = 0; i < 8; ++i) c.node(i).broadcast_now();
  std::vector<NodeId> all(8);
  for (NodeId i = 0; i < 8; ++i) all[i] = i;
  ASSERT_TRUE(c.wait_rounds(all, 1, sec(10)));
  for (NodeId i = 0; i < 8; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u);
    EXPECT_EQ(rounds[0].deliveries.size(), 8u);
  }
}

TEST(TcpCluster, BackpressurePreservesFrameIntegrityAndOrder) {
  // Tiny kernel send buffers + large payloads force partial vectored
  // writes (short sendmsg / EAGAIN parking): every frame must still
  // arrive intact, and rounds must deliver in order everywhere.
  const std::size_t kNodes = 4;
  const std::uint64_t kRounds = 5;
  const std::size_t kBlob = 256 * 1024;
  // Heartbeats off: they share the links, and a saturated 4 KiB send
  // buffer delays them past any sane timeout — this test measures frame
  // integrity under backpressure, not failure detection under it.
  TcpCluster c(kNodes, core::FdMode::kPerfect, ms(250),
               [](TcpNodeOptions& o) {
                 o.sndbuf_bytes = 4096;
                 o.enable_heartbeats = false;
               });

  const auto blob_for = [&](NodeId node, std::uint64_t seq) {
    return std::vector<std::uint8_t>(
        kBlob, static_cast<std::uint8_t>(0x11 * (node + 1) + seq));
  };
  std::vector<NodeId> all(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) all[i] = i;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (NodeId i = 0; i < kNodes; ++i) {
      c.node(i).submit(Request::of_data(blob_for(i, r)));
      c.node(i).broadcast_now();
    }
    ASSERT_TRUE(c.wait_rounds(all, r + 1, sec(30))) << "round " << r;
  }
  // A submit may miss the round of its paired broadcast_now (the reactive
  // broadcast can fire first with an empty batch) and ride a later one;
  // drive two empty rounds so every blob has flushed.
  const std::uint64_t kTotal = kRounds + 2;
  for (std::uint64_t r = kRounds; r < kTotal; ++r) {
    for (NodeId i = 0; i < kNodes; ++i) c.node(i).broadcast_now();
    ASSERT_TRUE(c.wait_rounds(all, r + 1, sec(30))) << "flush round " << r;
  }

  std::uint64_t partials = 0;
  for (NodeId i = 0; i < kNodes; ++i) {
    const auto ns = c.node(i).net_stats();
    partials += ns.partial_writes + ns.eagain_waits;
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), kTotal) << "node " << i;
    // Integrity + ordering: concatenating every data request delivered
    // from origin j (across rounds and batch boundaries) must reproduce
    // j's blobs exactly, byte for byte and in submission order.
    std::vector<std::vector<std::uint8_t>> by_origin(kNodes);
    for (std::uint64_t r = 0; r < kTotal; ++r) {
      EXPECT_EQ(rounds[r].round, r) << "node " << i;
      ASSERT_EQ(rounds[r].deliveries.size(), kNodes);
      for (const auto& d : rounds[r].deliveries) {
        const auto batch = core::unpack_batch(d.payload);
        ASSERT_TRUE(batch.has_value()) << "node " << i << " round " << r;
        for (const auto& req : *batch) {
          by_origin[d.origin].insert(by_origin[d.origin].end(),
                                     req.data.begin(), req.data.end());
        }
      }
    }
    for (NodeId j = 0; j < kNodes; ++j) {
      std::vector<std::uint8_t> expected;
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        const auto blob = blob_for(j, r);
        expected.insert(expected.end(), blob.begin(), blob.end());
      }
      EXPECT_EQ(by_origin[j], expected) << "node " << i << " origin " << j;
    }
  }
  // 256 KiB frames against 4 KiB send buffers: the writers must have hit
  // backpressure — otherwise this test is not testing what it claims.
  EXPECT_GT(partials, 0u);
}

TEST(TcpCluster, FlushCoalescesFramesIntoFewerSyscalls) {
  // Relays and the reactive own-broadcast are queued inside one event-loop
  // wake and must leave in one vectored write per peer: across a busy run
  // the transport issues strictly fewer sendmsg calls than frames.
  TcpCluster c(5);
  const std::uint64_t kRounds = 20;
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3, 4}, kRounds, sec(30));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok);
  std::uint64_t frames = 0, syscalls = 0;
  for (NodeId i = 0; i < 5; ++i) {
    const auto ns = c.node(i).net_stats();
    frames += ns.frames_sent;
    syscalls += ns.sendmsg_calls;
  }
  EXPECT_GT(frames, 0u);
  EXPECT_LT(syscalls, frames)
      << "vectored flush never batched two frames into one syscall";
}

TEST(TcpCluster, CrashDetectedByHeartbeatTimeout) {
  TcpCluster c(5, core::FdMode::kPerfect, /*fd_timeout=*/ms(250));
  // Round 0 completes with everyone.
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  // Node 4 dies. Depending on how far its event loop got before exiting,
  // its round-1 message may or may not have escaped (fail-stop timing is
  // inherently racy on real sockets) — but within a couple of rounds the
  // survivors must evict it, and all views must agree on every round.
  c.crash(4);
  bool evicted = false;
  std::uint64_t target_rounds = 1;
  for (int attempt = 0; attempt < 5 && !evicted; ++attempt) {
    ++target_rounds;
    for (NodeId i = 0; i < 4; ++i) c.node(i).broadcast_now();
    ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3}, target_rounds, sec(30)))
        << "stalled waiting for round " << target_rounds;
    const auto rounds = c.delivered(0);
    if (rounds.back().removed == std::vector<NodeId>{4}) evicted = true;
  }
  ASSERT_TRUE(evicted) << "node 4 never evicted";
  const auto reference = c.delivered(0);
  for (NodeId i = 1; i < 4; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), reference.size()) << "node " << i;
    for (std::size_t r = 0; r < reference.size(); ++r) {
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]))
          << "node " << i << " round " << r;
      EXPECT_EQ(rounds[r].removed, reference[r].removed)
          << "node " << i << " round " << r;
    }
  }
}

TEST(TcpCluster, EngineAndWireByteCountersReconcile) {
  // The documented identity (obs/schema.hpp): with heartbeats off and no
  // chaos, every byte the wire counts is either an engine-produced frame
  // or a connection hello —
  //   net.bytes_sent == engine.bytes_sent + net.preamble_bytes
  // — exactly, once the send queues flush.
  const std::size_t kNodes = 4;
  TcpCluster c(kNodes, core::FdMode::kPerfect, ms(250),
               [](TcpNodeOptions& o) { o.enable_heartbeats = false; });
  std::vector<NodeId> all(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) all[i] = i;
  for (std::uint64_t r = 0; r < 5; ++r) {
    for (NodeId i = 0; i < kNodes; ++i) {
      c.node(i).submit(Request::of_data({static_cast<std::uint8_t>(r), 1, 2}));
      c.node(i).broadcast_now();
    }
    ASSERT_TRUE(c.wait_rounds(all, r + 1, sec(30))) << "round " << r;
  }
  // Relays for the last round may still be in flight when the local
  // delivery fires; poll until every node's counters settle on the
  // identity, then assert it held.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool reconciled = false;
  while (!reconciled && std::chrono::steady_clock::now() < deadline) {
    reconciled = true;
    for (NodeId i = 0; i < kNodes; ++i) {
      const auto ns = c.node(i).net_stats();
      const auto& es = c.node(i).stats();
      if (ns.bytes_sent != es.bytes_sent + ns.preamble_bytes) {
        reconciled = false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        break;
      }
    }
  }
  for (NodeId i = 0; i < kNodes; ++i) {
    const auto ns = c.node(i).net_stats();
    const auto& es = c.node(i).stats();
    EXPECT_EQ(ns.bytes_sent, es.bytes_sent + ns.preamble_bytes)
        << "node " << i << ": net=" << ns.bytes_sent
        << " engine=" << es.bytes_sent << " preamble=" << ns.preamble_bytes;
    EXPECT_GT(ns.preamble_bytes, 0u) << "node " << i;
  }
}

TEST(TcpCluster, AdminEndpointServesLiveMetricsAndRecorder) {
  // The introspection plane end to end: a real admin listener on each
  // node, queried over loopback HTTP by the same code path the
  // allconcur_inspect CLI runs (obs::run_inspect / obs::admin_fetch).
  const std::size_t kNodes = 4;
  std::uint16_t admin_base = 0;
  TcpCluster c(kNodes, core::FdMode::kPerfect, ms(250),
               [&admin_base](TcpNodeOptions& o) {
                 // One block above the protocol ports, same layout rule
                 // (admin_port + self), identical for every node.
                 admin_base = static_cast<std::uint16_t>(o.base_port + 5000);
                 o.admin_port = admin_base;
               });
  for (NodeId i = 0; i < kNodes; ++i) c.node(i).broadcast_now();
  std::vector<NodeId> all(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) all[i] = i;
  ASSERT_TRUE(c.wait_rounds(all, 1, sec(10)));

  // Health probe on every node.
  for (NodeId i = 0; i < kNodes; ++i) {
    const auto health = obs::admin_fetch(
        static_cast<std::uint16_t>(admin_base + i), "/healthz");
    ASSERT_TRUE(health.has_value()) << "node " << i;
    EXPECT_EQ(*health, "ok\n");
  }

  // Live metrics: the JSON exposition must carry the rounds the node
  // actually completed (>= 1 after the round above).
  const auto json = obs::admin_fetch(admin_base, "/metrics.json");
  ASSERT_TRUE(json.has_value());
  const auto key = json->find("\"engine_rounds_completed\"");
  ASSERT_NE(key, std::string::npos) << *json;
  const auto value_at = json->find("\"value\": ", key);
  ASSERT_NE(value_at, std::string::npos) << *json;
  EXPECT_GE(std::atoll(json->c_str() + value_at + 9), 1) << *json;
  EXPECT_NE(json->find("\"net_bytes_sent\""), std::string::npos);
  EXPECT_NE(json->find("\"net_preamble_bytes\""), std::string::npos);

  // Prometheus exposition through the CLI entry point (run_inspect is
  // allconcur_inspect's whole body).
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(obs::run_inspect(admin_base, "/metrics", out), 0);
  std::rewind(out);
  std::string prom;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof(buf), out)) > 0;) {
    prom.append(buf, got);
  }
  std::fclose(out);
  EXPECT_NE(prom.find("# TYPE allconcur_engine_rounds_completed counter"),
            std::string::npos)
      << prom.substr(0, 512);
  EXPECT_NE(prom.find("allconcur_net_bytes_sent"), std::string::npos);

  // The flight recorder over the wire: node 0 broadcast and delivered
  // round 0, so its timeline must show both.
  const auto recorder = obs::admin_fetch(admin_base, "/recorder");
  ASSERT_TRUE(recorder.has_value());
  EXPECT_NE(recorder->find("\"event\": \"bcast_sent\""), std::string::npos);
  EXPECT_NE(recorder->find("\"event\": \"delivered\""), std::string::npos);
  EXPECT_NE(recorder->find("\"node\": \"node0\""), std::string::npos);

  // Unknown paths 404 through admin_fetch's status check — surfaced as a
  // distinct status (and exit code 4 through run_inspect).
  obs::FetchStatus st = obs::FetchStatus::kOk;
  EXPECT_FALSE(obs::admin_fetch(admin_base, "/nope", 2000, &st).has_value());
  EXPECT_EQ(st, obs::FetchStatus::kHttpError);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(obs::run_inspect(admin_base, "/nope", sink), 4);
  std::fclose(sink);
}

TEST(TcpCluster, AdminFetchReportsConnectFailureDistinctly) {
  // Nothing listens here: the status must say connect failure, not
  // timeout, and run_inspect must exit 1 (vs 3 for a timeout).
  obs::FetchStatus st = obs::FetchStatus::kOk;
  EXPECT_FALSE(obs::admin_fetch(1, "/healthz", 200, &st).has_value());
  EXPECT_EQ(st, obs::FetchStatus::kConnectFail);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(obs::run_inspect(1, "/healthz", sink, 200), 1);
  std::fclose(sink);
}

TEST(TcpCluster, TraceRouteServesSampledSpansAcrossNodes) {
  // The causal tracer end to end over real sockets: every round sampled,
  // spans fetched over the admin `/trace` route (the same path
  // tools/allconcur_trace walks) and merged into the propagation DAG.
  const std::size_t kNodes = 4;
  std::uint16_t admin_base = 0;
  TcpCluster c(kNodes, core::FdMode::kPerfect, ms(250),
               [&admin_base](TcpNodeOptions& o) {
                 admin_base = static_cast<std::uint16_t>(o.base_port + 5000);
                 o.admin_port = admin_base;
                 o.trace_sample_period = 1;
               });
  for (NodeId i = 0; i < kNodes; ++i) c.node(i).broadcast_now();
  std::vector<NodeId> all(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) all[i] = i;
  ASSERT_TRUE(c.wait_rounds(all, 1, sec(10)));

  obs::TraceMerge merge;
  for (NodeId i = 0; i < kNodes; ++i) {
    const auto dump = obs::admin_fetch(
        static_cast<std::uint16_t>(admin_base + i), "/trace");
    ASSERT_TRUE(dump.has_value()) << "node " << i;
    EXPECT_GT(merge.add_dump(*dump), 0u) << "node " << i;
  }
  const auto broadcasts = merge.broadcasts();
  ASSERT_FALSE(broadcasts.empty());
  bool saw_round0 = false;
  for (const auto& b : broadcasts) {
    if (b.round != 0) continue;
    saw_round0 = true;
    // Over GS(4, d) every broadcast reaches the other 3 nodes.
    EXPECT_EQ(b.reached, kNodes - 1) << "origin " << b.origin;
    EXPECT_GE(b.depth, 1u);
    EXPECT_LT(b.depth, kNodes);
  }
  EXPECT_TRUE(saw_round0);
  // The per-hop relay latency histogram is live on the metrics plane too.
  const auto prom = obs::admin_fetch(admin_base, "/metrics");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->find("allconcur_relay_hop_latency_ns_count"),
            std::string::npos);
}

}  // namespace
}  // namespace allconcur::net
