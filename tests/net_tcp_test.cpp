// Integration tests over real localhost TCP sockets: the same engine that
// runs under the simulator, driven by the epoll transport.
#include <gtest/gtest.h>

#include <algorithm>

#include "tcp_cluster.hpp"

namespace allconcur::net {
namespace {

using core::Request;
using core::RoundResult;
using testing::TcpCluster;

std::vector<NodeId> origins(const RoundResult& r) {
  std::vector<NodeId> out;
  for (const auto& d : r.deliveries) out.push_back(d.origin);
  return out;
}

TEST(TcpCluster, SingleRoundDeliversEverywhere) {
  TcpCluster c(5);
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  for (NodeId i = 0; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u) << "node " << i;
    EXPECT_EQ(rounds[0].deliveries.size(), 5u);
    EXPECT_TRUE(rounds[0].removed.empty());
  }
}

TEST(TcpCluster, PayloadSurvivesTheWire) {
  TcpCluster c(5);
  const std::vector<std::uint8_t> blob{0xca, 0xfe, 0xba, 0xbe, 0x00, 0x42};
  c.node(2).submit(Request::of_data(blob));
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  for (NodeId i = 0; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u);
    const auto batch = core::unpack_batch(rounds[0].deliveries[2].payload);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_EQ((*batch)[0].data, blob);
  }
}

TEST(TcpCluster, ManyRoundsStayConsistent) {
  TcpCluster c(5);
  const std::uint64_t kRounds = 20;
  // Drive rounds from a pump thread: each node re-broadcasts as soon as
  // its previous round completes.
  std::atomic<bool> done{false};
  std::thread pump([&] {
    while (!done.load()) {
      for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool ok = c.wait_rounds({0, 1, 2, 3, 4}, kRounds, sec(30));
  done.store(true);
  pump.join();
  ASSERT_TRUE(ok);
  // All nodes delivered identical rounds.
  const auto reference = c.delivered(0);
  for (NodeId i = 1; i < 5; ++i) {
    const auto rounds = c.delivered(i);
    for (std::size_t r = 0; r < kRounds; ++r) {
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]))
          << "node " << i << " round " << r;
    }
  }
}

TEST(TcpCluster, GsOverlayAcrossSockets) {
  // 8 nodes -> GS(8,3): messages reach everyone through relays only.
  TcpCluster c(8);
  c.node(0).submit(Request::of_data({1, 2, 3}));
  for (NodeId i = 0; i < 8; ++i) c.node(i).broadcast_now();
  std::vector<NodeId> all(8);
  for (NodeId i = 0; i < 8; ++i) all[i] = i;
  ASSERT_TRUE(c.wait_rounds(all, 1, sec(10)));
  for (NodeId i = 0; i < 8; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), 1u);
    EXPECT_EQ(rounds[0].deliveries.size(), 8u);
  }
}

TEST(TcpCluster, CrashDetectedByHeartbeatTimeout) {
  TcpCluster c(5, core::FdMode::kPerfect, /*fd_timeout=*/ms(250));
  // Round 0 completes with everyone.
  for (NodeId i = 0; i < 5; ++i) c.node(i).broadcast_now();
  ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3, 4}, 1, sec(10)));
  // Node 4 dies. Depending on how far its event loop got before exiting,
  // its round-1 message may or may not have escaped (fail-stop timing is
  // inherently racy on real sockets) — but within a couple of rounds the
  // survivors must evict it, and all views must agree on every round.
  c.crash(4);
  bool evicted = false;
  std::uint64_t target_rounds = 1;
  for (int attempt = 0; attempt < 5 && !evicted; ++attempt) {
    ++target_rounds;
    for (NodeId i = 0; i < 4; ++i) c.node(i).broadcast_now();
    ASSERT_TRUE(c.wait_rounds({0, 1, 2, 3}, target_rounds, sec(30)))
        << "stalled waiting for round " << target_rounds;
    const auto rounds = c.delivered(0);
    if (rounds.back().removed == std::vector<NodeId>{4}) evicted = true;
  }
  ASSERT_TRUE(evicted) << "node 4 never evicted";
  const auto reference = c.delivered(0);
  for (NodeId i = 1; i < 4; ++i) {
    const auto rounds = c.delivered(i);
    ASSERT_GE(rounds.size(), reference.size()) << "node " << i;
    for (std::size_t r = 0; r < reference.size(); ++r) {
      EXPECT_EQ(origins(rounds[r]), origins(reference[r]))
          << "node " << i << " round " << r;
      EXPECT_EQ(rounds[r].removed, reference[r].removed)
          << "node " << i << " round " << r;
    }
  }
}

}  // namespace
}  // namespace allconcur::net
