#include "core/message.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "test_env.hpp"

namespace allconcur::core {
namespace {

TEST(Message, Factories) {
  const auto b = Message::bcast(3, 7, make_payload({1, 2, 3}));
  EXPECT_EQ(b.type, MsgType::kBroadcast);
  EXPECT_EQ(b.round, 3u);
  EXPECT_EQ(b.origin, 7u);
  EXPECT_EQ(b.payload_bytes, 3u);

  const auto f = Message::fail(5, 2, 9);
  EXPECT_EQ(f.type, MsgType::kFail);
  EXPECT_EQ(f.origin, 2u);
  EXPECT_EQ(f.detector, 9u);

  const auto s = Message::bcast_sized(1, 4, 4096);
  EXPECT_EQ(s.payload_bytes, 4096u);
  EXPECT_EQ(s.payload, nullptr);
}

TEST(Message, WireSizeIncludesHeader) {
  const auto m = Message::bcast(0, 0, make_payload({1, 2, 3, 4}));
  EXPECT_EQ(m.wire_size(), Message::kHeaderBytes + 4);
  EXPECT_EQ(Message::fail(0, 1, 2).wire_size(), Message::kHeaderBytes);
}

TEST(Message, EncodeDecodeRoundTrip) {
  const auto original = Message::bcast(42, 17, make_payload({9, 8, 7, 6, 5}));
  const auto bytes = encode(original);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kBroadcast);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->origin, 17u);
  ASSERT_TRUE(decoded->payload != nullptr);
  EXPECT_EQ(*decoded->payload, (std::vector<std::uint8_t>{9, 8, 7, 6, 5}));
}

TEST(Message, EncodeDecodeAllTypes) {
  for (const Message& m :
       {Message::fail(1, 2, 3), Message::fwd(4, 5), Message::bwd(6, 7),
        Message::heartbeat(8)}) {
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, m.type);
    EXPECT_EQ(decoded->round, m.round);
    EXPECT_EQ(decoded->origin, m.origin);
    EXPECT_EQ(decoded->detector, m.detector);
  }
}

TEST(Message, SizeOnlyPayloadMaterializesAsZeros) {
  const auto bytes = encode(Message::bcast_sized(0, 1, 16));
  EXPECT_EQ(bytes.size(), Message::kHeaderBytes + 16);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload_bytes, 16u);
}

TEST(Message, DecodeRejectsTruncated) {
  const auto bytes = encode(Message::bcast(0, 0, make_payload({1, 2, 3})));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        decode(std::span(bytes.data(), cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(Message, ChecksumRejectsEverySingleByteFlip) {
  // FNV-1a's xor-then-multiply chain is invertible, so any single-byte
  // change yields a different checksum: flipping each wire byte in turn
  // (header fields, either checksum, payload) must always be rejected.
  const auto bytes = encode(Message::bcast(9, 2, make_payload({5, 6, 7, 8})));
  ASSERT_TRUE(decode(bytes).has_value());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto tampered = bytes;
    tampered[i] ^= 0x01;  // minimal damage: one bit
    EXPECT_FALSE(decode(tampered).has_value()) << "byte " << i;
  }
}

TEST(Message, DecodeRejectsBadType) {
  auto bytes = encode(Message::heartbeat(1));
  bytes[0] = 0;
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[0] = 99;
  EXPECT_FALSE(decode(bytes).has_value());
}

// ------------------------------------------------------------------------
// Randomized round-trips (fixed seed; ALLCONCUR_TEST_SEED shifts them).
// ------------------------------------------------------------------------

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

void expect_round_trip(const Message& original) {
  const auto bytes = encode(original);
  ASSERT_EQ(bytes.size(), original.wire_size());
  ASSERT_EQ(frame_size(bytes), bytes.size());
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_EQ(decoded->round, original.round);
  EXPECT_EQ(decoded->origin, original.origin);
  if (original.type == MsgType::kFail) {
    EXPECT_EQ(decoded->detector, original.detector);
  }
  ASSERT_EQ(decoded->payload_bytes, original.payload_bytes);
  if (original.payload && !original.payload->empty()) {
    ASSERT_TRUE(decoded->payload != nullptr);
    EXPECT_EQ(*decoded->payload, *original.payload);
  } else {
    // Zero-byte payloads decode as the canonical null payload.
    EXPECT_EQ(decoded->payload, nullptr);
  }
}

TEST(MessageRandomized, EncodeDecodeRoundTrip) {
  Rng rng(testing::test_seed_offset() + 0x5e21a112e);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto round = rng.next_u64();  // full 64-bit range
    const auto origin = static_cast<NodeId>(rng.next_u64());
    const auto detector = static_cast<NodeId>(rng.next_u64());
    Message m;
    switch (rng.next_below(6)) {
      case 0:  // empty payload: the paper's "empty message"
        m = Message::bcast(round, origin, make_payload({}));
        break;
      case 1:
        m = Message::bcast(round, origin,
                           make_payload(random_bytes(rng, rng.next_below(512))));
        break;
      case 2:
        m = Message::fail(round, origin, detector);
        break;
      case 3:
        m = Message::fwd(round, origin);
        break;
      case 4:
        m = Message::bwd(round, origin);
        break;
      default:
        m = Message::heartbeat(origin);
        break;
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    expect_round_trip(m);
    if (HasFatalFailure()) return;
  }
}

TEST(MessageRandomized, MaxSizePayloadRoundTrip) {
  // The largest payload we can afford to materialize in a unit test:
  // 1 MiB of random bytes, plus the exact wire-size accounting.
  Rng rng(testing::test_seed_offset() + 0xb16);
  const std::size_t len = 1 << 20;
  const auto m = Message::bcast(7, 3, make_payload(random_bytes(rng, len)));
  EXPECT_EQ(m.wire_size(), Message::kHeaderBytes + len);
  expect_round_trip(m);
}

TEST(MessageRandomized, SizeOnlyPayloadsAcrossSizes) {
  Rng rng(testing::test_seed_offset() + 0x512e0);
  for (int iter = 0; iter < 200; ++iter) {
    const auto bytes_declared = rng.next_below(1 << 16);
    const auto m = Message::bcast_sized(rng.next_u64(), 1, bytes_declared);
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->payload_bytes, bytes_declared);
  }
}

TEST(BatchRandomized, PackUnpackRoundTripWithMembershipVariants) {
  // Batches are the BCAST payload; joins/leaves ride in them (§3), so the
  // round-trip must preserve kind, subject and data byte-for-byte.
  Rng rng(testing::test_seed_offset() + 0xba7c4);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<Request> batch;
    const std::size_t count = rng.next_below(8);
    for (std::size_t i = 0; i < count; ++i) {
      switch (rng.next_below(4)) {
        case 0:
          batch.push_back(Request::join(static_cast<NodeId>(rng.next_u64())));
          break;
        case 1:
          batch.push_back(Request::leave(static_cast<NodeId>(rng.next_u64())));
          break;
        case 2:  // empty data request
          batch.push_back(Request::of_data({}));
          break;
        default:
          batch.push_back(
              Request::of_data(random_bytes(rng, rng.next_below(256))));
          break;
      }
    }
    const Payload packed = pack_batch(batch);
    const auto unpacked = unpack_batch(packed);
    ASSERT_TRUE(unpacked.has_value()) << "iter " << iter;
    ASSERT_EQ(unpacked->size(), batch.size()) << "iter " << iter;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ((*unpacked)[i].kind, batch[i].kind);
      EXPECT_EQ((*unpacked)[i].subject, batch[i].subject);
      EXPECT_EQ((*unpacked)[i].data, batch[i].data);
    }
    // Batches also survive a full message-layer round-trip.
    if (packed) {
      const auto msg = decode(encode(Message::bcast(iter, 0, packed)));
      ASSERT_TRUE(msg.has_value());
      const auto again = unpack_batch(msg->payload);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->size(), batch.size());
    }
  }
}

TEST(Message, FrameSize) {
  const auto bytes = encode(Message::bcast(0, 0, make_payload({1, 2})));
  const auto f = frame_size(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, bytes.size());
  EXPECT_FALSE(frame_size(std::span(bytes.data(), 10)).has_value());
}

TEST(Frame, SharesPayloadWithZeroCopies) {
  // The zero-copy invariant end to end: building the frame shares the
  // message's payload, and borrow-decoding the frame shares it again —
  // one buffer, three owners, no byte ever copied.
  const Payload payload = make_payload({9, 8, 7, 6, 5});
  EXPECT_EQ(payload.use_count(), 1);
  const auto frame = Frame::make(Message::bcast(42, 17, payload));
  EXPECT_EQ(frame->wire_payload().get(), payload.get());
  EXPECT_EQ(payload.use_count(), 2);

  const auto decoded = decode(*frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kBroadcast);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->origin, 17u);
  EXPECT_EQ(decoded->payload_bytes, 5u);
  EXPECT_EQ(decoded->payload.get(), payload.get());  // borrowed, not copied
  EXPECT_EQ(payload.use_count(), 3);
}

TEST(Frame, WireImageMatchesEncode) {
  // The scatter/gather blocks a transport writes must be byte-identical
  // to the contiguous encoding, and parse back through the normal
  // receive path.
  const auto m = Message::bcast(7, 3, make_payload({1, 2, 3, 4, 5, 6}));
  const auto frame = Frame::make(m);
  EXPECT_EQ(frame->wire_size(), m.wire_size());
  const auto contiguous = frame->to_bytes();
  EXPECT_EQ(contiguous, encode(m));
  const auto f = frame_size(contiguous);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, contiguous.size());
  const auto decoded = decode(contiguous);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->payload != nullptr);
  EXPECT_EQ(*decoded->payload, *m.payload);
}

TEST(Frame, SizeOnlyMaterializesLazily) {
  const auto frame = Frame::make(Message::bcast_sized(1, 4, 64));
  EXPECT_EQ(frame->msg().payload, nullptr);  // sim path: nothing built
  EXPECT_EQ(frame->wire_size(), Message::kHeaderBytes + 64);
  // The wire path materializes the declared zeros on demand, once.
  const Payload& wire = frame->wire_payload();
  ASSERT_TRUE(wire != nullptr);
  EXPECT_EQ(wire->size(), 64u);
  EXPECT_EQ(frame->wire_payload().get(), wire.get());
  EXPECT_EQ(*std::max_element(wire->begin(), wire->end()), 0u);
}

TEST(Frame, HeaderlessMessagesHaveNullWirePayload) {
  const auto frame = Frame::make(Message::fail(3, 1, 2));
  EXPECT_EQ(frame->wire_payload(), nullptr);
  EXPECT_EQ(frame->wire_size(), Message::kHeaderBytes);
  const auto decoded = decode(*frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kFail);
  EXPECT_EQ(decoded->origin, 1u);
  EXPECT_EQ(decoded->detector, 2u);
}

}  // namespace
}  // namespace allconcur::core
