#include "core/message.hpp"

#include <gtest/gtest.h>

namespace allconcur::core {
namespace {

TEST(Message, Factories) {
  const auto b = Message::bcast(3, 7, make_payload({1, 2, 3}));
  EXPECT_EQ(b.type, MsgType::kBroadcast);
  EXPECT_EQ(b.round, 3u);
  EXPECT_EQ(b.origin, 7u);
  EXPECT_EQ(b.payload_bytes, 3u);

  const auto f = Message::fail(5, 2, 9);
  EXPECT_EQ(f.type, MsgType::kFail);
  EXPECT_EQ(f.origin, 2u);
  EXPECT_EQ(f.detector, 9u);

  const auto s = Message::bcast_sized(1, 4, 4096);
  EXPECT_EQ(s.payload_bytes, 4096u);
  EXPECT_EQ(s.payload, nullptr);
}

TEST(Message, WireSizeIncludesHeader) {
  const auto m = Message::bcast(0, 0, make_payload({1, 2, 3, 4}));
  EXPECT_EQ(m.wire_size(), Message::kHeaderBytes + 4);
  EXPECT_EQ(Message::fail(0, 1, 2).wire_size(), Message::kHeaderBytes);
}

TEST(Message, EncodeDecodeRoundTrip) {
  const auto original = Message::bcast(42, 17, make_payload({9, 8, 7, 6, 5}));
  const auto bytes = encode(original);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kBroadcast);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->origin, 17u);
  ASSERT_TRUE(decoded->payload != nullptr);
  EXPECT_EQ(*decoded->payload, (std::vector<std::uint8_t>{9, 8, 7, 6, 5}));
}

TEST(Message, EncodeDecodeAllTypes) {
  for (const Message& m :
       {Message::fail(1, 2, 3), Message::fwd(4, 5), Message::bwd(6, 7),
        Message::heartbeat(8)}) {
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, m.type);
    EXPECT_EQ(decoded->round, m.round);
    EXPECT_EQ(decoded->origin, m.origin);
    EXPECT_EQ(decoded->detector, m.detector);
  }
}

TEST(Message, SizeOnlyPayloadMaterializesAsZeros) {
  const auto bytes = encode(Message::bcast_sized(0, 1, 16));
  EXPECT_EQ(bytes.size(), Message::kHeaderBytes + 16);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload_bytes, 16u);
}

TEST(Message, DecodeRejectsTruncated) {
  const auto bytes = encode(Message::bcast(0, 0, make_payload({1, 2, 3})));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        decode(std::span(bytes.data(), cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(Message, DecodeRejectsBadType) {
  auto bytes = encode(Message::heartbeat(1));
  bytes[0] = 0;
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[0] = 99;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Message, FrameSize) {
  const auto bytes = encode(Message::bcast(0, 0, make_payload({1, 2})));
  const auto f = frame_size(bytes);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, bytes.size());
  EXPECT_FALSE(frame_size(std::span(bytes.data(), 10)).has_value());
}

}  // namespace
}  // namespace allconcur::core
