// Test harness: n TcpNodes on localhost, one thread each — the
// multi-process-on-one-server deployment shape, in-process for testing.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.hpp"
#include "net/tcp_transport.hpp"
#include "test_env.hpp"

namespace allconcur::testing {

class TcpCluster {
 public:
  /// `tweak` (optional) edits each node's options before construction —
  /// e.g. shrinking sndbuf_bytes to force write backpressure.
  explicit TcpCluster(std::size_t n, core::FdMode fd_mode = core::FdMode::kPerfect,
                      DurationNs fd_timeout = ms(250),
                      std::function<void(net::TcpNodeOptions&)> tweak = nullptr) {
    // Port block drawn from a deterministic RNG (so a given seed names a
    // given port layout) and mixed with the pid so parallel ctest
    // processes on one host don't collide.
    Rng rng(test_seed() ^ static_cast<std::uint64_t>(::getpid()));
    const std::uint16_t base =
        static_cast<std::uint16_t>(20000 + rng.next_below(30000));
    fd_timeout = scaled(fd_timeout);
    std::vector<NodeId> members(n);
    for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
    for (std::size_t i = 0; i < n; ++i) {
      net::TcpNodeOptions opt;
      opt.self = static_cast<NodeId>(i);
      opt.members = members;
      opt.base_port = base;
      opt.fd_mode = fd_mode;
      opt.fd_params.period = ms(25);
      opt.fd_params.timeout = fd_timeout;
      if (tweak) tweak(opt);
      const NodeId id = static_cast<NodeId>(i);
      nodes_.push_back(std::make_unique<net::TcpNode>(
          opt, [this, id](const core::RoundResult& r) {
            const std::lock_guard<std::mutex> lock(mutex_);
            delivered_[id].push_back(r);
          }));
    }
    for (auto& node : nodes_) {
      threads_.emplace_back([&node] { node->run(); });
    }
    for (auto& node : nodes_) node->wait_connected(scaled(sec(10)));
  }

  ~TcpCluster() {
    for (auto& node : nodes_) node->stop();
    for (auto& t : threads_) t.join();
  }

  net::TcpNode& node(NodeId id) { return *nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }

  std::vector<core::RoundResult> delivered(NodeId id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return delivered_[id];
  }

  /// Waits until every node in `ids` completed at least `rounds` rounds.
  /// The budget is scaled by ALLCONCUR_TEST_TIME_SCALE for slow runners.
  bool wait_rounds(const std::vector<NodeId>& ids, std::uint64_t rounds,
                   DurationNs timeout) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::nanoseconds(scaled(timeout));
    for (;;) {
      bool done = true;
      for (NodeId id : ids) {
        if (nodes_[id]->rounds_completed() < rounds) {
          done = false;
          break;
        }
      }
      if (done) return true;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  /// Hard-stops a node (fail-stop: its sockets close, heartbeats cease).
  void crash(NodeId id) {
    nodes_[id]->stop();
  }

 private:
  std::vector<std::unique_ptr<net::TcpNode>> nodes_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::map<NodeId, std::vector<core::RoundResult>> delivered_;
};

}  // namespace allconcur::testing
