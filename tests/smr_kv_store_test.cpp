// Unit tests for the SMR building blocks: wire formats, KvStore
// semantics, session dedup, and Replica stream application — all without
// a cluster (RoundResults are built by hand).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "smr/kv_store.hpp"
#include "smr/replica.hpp"
#include "smr/session.hpp"
#include "test_env.hpp"

namespace allconcur::smr {
namespace {

using allconcur::testing::test_seed;

Bytes b(std::string_view s) { return to_bytes(s); }

// ---------------------------------------------------------------------------
// Wire formats
// ---------------------------------------------------------------------------

TEST(SmrCommand, CommandRoundTripsIncludingBinaryKeys) {
  Command cmd = Command::cas(Bytes{0x00, 0xff, 0x00}, Bytes{0x01, 0x00},
                             Bytes{0xde, 0xad, 0x00, 0xbe});
  const auto bytes = encode_command(cmd);
  const auto back = decode_command(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, Command::Op::kCas);
  EXPECT_EQ(back->key, cmd.key);
  EXPECT_EQ(back->value, cmd.value);
  EXPECT_EQ(back->expected, cmd.expected);
  EXPECT_FALSE(back->expect_absent);

  const auto absent = decode_command(
      encode_command(Command::cas_absent(b("k"), b("v"))));
  ASSERT_TRUE(absent.has_value());
  EXPECT_TRUE(absent->expect_absent);
}

TEST(SmrCommand, EnvelopeRoundTripsAndRejectsForeignBytes) {
  const auto cmd = encode_command(Command::put(b("key"), b("value")));
  const auto env = encode_envelope(0x123456789abcdef0ull, 42, cmd);
  const auto back = decode_envelope(env);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session, 0x123456789abcdef0ull);
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(Bytes(back->command.begin(), back->command.end()), cmd);

  EXPECT_FALSE(decode_envelope(cmd).has_value());  // no magic
  EXPECT_FALSE(decode_envelope(Bytes{kEnvelopeMagic, 1, 2}).has_value());
  EXPECT_FALSE(decode_envelope(Bytes{}).has_value());
}

TEST(SmrCommand, ResponseRoundTrips) {
  KvResponse r;
  r.status = KvResponse::Status::kCasFailed;
  r.value = Bytes{0x00, 0x01, 0x02};
  r.has_value = true;
  const auto back = decode_response(encode_response(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, KvResponse::Status::kCasFailed);
  EXPECT_EQ(back->value, r.value);
  EXPECT_TRUE(back->has_value);
}

TEST(SmrCommand, DecodersNeverCrashOnRandomBytes) {
  Rng rng(test_seed() ^ 0xf022ull);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.next_below(64));
    for (auto& x : junk) x = static_cast<std::uint8_t>(rng.next_u64());
    (void)decode_command(junk);
    (void)decode_envelope(junk);
    (void)decode_response(junk);
  }
  // Truncations of a valid frame must decode to nullopt, never misparse
  // out of bounds.
  const auto env = encode_envelope(
      1, 2, encode_command(Command::put(b("key"), b("value"))));
  for (std::size_t cut = 0; cut < env.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(env.data(), cut);
    if (const auto e = decode_envelope(prefix)) {
      EXPECT_FALSE(decode_command(e->command).has_value());
    }
  }
}

// ---------------------------------------------------------------------------
// KvStore semantics
// ---------------------------------------------------------------------------

KvResponse apply(KvStore& store, const Command& cmd) {
  const auto resp = decode_response(store.apply(encode_command(cmd)));
  EXPECT_TRUE(resp.has_value());
  return resp.value_or(KvResponse{});
}

TEST(KvStore, PutGetDeleteSemantics) {
  KvStore store;
  EXPECT_TRUE(apply(store, Command::put(b("a"), b("1"))).ok());
  EXPECT_TRUE(apply(store, Command::put(b("b"), b("2"))).ok());

  const auto got = apply(store, Command::get(b("a")));
  EXPECT_TRUE(got.ok());
  EXPECT_TRUE(got.has_value);
  EXPECT_EQ(got.value, b("1"));

  EXPECT_EQ(apply(store, Command::get(b("missing"))).status,
            KvResponse::Status::kNotFound);
  EXPECT_TRUE(apply(store, Command::del(b("a"))).ok());
  EXPECT_EQ(apply(store, Command::del(b("a"))).status,
            KvResponse::Status::kNotFound);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get_local(b("b")), b("2"));
  EXPECT_FALSE(store.get_local(b("a")).has_value());
}

TEST(KvStore, CasSemantics) {
  KvStore store;
  // Create-if-absent succeeds once.
  EXPECT_TRUE(apply(store, Command::cas_absent(b("k"), b("v1"))).ok());
  const auto lost = apply(store, Command::cas_absent(b("k"), b("v2")));
  EXPECT_EQ(lost.status, KvResponse::Status::kCasFailed);
  EXPECT_EQ(lost.value, b("v1"));  // loser learns the current value

  // Value-conditioned swap.
  EXPECT_TRUE(apply(store, Command::cas(b("k"), b("v1"), b("v2"))).ok());
  EXPECT_EQ(apply(store, Command::cas(b("k"), b("v1"), b("v3"))).status,
            KvResponse::Status::kCasFailed);
  EXPECT_EQ(store.get_local(b("k")), b("v2"));

  // CAS on a missing key fails (nothing to compare).
  EXPECT_EQ(apply(store, Command::cas(b("nope"), b("x"), b("y"))).status,
            KvResponse::Status::kCasFailed);
}

TEST(KvStore, MalformedCommandYieldsDeterministicError) {
  KvStore a, c;
  const Bytes junk{0x99, 0x01, 0x02};
  const auto ra = a.apply(junk);
  const auto rc = c.apply(junk);
  EXPECT_EQ(ra, rc);
  const auto resp = decode_response(ra);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, KvResponse::Status::kBadCommand);
  EXPECT_EQ(a.state_hash(), c.state_hash());
}

TEST(KvStore, HashTracksAppliedHistory) {
  KvStore a, c;
  const std::uint64_t fresh = a.state_hash();
  apply(a, Command::put(b("x"), b("1")));
  apply(c, Command::put(b("x"), b("1")));
  EXPECT_EQ(a.state_hash(), c.state_hash());
  EXPECT_NE(a.state_hash(), fresh);

  // Same final map, different history ⇒ different hash (the guard
  // detects ordering divergence, not just state divergence).
  apply(a, Command::put(b("y"), b("2")));
  apply(a, Command::put(b("z"), b("3")));
  apply(c, Command::put(b("z"), b("3")));
  apply(c, Command::put(b("y"), b("2")));
  EXPECT_EQ(a.contents(), c.contents());
  EXPECT_NE(a.state_hash(), c.state_hash());
}

TEST(KvStore, SnapshotRestoreRoundTrips) {
  KvStore store;
  Rng rng(test_seed() ^ 0x51709ull);
  for (int i = 0; i < 64; ++i) {
    Bytes key(rng.next_below(16) + 1), value(rng.next_below(64));
    for (auto& x : key) x = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& x : value) x = static_cast<std::uint8_t>(rng.next_u64());
    apply(store, Command::put(key, value));
  }
  const auto snap = store.snapshot();

  KvStore restored;
  ASSERT_TRUE(restored.restore(snap));
  EXPECT_EQ(restored.contents(), store.contents());
  EXPECT_EQ(restored.state_hash(), store.state_hash());
  EXPECT_EQ(restored.commands_applied(), store.commands_applied());
  // Determinism: equal state ⇒ byte-identical snapshots.
  EXPECT_EQ(restored.snapshot(), snap);

  // Corruption is rejected, not absorbed.
  auto bad = snap;
  bad.pop_back();
  KvStore reject;
  EXPECT_FALSE(reject.restore(bad));
  EXPECT_FALSE(reject.restore(Bytes{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

TEST(SessionTable, DedupAndResponseCache) {
  SessionTable table;
  EXPECT_FALSE(table.is_duplicate(7, 1));
  table.record(7, 1, Bytes{0xaa});
  EXPECT_TRUE(table.is_duplicate(7, 1));
  EXPECT_FALSE(table.is_duplicate(7, 2));
  EXPECT_FALSE(table.is_duplicate(8, 1));
  EXPECT_EQ(table.response(7, 1), Bytes{0xaa});

  table.record(7, 2, Bytes{0xbb});
  EXPECT_TRUE(table.is_duplicate(7, 1));  // older seqs stay duplicates
  EXPECT_EQ(table.response(7, 2), Bytes{0xbb});
  EXPECT_FALSE(table.response(7, 1).has_value());  // only latest cached
}

TEST(SessionTable, SerializationRoundTrips) {
  SessionTable table;
  table.record(3, 5, Bytes{1, 2, 3});
  table.record(0xffffffffffffffffull, 1, Bytes{});
  std::vector<std::uint8_t> out;
  table.encode_into(out);

  SessionTable back;
  std::size_t at = 0;
  ASSERT_TRUE(back.decode_from(out, at));
  EXPECT_EQ(at, out.size());
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.is_duplicate(3, 5));
  EXPECT_EQ(back.response(3, 5), (Bytes{1, 2, 3}));

  std::size_t bad_at = 0;
  out.pop_back();
  SessionTable reject;
  EXPECT_FALSE(reject.decode_from(out, bad_at));
}

TEST(KvSession, IssueNumbersCommandsAndRetriesByteIdentically) {
  KvSession session(99);
  EXPECT_EQ(session.last_seq(), 0u);
  const auto first = session.issue(Command::put(b("k"), b("v")));
  EXPECT_EQ(session.last_seq(), 1u);
  EXPECT_EQ(session.retry(), first);
  const auto second = session.issue(Command::del(b("k")));
  EXPECT_EQ(session.last_seq(), 2u);
  EXPECT_NE(second, first);
  EXPECT_EQ(session.retry(), second);
}

// ---------------------------------------------------------------------------
// Replica: hand-built rounds
// ---------------------------------------------------------------------------

core::RoundResult round_of(
    Round r, const std::vector<std::pair<NodeId, std::vector<Bytes>>>& msgs) {
  core::RoundResult result;
  result.round = r;
  result.view_size = msgs.size();
  for (const auto& [origin, envelopes] : msgs) {
    core::Delivery d;
    d.origin = origin;
    std::vector<core::Request> requests;
    requests.reserve(envelopes.size());
    for (const auto& env : envelopes) {
      requests.push_back(core::Request::of_data(env));
    }
    d.payload = core::pack_batch(requests);
    result.deliveries.push_back(std::move(d));
  }
  return result;
}

TEST(Replica, AppliesInOrderAndSuppressesDuplicates) {
  Replica replica(std::make_unique<KvStore>());
  KvSession s1(1), s2(2);
  const auto put_a = s1.issue(Command::put(b("a"), b("from-s1")));
  const auto put_b = s2.issue(Command::put(b("b"), b("from-s2")));

  // Round 0 carries the command AND a duplicate of it in another node's
  // batch (the client broadcast through two contact nodes).
  replica.on_round(round_of(0, {{0, {put_a}}, {1, {put_a, put_b}}}));
  EXPECT_EQ(replica.next_round(), 1u);
  EXPECT_EQ(replica.commands_applied(), 2u);
  EXPECT_EQ(replica.duplicates_suppressed(), 1u);

  // A late retry rides a later round: still suppressed.
  replica.on_round(round_of(1, {{0, {}}, {1, {put_a}}}));
  EXPECT_EQ(replica.commands_applied(), 2u);
  EXPECT_EQ(replica.duplicates_suppressed(), 2u);

  const auto& kv = dynamic_cast<const KvStore&>(replica.machine());
  EXPECT_EQ(kv.get_local(b("a")), b("from-s1"));
  EXPECT_EQ(kv.get_local(b("b")), b("from-s2"));
  // The cached response replays to the retrying client.
  EXPECT_TRUE(replica.response(1, 1).has_value());
}

TEST(Replica, IgnoresForeignPayloadsInTheStream) {
  Replica replica(std::make_unique<KvStore>());
  KvSession s(1);
  core::RoundResult r = round_of(
      0, {{0, {s.issue(Command::put(b("k"), b("v")))}},
          {1, {Bytes{0x01, 0x02, 0x03}}}});  // non-envelope data request
  // And one size-only delivery (bench traffic): null payload, bytes > 0.
  core::Delivery opaque;
  opaque.origin = 2;
  opaque.bytes = 4096;
  r.deliveries.push_back(opaque);
  r.view_size = 3;
  replica.on_round(r);
  EXPECT_EQ(replica.commands_applied(), 1u);
  const auto& kv = dynamic_cast<const KvStore&>(replica.machine());
  EXPECT_EQ(kv.get_local(b("k")), b("v"));
}

TEST(Replica, SnapshotRestoreResumesMidStreamWithDedupIntact) {
  Replica source(std::make_unique<KvStore>());
  KvSession s(5);
  const auto c1 = s.issue(Command::put(b("x"), b("1")));
  const auto c2 = s.issue(Command::put(b("y"), b("2")));
  source.on_round(round_of(0, {{0, {c1}}, {1, {}}}));
  source.on_round(round_of(1, {{0, {c2}}, {1, {}}}));

  Replica restored(std::make_unique<KvStore>());
  ASSERT_TRUE(restored.restore(source.snapshot()));
  EXPECT_EQ(restored.next_round(), 2u);
  EXPECT_EQ(restored.state_hash(), source.state_hash());

  // The dedup table crossed the boundary: a retry of c2 after restore
  // does not re-apply.
  const auto c3 = s.issue(Command::del(b("x")));
  const auto round2 = round_of(2, {{0, {c2, c3}}, {1, {}}});
  restored.on_round(round2);
  source.on_round(round2);
  EXPECT_EQ(restored.duplicates_suppressed(), source.duplicates_suppressed());
  EXPECT_EQ(restored.state_hash(), source.state_hash());
  const auto& kv = dynamic_cast<const KvStore&>(restored.machine());
  EXPECT_FALSE(kv.get_local(b("x")).has_value());
  EXPECT_EQ(kv.get_local(b("y")), b("2"));

  // Garbage is rejected (including a bare KvStore snapshot: wrong magic).
  Replica reject(std::make_unique<KvStore>());
  EXPECT_FALSE(reject.restore(KvStore().snapshot()));
  EXPECT_FALSE(reject.restore(Bytes{0xde, 0xad}));
}

}  // namespace
}  // namespace allconcur::smr
