// Network partitions on the timed simulator (§3.3): links drop, heartbeat
// detectors suspect naturally, and in ⋄P mode only the majority partition
// keeps delivering; the minority stalls exactly as §3.3.2 prescribes, and
// can re-enter as fresh members after healing.
#include <gtest/gtest.h>

#include <map>

#include "api/sim_cluster.hpp"
#include "graph/digraph.hpp"

namespace allconcur::api {
namespace {

using core::RoundResult;

ClusterOptions dp_options(std::size_t n) {
  ClusterOptions opt;
  opt.n = n;
  opt.fd_mode = core::FdMode::kEventuallyPerfect;
  opt.heartbeat_fd = true;
  opt.fd_params.period = ms(10);
  opt.fd_params.timeout = ms(60);
  return opt;
}

TEST(Partition, MinorityStallsMajorityProceeds) {
  SimCluster c(dp_options(8));
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  // Split {5,6,7} away before any round starts.
  c.partition_at({5, 6, 7}, 0);
  c.broadcast_all_now();
  c.run_for(sec(2));

  // Majority {0..4} evicted the minority and kept running rounds.
  for (NodeId id : {0u, 1u, 2u, 3u, 4u}) {
    ASSERT_FALSE(results[id].empty()) << "node " << id;
    EXPECT_GE(results[id].size(), 3u) << "node " << id;
    EXPECT_EQ(results[id].back().view_size, 5u) << "node " << id;
  }
  // Minority never passed the FWD/BWD gate.
  for (NodeId id : {5u, 6u, 7u}) {
    EXPECT_TRUE(results[id].empty()) << "node " << id;
    EXPECT_EQ(c.engine(id).current_round(), 0u) << "node " << id;
  }
}

TEST(Partition, PerfectModeWouldSplitBrain) {
  // The §3.3.2 motivation, timed edition: under plain P semantics both
  // sides of the partition deliver different sets. A complete overlay is
  // used so that every server has suspecting successors on both sides —
  // on a sparse GS overlay the minority often cannot even resolve its
  // tracking digraphs (some majority servers have no minority successor
  // to report them), which stalls it by accident rather than by design.
  ClusterOptions opt = dp_options(8);
  opt.builder = [](std::size_t m) { return graph::make_complete(m); };
  opt.fd_mode = core::FdMode::kPerfect;
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
  };
  c.partition_at({5, 6, 7}, 0);
  c.broadcast_all_now();
  c.run_for(sec(2));
  ASSERT_FALSE(results[0].empty());
  ASSERT_FALSE(results[5].empty());
  EXPECT_EQ(results[0][0].deliveries.size(), 5u);
  EXPECT_EQ(results[5][0].deliveries.size(), 3u);  // split brain!
}

TEST(Partition, EvictedMinorityRejoinsAfterHeal) {
  SimCluster c(dp_options(8));
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.partition_at({6, 7}, 0, /*heal_at=*/ms(600));
  // After the heal, the operator re-admits replacements for the evicted
  // servers through an agreed join (§3.3.2: "restart ... and rejoin").
  c.schedule_join(ms(800), /*sponsor=*/0);
  c.schedule_join(ms(820), /*sponsor=*/1);
  c.broadcast_all_now();
  c.run_for(sec(3));

  for (NodeId id : {0u, 1u, 2u, 3u, 4u, 5u}) {
    ASSERT_FALSE(results[id].empty()) << "node " << id;
    EXPECT_EQ(results[id].back().view_size, 8u) << "node " << id;
  }
  EXPECT_TRUE(c.exists(8));
  EXPECT_TRUE(c.exists(9));
  ASSERT_FALSE(results[8].empty());
  EXPECT_EQ(results[8].back().view_size, 8u);
}

TEST(Partition, TransientLinkLossIsRiddenOut) {
  // A short glitch below the FD timeout: no suspicion, no eviction, just
  // latency — reliable links may delay messages, not lose them, so the
  // harness re-sends nothing; the glitch here only affects heartbeats
  // between rounds.
  SimCluster c(dp_options(6));
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
  };
  // Rounds complete quickly; the glitch happens while idle between rounds
  // and heals well inside the 60 ms timeout.
  c.broadcast_all_now();
  c.run_for(ms(5));
  c.partition_at({0, 1, 2}, ms(10), /*heal_at=*/ms(30));
  c.run_for(ms(200));
  c.broadcast_all_now();
  c.run_for(ms(200));
  for (NodeId id : c.live_nodes()) {
    ASSERT_EQ(results[id].size(), 2u) << "node " << id;
    EXPECT_EQ(results[id].back().view_size, 6u) << "node " << id;
    EXPECT_TRUE(results[id].back().removed.empty()) << "node " << id;
  }
}

}  // namespace
}  // namespace allconcur::api
