// Unit tests of the tracking digraph in isolation (rank space, explicit
// failure knowledge).
#include "core/tracking.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/digraph.hpp"

namespace allconcur::core {
namespace {

class FakeKnowledge final : public FailureKnowledge {
 public:
  bool is_failed(NodeId rank) const override { return failed.count(rank) > 0; }
  bool has_pair(NodeId j, NodeId k) const override {
    return pairs.count({j, k}) > 0;
  }
  void fail(NodeId j, NodeId k) {
    failed.insert(j);
    pairs.insert({j, k});
  }
  std::set<NodeId> failed;
  std::set<std::pair<NodeId, NodeId>> pairs;
};

TEST(Tracking, InitialState) {
  TrackingDigraph g;
  g.reset(3);
  EXPECT_FALSE(g.empty());
  EXPECT_EQ(g.vertex_count(), 1u);
  EXPECT_TRUE(g.contains(3));
  EXPECT_EQ(g.root(), 3u);

  TrackingDigraph e;
  e.reset_empty();
  EXPECT_TRUE(e.empty());
}

TEST(Tracking, ClearOnReceive) {
  TrackingDigraph g;
  g.reset(0);
  g.clear();
  EXPECT_TRUE(g.empty());
}

TEST(Tracking, FirstFailureExpandsSuccessorsExceptDetector) {
  const auto overlay = graph::make_complete(5);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.fail(0, 1);
  EXPECT_FALSE(g.on_failure(0, 1, overlay, fk));
  EXPECT_EQ(g.vertex_count(), 4u);  // 0 plus successors {2,3,4}
  EXPECT_FALSE(g.contains(1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Tracking, SubsequentFailureRemovesEdgeAndPrunes) {
  const auto overlay = graph::make_complete(4);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.fail(0, 1);
  g.on_failure(0, 1, overlay, fk);  // adds 2, 3
  fk.pairs.insert({0, 2});
  g.on_failure(0, 2, overlay, fk);
  EXPECT_FALSE(g.contains(2));  // unreachable after edge removal
  EXPECT_TRUE(g.contains(3));
  // Last detector: only the failed root remains -> fully pruned.
  fk.pairs.insert({0, 3});
  EXPECT_TRUE(g.on_failure(0, 3, overlay, fk));
  EXPECT_TRUE(g.empty());
}

TEST(Tracking, ChainsThroughKnownFailedServers) {
  // Ring overlay 0->1->2->3->0. Failure of 0 with detector... ring degree
  // is 1: successor of 0 is 1. If 1 is already known failed, the expansion
  // chains to 1's successor 2.
  const auto overlay = graph::make_ring(4);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.fail(1, 2);  // 1 already failed (detector 2 reported earlier)
  fk.fail(0, 3);  // now 0's failure arrives, detected by non-successor 3
  // 0 -> 1 added; 1 known failed -> chain would add 1 -> 2, but (1,2) ∈ F
  // excludes it. That leaves V = {0, 1}, all failed -> fully pruned. Had
  // 2 been (wrongly) added, the live vertex would keep the digraph alive.
  EXPECT_TRUE(g.on_failure(0, 3, overlay, fk));
  EXPECT_TRUE(g.empty());
}

TEST(Tracking, ChainAddsSuccessorsOfFailedServer) {
  const auto overlay = graph::make_ring(4);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.failed.insert(1);
  fk.pairs.insert({1, 3});  // some unrelated pair; (1,2) unknown
  fk.fail(0, 3);
  g.on_failure(0, 3, overlay, fk);
  EXPECT_TRUE(g.contains(1));
  EXPECT_TRUE(g.contains(2));
  EXPECT_TRUE(g.has_edge(1, 2));
  // 2 is alive: the digraph is not pruned away.
  EXPECT_FALSE(g.empty());
}

TEST(Tracking, AllFailedPrunesEverything) {
  const auto overlay = graph::make_complete(3);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.fail(0, 1);
  fk.fail(1, 2);
  fk.fail(2, 0);
  // Every vertex the expansion can reach is failed.
  EXPECT_TRUE(g.on_failure(0, 1, overlay, fk));
  EXPECT_TRUE(g.empty());
}

TEST(Tracking, UntouchedWhenRootNotInvolved) {
  const auto overlay = graph::make_complete(5);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.fail(2, 3);
  EXPECT_FALSE(g.on_failure(2, 3, overlay, fk));
  EXPECT_EQ(g.vertex_count(), 1u);
}

TEST(Tracking, SentinelDetectorSkipsNothing) {
  // A carried notification whose detector left the membership: expansion
  // excludes nobody.
  const auto overlay = graph::make_complete(4);
  TrackingDigraph g;
  g.reset(0);
  FakeKnowledge fk;
  fk.failed.insert(0);
  g.on_failure(0, kInvalidNode, overlay, fk);
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_TRUE(g.contains(1));
  EXPECT_TRUE(g.contains(2));
  EXPECT_TRUE(g.contains(3));
}

TEST(Tracking, VerticesStaySorted) {
  const auto overlay = graph::make_complete(6);
  TrackingDigraph g;
  g.reset(5);
  FakeKnowledge fk;
  fk.fail(5, 0);
  g.on_failure(5, 0, overlay, fk);
  const auto& v = g.vertices();
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    EXPECT_LT(v[i], v[i + 1]);
  }
}

}  // namespace
}  // namespace allconcur::core
