#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

TEST(Connectivity, CompleteGraph) {
  EXPECT_EQ(vertex_connectivity(make_complete(5)), 4u);
}

TEST(Connectivity, DirectedRingIsOne) {
  EXPECT_EQ(vertex_connectivity(make_ring(6)), 1u);
}

TEST(Connectivity, BidirectionalRingIsTwo) {
  EXPECT_EQ(vertex_connectivity(make_bidirectional_ring(7)), 2u);
}

TEST(Connectivity, HypercubeEqualsDimension) {
  EXPECT_EQ(vertex_connectivity(make_hypercube(8)), 3u);
  EXPECT_EQ(vertex_connectivity(make_hypercube(16)), 4u);
}

TEST(Connectivity, DisconnectedIsZero) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  EXPECT_EQ(vertex_connectivity(g), 0u);
}

TEST(Connectivity, CutVertexDetected) {
  // Two triangles sharing vertex 2: removing 2 disconnects.
  Digraph g(5);
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}) {
    g.add_edge(u, v);
    g.add_edge(v, u);
  }
  EXPECT_EQ(vertex_connectivity(g), 1u);
}

TEST(Connectivity, LocalConnectivityWithDirectEdge) {
  // Direct edge plus one indirect path: 2 internally disjoint paths.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 1), 3u);
}

TEST(Connectivity, LocalConnectivityBottleneck) {
  // All paths 0->3 run through vertex 1.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 3), 1u);
}

TEST(Connectivity, LocalAsymmetry) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(local_vertex_connectivity(g, 0, 2), 1u);
  EXPECT_EQ(local_vertex_connectivity(g, 2, 0), 0u);
}

TEST(Connectivity, OptimallyConnectedCheck) {
  EXPECT_TRUE(is_optimally_connected(make_hypercube(8)));
  // Two triangles sharing a hub: d(G)=4 but k(G)=1.
  Digraph g(5);
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}) {
    g.add_edge(u, v);
    g.add_edge(v, u);
  }
  EXPECT_FALSE(is_optimally_connected(g));
}

TEST(Connectivity, MinDegreeUpperBoundRespected) {
  // A graph where one low-degree vertex caps connectivity.
  Digraph g = make_complete(5);
  // Remove most edges around vertex 4 so its in/out degree is 1.
  for (NodeId v : {0u, 1u, 2u}) {
    g.remove_edge(4, v);
    g.remove_edge(v, 4);
  }
  EXPECT_EQ(vertex_connectivity(g), 1u);
}

}  // namespace
}  // namespace allconcur::graph
