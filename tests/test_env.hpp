// Shared deterministic-test-environment knobs.
//
// Every randomized suite draws its base seed from here and every
// wall-clock budget is scaled through here, so that
//   * a default run is bit-for-bit reproducible on any machine, and
//   * CI can soak (ALLCONCUR_TEST_SEED=...) or loosen timing budgets on
//     slow runners (ALLCONCUR_TEST_TIME_SCALE=4) without code changes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/types.hpp"

namespace allconcur::testing {

/// Base seed for randomized suites. Fixed by default; override with
/// ALLCONCUR_TEST_SEED to explore other schedules (e.g. nightly soaks).
/// The chosen value is printed once so any failure names its seed.
inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0x5eedull;
    if (const char* env = std::getenv("ALLCONCUR_TEST_SEED")) {
      s = std::strtoull(env, nullptr, 0);
      std::fprintf(stderr, "[test_env] ALLCONCUR_TEST_SEED=%llu\n",
                   static_cast<unsigned long long>(s));
    }
    return s;
  }();
  return seed;
}

/// Offset added to the per-case seeds of parameterized sweeps: 0 by
/// default (the published, deterministic sweep), shifted wholesale by
/// ALLCONCUR_TEST_SEED so a soak run explores fresh schedules while each
/// individual case remains reproducible from the printed value.
inline std::uint64_t test_seed_offset() {
  return std::getenv("ALLCONCUR_TEST_SEED") ? test_seed() : 0;
}

/// Multiplier for wall-clock budgets (waits, timeouts, simulated horizons
/// that bound real work). 1 by default; raise via ALLCONCUR_TEST_TIME_SCALE
/// on machines where the default budgets flake.
inline double test_time_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("ALLCONCUR_TEST_TIME_SCALE")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0) {
        std::fprintf(stderr, "[test_env] ALLCONCUR_TEST_TIME_SCALE=%g\n", v);
        return v;
      }
    }
    return 1.0;
  }();
  return scale;
}

/// Scales a duration budget by ALLCONCUR_TEST_TIME_SCALE.
inline DurationNs scaled(DurationNs budget) {
  return static_cast<DurationNs>(static_cast<double>(budget) *
                                 test_time_scale());
}

}  // namespace allconcur::testing
