// obs_metrics_test: the unified metrics plane — log-bucketed histogram
// accuracy against common::Summary ground truth (including bucket
// boundaries and overflow), bucket geometry invariants, and the
// registry's stable-reference / exposition contracts.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace allconcur::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, IndexRoundtripsThroughBounds) {
  // Every probed value must satisfy lo(i) <= v < hi(i) for its own bucket.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v <= 4096; ++v) probes.push_back(v);
  for (unsigned p = 6; p < 63; ++p) {
    const std::uint64_t two = 1ull << p;
    probes.push_back(two - 1);
    probes.push_back(two);
    probes.push_back(two + 1);
    probes.push_back(two + two / 2);  // mid-octave
  }
  probes.push_back(std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : probes) {
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBucketCount) << "v=" << v;
    EXPECT_LE(Histogram::bucket_lo(i), v) << "v=" << v;
    // hi is exclusive except for the very top bucket, whose bound
    // saturates at uint64 max instead of wrapping past 2^64.
    const std::uint64_t hi = Histogram::bucket_hi(i);
    if (hi == std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_GE(hi, v) << "v=" << v;
    } else {
      EXPECT_GT(hi, v) << "v=" << v;
    }
  }
}

TEST(HistogramBuckets, BoundsTileTheAxisWithoutGaps) {
  // hi(i) == lo(i+1): buckets partition [0, 2^64) with no gap or overlap.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_hi(i), Histogram::bucket_lo(i + 1))
        << "bucket " << i;
  }
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(HistogramBuckets, ExactBelowSubBucketsThenLinearOctaves) {
  // Values below 2^kSubBits get one bucket each (width 1)...
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<std::size_t>(v));
    EXPECT_EQ(Histogram::bucket_hi(i) - Histogram::bucket_lo(i), 1u);
  }
  // ...the first octave [32, 64) is still width 1 (32 sub-buckets over 32
  // values), so 31/32/33 each live alone, ...
  EXPECT_NE(Histogram::bucket_index(31), Histogram::bucket_index(32));
  EXPECT_NE(Histogram::bucket_index(32), Histogram::bucket_index(33));
  EXPECT_EQ(Histogram::bucket_hi(Histogram::bucket_index(32)) -
                Histogram::bucket_lo(Histogram::bucket_index(32)),
            1u);
  // ...and each later octave doubles the sub-bucket width: relative error
  // stays <= 1/kSubBuckets everywhere.
  for (unsigned p = 6; p < 62; ++p) {
    const std::uint64_t v = 1ull << p;
    const std::size_t i = Histogram::bucket_index(v);
    const std::uint64_t width =
        Histogram::bucket_hi(i) - Histogram::bucket_lo(i);
    EXPECT_EQ(width, v / Histogram::kSubBuckets) << "v=2^" << p;
  }
}

// ---------------------------------------------------------------------------
// Quantiles vs common::Summary ground truth
// ---------------------------------------------------------------------------

TEST(HistogramQuantiles, ExactRegionMatchesSummaryOnIntegerRanks) {
  // 33 samples 0..32 — q*(count-1) lands on integer ranks for these q, so
  // the exact-bucket region reproduces Summary to the digit.
  Histogram h;
  Summary s;
  for (std::uint64_t v = 0; v <= 32; ++v) {
    h.record(v);
    s.add(static_cast<double>(v));
  }
  const auto snap = h.snapshot();
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), s.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.mean(), s.mean());
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 32u);
}

TEST(HistogramQuantiles, BoundaryValuesLandInDistinctBuckets) {
  // The exact/log seam: 31 (last exact), 32 (first octave), 33, and the
  // powers of two around the first widening octave.
  Histogram h;
  Summary s;
  for (std::uint64_t v : {31ull, 32ull, 33ull, 63ull, 64ull, 65ull, 127ull,
                          128ull, 129ull}) {
    h.record(v);
    s.add(static_cast<double>(v));
  }
  const auto snap = h.snapshot();
  // 9 samples; every bucket holds exactly one, so each integer-rank
  // quantile is reproduced within its bucket's width.
  for (double q : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    const double truth = s.quantile(q);
    const std::size_t i =
        Histogram::bucket_index(static_cast<std::uint64_t>(truth));
    const double width = static_cast<double>(Histogram::bucket_hi(i) -
                                             Histogram::bucket_lo(i));
    EXPECT_NEAR(snap.quantile(q), truth, width) << "q=" << q;
  }
}

TEST(HistogramQuantiles, LogUniformSamplesWithinRelativeErrorBound) {
  // 20k log-uniform samples over ~6 decades: p50/p90/p99 must sit within
  // the documented 1/kSubBuckets relative error (plus one rank of
  // cross-bucket interpolation slack) of the sorted-sample truth.
  Rng rng(1234);
  Histogram h;
  Summary s;
  for (int i = 0; i < 20000; ++i) {
    const double e = rng.next_double() * 6.0;  // 10^0 .. 10^6
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, e));
    h.record(v);
    s.add(static_cast<double>(v));
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 20000u);
  EXPECT_EQ(snap.overflow, 0u);
  for (double q : {0.5, 0.9, 0.99}) {
    const double truth = s.quantile(q);
    const double rel = 2.0 / static_cast<double>(Histogram::kSubBuckets);
    EXPECT_NEAR(snap.quantile(q), truth, truth * rel + 1.0) << "q=" << q;
  }
  EXPECT_NEAR(snap.mean(), s.mean(), s.mean() * 0.001 + 1.0);
}

TEST(HistogramQuantiles, OverflowClampsToMaxTrackable) {
  Histogram h(/*max_trackable=*/1000);
  Summary s;
  for (std::uint64_t v : {10ull, 100ull, 500ull, 5000ull, 70000ull}) {
    h.record(v);
    // Ground truth sees the clamped samples too: that is the documented
    // semantic (overflow counts them, the top bucket holds them).
    s.add(static_cast<double>(std::min<std::uint64_t>(v, 1000)));
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.overflow_count(), 2u);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.overflow, 2u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.min, 10u);
  // The clamped mass keeps every quantile at or below max_trackable's
  // bucket upper bound.
  const std::size_t top = Histogram::bucket_index(1000);
  EXPECT_LE(snap.quantile(1.0),
            static_cast<double>(Histogram::bucket_hi(top)));
  EXPECT_NEAR(snap.quantile(1.0), s.quantile(1.0),
              static_cast<double>(Histogram::bucket_hi(top) -
                                  Histogram::bucket_lo(top)));
  // sum accumulates the clamped values, so mean stays <= max_trackable.
  EXPECT_LE(snap.mean(), 1000.0);
}

TEST(HistogramQuantiles, EmptyAndSingleSample) {
  Histogram h;
  const auto empty = h.snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.min, 0u);

  h.record(7);
  const auto one = h.snapshot();
  EXPECT_EQ(one.count, 1u);
  for (double q : {0.0, 0.3, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(one.quantile(q), 7.0) << "q=" << q;
  }
  EXPECT_EQ(one.min, 7u);
  EXPECT_EQ(one.max, 7u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, ReturnsStableReferencesAcrossGrowth) {
  Registry r;
  Counter& c = r.counter("frames", "frames seen", Unit::kFrames);
  Gauge& g = r.gauge("depth", "queue depth");
  Histogram& h = r.histogram("lat", "latency", Unit::kNanoseconds);
  c.add(3);
  // Registering many more metrics must not invalidate earlier references
  // (hot paths capture them once).
  for (int i = 0; i < 100; ++i) {
    r.counter("c" + std::to_string(i), "filler");
    r.histogram("h" + std::to_string(i), "filler");
  }
  c.add(4);
  g.set(-5);
  h.record(42);
  EXPECT_EQ(r.find_counter("frames"), &c);
  EXPECT_EQ(r.find_gauge("depth"), &g);
  EXPECT_EQ(r.find_histogram("lat"), &h);
  EXPECT_EQ(r.find_counter("frames")->value(), 7u);
  EXPECT_EQ(r.find_gauge("depth")->value(), -5);
  EXPECT_EQ(r.find_histogram("lat")->count(), 1u);
}

TEST(Registry, ReRegistrationReturnsTheSameObject) {
  Registry r;
  Counter& a = r.counter("x", "first help", Unit::kBytes);
  a.add(9);
  Counter& b = r.counter("x", "different help ignored", Unit::kNone);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 9u);
}

TEST(Registry, FindIsKindAware) {
  Registry r;
  r.counter("only_counter", "help");
  EXPECT_NE(r.find_counter("only_counter"), nullptr);
  EXPECT_EQ(r.find_gauge("only_counter"), nullptr);
  EXPECT_EQ(r.find_histogram("only_counter"), nullptr);
  EXPECT_EQ(r.find_counter("absent"), nullptr);
}

TEST(Registry, JsonExpositionCarriesValuesAndSchema) {
  Registry r;
  r.counter("bytes_sent", "wire bytes", Unit::kBytes).set(1234);
  r.gauge("window", "open rounds", Unit::kRounds).set(4);
  Histogram& h = r.histogram("rtt", "round trip", Unit::kNanoseconds);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"bytes_sent\": {\"type\": \"counter\", "
                      "\"unit\": \"bytes\", \"value\": 1234}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"window\": {\"type\": \"gauge\", "
                      "\"unit\": \"rounds\", \"value\": 4}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rtt\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 5050"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Keys come out name-sorted (index_ iteration), so output is stable.
  EXPECT_LT(json.find("bytes_sent"), json.find("rtt"));
  EXPECT_LT(json.find("rtt"), json.find("window"));
  // Indented mode wraps lines.
  const std::string pretty = r.to_json(2);
  EXPECT_EQ(pretty.substr(0, 2), "{\n");
}

TEST(Registry, PrometheusExpositionPrefixesAndTypes) {
  Registry r;
  r.counter("relays", "relayed frames", Unit::kFrames).set(42);
  Histogram& h = r.histogram("lat", "latency", Unit::kNanoseconds);
  h.record(10);
  h.record(20);

  const std::string prom = r.to_prometheus();
  EXPECT_NE(prom.find("# TYPE allconcur_relays counter"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_relays 42\n"), std::string::npos);
  EXPECT_NE(prom.find("# HELP allconcur_relays relayed frames [frames]"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE allconcur_lat summary"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_lat{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_lat_sum 30\n"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_lat_count 2\n"), std::string::npos);
}

TEST(Registry, PrometheusHelpEscapesBackslashAndNewline) {
  Registry r;
  r.counter("weird", "first line\nsecond \\ line").set(1);
  const std::string prom = r.to_prometheus();
  // The HELP text must stay on one physical line: the newline becomes the
  // two characters \n, the backslash doubles.
  EXPECT_NE(prom.find("# HELP allconcur_weird first line\\nsecond \\\\ line"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("first line\nsecond"), std::string::npos);
  // Every line is either a comment or a sample — a raw newline in HELP
  // would orphan "second \ line" as a garbage sample line.
  std::size_t at = 0;
  while (at < prom.size()) {
    std::size_t eol = prom.find('\n', at);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(at, eol - at);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.rfind("allconcur_", 0) == 0)
        << "orphan line: " << line;
    at = eol + 1;
  }
}

TEST(Registry, PrometheusUnitSuffixesPerKind) {
  Registry r;
  r.counter("a", "bytes counter", Unit::kBytes).set(1);
  r.gauge("b", "rounds gauge", Unit::kRounds).set(2);
  r.histogram("c", "ns histogram", Unit::kNanoseconds).record(3);
  r.counter("d", "unitless counter", Unit::kNone).set(4);
  const std::string prom = r.to_prometheus();
  EXPECT_NE(prom.find("# HELP allconcur_a bytes counter [bytes]"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP allconcur_b rounds gauge [rounds]"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP allconcur_c ns histogram [ns]"),
            std::string::npos);
  // Unit::kNone renders no bracket suffix at all.
  EXPECT_NE(prom.find("# HELP allconcur_d unitless counter\n"),
            std::string::npos);
}

TEST(Registry, PrometheusEmptyHistogramExposesZeros) {
  Registry r;
  (void)r.histogram("idle", "never recorded", Unit::kNanoseconds);
  const std::string prom = r.to_prometheus();
  EXPECT_NE(prom.find("# TYPE allconcur_idle summary"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_idle{quantile=\"0.5\"} 0\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("allconcur_idle{quantile=\"0.99\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("allconcur_idle_sum 0\n"), std::string::npos);
  EXPECT_NE(prom.find("allconcur_idle_count 0\n"), std::string::npos);
}

}  // namespace
}  // namespace allconcur::obs
