#include "common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace allconcur {
namespace {

TEST(Math, LogChooseSmallValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(52, 5)), 2598960.0, 1e-3);
}

TEST(Math, BinomialPmfSumsToOne) {
  double total = 0.0;
  for (std::uint64_t k = 0; k <= 20; ++k) {
    total += binomial_pmf(20, k, 0.3);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Math, BinomialPmfDegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(Math, TailMatchesDirectSum) {
  const double p = 0.2;
  double direct = 0.0;
  for (std::uint64_t i = 3; i <= 12; ++i) direct += binomial_pmf(12, i, p);
  EXPECT_NEAR(binomial_tail_geq(12, 3, p), direct, 1e-12);
}

TEST(Math, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 11, 0.5), 0.0);
}

TEST(Math, CdfComplement) {
  EXPECT_NEAR(binomial_cdf_lt(30, 4, 0.1) + binomial_tail_geq(30, 4, 0.1),
              1.0, 1e-12);
}

TEST(Math, FailureProbabilityMatchesPaperRegime) {
  // Δ = 24h, MTTF = 2 years: p_f = 1 - e^{-24/17532} ≈ 0.00137.
  const double p = failure_probability(24.0, 2.0 * 365.25 * 24.0);
  EXPECT_NEAR(p, 0.0013680, 1e-6);
}

TEST(Math, FailureProbabilityZeroInterval) {
  EXPECT_DOUBLE_EQ(failure_probability(0.0, 100.0), 0.0);
}

TEST(Math, NinesValues) {
  EXPECT_NEAR(nines(0.999999), 6.0, 1e-9);
  EXPECT_NEAR(nines(0.9), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(nines(1.0), 20.0);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1025), 10u);
}

}  // namespace
}  // namespace allconcur
