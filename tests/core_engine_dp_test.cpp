// ⋄P mode (§3.3.2): FWD/BWD surviving-partition gate, tolerance of false
// suspicions, and the split-brain contrast with plain P under partitions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.hpp"
#include "graph/digraph.hpp"
#include "loopback_cluster.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder complete_builder() {
  return [](std::size_t n) { return graph::make_complete(n); };
}

EngineOptions dp_mode() {
  EngineOptions o;
  o.fd_mode = FdMode::kEventuallyPerfect;
  return o;
}

std::vector<NodeId> origins(const RoundResult& r) {
  std::vector<NodeId> out;
  for (const auto& d : r.deliveries) out.push_back(d.origin);
  return out;
}

TEST(DpMode, FailureFreeRoundDeliversEverywhere) {
  LoopbackCluster c(5, complete_builder(), dp_mode());
  for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    EXPECT_EQ(c.delivered(i)[0].deliveries.size(), 5u);
  }
}

TEST(DpMode, FwdBwdTrafficFlows) {
  LoopbackCluster c(5, complete_builder(), dp_mode());
  for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_GT(c.engine(i).stats().fwd_bwd_received, 0u);
  }
}

TEST(DpMode, MultipleRoundsIterate) {
  LoopbackCluster c(5, complete_builder(), dp_mode());
  for (int r = 0; r < 3; ++r) {
    for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
    c.pump();
  }
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(c.delivered(i).size(), 3u);
  }
}

TEST(DpMode, FalseSuspicionDoesNotLoseTheMessage) {
  // p0 falsely suspects p4 before any traffic: it drops p4's direct
  // message but accepts relayed copies; the round delivers all 5 sets
  // identically and nobody is removed... except p4 may be tagged only if
  // its message had been lost, which it is not here.
  LoopbackCluster c(5, complete_builder(), dp_mode());
  c.engine(0).on_suspect(4);
  for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto& r = c.delivered(i)[0];
    const auto o = origins(r);
    EXPECT_EQ(o, origins(c.delivered(0)[0]));
    EXPECT_EQ(std::count(o.begin(), o.end(), 4), 1);
    EXPECT_TRUE(r.removed.empty());
  }
  EXPECT_GE(c.engine(0).stats().dropped_suspected, 1u);
}

TEST(DpMode, RealCrashStillResolved) {
  LoopbackCluster c(5, complete_builder(), dp_mode());
  c.crash(3, 0);
  for (NodeId i = 0; i < 5; ++i) {
    if (!c.is_crashed(i)) c.engine(i).broadcast_now();
  }
  c.pump();
  c.suspect_everywhere(3);
  c.pump();
  for (NodeId i = 0; i < 5; ++i) {
    if (c.is_crashed(i)) continue;
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    EXPECT_EQ(c.delivered(i)[0].removed, (std::vector<NodeId>{3}));
  }
}

// ---------------------------------------------------------------------
// Partition: {0,1} vs {2,3,4} with all cross-group traffic dropped and
// mutual suspicion. Only the majority side may deliver.
// ---------------------------------------------------------------------
void partition(LoopbackCluster& c, const std::vector<bool>& side) {
  c.drop_filter = [side](NodeId src, NodeId dst, const Message&) {
    return side[src] != side[dst];
  };
  for (NodeId i = 0; i < side.size(); ++i) {
    for (NodeId j = 0; j < side.size(); ++j) {
      if (i != j && side[i] != side[j]) c.engine(i).on_suspect(j);
    }
  }
}

TEST(DpMode, MinorityPartitionBlocksDelivery) {
  LoopbackCluster c(5, complete_builder(), dp_mode());
  partition(c, {true, true, false, false, false});
  for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
  c.pump();
  // Majority {2,3,4} delivers a consistent set without m0, m1.
  for (NodeId i : {2u, 3u, 4u}) {
    ASSERT_TRUE(c.has_delivered(i)) << "server " << i;
    const auto o = origins(c.delivered(i)[0]);
    EXPECT_EQ(o, (std::vector<NodeId>{2, 3, 4}));
    EXPECT_EQ(c.delivered(i)[0].removed, (std::vector<NodeId>{0, 1}));
  }
  // Minority {0,1} decided its set but cannot pass the majority gate.
  for (NodeId i : {0u, 1u}) {
    EXPECT_FALSE(c.has_delivered(i)) << "server " << i;
    EXPECT_EQ(c.engine(i).active_tracking(), 0u);  // set decided...
  }
}

TEST(DpMode, PerfectModeSplitsBrainUnderPartition) {
  // The contrast the paper warns about (§3.3.2): with plain P semantics a
  // partition with false suspicions makes both sides deliver different
  // sets. This test documents why the ⋄P gate exists.
  LoopbackCluster c(5, complete_builder());  // default: FdMode::kPerfect
  partition(c, {true, true, false, false, false});
  for (NodeId i = 0; i < 5; ++i) c.engine(i).broadcast_now();
  c.pump();
  ASSERT_TRUE(c.has_delivered(0));
  ASSERT_TRUE(c.has_delivered(2));
  EXPECT_EQ(origins(c.delivered(0)[0]), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(origins(c.delivered(2)[0]), (std::vector<NodeId>{2, 3, 4}));
}

TEST(DpMode, EvenSplitBlocksBothSides) {
  LoopbackCluster c(4, complete_builder(), dp_mode());
  partition(c, {true, true, false, false});
  for (NodeId i = 0; i < 4; ++i) c.engine(i).broadcast_now();
  c.pump();
  // n=4 needs ⌊4/2⌋ = 2 *other* FWD/BWD origins: a 2-side has only one
  // other server, so neither side can deliver.
  for (NodeId i = 0; i < 4; ++i) {
    EXPECT_FALSE(c.has_delivered(i)) << "server " << i;
  }
}

}  // namespace
}  // namespace allconcur::core
