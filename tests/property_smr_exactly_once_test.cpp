// Property suite: exactly-once command application under randomized
// duplication, retries, crash-failures and a snapshot/restore boundary.
//
// Clients submit every command 1–3 times, at random nodes (including
// crashed ones), in random later rounds — at-least-once submission. The
// property: every replica applies each distinct (session, seq) command
// exactly once, in the same order, and a replica restored from a
// mid-stream snapshot still suppresses duplicates that arrive after the
// boundary. Verified three ways: per-replica apply/duplicate counters
// reconciled against the agreed history, state hashes across replicas,
// and an independent model replay of the logged stream.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/batch.hpp"
#include "smr/kv_cluster.hpp"
#include "test_env.hpp"

namespace allconcur::smr {
namespace {

using allconcur::testing::scaled;

struct ExactlyOnceCase {
  std::uint64_t seed;
  std::size_t n;
  bool crash;  // one node fail-stops mid-run (partial final broadcast)
};

std::string case_name(const ::testing::TestParamInfo<ExactlyOnceCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
         (p.crash ? "_crash" : "_clean");
}

class ExactlyOnceProperty : public ::testing::TestWithParam<ExactlyOnceCase> {
};

TEST_P(ExactlyOnceProperty, EveryCommandAppliesOnceEverywhere) {
  const ExactlyOnceCase& p = GetParam();
  const std::uint64_t seed = testing::test_seed_offset() + p.seed;
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);

  SimKvOptions opt;
  opt.cluster.n = p.n;
  opt.cluster.detection_delay = ms(1);
  opt.snapshot_every = 0;  // keep the full log for the model replay
  SimKvCluster c(opt);

  // One session per initial node's client.
  std::vector<KvSession> sessions;
  for (std::size_t i = 0; i < p.n; ++i) sessions.push_back(c.make_session());

  const NodeId victim =
      p.crash ? static_cast<NodeId>(1 + rng.next_below(p.n - 1)) : kInvalidNode;
  const std::size_t kPhases = 6;
  const std::size_t crash_phase = 1 + rng.next_below(kPhases - 2);

  // Envelopes still owed a duplicate submission in a later phase.
  std::vector<std::vector<std::uint8_t>> pending_duplicates;
  std::vector<std::uint8_t> snapshot_bytes;
  Round snapshot_round = 0;

  Round round = 0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    if (p.crash && phase == crash_phase) {
      // Die with a random fraction of the current broadcast escaping.
      c.cluster().crash_after_sends(victim, c.sim().now(),
                                    rng.next_below(6));
    }
    // Fresh commands: random op over a small colliding key space. A
    // session keeps one contact node per phase (the session contract:
    // in-flight commands of one session go through one node, otherwise
    // delivery reorders them and high-water dedup drops the earlier).
    std::map<std::uint64_t, NodeId> contact;
    const std::size_t fresh = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < fresh; ++i) {
      const std::size_t si = rng.next_below(sessions.size());
      auto& session = sessions[si];
      const Bytes key = to_bytes("k" + std::to_string(rng.next_below(8)));
      const Bytes value =
          to_bytes("v" + std::to_string(rng.next_u64() & 0xffff));
      Command cmd = Command::put(key, value);
      switch (rng.next_below(4)) {
        case 0: cmd = Command::del(key); break;
        case 1: cmd = Command::cas_absent(key, value); break;
        case 2: cmd = Command::get(key); break;
        default: break;
      }
      const auto envelope = session.issue(cmd);
      // At-least-once: one submission at the session's contact node
      // (which may crash mid-phase, losing the command entirely), plus
      // 0–2 duplicate submissions now or in later phases, anywhere.
      const auto live = c.cluster().live_nodes();
      if (contact.find(session.id()) == contact.end()) {
        contact[session.id()] = live[rng.next_below(live.size())];
      }
      c.cluster().submit(contact[session.id()],
                         core::Request::of_data(envelope));
      const std::size_t copies = rng.next_below(3);
      for (std::size_t d = 0; d < copies; ++d) {
        if (rng.next_below(2) == 0) {
          c.cluster().submit(static_cast<NodeId>(rng.next_below(p.n)),
                             core::Request::of_data(envelope));
        } else {
          pending_duplicates.push_back(envelope);
        }
      }
    }
    // Flush some deferred duplicates into this phase's round.
    const std::size_t flush =
        pending_duplicates.empty() ? 0
                                   : rng.next_below(pending_duplicates.size());
    for (std::size_t i = 0; i < flush; ++i) {
      const auto live = c.cluster().live_nodes();
      c.cluster().submit(live[rng.next_below(live.size())],
                         core::Request::of_data(pending_duplicates.back()));
      pending_duplicates.pop_back();
    }

    c.cluster().broadcast_all_now();
    ASSERT_TRUE(c.cluster().run_until_round_done(
        round, c.sim().now() + scaled(sec(20))))
        << "phase " << phase << " stalled";
    round = c.replica(0).next_round();

    if (phase == kPhases / 2) {
      // Snapshot boundary: duplicates of everything above may still
      // arrive below, and the restored replica must suppress them.
      snapshot_bytes = c.replica(0).snapshot();
      snapshot_round = c.replica(0).next_round();
    }
  }
  // Final flush: every deferred duplicate lands in one last round.
  for (const auto& envelope : pending_duplicates) {
    const auto live = c.cluster().live_nodes();
    c.cluster().submit(live[rng.next_below(live.size())],
                       core::Request::of_data(envelope));
  }
  c.cluster().broadcast_all_now();
  ASSERT_TRUE(c.cluster().run_until_round_done(
      round, c.sim().now() + scaled(sec(20))));

  // Let every live node apply the full agreed history.
  const Round last = c.replica(0).next_round() - 1;
  for (NodeId id : c.cluster().live_nodes()) {
    ASSERT_TRUE(c.read_barrier(id, last, scaled(sec(20)))) << "node " << id;
  }

  // Independent model replay of the agreed history: the session rule is
  // the Raft-style high-water mark — a (session, seq) applies iff seq is
  // above the session's last applied seq, so each command applies at
  // most once and retried duplicates are suppressed. Count landed
  // envelopes, applied commands, and build the expected map by hand.
  std::uint64_t landed = 0, model_applied = 0;
  std::set<std::pair<std::uint64_t, std::uint64_t>> applied_pairs;
  std::map<std::uint64_t, std::uint64_t> high_water;
  std::map<Bytes, Bytes> model;
  for (Round r = 0; r <= last; ++r) {
    const core::RoundResult* logged = c.logged_round(r);
    ASSERT_NE(logged, nullptr) << "round " << r;
    for (const auto& d : logged->deliveries) {
      const auto batch = core::unpack_batch(d.payload);
      if (!batch) continue;
      for (const auto& req : *batch) {
        if (req.kind != core::Request::Kind::kData) continue;
        const auto env = decode_envelope(req.data);
        if (!env) continue;
        ++landed;
        auto& water = high_water[env->session];
        if (env->seq <= water) continue;  // duplicate (or reordered-late)
        water = env->seq;
        ++model_applied;
        // Exactly-once core property: no pair ever applies twice.
        ASSERT_TRUE(applied_pairs.emplace(env->session, env->seq).second)
            << "session " << env->session << " seq " << env->seq
            << " applied twice";
        const auto cmd = decode_command(env->command);
        ASSERT_TRUE(cmd.has_value());
        switch (cmd->op) {
          case Command::Op::kPut:
            model[cmd->key] = cmd->value;
            break;
          case Command::Op::kDelete:
            model.erase(cmd->key);
            break;
          case Command::Op::kCas: {
            const auto it = model.find(cmd->key);
            const bool match =
                cmd->expect_absent
                    ? it == model.end()
                    : it != model.end() && it->second == cmd->expected;
            if (match) model[cmd->key] = cmd->value;
            break;
          }
          case Command::Op::kGet:
            break;
        }
      }
    }
  }
  ASSERT_GT(model_applied, 0u);

  // Every replica matches the model: applied exactly the high-water
  // firsts, suppressed every other landed copy, identical state.
  for (NodeId id : c.cluster().live_nodes()) {
    EXPECT_EQ(c.replica(id).commands_applied(), model_applied)
        << "node " << id;
    EXPECT_EQ(c.replica(id).duplicates_suppressed(), landed - model_applied)
        << "node " << id;
    EXPECT_EQ(c.replica(id).state_hash(), c.replica(0).state_hash())
        << "node " << id;
  }
  EXPECT_TRUE(c.converged());
  EXPECT_EQ(c.kv(0).contents(), model);

  // The snapshot/restore boundary: resume mid-stream, replay the rest of
  // the log (duplicates included), land bit-identical to the live tip.
  ASSERT_FALSE(snapshot_bytes.empty());
  Replica restored(std::make_unique<KvStore>());
  ASSERT_TRUE(restored.restore(snapshot_bytes));
  ASSERT_EQ(restored.next_round(), snapshot_round);
  for (Round r = snapshot_round; r <= last; ++r) {
    restored.on_round(*c.logged_round(r));
  }
  EXPECT_EQ(restored.state_hash(), c.replica(0).state_hash());
  EXPECT_EQ(restored.commands_applied(), c.replica(0).commands_applied());
  EXPECT_EQ(restored.snapshot(), c.replica(0).snapshot());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactlyOnceProperty,
    ::testing::Values(ExactlyOnceCase{1, 5, false},
                      ExactlyOnceCase{2, 5, true},
                      ExactlyOnceCase{3, 8, false},
                      ExactlyOnceCase{4, 8, true},
                      ExactlyOnceCase{5, 8, true},
                      ExactlyOnceCase{6, 11, false},
                      ExactlyOnceCase{7, 11, true},
                      ExactlyOnceCase{8, 13, true}),
    case_name);

}  // namespace
}  // namespace allconcur::smr
