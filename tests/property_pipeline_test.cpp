// Property suite for round pipelining: a windowed engine (W = 4) must
// agree with the classic stop-and-wait engine (W = 1) — identical
// per-round delivery sets, payloads and order — under clean crashes,
// randomized per-node delivery skew (adversarial partial interleavings)
// and in ⋄P mode. The view-switch *timing* is the one sanctioned
// difference: a change decided at round t takes effect at t+W.
//
// A second part mounts the replicated KV store on a pipelined simulated
// cluster with an induced slow node and a crash: SimKvCluster's built-in
// per-round cross-replica state-hash guard asserts on every apply, so a
// silent ordering divergence dies loudly, and the end state must
// converge.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "api/sim_cluster.hpp"
#include "chaos_scenarios.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"
#include "smr/kv_cluster.hpp"
#include "test_env.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

struct PipelineCase {
  std::uint64_t seed;
  std::size_t n;
  std::size_t crashes;  // < k(G), crash rounds drawn from the seed
  bool binomial;
  bool dp_mode;
};

std::string case_name(const ::testing::TestParamInfo<PipelineCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.n) +
         "_f" + std::to_string(p.crashes) +
         (p.binomial ? "_binomial" : "_gs") + (p.dp_mode ? "_dp" : "_p");
}

GraphBuilder overlay_for(const PipelineCase& p) {
  if (p.binomial) {
    return [](std::size_t n) {
      return n < 3 ? graph::make_complete(n) : graph::make_binomial_graph(n);
    };
  }
  return [](std::size_t n) {
    if (n < 6) return graph::make_complete(n);
    return graph::make_gs_digraph(n, 3);
  };
}

constexpr Round kRounds = 7;

/// Crash schedule derived from the case seed only — identical for every
/// window size. Crashes are "clean" (at a drained round boundary, zero
/// escaping sends), which makes the agreed history a pure function of the
/// workload: schedule-independent, hence comparable across window sizes
/// and interleavings.
std::map<Round, std::vector<NodeId>> crash_schedule(const PipelineCase& p,
                                                    std::uint64_t seed) {
  Rng rng(seed * 977 + 13);
  std::map<Round, std::vector<NodeId>> out;
  std::set<NodeId> victims;
  while (victims.size() < p.crashes) {
    const NodeId v = static_cast<NodeId>(rng.next_below(p.n));
    if (!victims.insert(v).second) continue;
    out[1 + rng.next_below(kRounds - 2)].push_back(v);
  }
  return out;
}

std::vector<std::uint8_t> payload_for(NodeId i, Round r) {
  return {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(r), 0x5a};
}

/// True iff the engine's own round-`r` message is out.
bool broadcast_done(const Engine& e, Round r) {
  if (e.current_round() > r) return true;  // delivered ⇒ broadcast
  const auto nb = e.next_broadcast_round();
  return nb.has_value() && *nb > r;
}

/// One full run: per-round payloads submitted *before* any broadcast (so
/// a line-15 auto-broadcast carries the intended batch), broadcasts kept
/// in lock with the driver's round counter, and a randomized bounded pump
/// between rounds — the delivery skew. Returns the delivered history of
/// every survivor.
std::map<NodeId, std::vector<RoundResult>> run_history(
    std::size_t window, const PipelineCase& p, std::uint64_t pump_seed) {
  EngineOptions options;
  options.fd_mode =
      p.dp_mode ? FdMode::kEventuallyPerfect : FdMode::kPerfect;
  options.window = window;
  LoopbackCluster c(p.n, overlay_for(p), options);
  Rng pump(pump_seed);
  const auto schedule = crash_schedule(p, p.seed);

  for (Round r = 0; r < kRounds; ++r) {
    const auto it = schedule.find(r);
    if (it != schedule.end()) {
      // Clean crash at a drained boundary: every earlier round's traffic
      // is down, the victim never broadcasts round r, and suspicion is
      // immediate — the decided sets become schedule-independent.
      c.pump();
      for (NodeId v : it->second) c.crash(v, 0);
      for (NodeId v : it->second) c.suspect_everywhere(v);
    }
    for (NodeId i = 0; i < p.n; ++i) {
      if (!c.is_crashed(i)) {
        c.engine(i).submit(Request::of_data(payload_for(i, r)));
      }
    }
    // Keep every live node's broadcasts in lock with the driver: pump
    // just enough for stragglers whose window is still full.
    for (std::size_t guard = 0;; ++guard) {
      bool all = true;
      for (NodeId i = 0; i < p.n; ++i) {
        if (c.is_crashed(i)) continue;
        if (!broadcast_done(c.engine(i), r)) {
          c.engine(i).broadcast_now();
          if (!broadcast_done(c.engine(i), r)) all = false;
        }
      }
      if (all) break;
      c.pump_random(pump, 1 + pump.next_below(64));
      if (guard > 100000) {
        ADD_FAILURE() << "round " << r << " never became broadcastable";
        return {};
      }
    }
    // Induced skew: only a random slice of the queue moves before the
    // next round's broadcasts pile on top.
    c.pump_random(pump, pump.next_below(400));
  }
  c.pump();

  std::map<NodeId, std::vector<RoundResult>> out;
  for (NodeId i = 0; i < p.n; ++i) {
    if (!c.is_crashed(i)) out[i] = c.delivered(i);
  }
  return out;
}

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, WindowedAgreesWithClassic) {
  const PipelineCase& p = GetParam();
  const std::uint64_t seed = testing::test_seed_offset() + p.seed;
  SCOPED_TRACE("effective seed " + std::to_string(seed));

  // Different pump seeds on purpose: the agreed history must not depend
  // on the interleaving, only the window timing of the view switch may.
  const auto classic = run_history(1, p, seed * 3 + 1);
  const auto windowed = run_history(4, p, seed * 7 + 5);
  ASSERT_FALSE(classic.empty());
  ASSERT_EQ(classic.size(), windowed.size());

  for (const auto& [node, reference] : classic) {
    ASSERT_TRUE(windowed.count(node)) << "survivor sets differ";
    const auto& piped = windowed.at(node);
    ASSERT_GE(reference.size(), kRounds) << "server " << node;
    ASSERT_GE(piped.size(), kRounds) << "server " << node;
    for (Round r = 0; r < kRounds; ++r) {
      const auto& a = reference[r];
      const auto& b = piped[r];
      ASSERT_EQ(a.round, r);
      ASSERT_EQ(b.round, r);
      // Identical delivery sets, in identical (canonical) order, with
      // identical payloads — W only changes when the *view* switches,
      // never what round r agreed on.
      ASSERT_EQ(a.deliveries.size(), b.deliveries.size())
          << "server " << node << " round " << r;
      for (std::size_t k = 0; k < a.deliveries.size(); ++k) {
        EXPECT_EQ(a.deliveries[k].origin, b.deliveries[k].origin)
            << "server " << node << " round " << r << " slot " << k;
        const bool a_null = a.deliveries[k].payload == nullptr;
        const bool b_null = b.deliveries[k].payload == nullptr;
        ASSERT_EQ(a_null, b_null);
        if (!a_null) {
          EXPECT_EQ(*a.deliveries[k].payload, *b.deliveries[k].payload)
              << "server " << node << " round " << r << " slot " << k;
        }
      }
    }
    // Within-run agreement for the windowed cluster (all survivors saw
    // the very same history — the classic run is checked by the existing
    // agreement suite).
    const auto& first = windowed.begin()->second;
    for (Round r = 0; r < kRounds; ++r) {
      ASSERT_EQ(piped[r].deliveries.size(), first[r].deliveries.size());
      for (std::size_t k = 0; k < piped[r].deliveries.size(); ++k) {
        EXPECT_EQ(piped[r].deliveries[k].origin,
                  first[r].deliveries[k].origin);
      }
      EXPECT_EQ(piped[r].removed, first[r].removed)
          << "server " << node << " round " << r;
    }
  }
}

std::vector<PipelineCase> make_cases() {
  std::vector<PipelineCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, 11, seed % 3, /*binomial=*/false, /*dp=*/false});
  }
  for (std::uint64_t seed = 7; seed <= 10; ++seed) {
    cases.push_back({seed, 9, seed % 4, /*binomial=*/true, /*dp=*/false});
  }
  // ⋄P: accurate suspicions, majority survives — the gate must not
  // change the agreed history either.
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    cases.push_back({seed, 11, seed % 3, /*binomial=*/false, /*dp=*/true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineEquivalence,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace allconcur::core

// ---------------------------------------------------------------------
// Replicated KV store over a pipelined cluster: the per-round
// cross-replica state-hash guard (asserted inside SimKvCluster on every
// apply) plus end-state convergence, under an induced slow node and a
// crash mid-run.
// ---------------------------------------------------------------------
namespace allconcur::smr {
namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

class PipelinedSmrProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PipelinedSmrProperty, HashGuardHoldsUnderWindowSkewAndCrash) {
  const std::uint64_t seed = testing::test_seed_offset() + GetParam();
  SCOPED_TRACE("effective seed " + std::to_string(seed));
  Rng rng(seed);

  SimKvOptions opt;
  opt.cluster.n = 8;
  opt.cluster.window = 4;
  opt.cluster.detection_delay = ms(1);
  SimKvCluster c(opt);
  // Induced per-node skew: one slow server, the convoy the window hides.
  c.cluster().set_send_delay(static_cast<NodeId>(1 + rng.next_below(7)),
                             us(300));

  std::vector<KvSession> sessions;
  for (std::size_t i = 0; i < opt.cluster.n; ++i) {
    sessions.push_back(c.make_session());
  }

  const NodeId victim = static_cast<NodeId>(2 + rng.next_below(6));
  const std::size_t kPhases = 8;
  const std::size_t crash_phase = 2 + rng.next_below(kPhases - 4);

  Round round = 0;
  for (std::size_t phase = 0; phase < kPhases; ++phase) {
    if (phase == crash_phase) {
      c.cluster().crash_after_sends(victim, c.sim().now(),
                                    rng.next_below(4));
    }
    const std::size_t fresh = 2 + rng.next_below(4);
    for (std::size_t i = 0; i < fresh; ++i) {
      auto& session = sessions[rng.next_below(sessions.size())];
      const Bytes key = to_bytes("k" + std::to_string(rng.next_below(8)));
      const Bytes value =
          to_bytes("v" + std::to_string(rng.next_u64() & 0xffff));
      const auto live = c.cluster().live_nodes();
      c.cluster().submit(live[rng.next_below(live.size())],
                         core::Request::of_data(
                             session.issue(Command::put(key, value))));
    }
    c.cluster().broadcast_all_now();
    ASSERT_TRUE(c.cluster().run_until_round_done(
        round, c.sim().now() + allconcur::testing::scaled(sec(20))))
        << "phase " << phase << " stalled";
    for (NodeId id : c.cluster().live_nodes()) {
      round = std::max(round, c.replica(id).next_round());
    }
  }

  // The per-round guard already asserted every apply along the way; the
  // end state must agree too.
  EXPECT_TRUE(c.converged());
  std::set<std::uint64_t> hashes;
  Round max_round = 0;
  for (NodeId id : c.cluster().live_nodes()) {
    max_round = std::max(max_round, c.replica(id).next_round());
  }
  for (NodeId id : c.cluster().live_nodes()) {
    if (c.replica(id).next_round() == max_round) {
      hashes.insert(c.replica(id).state_hash());
    }
  }
  EXPECT_EQ(hashes.size(), 1u) << "replicas at the same round diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedSmrProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace allconcur::smr

// ---------------------------------------------------------------------
// Chaos sweeps: the windowed engine against committed fault schedules on
// the timed simulator. Reorder + duplication stress the out-of-order
// window bookkeeping (and the park-once dedup of ahead-of-window
// duplicates); the gray slowdown creates exactly the convoy skew the
// window exists to hide.
// ---------------------------------------------------------------------
namespace allconcur::api {
namespace {

using core::RoundResult;

void run_windowed_chaos(chaos::ScenarioEngineRef inject, Round until_round,
                        std::uint64_t min_delayed) {
  ClusterOptions opt;
  opt.n = 8;
  opt.window = 4;
  opt.chaos = inject;
  SimCluster c(opt);
  std::map<NodeId, std::vector<RoundResult>> results;
  c.on_deliver = [&](NodeId who, const RoundResult& r, TimeNs) {
    results[who].push_back(r);
    c.broadcast_now(who);
  };
  c.broadcast_all_now();
  ASSERT_TRUE(c.run_until_round_done(until_round, sec(20)));

  EXPECT_GE(inject->stats().delayed, min_delayed);
  EXPECT_EQ(c.corrupt_dropped(), 0u);   // these scenarios corrupt nothing
  EXPECT_EQ(c.corrupt_delivered(), 0u);

  // In-order, identical delivery per round at every node.
  std::size_t prefix = SIZE_MAX;
  for (NodeId id : c.live_nodes()) {
    prefix = std::min(prefix, results[id].size());
  }
  ASSERT_GE(prefix, static_cast<std::size_t>(until_round) + 1);
  const auto& ref = results[0];
  for (NodeId id : c.live_nodes()) {
    const auto& rounds = results[id];
    for (std::size_t r = 0; r < prefix; ++r) {
      EXPECT_EQ(rounds[r].round, ref[r].round) << "node " << id;
      ASSERT_EQ(rounds[r].deliveries.size(), ref[r].deliveries.size())
          << "node " << id << " round " << r;
      for (std::size_t k = 0; k < rounds[r].deliveries.size(); ++k) {
        EXPECT_EQ(rounds[r].deliveries[k].origin, ref[r].deliveries[k].origin)
            << "node " << id << " round " << r << " slot " << k;
      }
    }
  }
}

class ChaosWindowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosWindowProperty, WindowedAgreementUnderReorderAndDuplication) {
  run_windowed_chaos(std::make_shared<chaos::ScenarioEngine>(
                         testing::reorder_dup_scenario(GetParam())),
                     /*until_round=*/6, /*min_delayed=*/1);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, ChaosWindowProperty,
                         ::testing::Values(0xA11C41u, 0xA11C42u));

TEST(ChaosWindowProperty, GraySlowdownConvoyStillAgrees) {
  // Node 5 is gray in the slow-only sense: every frame it sends is late
  // by 300 us (no loss, so classic-mode liveness holds). The window must
  // ride the convoy without reordering deliveries anywhere.
  run_windowed_chaos(std::make_shared<chaos::ScenarioEngine>(
                         testing::gray_scenario(0xA11C43u, 5, us(300), 0.0)),
                     /*until_round=*/6, /*min_delayed=*/10);
}

}  // namespace
}  // namespace allconcur::api
