#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace allconcur {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make_flags({"--n=32", "--rate=1.5"});
  EXPECT_EQ(f.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 1.5);
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make_flags({"--series", "allconcur"});
  EXPECT_EQ(f.get("series", ""), "allconcur");
}

TEST(Flags, BareBoolFlag) {
  const Flags f = make_flags({"--full"});
  EXPECT_TRUE(f.get_bool("full", false));
  EXPECT_FALSE(f.get_bool("other", false));
}

TEST(Flags, Defaults) {
  const Flags f = make_flags({});
  EXPECT_EQ(f.get_int("n", 8), 8);
  EXPECT_EQ(f.get("name", "x"), "x");
  EXPECT_FALSE(f.has("n"));
}

TEST(Flags, IntList) {
  const Flags f = make_flags({"--sizes=8,16,32"});
  const auto v = f.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 8);
  EXPECT_EQ(v[2], 32);
}

TEST(Flags, IntListDefault) {
  const Flags f = make_flags({});
  const auto v = f.get_int_list("sizes", {1, 2});
  ASSERT_EQ(v.size(), 2u);
}

}  // namespace
}  // namespace allconcur
