// Engine-level membership mechanics: voluntary leaves, joins through
// batches, next-round buffering, stale/foreign drops and departed-engine
// behaviour.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <tuple>

#include "core/engine.hpp"
#include "graph/gs_digraph.hpp"
#include "loopback_cluster.hpp"

namespace allconcur::core {
namespace {

using testing::LoopbackCluster;

GraphBuilder builder() {
  // make_gs_digraph's documented fallback covers n < 6 with K_n.
  return [](std::size_t n) { return graph::make_gs_digraph(n, 3); };
}

TEST(Leave, VoluntaryDepartureShrinksView) {
  LoopbackCluster c(8, builder());
  // Server 3 announces its own departure; the request is agreed like any
  // other, so every server applies it at the same round boundary.
  c.engine(3).submit(Request::leave(3));
  for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.has_delivered(i));
    const auto& r0 = c.delivered(i)[0];
    // The leave round itself still contains the leaver's message.
    EXPECT_EQ(r0.deliveries.size(), 8u);
    EXPECT_TRUE(r0.removed.empty());
  }
  EXPECT_TRUE(c.engine(3).departed());
  // Next round runs without server 3.
  for (NodeId i = 0; i < 8; ++i) {
    if (i != 3) c.engine(i).broadcast_now();
  }
  c.pump();
  for (NodeId i = 0; i < 8; ++i) {
    if (i == 3) continue;
    ASSERT_EQ(c.delivered(i).size(), 2u) << "server " << i;
    EXPECT_EQ(c.delivered(i)[1].view_size, 7u);
    EXPECT_EQ(c.delivered(i)[1].deliveries.size(), 7u);
  }
}

TEST(Leave, ThirdPartyEviction) {
  // An administrator at server 0 evicts server 5 (e.g. for maintenance).
  LoopbackCluster c(8, builder());
  c.engine(0).submit(Request::leave(5));
  for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
  c.pump();
  EXPECT_TRUE(c.engine(5).departed());
  for (NodeId i = 0; i < 8; ++i) {
    if (i != 5) c.engine(i).broadcast_now();
  }
  c.pump();
  EXPECT_EQ(c.delivered(0)[1].view_size, 7u);
}

TEST(Leave, DepartedEngineIgnoresEverything) {
  LoopbackCluster c(8, builder());
  c.engine(3).submit(Request::leave(3));
  for (NodeId i = 0; i < 8; ++i) c.engine(i).broadcast_now();
  c.pump();
  ASSERT_TRUE(c.engine(3).departed());
  const auto rounds_before = c.delivered(3).size();
  c.engine(3).broadcast_now();
  c.engine(3).on_message(0, Message::bcast(1, 0, nullptr));
  c.engine(3).on_suspect(0);
  c.pump();
  EXPECT_EQ(c.delivered(3).size(), rounds_before);
  // Frozen at the departure round: the transition to round 1 never runs.
  EXPECT_EQ(c.engine(3).current_round(), 0u);
}

TEST(Join, CommitsThroughAgreedBatch) {
  LoopbackCluster c(6, builder());
  c.engine(2).submit(Request::join(17));
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  for (NodeId i = 0; i < 6; ++i) {
    const auto& r = c.delivered(i)[0];
    EXPECT_EQ(r.joined, (std::vector<NodeId>{17}));
    EXPECT_TRUE(c.engine(i).view().contains(17));
  }
}

TEST(Join, DuplicateJoinRequestsDeduplicated) {
  LoopbackCluster c(6, builder());
  c.engine(0).submit(Request::join(17));
  c.engine(3).submit(Request::join(17));
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  EXPECT_EQ(c.delivered(1)[0].joined, (std::vector<NodeId>{17}));
  EXPECT_EQ(c.engine(1).view().size(), 7u);
}

TEST(Join, ExistingMemberJoinIgnored) {
  LoopbackCluster c(6, builder());
  c.engine(0).submit(Request::join(3));  // already a member
  for (NodeId i = 0; i < 6; ++i) c.engine(i).broadcast_now();
  c.pump();
  EXPECT_TRUE(c.delivered(1)[0].joined.empty());
  EXPECT_EQ(c.engine(1).view().size(), 6u);
}

TEST(Buffering, NextRoundMessagesReplayAfterTransition) {
  std::vector<NodeId> members{0, 1, 2};
  std::vector<std::pair<NodeId, Message>> sent;
  std::vector<RoundResult> delivered;
  Engine::Hooks hooks;
  hooks.send = [&](NodeId dst, const FrameRef& f) {
    sent.emplace_back(dst, f->msg());
  };
  hooks.deliver = [&](const RoundResult& r) { delivered.push_back(r); };
  Engine e(0, View(members, builder()), builder(), hooks);

  // Round-1 messages arrive while still in round 0: buffered.
  e.on_message(1, Message::bcast(1, 1, nullptr));
  e.on_message(2, Message::bcast(1, 2, nullptr));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(e.current_round(), 0u);

  // Complete round 0. The buffer replays immediately after the
  // transition, and the replayed broadcasts trigger our own round-1
  // message (Algorithm 1 line 15) — so round 1 finishes right away.
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, nullptr));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].round, 0u);
  EXPECT_EQ(delivered[1].round, 1u);
  EXPECT_EQ(delivered[1].deliveries.size(), 3u);
  EXPECT_EQ(e.current_round(), 2u);
}

TEST(Drops, StaleAndFarFutureCounted) {
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  hooks.deliver = [](const RoundResult&) {};
  Engine e(0, View(members, builder()), builder(), hooks);

  // Advance to round 1.
  e.broadcast_now();
  e.on_message(1, Message::bcast(0, 1, nullptr));
  e.on_message(2, Message::bcast(0, 2, nullptr));
  ASSERT_EQ(e.current_round(), 1u);

  const auto before = e.stats().dropped_stale;
  e.on_message(1, Message::bcast(0, 1, nullptr));  // round 0: stale
  EXPECT_EQ(e.stats().dropped_stale, before + 1);

  // Round 3 (> current+1): discarded — but counted now, not silently
  // (the pre-pipelining engine dropped these without a trace).
  const auto ahead_before = e.stats().dropped_ahead;
  e.on_message(1, Message::bcast(3, 1, nullptr));
  EXPECT_EQ(e.stats().dropped_ahead, ahead_before + 1);
  EXPECT_EQ(e.current_round(), 1u);
}

TEST(Drops, ForeignOriginCounted) {
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  hooks.deliver = [](const RoundResult&) {};
  Engine e(0, View(members, builder()), builder(), hooks);
  const auto before = e.stats().dropped_foreign;
  e.on_message(1, Message::bcast(0, 99, nullptr));  // 99 not a member
  EXPECT_EQ(e.stats().dropped_foreign, before + 1);
}

TEST(Drops, HeartbeatsNeverReachTheProtocol) {
  std::vector<NodeId> members{0, 1, 2};
  Engine::Hooks hooks;
  hooks.send = [](NodeId, const core::FrameRef&) {};
  hooks.deliver = [](const RoundResult&) {};
  Engine e(0, View(members, builder()), builder(), hooks);
  e.on_message(1, Message::heartbeat(1));
  EXPECT_EQ(e.stats().bcast_received, 0u);
  EXPECT_EQ(e.stats().dropped_stale, 0u);
}

TEST(NonContiguousIds, EngineWorksOnSparseIdSpace) {
  // Members with arbitrary global ids; ranks are internal.
  std::vector<NodeId> members{5, 100, 2000, 31, 7, 12, 900, 44};
  std::vector<std::unique_ptr<Engine>> engines;
  std::deque<std::tuple<NodeId, NodeId, Message>> queue;
  std::map<NodeId, RoundResult> results;
  for (NodeId id : members) {
    Engine::Hooks hooks;
    hooks.send = [&queue, id](NodeId dst, const FrameRef& f) {
      queue.emplace_back(id, dst, f->msg());
    };
    hooks.deliver = [&results, id](const RoundResult& r) { results[id] = r; };
    engines.push_back(std::make_unique<Engine>(id, View(members, builder()),
                                               builder(), hooks));
  }
  for (auto& e : engines) e->broadcast_now();
  std::map<NodeId, Engine*> by_id;
  for (auto& e : engines) by_id[e->self()] = e.get();
  while (!queue.empty()) {
    auto [src, dst, msg] = queue.front();
    queue.pop_front();
    by_id.at(dst)->on_message(src, msg);
  }
  ASSERT_EQ(results.size(), members.size());
  for (const auto& [id, r] : results) {
    EXPECT_EQ(r.deliveries.size(), members.size()) << "server " << id;
    // Deterministic order = ascending global id.
    for (std::size_t k = 0; k + 1 < r.deliveries.size(); ++k) {
      EXPECT_LT(r.deliveries[k].origin, r.deliveries[k + 1].origin);
    }
  }
}

}  // namespace
}  // namespace allconcur::core
