#include "sim/workload.hpp"

#include <gtest/gtest.h>

namespace allconcur::sim {
namespace {

TEST(FluidRate, AccumulatesWholeRequests) {
  FluidRate w(1000.0, 64);  // 1k req/s of 64 B
  // 10 ms -> 10 requests -> 640 bytes.
  EXPECT_EQ(w.take(ms(10)), 640u);
}

TEST(FluidRate, CarriesFractions) {
  FluidRate w(1000.0, 64);
  // 1.5 ms -> 1.5 requests: one whole now, the half carried.
  EXPECT_EQ(w.take(ms(1.5)), 64u);
  EXPECT_EQ(w.take(ms(2.0)), 64u);  // +0.5 -> the carried half completes
}

TEST(FluidRate, ZeroBetweenArrivals) {
  FluidRate w(10.0, 64);  // one request every 100 ms
  EXPECT_EQ(w.take(ms(1)), 0u);
  EXPECT_EQ(w.take(ms(50)), 0u);
  EXPECT_EQ(w.take(ms(101)), 64u);
}

TEST(FluidRate, ConservesBytesLongRun) {
  FluidRate w(12345.0, 40);
  std::size_t total = 0;
  for (int i = 1; i <= 1000; ++i) total += w.take(ms(i));
  // 1 s at 12345 req/s of 40 B each, ±1 request of rounding.
  EXPECT_NEAR(static_cast<double>(total), 12345.0 * 40.0, 40.0);
}

TEST(FluidRate, ZeroRateProducesNothing) {
  FluidRate w(0.0, 64);
  EXPECT_EQ(w.take(sec(10)), 0u);
}

TEST(PoissonArrivals, MeanRateConverges) {
  PoissonArrivals w(1000.0, 8, Rng(42));
  std::size_t count = 0;
  for (int i = 1; i <= 2000; ++i) count += w.count_in(ms(static_cast<double>(i)));
  // 2 s at 1000/s: expect ~2000 ± 5 sigma (~224).
  EXPECT_NEAR(static_cast<double>(count), 2000.0, 250.0);
}

TEST(PoissonArrivals, BytesAreCountTimesSize) {
  PoissonArrivals a(5000.0, 40, Rng(7));
  PoissonArrivals b(5000.0, 40, Rng(7));  // identical stream
  const std::size_t bytes = a.take(ms(100));
  const std::size_t count = b.count_in(ms(100));
  EXPECT_EQ(bytes, count * 40);
}

TEST(PoissonArrivals, DeterministicPerSeed) {
  PoissonArrivals a(200.0, 40, Rng(9));
  PoissonArrivals b(200.0, 40, Rng(9));
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(a.take(ms(i * 37.0)), b.take(ms(i * 37.0)));
  }
}

TEST(ApmPlayer, TwoHundredApmIsSparsePerFrame) {
  // 200 APM = 3.33 actions/s = 1/6 action per 50 ms frame: most frames
  // must be empty.
  auto player = make_apm_player(200.0, 40, Rng(3));
  int empty = 0, total = 0;
  for (int frame = 1; frame <= 600; ++frame) {
    ++total;
    if (player.take(static_cast<TimeNs>(frame) * ms(50)) == 0) ++empty;
  }
  EXPECT_GT(empty, total / 2);
  EXPECT_LT(empty, total);  // but not all empty
}

TEST(GlobalRateShare, SplitsEvenly) {
  auto share = make_global_rate_share(1e6, 8, 40);
  EXPECT_DOUBLE_EQ(share.offered_rate(), 125000.0);
  EXPECT_EQ(share.take(ms(1)), 125u * 40u);
}

}  // namespace
}  // namespace allconcur::sim
