#include "core/view.hpp"

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace allconcur::core {
namespace {

GraphBuilder complete_builder() {
  return [](std::size_t n) { return graph::make_complete(n); };
}

TEST(View, MembersSortedAndRanked) {
  const View v({30, 10, 20}, complete_builder());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.member(0), 10u);
  EXPECT_EQ(v.member(2), 30u);
  EXPECT_EQ(v.rank_of(20), 1u);
  EXPECT_FALSE(v.rank_of(15).has_value());
  EXPECT_TRUE(v.contains(30));
  EXPECT_FALSE(v.contains(31));
}

TEST(View, SuccessorsInGlobalIds) {
  const View v({5, 9, 12}, complete_builder());
  const auto succ = v.successors_of(9);
  EXPECT_EQ(succ, (std::vector<NodeId>{5, 12}));
  const auto pred = v.predecessors_of(5);
  EXPECT_EQ(pred, (std::vector<NodeId>{9, 12}));
}

TEST(View, NextRemovesAndAdds) {
  const View v({1, 2, 3, 4}, complete_builder());
  const View w = v.next({2}, {10}, complete_builder());
  EXPECT_EQ(w.members(), (std::vector<NodeId>{1, 3, 4, 10}));
  EXPECT_FALSE(w.contains(2));
}

TEST(View, NextIgnoresDuplicateAdd) {
  const View v({1, 2}, complete_builder());
  const View w = v.next({}, {2, 3}, complete_builder());
  EXPECT_EQ(w.members(), (std::vector<NodeId>{1, 2, 3}));
}

TEST(View, DefaultBuilderMatchesPaperConfigs) {
  const auto builder = make_default_graph_builder();
  // Small memberships fall back to a complete digraph.
  const View tiny({0, 1, 2}, builder);
  EXPECT_EQ(tiny.overlay().degree(), 2u);
  // n = 8 uses GS(8,3).
  const View eight({0, 1, 2, 3, 4, 5, 6, 7}, builder);
  EXPECT_EQ(eight.overlay().degree(), 3u);
  EXPECT_TRUE(eight.overlay().is_regular());
  // n = 16 uses GS(16,4).
  std::vector<NodeId> sixteen(16);
  for (NodeId i = 0; i < 16; ++i) sixteen[i] = i;
  const View v16(sixteen, builder);
  EXPECT_EQ(v16.overlay().degree(), 4u);
}

TEST(View, NonContiguousIdsWork) {
  const auto builder = make_default_graph_builder();
  const View v({100, 7, 55, 1000, 3, 12}, builder);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.overlay().order(), 6u);
  // Every successor list translates back to member ids.
  for (NodeId m : v.members()) {
    for (NodeId s : v.successors_of(m)) {
      EXPECT_TRUE(v.contains(s));
    }
  }
}

}  // namespace
}  // namespace allconcur::core
