// Kautz digraphs via the Imase–Itoh construction — the classic alternative
// to de Bruijn-style overlays in §4.4's design space: for degree d and
// diameter D they reach n = d^D + d^(D-1) vertices, the densest known
// digraphs for given (d, D), optimally connected (k = d).
//
// Construction (Imase & Itoh 1983): vertices 0..n-1 with
// n = d^D + d^(D-1); edges u -> (-(u*d + a)) mod n for a = 1..d.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Number of vertices of the Kautz digraph K(d, D). Defined for d >= 1 and
/// D >= 1; K(1, D) has order 2 for every D.
std::size_t kautz_order(std::size_t d, std::size_t diameter);

/// Builds K(d, D) for d >= 1 and D >= 1. The degenerate degree d = 1
/// yields the complete digraph on 2 vertices (the 2-cycle), exactly what
/// the Imase–Itoh arithmetic produces — documented fallback, not UB.
Digraph make_kautz(std::size_t d, std::size_t diameter);

/// Builds the degree-d Kautz digraph with exactly n vertices, i.e. the
/// K(d, D) with n = d^(D-1) * (d+1). When no such D exists — in particular
/// whenever n is not a multiple of d+1 — falls back to the complete
/// digraph on n vertices (and the edgeless digraph for n <= 1), so any
/// (n, d) is deployable without aborting.
Digraph make_kautz_of_order(std::size_t n, std::size_t d);

}  // namespace allconcur::graph
