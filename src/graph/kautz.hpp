// Kautz digraphs via the Imase–Itoh construction — the classic alternative
// to de Bruijn-style overlays in §4.4's design space: for degree d and
// diameter D they reach n = d^D + d^(D-1) vertices, the densest known
// digraphs for given (d, D), optimally connected (k = d).
//
// Construction (Imase & Itoh 1983): vertices 0..n-1 with
// n = d^D + d^(D-1); edges u -> (-(u*d + a)) mod n for a = 1..d.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Number of vertices of the Kautz digraph K(d, D).
std::size_t kautz_order(std::size_t d, std::size_t diameter);

/// Builds K(d, D); requires d >= 2 and D >= 1.
Digraph make_kautz(std::size_t d, std::size_t diameter);

}  // namespace allconcur::graph
