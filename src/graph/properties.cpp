#include "graph/properties.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace allconcur::graph {

std::vector<std::size_t> bfs_distances(const Digraph& g, NodeId src) {
  ALLCONCUR_ASSERT(src < g.order(), "source out of range");
  std::vector<std::size_t> dist(g.order(), kUnreachable);
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.successors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::optional<std::size_t> diameter(const Digraph& g) {
  std::size_t best = 0;
  for (NodeId src = 0; src < g.order(); ++src) {
    const auto dist = bfs_distances(g, src);
    for (NodeId v = 0; v < g.order(); ++v) {
      if (dist[v] == kUnreachable) return std::nullopt;
      best = std::max(best, dist[v]);
    }
  }
  return best;
}

std::optional<std::size_t> diameter_among(const Digraph& g,
                                          const std::vector<NodeId>& alive) {
  std::size_t best = 0;
  for (NodeId src : alive) {
    const auto dist = bfs_distances(g, src);
    for (NodeId v : alive) {
      if (dist[v] == kUnreachable) return std::nullopt;
      best = std::max(best, dist[v]);
    }
  }
  return best;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.order() <= 1) return true;
  const auto fwd = bfs_distances(g, 0);
  if (std::count(fwd.begin(), fwd.end(), kUnreachable) > 0) return false;
  const auto bwd = bfs_distances(g.transpose(), 0);
  return std::count(bwd.begin(), bwd.end(), kUnreachable) == 0;
}

std::vector<NodeId> reachable_from(const Digraph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.order(); ++v) {
    if (dist[v] != kUnreachable) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> shortest_path(const Digraph& g, NodeId src, NodeId dst) {
  ALLCONCUR_ASSERT(src < g.order() && dst < g.order(), "vertex out of range");
  std::vector<NodeId> parent(g.order(), kInvalidNode);
  std::vector<bool> seen(g.order(), false);
  std::deque<NodeId> queue;
  seen[src] = true;
  queue.push_back(src);
  while (!queue.empty() && !seen[dst]) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.successors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  if (!seen[dst]) return {};
  std::vector<NodeId> path{dst};
  while (path.back() != src) path.push_back(parent[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.order();
  SccResult result;
  result.component.assign(n, 0);
  if (n == 0) return result;

  // Kosaraju: first pass computes finish order (iterative DFS), second pass
  // labels components on the transpose in reverse finish order.
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (visited[s]) continue;
    visited[s] = true;
    stack.emplace_back(s, 0);
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      const auto& succ = g.successors(u);
      if (idx < succ.size()) {
        const NodeId v = succ[idx++];
        if (!visited[v]) {
          visited[v] = true;
          stack.emplace_back(v, 0);
        }
      } else {
        order.push_back(u);
        stack.pop_back();
      }
    }
  }

  const Digraph t = g.transpose();
  std::vector<bool> labeled(n, false);
  std::size_t comp = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (labeled[*it]) continue;
    std::vector<NodeId> dfs{*it};
    labeled[*it] = true;
    while (!dfs.empty()) {
      const NodeId u = dfs.back();
      dfs.pop_back();
      result.component[u] = comp;
      for (NodeId v : t.successors(u)) {
        if (!labeled[v]) {
          labeled[v] = true;
          dfs.push_back(v);
        }
      }
    }
    ++comp;
  }
  result.count = comp;
  return result;
}

}  // namespace allconcur::graph
