// Generalized de Bruijn digraphs and the line-digraph operation — the two
// building blocks of the GS(n,d) construction (§4.4, following Soneoka,
// Imase & Manabe 1996).
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "graph/multidigraph.hpp"

namespace allconcur::graph {

/// Generalized de Bruijn digraph GB(m,d) (Du & Hwang): vertices 0..m-1,
/// edges u -> (u*d + a) mod m for a = 0..d-1. Returned as a multigraph
/// because for d > m the arithmetic produces parallel edges and self-loops.
/// Degenerate parameters (m < 2 or d < 1) fall back to the edgeless
/// multigraph on m vertices — the complete multigraph on fewer than two
/// vertices — instead of aborting.
Multidigraph make_generalized_de_bruijn(std::size_t m, std::size_t d);

/// G*B(m,d): GB(m,d) with self-loops replaced by cycles, exactly as in the
/// paper — floor(d/m) cycles through all vertices plus, when m does not
/// divide d, one extra cycle through the vertices holding ceil(d/m)
/// self-loops. The result is d-regular with no self-loops (possibly with
/// parallel edges). Degenerate parameters (m < 2 or d < 1) fall back to
/// the edgeless multigraph on m vertices, matching
/// make_generalized_de_bruijn.
Multidigraph make_de_bruijn_star(std::size_t m, std::size_t d);

/// Line digraph L(G): one vertex per edge of G (in canonical edge order);
/// edge (e1, e2) iff head(e1) == tail(e2). Requires G to have no
/// self-loops; the result is always a simple digraph.
Digraph line_digraph(const Multidigraph& g);

}  // namespace allconcur::graph
