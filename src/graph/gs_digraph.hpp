// GS(n,d) digraphs (Soneoka, Imase & Manabe 1996) — AllConcur's overlay
// network of choice (§4.4): d-regular, optimally connected (k = d) for any
// d >= 3 and n >= 2d, with quasiminimal diameter for n <= d^3 + d.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Builds GS(n,d) for d >= 3 and n >= 2d.
///
/// Degenerate parameters fall back to the complete digraph on n vertices
/// (and the edgeless digraph for n <= 1) instead of aborting: K_n is the
/// maximally connected overlay on n vertices (k = n-1), the best any
/// degree can buy at that size. Note k = n-1 can still be below a
/// requested d > n-1, so callers sizing f = d-1 from the *requested*
/// degree must clamp to view size. This mirrors the deployment guidance
/// of §4.4 — below roughly a dozen servers the complete overlay is the
/// sensible choice anyway.
///
/// Construction (paper §4.4): write n = m*d + t (m >= 2, 0 <= t < d). Take
/// the line digraph L(G*B(m,d)) of the self-loop-free generalized de Bruijn
/// digraph; if t == 0 that is GS(n,d). Otherwise add t extra vertices
/// w_0..w_{t-1} wired into the in-edge set X and out-edge set Y of an
/// arbitrary base vertex (we fix vertex 0 of G*B for determinism), remove
/// the matchings M_i, and interconnect the w's as a clique.
Digraph make_gs_digraph(std::size_t n, std::size_t d);

/// Lower bound on the diameter of any d-regular digraph on n vertices from
/// the Moore bound (Table 3): D_L(n,d) = ceil(log_d(n(d-1)+d)) - 1.
std::size_t gs_moore_diameter_lower_bound(std::size_t n, std::size_t d);

}  // namespace allconcur::graph
