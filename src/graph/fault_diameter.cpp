#include "graph/fault_diameter.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace allconcur::graph {
namespace {

// Min-cost max-flow with successive shortest paths (Dijkstra + Johnson
// potentials). Small and allocation-friendly: the disjoint-paths networks
// have 2n nodes and n*d + n arcs with flow value <= f+1.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t nodes)
      : head_(nodes, -1), potential_(nodes, 0) {}

  void add_arc(int u, int v, int cap, int cost) {
    arcs_.push_back({v, head_[static_cast<std::size_t>(u)], cap, cost});
    head_[static_cast<std::size_t>(u)] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back({u, head_[static_cast<std::size_t>(v)], 0, -cost});
    head_[static_cast<std::size_t>(v)] = static_cast<int>(arcs_.size()) - 1;
  }

  /// Sends up to `want` units s->t along successively shortest paths.
  /// Returns the units actually sent.
  int send(int s, int t, int want) {
    int sent = 0;
    while (sent < want) {
      if (!dijkstra(s, t)) break;
      // Each augmenting path carries exactly 1 unit (unit vertex caps).
      augment(s, t);
      ++sent;
    }
    return sent;
  }

  /// Flow on arc id (forward arcs have even ids in insertion order).
  int flow_on(int arc_id) const {
    return arcs_[static_cast<std::size_t>(arc_id ^ 1)].cap;
  }

  int head_of(int arc_id) const {
    return arcs_[static_cast<std::size_t>(arc_id)].to;
  }

  int first_arc(int u) const { return head_[static_cast<std::size_t>(u)]; }
  int next_arc(int a) const { return arcs_[static_cast<std::size_t>(a)].next; }
  bool is_forward(int a) const { return (a & 1) == 0; }

  /// Consumes one unit of flow on the arc (used by path decomposition).
  void consume(int arc_id) {
    arcs_[static_cast<std::size_t>(arc_id ^ 1)].cap -= 1;
  }

 private:
  struct Arc {
    int to;
    int next;
    int cap;
    int cost;
  };

  bool dijkstra(int s, int t) {
    const std::size_t n = head_.size();
    dist_.assign(n, std::numeric_limits<long long>::max());
    parent_arc_.assign(n, -1);
    using Item = std::pair<long long, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist_[static_cast<std::size_t>(s)] = 0;
    pq.emplace(0, s);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist_[static_cast<std::size_t>(u)]) continue;
      for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap <= 0) continue;
        const long long nd = d + arc.cost +
                             potential_[static_cast<std::size_t>(u)] -
                             potential_[static_cast<std::size_t>(arc.to)];
        if (nd < dist_[static_cast<std::size_t>(arc.to)]) {
          dist_[static_cast<std::size_t>(arc.to)] = nd;
          parent_arc_[static_cast<std::size_t>(arc.to)] = a;
          pq.emplace(nd, arc.to);
        }
      }
    }
    if (dist_[static_cast<std::size_t>(t)] ==
        std::numeric_limits<long long>::max()) {
      return false;
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (dist_[v] != std::numeric_limits<long long>::max()) {
        potential_[v] += dist_[v];
      }
    }
    return true;
  }

  void augment(int s, int t) {
    for (int v = t; v != s;) {
      const int a = parent_arc_[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(a)].cap -= 1;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += 1;
      v = arcs_[static_cast<std::size_t>(a ^ 1)].to;
    }
  }

  std::vector<int> head_;
  std::vector<long long> potential_;
  std::vector<Arc> arcs_;
  std::vector<long long> dist_;
  std::vector<int> parent_arc_;
};

}  // namespace

std::optional<DisjointPaths> min_sum_disjoint_paths(const Digraph& g,
                                                    NodeId u, NodeId v,
                                                    std::size_t k) {
  ALLCONCUR_ASSERT(u != v, "disjoint paths need distinct endpoints");
  ALLCONCUR_ASSERT(u < g.order() && v < g.order(), "vertex out of range");
  ALLCONCUR_ASSERT(k >= 1, "need at least one path");

  const std::size_t n = g.order();
  MinCostFlow mcf(2 * n);
  // v_in = 2w, v_out = 2w+1; internal arcs cap 1 cost 0 (endpoints
  // uncapacitated); edge arcs cap 1 cost 1.
  for (NodeId w = 0; w < n; ++w) {
    const int cap = (w == u || w == v) ? static_cast<int>(k) : 1;
    mcf.add_arc(static_cast<int>(2 * w), static_cast<int>(2 * w + 1), cap, 0);
  }
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.successors(a)) {
      mcf.add_arc(static_cast<int>(2 * a + 1), static_cast<int>(2 * b), 1, 1);
    }
  }

  const int sent = mcf.send(static_cast<int>(2 * u + 1),
                            static_cast<int>(2 * v), static_cast<int>(k));
  if (sent < static_cast<int>(k)) return std::nullopt;

  // Decompose the flow into k paths by walking forward arcs with flow.
  DisjointPaths result;
  std::size_t total = 0;
  for (std::size_t p = 0; p < k; ++p) {
    std::vector<NodeId> path{u};
    int cur = static_cast<int>(2 * u + 1);  // u_out
    while (cur != static_cast<int>(2 * v)) {
      int chosen = -1;
      for (int a = mcf.first_arc(cur); a != -1; a = mcf.next_arc(a)) {
        if (mcf.is_forward(a) && mcf.flow_on(a) > 0) {
          chosen = a;
          break;
        }
      }
      ALLCONCUR_ASSERT(chosen != -1, "flow decomposition lost the path");
      mcf.consume(chosen);
      cur = mcf.head_of(chosen);
      if ((cur & 1) == 0) {
        // Arrived at some w_in: record the vertex, step through w_in->w_out
        // unless we just reached the sink.
        const NodeId w = static_cast<NodeId>(cur / 2);
        path.push_back(w);
        if (cur == static_cast<int>(2 * v)) break;
      }
    }
    total += path.size() - 1;
    result.max_length = std::max(result.max_length, path.size() - 1);
    result.paths.push_back(std::move(path));
  }
  result.avg_length = static_cast<double>(total) / static_cast<double>(k);
  return result;
}

std::optional<std::size_t> fault_diameter_bound(const Digraph& g,
                                                std::size_t f) {
  std::size_t best = 0;
  for (NodeId u = 0; u < g.order(); ++u) {
    for (NodeId v = 0; v < g.order(); ++v) {
      if (u == v) continue;
      const auto dp = min_sum_disjoint_paths(g, u, v, f + 1);
      if (!dp) return std::nullopt;
      best = std::max(best, dp->max_length);
    }
  }
  return best;
}

std::optional<std::size_t> fault_diameter_bound_sampled(const Digraph& g,
                                                        std::size_t f,
                                                        std::size_t pairs,
                                                        Rng& rng) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const NodeId u = static_cast<NodeId>(rng.next_below(g.order()));
    NodeId v;
    do {
      v = static_cast<NodeId>(rng.next_below(g.order()));
    } while (v == u);
    const auto dp = min_sum_disjoint_paths(g, u, v, f + 1);
    if (!dp) return std::nullopt;
    best = std::max(best, dp->max_length);
  }
  return best;
}

namespace {

std::optional<std::size_t> diameter_after_removal(
    const Digraph& g, const std::vector<NodeId>& removed) {
  const Digraph gf = g.without(removed);
  std::vector<NodeId> alive;
  std::vector<bool> gone(g.order(), false);
  for (NodeId r : removed) gone[r] = true;
  for (NodeId v = 0; v < g.order(); ++v) {
    if (!gone[v]) alive.push_back(v);
  }
  return diameter_among(gf, alive);
}

}  // namespace

std::optional<std::size_t> fault_diameter_exact(const Digraph& g,
                                                std::size_t f) {
  const std::size_t n = g.order();
  ALLCONCUR_ASSERT(f < n, "cannot remove every vertex");
  std::vector<NodeId> subset(f);
  std::size_t best = 0;

  // Enumerate all size-f subsets with a manual odometer.
  std::vector<std::size_t> idx(f);
  for (std::size_t i = 0; i < f; ++i) idx[i] = i;
  for (;;) {
    for (std::size_t i = 0; i < f; ++i) subset[i] = static_cast<NodeId>(idx[i]);
    const auto d = diameter_after_removal(g, subset);
    if (!d) return std::nullopt;
    best = std::max(best, *d);
    // Advance odometer.
    std::size_t pos = f;
    while (pos > 0 && idx[pos - 1] == n - (f - (pos - 1))) --pos;
    if (pos == 0) break;
    ++idx[pos - 1];
    for (std::size_t i = pos; i < f; ++i) idx[i] = idx[i - 1] + 1;
  }
  return best;
}

std::optional<std::size_t> fault_diameter_sampled(const Digraph& g,
                                                  std::size_t f,
                                                  std::size_t samples,
                                                  Rng& rng) {
  const std::size_t n = g.order();
  ALLCONCUR_ASSERT(f < n, "cannot remove every vertex");
  std::size_t best = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<NodeId> subset;
    while (subset.size() < f) {
      const NodeId v = static_cast<NodeId>(rng.next_below(n));
      if (std::find(subset.begin(), subset.end(), v) == subset.end()) {
        subset.push_back(v);
      }
    }
    const auto d = diameter_after_removal(g, subset);
    if (!d) return std::nullopt;
    best = std::max(best, *d);
  }
  return best;
}

}  // namespace allconcur::graph
