#include "graph/gs_digraph.hpp"

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "graph/debruijn.hpp"
#include "graph/multidigraph.hpp"

namespace allconcur::graph {

Digraph make_gs_digraph(std::size_t n, std::size_t d) {
  // Documented complete-graph fallback: the construction needs d >= 3 and
  // n >= 2d; anything below that is served by K_n (see header).
  if (n <= 1) return Digraph(n);
  if (d < 3 || n < 2 * d) return make_complete(n);

  const std::size_t m = n / d;
  const std::size_t t = n % d;

  Multidigraph star = make_de_bruijn_star(m, d);
  star.canonicalize();
  const auto& star_edges = star.edges();

  // Line digraph vertices are edge ids of the canonical edge order.
  Digraph l = line_digraph(star);
  if (t == 0) return l;

  // Base vertex of G*B around which the t extra vertices are attached.
  const NodeId base = 0;

  // X: ids of in-edges of `base` (vertices "uv" of L); Y: ids of out-edges
  // ("vu"). |X| == |Y| == d by regularity.
  std::vector<NodeId> x, y;
  for (std::size_t i = 0; i < star_edges.size(); ++i) {
    if (star_edges[i].head == base) x.push_back(static_cast<NodeId>(i));
    if (star_edges[i].tail == base) y.push_back(static_cast<NodeId>(i));
  }
  ALLCONCUR_ASSERT(x.size() == d && y.size() == d,
                   "base vertex of G*B must have in/out degree d");

  // Extend L with the t new vertices w_0..w_{t-1}.
  const std::size_t n_l = l.order();
  Digraph g(n_l + t);
  for (NodeId u = 0; u < n_l; ++u) {
    for (NodeId v : l.successors(u)) g.add_edge(u, v);
  }
  const auto w = [&](std::size_t i) { return static_cast<NodeId>(n_l + i); };

  // Clique among the w's.
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      if (i != j) g.add_edge(w(i), w(j));
    }
  }

  // For each i: connect X_i = {x_i..x_{i+d-t}} into w_i, w_i out to
  // Y_i = {y_i..y_{i+d-t}}, and remove the matching
  // M_i = {(x_{i+p}, y_{i+q}) : q = (i+p) mod (d-t+1)}.
  //
  // Note i+p <= (t-1)+(d-t) = d-1 and i+q <= d-1, so the X/Y indices never
  // wrap; we still reduce mod d defensively.
  const std::size_t window = d - t + 1;
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t p = 0; p <= d - t; ++p) {
      const NodeId xv = x[(i + p) % d];
      const NodeId yv = y[(i + p) % d];
      g.add_edge(xv, w(i));
      g.add_edge(w(i), yv);
      const std::size_t q = (i + p) % window;
      // Remove (x_{i+p}, y_{i+q}). The edge must exist in L: every in-edge
      // of `base` connects to every out-edge of `base`.
      g.remove_edge(xv, y[(i + q) % d]);
    }
  }

  ALLCONCUR_ASSERT(g.is_regular() && g.degree() == d,
                   "GS(n,d) must be d-regular");
  return g;
}

std::size_t gs_moore_diameter_lower_bound(std::size_t n, std::size_t d) {
  ALLCONCUR_ASSERT(d >= 2, "Moore bound requires d >= 2");
  // D_L(n,d) = ceil(log_d(n(d-1)+d)) - 1, computed with integers to avoid
  // floating point boundary errors.
  const std::size_t target = n * (d - 1) + d;
  std::size_t power = 1;
  std::size_t exponent = 0;
  while (power < target) {
    power *= d;
    ++exponent;
  }
  return exponent - 1;
}

}  // namespace allconcur::graph
