#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace allconcur::graph {
namespace {

// Compact Dinic max-flow specialized for unit vertex capacities. The
// vertex-split network has node v_in = 2v, v_out = 2v+1; the internal arc
// v_in -> v_out has capacity 1 (except for source/sink, which are
// uncapacitated); each digraph edge (u,v) becomes u_out -> v_in with
// capacity "infinity" (values are tiny, so 1'000'000 suffices).
class Dinic {
 public:
  explicit Dinic(std::size_t nodes) : head_(nodes, -1) {}

  void add_arc(int u, int v, int cap) {
    arcs_.push_back({v, head_[static_cast<std::size_t>(u)], cap});
    head_[static_cast<std::size_t>(u)] = static_cast<int>(arcs_.size()) - 1;
    arcs_.push_back({u, head_[static_cast<std::size_t>(v)], 0});
    head_[static_cast<std::size_t>(v)] = static_cast<int>(arcs_.size()) - 1;
  }

  int max_flow(int s, int t, int stop_at = std::numeric_limits<int>::max()) {
    int flow = 0;
    while (flow < stop_at && bfs(s, t)) {
      iter_ = head_;
      int pushed;
      while (flow < stop_at && (pushed = dfs(s, t, stop_at - flow)) > 0) {
        flow += pushed;
      }
    }
    return flow;
  }

 private:
  struct Arc {
    int to;
    int next;
    int cap;
  };

  bool bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    level_[static_cast<std::size_t>(s)] = 0;
    std::vector<int> queue{s};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int u = queue[qi];
      for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap > 0 && level_[static_cast<std::size_t>(arc.to)] < 0) {
          level_[static_cast<std::size_t>(arc.to)] = level_[static_cast<std::size_t>(u)] + 1;
          queue.push_back(arc.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t)] >= 0;
  }

  int dfs(int u, int t, int limit) {
    if (u == t || limit == 0) return limit;
    for (int& a = iter_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap > 0 &&
          level_[static_cast<std::size_t>(arc.to)] == level_[static_cast<std::size_t>(u)] + 1) {
        const int pushed = dfs(arc.to, t, std::min(limit, arc.cap));
        if (pushed > 0) {
          arc.cap -= pushed;
          arcs_[static_cast<std::size_t>(a ^ 1)].cap += pushed;
          return pushed;
        }
      }
    }
    level_[static_cast<std::size_t>(u)] = -1;
    return 0;
  }

  std::vector<int> head_;
  std::vector<Arc> arcs_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

constexpr int kInfCap = 1'000'000;

std::size_t local_connectivity_capped(const Digraph& g, NodeId u, NodeId v,
                                      int cap) {
  const std::size_t n = g.order();
  Dinic flow(2 * n);
  for (NodeId w = 0; w < n; ++w) {
    const int c = (w == u || w == v) ? kInfCap : 1;
    flow.add_arc(static_cast<int>(2 * w), static_cast<int>(2 * w + 1), c);
  }
  // Edge arcs carry capacity 1: no two internally-disjoint paths can share
  // an edge, and a direct (u,v) edge must count as exactly one path.
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.successors(a)) {
      flow.add_arc(static_cast<int>(2 * a + 1), static_cast<int>(2 * b), 1);
    }
  }
  return static_cast<std::size_t>(
      flow.max_flow(static_cast<int>(2 * u + 1), static_cast<int>(2 * v), cap));
}

}  // namespace

std::size_t local_vertex_connectivity(const Digraph& g, NodeId u, NodeId v) {
  ALLCONCUR_ASSERT(u != v, "local connectivity needs distinct vertices");
  ALLCONCUR_ASSERT(u < g.order() && v < g.order(), "vertex out of range");
  return local_connectivity_capped(g, u, v, kInfCap);
}

std::size_t vertex_connectivity(const Digraph& g) {
  const std::size_t n = g.order();
  ALLCONCUR_ASSERT(n >= 2, "connectivity needs at least two vertices");

  // Minimum degree is always an upper bound on k(G).
  std::size_t best = n - 1;
  for (NodeId v = 0; v < n; ++v) {
    best = std::min({best, g.out_degree(v), g.in_degree(v)});
  }

  const NodeId pivot = 0;
  std::vector<NodeId> candidates{pivot};
  for (NodeId s : g.successors(pivot)) candidates.push_back(s);

  for (NodeId c : candidates) {
    for (NodeId other = 0; other < n; ++other) {
      if (other == c) continue;
      if (!g.has_edge(c, other)) {
        best = std::min(best, local_connectivity_capped(
                                  g, c, other, static_cast<int>(best)));
      }
      if (!g.has_edge(other, c)) {
        best = std::min(best, local_connectivity_capped(
                                  g, other, c, static_cast<int>(best)));
      }
      if (best == 0) return 0;
    }
  }
  return best;
}

bool is_optimally_connected(const Digraph& g) {
  return vertex_connectivity(g) == g.degree();
}

namespace {

std::size_t edge_flow_capped(const Digraph& g, NodeId u, NodeId v, int cap) {
  // No vertex splitting: nodes are nodes, every edge carries capacity 1.
  Dinic flow(g.order());
  for (NodeId a = 0; a < g.order(); ++a) {
    for (NodeId b : g.successors(a)) {
      flow.add_arc(static_cast<int>(a), static_cast<int>(b), 1);
    }
  }
  return static_cast<std::size_t>(
      flow.max_flow(static_cast<int>(u), static_cast<int>(v), cap));
}

}  // namespace

std::size_t local_edge_connectivity(const Digraph& g, NodeId u, NodeId v) {
  ALLCONCUR_ASSERT(u != v, "edge connectivity needs distinct vertices");
  ALLCONCUR_ASSERT(u < g.order() && v < g.order(), "vertex out of range");
  return edge_flow_capped(g, u, v, kInfCap);
}

std::size_t edge_connectivity(const Digraph& g) {
  const std::size_t n = g.order();
  ALLCONCUR_ASSERT(n >= 2, "edge connectivity needs at least two vertices");
  std::size_t best = n * n;  // above any possible cut
  const NodeId pivot = 0;
  for (NodeId v = 1; v < n; ++v) {
    best = std::min(best, edge_flow_capped(g, pivot, v,
                                           static_cast<int>(best)));
    if (best == 0) return 0;
    best = std::min(best, edge_flow_capped(g, v, pivot,
                                           static_cast<int>(best)));
    if (best == 0) return 0;
  }
  return best;
}

}  // namespace allconcur::graph
