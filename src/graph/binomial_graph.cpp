#include "graph/binomial_graph.hpp"

#include <set>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace allconcur::graph {
namespace {

std::set<std::size_t> binomial_offsets(std::size_t n) {
  std::set<std::size_t> offsets;
  const std::uint32_t lmax = floor_log2(n);
  for (std::uint32_t l = 0; l <= lmax; ++l) {
    const std::size_t step = (std::size_t{1} << l) % n;
    if (step != 0) {
      offsets.insert(step);
      offsets.insert(n - step);
    }
  }
  return offsets;
}

}  // namespace

Digraph make_binomial_graph(std::size_t n) {
  ALLCONCUR_ASSERT(n >= 3, "binomial graph needs n >= 3");
  Digraph g(n);
  const auto offsets = binomial_offsets(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t off : offsets) {
      g.add_edge_if_absent(u, static_cast<NodeId>((u + off) % n));
    }
  }
  return g;
}

std::size_t binomial_graph_degree(std::size_t n) {
  ALLCONCUR_ASSERT(n >= 3, "binomial graph needs n >= 3");
  return binomial_offsets(n).size();
}

}  // namespace allconcur::graph
