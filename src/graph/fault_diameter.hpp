// Fault diameter D_f(G,f) estimation (§4.2.3).
//
// The paper's route: the min-max (f+1)-disjoint-paths problem is strongly
// NP-complete, so approximate δ_f with the *min-sum* (f+1) vertex-disjoint
// paths problem, solved polynomially as a min-cost flow (successive
// shortest paths). δ̂_f = longest of the min-sum paths bounds D_f(G,f)
// from above; the min-sum average bounds δ_f from below (Eq. 1).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "graph/digraph.hpp"

namespace allconcur::graph {

struct DisjointPaths {
  /// k vertex-disjoint u->v paths (endpoints included) minimizing total
  /// edge count.
  std::vector<std::vector<NodeId>> paths;
  std::size_t max_length = 0;  ///< δ̂_f candidate: longest path, in edges
  double avg_length = 0.0;     ///< lower-bound side of Eq. (1)
};

/// Min-sum k vertex-disjoint paths from u to v; nullopt if fewer than k
/// internally disjoint paths exist (i.e. local connectivity < k).
std::optional<DisjointPaths> min_sum_disjoint_paths(const Digraph& g,
                                                    NodeId u, NodeId v,
                                                    std::size_t k);

/// δ̂_f over all ordered pairs: max over (u,v) of the min-sum bound with
/// k = f+1. Nullopt if some pair has fewer than f+1 disjoint paths.
std::optional<std::size_t> fault_diameter_bound(const Digraph& g,
                                                std::size_t f);

/// Same bound over `pairs` uniformly sampled ordered pairs (large graphs).
std::optional<std::size_t> fault_diameter_bound_sampled(const Digraph& g,
                                                        std::size_t f,
                                                        std::size_t pairs,
                                                        Rng& rng);

/// Exact D_f(G,f) by enumerating every |F| = f subset. Exponential — only
/// for small n (tests and the paper's n=12 binomial example). Requires
/// f < k(G); nullopt if some removal disconnects the digraph.
std::optional<std::size_t> fault_diameter_exact(const Digraph& g,
                                                std::size_t f);

/// Monte-Carlo lower bound on D_f(G,f): max diameter over `samples` random
/// f-subsets. Nullopt if a sampled removal disconnects the digraph.
std::optional<std::size_t> fault_diameter_sampled(const Digraph& g,
                                                  std::size_t f,
                                                  std::size_t samples,
                                                  Rng& rng);

}  // namespace allconcur::graph
