#include "graph/kautz.hpp"

#include "common/assert.hpp"

namespace allconcur::graph {

std::size_t kautz_order(std::size_t d, std::size_t diameter) {
  ALLCONCUR_ASSERT(d >= 1, "Kautz digraphs need degree >= 1");
  ALLCONCUR_ASSERT(diameter >= 1, "Kautz digraphs need diameter >= 1");
  std::size_t pow_dm1 = 1;  // d^(D-1)
  for (std::size_t i = 1; i < diameter; ++i) pow_dm1 *= d;
  return pow_dm1 * d + pow_dm1;
}

Digraph make_kautz(std::size_t d, std::size_t diameter) {
  const std::size_t n = kautz_order(d, diameter);
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t a = 1; a <= d; ++a) {
      // v = (-(u*d + a)) mod n; computed with a positive operand.
      const std::size_t raw = (u * d + a) % n;
      const NodeId v = static_cast<NodeId>((n - raw) % n);
      ALLCONCUR_ASSERT(v != u, "Imase-Itoh produced a self-loop");
      g.add_edge(u, v);
    }
  }
  ALLCONCUR_ASSERT(g.is_regular() && g.degree() == d,
                   "Kautz digraph must be d-regular");
  return g;
}

Digraph make_kautz_of_order(std::size_t n, std::size_t d) {
  if (n <= 1) return Digraph(n);
  if (d >= 1 && n % (d + 1) == 0) {
    // Kautz orders for degree d are d^(D-1) * (d+1), D = 1, 2, ...
    std::size_t order = d + 1;
    for (std::size_t diameter = 1;; ++diameter) {
      if (order == n) return make_kautz(d, diameter);
      // d == 1 repeats order 2 forever; otherwise stop before overshooting.
      if (d == 1 || order > n / d) break;
      order *= d;
    }
  }
  // Documented complete-graph fallback for non-Kautz orders (see header).
  return make_complete(n);
}

}  // namespace allconcur::graph
