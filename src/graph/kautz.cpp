#include "graph/kautz.hpp"

#include "common/assert.hpp"

namespace allconcur::graph {

std::size_t kautz_order(std::size_t d, std::size_t diameter) {
  ALLCONCUR_ASSERT(d >= 2, "Kautz digraphs need degree >= 2");
  ALLCONCUR_ASSERT(diameter >= 1, "Kautz digraphs need diameter >= 1");
  std::size_t pow_dm1 = 1;  // d^(D-1)
  for (std::size_t i = 1; i < diameter; ++i) pow_dm1 *= d;
  return pow_dm1 * d + pow_dm1;
}

Digraph make_kautz(std::size_t d, std::size_t diameter) {
  const std::size_t n = kautz_order(d, diameter);
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t a = 1; a <= d; ++a) {
      // v = (-(u*d + a)) mod n; computed with a positive operand.
      const std::size_t raw = (u * d + a) % n;
      const NodeId v = static_cast<NodeId>((n - raw) % n);
      ALLCONCUR_ASSERT(v != u, "Imase-Itoh produced a self-loop");
      g.add_edge(u, v);
    }
  }
  ALLCONCUR_ASSERT(g.is_regular() && g.degree() == d,
                   "Kautz digraph must be d-regular");
  return g;
}

}  // namespace allconcur::graph
