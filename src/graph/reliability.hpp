// AllConcur reliability estimation (§4.4):
//   ρ_G = Σ_{i=0}^{k(G)-1} C(n,i) · p_f^i · (1-p_f)^{n-i},
// the probability that fewer than k(G) servers fail within a period Δ, with
// p_f = 1 - e^{-Δ/MTTF} (exponential lifetimes, §4.2.2). Drives both the
// Fig. 5 curves and the Table 3 degree selection.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace allconcur::graph {

/// Failure-model parameters. Defaults match the paper: Δ = 24h horizon,
/// MTTF ≈ 2 years (TSUBAME2.5 failure history).
struct FailureModel {
  double delta_hours = 24.0;
  double mttf_hours = 2.0 * 365.25 * 24.0;

  double p_f() const;  ///< per-server failure probability over Δ
};

/// ρ_G for an n-server system whose overlay has vertex connectivity k.
double system_reliability(std::size_t n, std::size_t k, const FailureModel& fm);

/// Same, expressed in nines: -log10(1 - ρ_G).
double system_reliability_nines(std::size_t n, std::size_t k,
                                const FailureModel& fm);

/// Smallest degree d (with k(GS) = d, d >= 3, n >= 2d) meeting a
/// reliability target of `target_nines`; nullopt if even d = n/2 (the
/// GS construction limit) cannot reach the target.
std::optional<std::size_t> min_gs_degree_for_target(std::size_t n,
                                                    double target_nines,
                                                    const FailureModel& fm);

/// One row of Table 3.
struct GsParams {
  std::size_t n;
  std::size_t d;
  std::size_t diameter;  ///< D(GS(n,d)) as published
};

/// The published Table 3 (6-nines over 24h, MTTF ≈ 2 years). Protocol
/// benches use these exact (n,d) pairs; see DESIGN.md §4.4 for the two
/// borderline rows where an independent recomputation differs by one.
const std::vector<GsParams>& paper_table3();

/// Published degree for n (interpolating to the next-larger published row
/// when n is not in Table 3); used to configure benches at arbitrary n.
std::size_t paper_gs_degree(std::size_t n);

}  // namespace allconcur::graph
