// Structural digraph properties: distances, diameter, strong connectivity.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Unreachable marker for distance vectors.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

/// BFS distances from src along successor edges.
std::vector<std::size_t> bfs_distances(const Digraph& g, NodeId src);

/// Longest shortest path (paper's D(G)); nullopt if g is not strongly
/// connected (some pair unreachable). `restrict_to` (optional) limits both
/// sources and targets to the given alive set — used for fault diameters.
std::optional<std::size_t> diameter(const Digraph& g);
std::optional<std::size_t> diameter_among(const Digraph& g,
                                          const std::vector<NodeId>& alive);

/// True iff every vertex can reach every other vertex.
bool is_strongly_connected(const Digraph& g);

/// Vertices reachable from src (including src).
std::vector<NodeId> reachable_from(const Digraph& g, NodeId src);

/// One shortest path src -> dst (inclusive), or empty if unreachable.
std::vector<NodeId> shortest_path(const Digraph& g, NodeId src, NodeId dst);

/// Strongly connected components (Kosaraju, the algorithm the paper's ⋄P
/// surviving-partition mechanism is modeled on). Returns component id per
/// vertex, ids in [0, count).
struct SccResult {
  std::vector<std::size_t> component;  ///< per-vertex component id
  std::size_t count = 0;
};
SccResult strongly_connected_components(const Digraph& g);

}  // namespace allconcur::graph
