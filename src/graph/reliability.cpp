#include "graph/reliability.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace allconcur::graph {

double FailureModel::p_f() const {
  return failure_probability(delta_hours, mttf_hours);
}

double system_reliability(std::size_t n, std::size_t k,
                          const FailureModel& fm) {
  ALLCONCUR_ASSERT(k >= 1, "connectivity must be at least 1");
  // P[fewer than k failures among n].
  return binomial_cdf_lt(n, k, fm.p_f());
}

double system_reliability_nines(std::size_t n, std::size_t k,
                                const FailureModel& fm) {
  return nines(system_reliability(n, k, fm));
}

std::optional<std::size_t> min_gs_degree_for_target(std::size_t n,
                                                    double target_nines,
                                                    const FailureModel& fm) {
  for (std::size_t d = 3; 2 * d <= n; ++d) {
    if (system_reliability_nines(n, d, fm) >= target_nines) return d;
  }
  return std::nullopt;
}

const std::vector<GsParams>& paper_table3() {
  static const std::vector<GsParams> kTable{
      {6, 3, 2},    {8, 3, 2},    {11, 3, 3},  {16, 4, 2},  {22, 4, 3},
      {32, 4, 3},   {45, 4, 4},   {64, 5, 4},  {90, 5, 3},  {128, 5, 4},
      {256, 7, 4},  {512, 8, 3},  {1024, 11, 4},
  };
  return kTable;
}

std::size_t paper_gs_degree(std::size_t n) {
  const auto& table = paper_table3();
  for (const GsParams& row : table) {
    if (n <= row.n) return std::min(row.d, n / 2);
  }
  // Beyond Table 3: fall back to the computed minimal degree (6-nines).
  const auto d = min_gs_degree_for_target(n, 6.0, FailureModel{});
  ALLCONCUR_ASSERT(d.has_value(), "no GS degree reaches 6-nines");
  return *d;
}

}  // namespace allconcur::graph
