#include "graph/multidigraph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::graph {

void Multidigraph::add_edge(NodeId u, NodeId v) {
  ALLCONCUR_ASSERT(u < n_ && v < n_, "vertex id out of range");
  edges_.push_back({u, v});
}

std::size_t Multidigraph::out_degree(NodeId v) const {
  std::size_t d = 0;
  for (const Edge& e : edges_) d += (e.tail == v);
  return d;
}

std::size_t Multidigraph::in_degree(NodeId v) const {
  std::size_t d = 0;
  for (const Edge& e : edges_) d += (e.head == v);
  return d;
}

std::size_t Multidigraph::self_loop_count(NodeId v) const {
  std::size_t d = 0;
  for (const Edge& e : edges_) d += (e.tail == v && e.head == v);
  return d;
}

void Multidigraph::remove_one_self_loop(NodeId v) {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].tail == v && edges_[i].head == v) {
      edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  ALLCONCUR_ASSERT(false, "no self-loop to remove at this vertex");
}

bool Multidigraph::is_regular(std::size_t d) const {
  for (NodeId v = 0; v < n_; ++v) {
    if (out_degree(v) != d || in_degree(v) != d) return false;
  }
  return true;
}

void Multidigraph::canonicalize() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.tail != b.tail ? a.tail < b.tail : a.head < b.head;
  });
}

}  // namespace allconcur::graph
