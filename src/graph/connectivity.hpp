// Vertex connectivity k(G) via Menger's theorem (§2.1.1): the number of
// internally vertex-disjoint paths between u and v equals the max-flow on
// the vertex-split unit-capacity network. AllConcur's resilience bound is
// f < k(G), so these routines gate every deployment configuration.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Maximum number of internally vertex-disjoint u->v paths.
/// u != v required; adjacency is allowed (a direct edge counts as a path
/// with no internal vertices).
std::size_t local_vertex_connectivity(const Digraph& g, NodeId u, NodeId v);

/// Exact vertex connectivity k(G).
///
/// Uses the standard reduction: a minimum vertex cut either avoids a chosen
/// pivot v0 — then some non-adjacent pair involving v0 realizes it — or
/// contains v0, in which case a successor of v0 outside the cut realizes it;
/// if all successors lie in the cut then k(G) = d_min which is always an
/// upper bound. Cost: O(d * n) max-flow computations.
std::size_t vertex_connectivity(const Digraph& g);

/// True iff k(G) == d(G) (paper's "optimally connected").
bool is_optimally_connected(const Digraph& g);

/// Maximum number of edge-disjoint u->v paths (edge version of Menger).
std::size_t local_edge_connectivity(const Digraph& g, NodeId u, NodeId v);

/// Exact edge connectivity λ(G) (§3.3.1: the number of link losses the
/// overlay survives without partitioning). Any global minimum edge cut
/// separates a fixed pivot from somebody, so 2(n-1) max-flows suffice.
std::size_t edge_connectivity(const Digraph& g);

}  // namespace allconcur::graph
