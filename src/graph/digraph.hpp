// Simple digraph G = (V, E) — the overlay network abstraction of §2.1.1.
//
// Vertices are dense ids [0, n). Both successor (v+) and predecessor (v-)
// adjacency is kept sorted so that membership tests are O(log d) and
// iteration order is deterministic, which the protocol relies on for
// reproducible runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace allconcur::graph {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n);

  std::size_t order() const { return succ_.size(); }  ///< |V(G)|
  std::size_t edge_count() const { return edges_; }   ///< |E(G)|

  /// Adds (u,v). Self-loops and duplicates are rejected with an assertion —
  /// a fault-tolerant overlay never wants either.
  void add_edge(NodeId u, NodeId v);

  /// Adds (u,v) if absent; returns true if the edge was inserted.
  bool add_edge_if_absent(NodeId u, NodeId v);

  /// Removes (u,v); asserts the edge exists.
  void remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  const std::vector<NodeId>& successors(NodeId v) const;    ///< v+(G)
  const std::vector<NodeId>& predecessors(NodeId v) const;  ///< v-(G)

  std::size_t out_degree(NodeId v) const { return successors(v).size(); }
  std::size_t in_degree(NodeId v) const { return predecessors(v).size(); }

  /// d(G): maximum in- or out-degree over all vertices (paper notation).
  std::size_t degree() const;

  /// True iff every vertex has in-degree == out-degree == d(G).
  bool is_regular() const;

  /// Reverse of every edge (used by the ⋄P backward broadcast of §3.3.2).
  Digraph transpose() const;

  /// G_F of §2.1.1: the subgraph induced by removing `removed` (sorted or
  /// not); vertex ids are preserved, removed vertices keep existing but
  /// become isolated. `alive_out` (optional) receives the surviving ids.
  Digraph without(const std::vector<NodeId>& removed) const;

  /// Human-readable one-line summary ("n=16 m=64 d=4 regular").
  std::string describe() const;

  bool operator==(const Digraph& other) const {
    return succ_ == other.succ_;
  }

 private:
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edges_ = 0;
};

/// Complete digraph K_n: every ordered pair (u,v), u != v.
Digraph make_complete(std::size_t n);

/// Directed ring 0 -> 1 -> ... -> n-1 -> 0.
Digraph make_ring(std::size_t n);

/// Bidirectional ring (each edge in both directions).
Digraph make_bidirectional_ring(std::size_t n);

/// Binary hypercube on n = 2^k vertices; edges in both directions across
/// every dimension (the comparison topology of §4.4).
Digraph make_hypercube(std::size_t n);

}  // namespace allconcur::graph
