#include "graph/debruijn.hpp"

#include <vector>

#include "common/assert.hpp"

namespace allconcur::graph {

Multidigraph make_generalized_de_bruijn(std::size_t m, std::size_t d) {
  // Documented fallback: below m = 2 (or with no edges requested) the
  // arithmetic degenerates to self-loops only; return the edgeless graph.
  if (m < 2 || d < 1) return Multidigraph(m);
  Multidigraph g(m);
  for (NodeId u = 0; u < m; ++u) {
    for (std::size_t a = 0; a < d; ++a) {
      g.add_edge(u, static_cast<NodeId>((u * d + a) % m));
    }
  }
  return g;
}

Multidigraph make_de_bruijn_star(std::size_t m, std::size_t d) {
  if (m < 2 || d < 1) return Multidigraph(m);  // see header
  Multidigraph g = make_generalized_de_bruijn(m, d);

  std::vector<std::size_t> loops(m);
  for (NodeId v = 0; v < m; ++v) loops[v] = g.self_loop_count(v);

  const std::size_t base = d / m;  // every vertex has at least this many
  for (NodeId v = 0; v < m; ++v) {
    ALLCONCUR_ASSERT(loops[v] == base || loops[v] == base + 1,
                     "GB self-loop count outside {floor(d/m), ceil(d/m)}");
  }

  // floor(d/m) cycles through all vertices, in index order.
  for (std::size_t j = 0; j < base; ++j) {
    for (NodeId v = 0; v < m; ++v) {
      g.remove_one_self_loop(v);
      g.add_edge(v, static_cast<NodeId>((v + 1) % m));
    }
  }

  // One extra cycle through the vertices with ceil(d/m) self-loops.
  if (d % m != 0) {
    std::vector<NodeId> extra;
    for (NodeId v = 0; v < m; ++v) {
      if (loops[v] == base + 1) extra.push_back(v);
    }
    ALLCONCUR_ASSERT(extra.size() >= 2,
                     "extra self-loop cycle needs at least two vertices");
    for (std::size_t i = 0; i < extra.size(); ++i) {
      g.remove_one_self_loop(extra[i]);
      g.add_edge(extra[i], extra[(i + 1) % extra.size()]);
    }
  }

  ALLCONCUR_ASSERT(g.is_regular(d), "G*B(m,d) must be d-regular");
  for (NodeId v = 0; v < m; ++v) {
    ALLCONCUR_ASSERT(g.self_loop_count(v) == 0,
                     "G*B(m,d) must have no self-loops");
  }
  return g;
}

Digraph line_digraph(const Multidigraph& g) {
  Multidigraph canon = g;
  canon.canonicalize();
  const auto& edges = canon.edges();

  // Bucket edge ids by tail vertex for O(E * d) construction.
  std::vector<std::vector<std::size_t>> by_tail(canon.order());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ALLCONCUR_ASSERT(edges[i].tail != edges[i].head,
                     "line digraph input must have no self-loops");
    by_tail[edges[i].tail].push_back(i);
  }

  Digraph l(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j : by_tail[edges[i].head]) {
      // Parallel edges in G map to distinct vertices of L, so (i,j) pairs
      // are unique and L is simple; i == j cannot happen (no self-loops).
      l.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  return l;
}

}  // namespace allconcur::graph
