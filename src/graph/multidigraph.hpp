// Directed multigraph, used only as an intermediate by the GS(n,d)
// construction (§4.4): the generalized de Bruijn digraph G*B(m,d) obtained
// after replacing self-loops by cycles is in general a multigraph (e.g.
// m=2, d=3 has three parallel edges each way), but its *line digraph* is
// simple, which is what ends up as the overlay.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace allconcur::graph {

class Multidigraph {
 public:
  struct Edge {
    NodeId tail;
    NodeId head;
    bool operator==(const Edge&) const = default;
  };

  explicit Multidigraph(std::size_t n) : n_(n) {}

  std::size_t order() const { return n_; }
  std::size_t edge_count() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Parallel edges and self-loops are both allowed.
  void add_edge(NodeId u, NodeId v);

  std::size_t out_degree(NodeId v) const;
  std::size_t in_degree(NodeId v) const;
  std::size_t self_loop_count(NodeId v) const;

  /// Removes one occurrence of a self-loop at v; asserts one exists.
  void remove_one_self_loop(NodeId v);

  /// True iff out_degree(v) == in_degree(v) == d for all v (self-loops
  /// count once toward each).
  bool is_regular(std::size_t d) const;

  /// Deterministic edge order: sorts the edge list by (tail, head).
  /// Call before taking the line digraph so vertex ids are reproducible.
  void canonicalize();

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

}  // namespace allconcur::graph
