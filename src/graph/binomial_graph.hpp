// Binomial graphs (Angskun, Bosilca & Dongarra 2007) — the overlay used by
// the paper's running example (§2.3) and the comparison topology of §4.4.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace allconcur::graph {

/// Binomial graph on n vertices: p_i and p_j are connected (both
/// directions) iff j = i ± 2^l (mod n) for 0 <= l <= floor(log2 n).
/// Offsets that coincide mod n are deduplicated, so e.g. n=12 yields the
/// 6-regular digraph of the paper's §4.2.3 example.
Digraph make_binomial_graph(std::size_t n);

/// Degree of the binomial graph on n vertices without building it
/// (needed for the reliability curves of Fig. 5 up to n = 2^15).
std::size_t binomial_graph_degree(std::size_t n);

}  // namespace allconcur::graph
