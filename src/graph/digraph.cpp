#include "graph/digraph.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace allconcur::graph {

Digraph::Digraph(std::size_t n) : succ_(n), pred_(n) {}

namespace {

bool sorted_contains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void sorted_insert(std::vector<NodeId>& v, NodeId x) {
  v.insert(std::upper_bound(v.begin(), v.end(), x), x);
}

}  // namespace

void Digraph::add_edge(NodeId u, NodeId v) {
  const bool inserted = add_edge_if_absent(u, v);
  ALLCONCUR_ASSERT(inserted, "duplicate edge");
}

bool Digraph::add_edge_if_absent(NodeId u, NodeId v) {
  ALLCONCUR_ASSERT(u < order() && v < order(), "vertex id out of range");
  ALLCONCUR_ASSERT(u != v, "self-loops are not allowed in an overlay");
  if (sorted_contains(succ_[u], v)) return false;
  sorted_insert(succ_[u], v);
  sorted_insert(pred_[v], u);
  ++edges_;
  return true;
}

void Digraph::remove_edge(NodeId u, NodeId v) {
  ALLCONCUR_ASSERT(u < order() && v < order(), "vertex id out of range");
  auto it = std::lower_bound(succ_[u].begin(), succ_[u].end(), v);
  ALLCONCUR_ASSERT(it != succ_[u].end() && *it == v, "edge not present");
  succ_[u].erase(it);
  auto jt = std::lower_bound(pred_[v].begin(), pred_[v].end(), u);
  ALLCONCUR_ASSERT(jt != pred_[v].end() && *jt == u, "edge not present");
  pred_[v].erase(jt);
  --edges_;
}

bool Digraph::has_edge(NodeId u, NodeId v) const {
  ALLCONCUR_ASSERT(u < order() && v < order(), "vertex id out of range");
  return sorted_contains(succ_[u], v);
}

const std::vector<NodeId>& Digraph::successors(NodeId v) const {
  ALLCONCUR_ASSERT(v < order(), "vertex id out of range");
  return succ_[v];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId v) const {
  ALLCONCUR_ASSERT(v < order(), "vertex id out of range");
  return pred_[v];
}

std::size_t Digraph::degree() const {
  std::size_t d = 0;
  for (std::size_t v = 0; v < order(); ++v) {
    d = std::max({d, succ_[v].size(), pred_[v].size()});
  }
  return d;
}

bool Digraph::is_regular() const {
  if (order() == 0) return true;
  const std::size_t d = degree();
  for (std::size_t v = 0; v < order(); ++v) {
    if (succ_[v].size() != d || pred_[v].size() != d) return false;
  }
  return true;
}

Digraph Digraph::transpose() const {
  Digraph t(order());
  t.succ_ = pred_;
  t.pred_ = succ_;
  t.edges_ = edges_;
  return t;
}

Digraph Digraph::without(const std::vector<NodeId>& removed) const {
  std::vector<bool> gone(order(), false);
  for (NodeId v : removed) {
    ALLCONCUR_ASSERT(v < order(), "vertex id out of range");
    gone[v] = true;
  }
  Digraph g(order());
  for (std::size_t u = 0; u < order(); ++u) {
    if (gone[u]) continue;
    for (NodeId v : succ_[u]) {
      if (!gone[v]) g.add_edge(static_cast<NodeId>(u), v);
    }
  }
  return g;
}

std::string Digraph::describe() const {
  std::string s = "n=" + std::to_string(order()) +
                  " m=" + std::to_string(edge_count()) +
                  " d=" + std::to_string(degree());
  if (is_regular()) s += " regular";
  return s;
}

Digraph make_complete(std::size_t n) {
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) g.add_edge(u, v);
    }
  }
  return g;
}

Digraph make_ring(std::size_t n) {
  ALLCONCUR_ASSERT(n >= 2, "ring needs at least 2 vertices");
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    g.add_edge(u, static_cast<NodeId>((u + 1) % n));
  }
  return g;
}

Digraph make_bidirectional_ring(std::size_t n) {
  ALLCONCUR_ASSERT(n >= 3, "bidirectional ring needs at least 3 vertices");
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    g.add_edge(u, static_cast<NodeId>((u + 1) % n));
    g.add_edge(static_cast<NodeId>((u + 1) % n), u);
  }
  return g;
}

Digraph make_hypercube(std::size_t n) {
  ALLCONCUR_ASSERT(n >= 2 && (n & (n - 1)) == 0, "hypercube needs n = 2^k");
  const std::uint32_t dims = floor_log2(n);
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t b = 0; b < dims; ++b) {
      g.add_edge(u, u ^ (NodeId{1} << b));
    }
  }
  return g;
}

}  // namespace allconcur::graph
