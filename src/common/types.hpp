// Fundamental identifier and time types shared across all AllConcur modules.
#pragma once

#include <cstdint>
#include <limits>

namespace allconcur {

/// Identifies a server (a vertex of the overlay digraph G).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Round number R of the concurrent atomic broadcast (monotonic, 0-based).
using Round = std::uint64_t;

/// Simulated (and wall-clock) time in nanoseconds.
using TimeNs = std::int64_t;

/// Duration in nanoseconds.
using DurationNs = std::int64_t;

inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

/// Convenience literals for building durations.
constexpr DurationNs ns(double v) { return static_cast<DurationNs>(v); }
constexpr DurationNs us(double v) { return static_cast<DurationNs>(v * 1e3); }
constexpr DurationNs ms(double v) { return static_cast<DurationNs>(v * 1e6); }
constexpr DurationNs sec(double v) { return static_cast<DurationNs>(v * 1e9); }

constexpr double to_us(DurationNs d) { return static_cast<double>(d) / 1e3; }
constexpr double to_ms(DurationNs d) { return static_cast<double>(d) / 1e6; }
constexpr double to_sec(DurationNs d) { return static_cast<double>(d) / 1e9; }

}  // namespace allconcur
