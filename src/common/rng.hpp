// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the repository (failure injection, workload
// inter-arrival times, network jitter) flows through Rng so that every
// experiment is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace allconcur {

/// xoshiro256++ seeded via splitmix64. Fast, high quality, and — unlike
/// std::mt19937 — guaranteed to produce identical streams on every
/// platform/standard-library combination.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Normally distributed (Box–Muller) value.
  double next_normal(double mean, double stddev);

  /// Derive an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace allconcur
