#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace allconcur {

void Summary::add(double sample) { samples_.push_back(sample); }

void Summary::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

std::vector<double> Summary::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

double Summary::min() const {
  ALLCONCUR_ASSERT(!samples_.empty(), "min of empty summary");
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  ALLCONCUR_ASSERT(!samples_.empty(), "max of empty summary");
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  ALLCONCUR_ASSERT(!samples_.empty(), "mean of empty summary");
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  ALLCONCUR_ASSERT(!samples_.empty(), "quantile of empty summary");
  ALLCONCUR_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  const std::vector<double> s = sorted();
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

MedianCi Summary::median_ci95() const {
  ALLCONCUR_ASSERT(!samples_.empty(), "median_ci95 of empty summary");
  const std::vector<double> s = sorted();
  MedianCi out;
  out.n = s.size();
  out.median = quantile(0.5);
  const double n = static_cast<double>(s.size());
  if (s.size() < 6) {
    // Too few samples for a meaningful order-statistic CI: report range.
    out.lo = s.front();
    out.hi = s.back();
    return out;
  }
  // Normal approximation of the binomial order-statistic ranks
  // (Hoefler & Belli, SC'15): ranks n/2 ∓ 1.96·sqrt(n)/2.
  const double half_width = 1.959964 * std::sqrt(n) * 0.5;
  long lo_rank = static_cast<long>(std::floor(n / 2.0 - half_width)) - 1;
  long hi_rank = static_cast<long>(std::ceil(n / 2.0 + half_width));
  lo_rank = std::max(lo_rank, 0L);
  hi_rank = std::min(hi_rank, static_cast<long>(s.size()) - 1);
  out.lo = s[static_cast<std::size_t>(lo_rank)];
  out.hi = s[static_cast<std::size_t>(hi_rank)];
  return out;
}

}  // namespace allconcur
