// Summary statistics used by the benchmark harness.
//
// The paper reports "the median and the 95% nonparametric confidence
// interval around it" (Hoefler & Belli, SC'15, rule 7); Summary implements
// exactly that: order-statistic based CI ranks from the binomial
// distribution, no normality assumption.
#pragma once

#include <cstddef>
#include <vector>

namespace allconcur {

struct MedianCi {
  double median = 0.0;
  double lo = 0.0;    ///< lower bound of the 95% CI around the median
  double hi = 0.0;    ///< upper bound of the 95% CI around the median
  std::size_t n = 0;  ///< sample count
};

/// Accumulates samples; all queries are O(n log n) on demand.
class Summary {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Median with a 95% nonparametric (order statistic) confidence interval.
  MedianCi median_ci95() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> sorted() const;
  std::vector<double> samples_;
};

}  // namespace allconcur
