#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace allconcur {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ALLCONCUR_ASSERT(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  ALLCONCUR_ASSERT(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace allconcur
