// Minimal command-line flag parsing for the benchmark/example executables.
//
// Syntax: --name=value or --name value; bare --name sets a bool flag.
// Malformed arguments (not starting with --) abort with a usage message.
// Unknown flag *names* are collected but otherwise ignored — callers that
// want typo protection can validate against all().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace allconcur {

class Flags {
 public:
  /// Parses argv; aborts with a message on malformed input.
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated list of integers, e.g. --sizes=8,16,32.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& def) const;

  /// Names seen on the command line (for unknown-flag checking by callers).
  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace allconcur
