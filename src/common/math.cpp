#include "common/math.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace allconcur {

double log_choose(std::uint64_t n, std::uint64_t k) {
  ALLCONCUR_ASSERT(k <= n, "log_choose requires k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  ALLCONCUR_ASSERT(p >= 0.0 && p <= 1.0, "p must be a probability");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_choose(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_tail_geq(std::uint64_t n, std::uint64_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // For the reliability regime (n*p << k) the tail is dominated by the
  // first term; sum upward until terms vanish.
  double total = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) {
    const double term = binomial_pmf(n, i, p);
    total += term;
    if (term < total * 1e-18 && i > k + 4) break;
  }
  return total > 1.0 ? 1.0 : total;
}

double binomial_cdf_lt(std::uint64_t n, std::uint64_t k, double p) {
  return 1.0 - binomial_tail_geq(n, k, p);
}

double failure_probability(double delta, double mttf) {
  ALLCONCUR_ASSERT(mttf > 0.0, "MTTF must be positive");
  ALLCONCUR_ASSERT(delta >= 0.0, "interval must be non-negative");
  return 1.0 - std::exp(-delta / mttf);
}

double nines(double reliability) {
  ALLCONCUR_ASSERT(reliability >= 0.0 && reliability <= 1.0,
                   "reliability must be a probability");
  const double complement = 1.0 - reliability;
  if (complement <= 1e-20) return 20.0;
  return -std::log10(complement);
}

std::uint32_t floor_log2(std::uint64_t x) {
  ALLCONCUR_ASSERT(x >= 1, "floor_log2 requires x >= 1");
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

}  // namespace allconcur
