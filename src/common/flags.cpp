#include "common/flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace allconcur {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace allconcur
