// Numerics for the reliability analysis (§4.2.2, §4.4 of the paper).
//
// Reliability targets like 6-nines require evaluating binomial tails of
// order 1e-12 for n up to 2^15; everything is computed in log space.
#pragma once

#include <cstdint>

namespace allconcur {

/// ln C(n, k). Exact via lgamma; valid for 0 <= k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

/// P[X = k] for X ~ Binomial(n, p).
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// P[X >= k] for X ~ Binomial(n, p). Summed from the small tail side.
double binomial_tail_geq(std::uint64_t n, std::uint64_t k, double p);

/// P[X < k] = 1 - P[X >= k]; the paper's reliability sum
/// ρ_G = Σ_{i=0}^{k-1} C(n,i) p^i (1-p)^{n-i}.
double binomial_cdf_lt(std::uint64_t n, std::uint64_t k, double p);

/// Probability that a server fails within Δ given an exponential lifetime
/// with the given MTTF (same units): p_f = 1 - e^{-Δ/MTTF}.
double failure_probability(double delta, double mttf);

/// Express a reliability r as "number of nines": -log10(1 - r).
/// Saturates at 20 nines for r == 1.
double nines(double reliability);

/// floor(log2(x)) for x >= 1.
std::uint32_t floor_log2(std::uint64_t x);

}  // namespace allconcur
