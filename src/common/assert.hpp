// Assertion macro that stays on in release builds: protocol invariants are
// cheap relative to message handling and silent corruption is far worse.
#pragma once

#include <cstdio>
#include <cstdlib>

#define ALLCONCUR_ASSERT(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "ALLCONCUR_ASSERT failed at %s:%d: %s — %s\n", \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
