// Paired ⟨G_U, G_R⟩ overlay construction for the dual-digraph fast path
// (AllConcur+, "A Dual Digraph Approach for Leaderless Atomic Broadcast").
//
// The two overlays trade fault tolerance for speed in opposite
// directions:
//   * G_R — the reliable digraph: GS(n,d) with the paper's Table 3
//     degrees (core::make_default_graph_builder), vertex-connectivity d,
//     bounded fault diameter. Message tracking and ⟨FAIL⟩ dissemination
//     run over it; it is what makes rounds with failures terminate.
//   * G_U — the unreliable digraph: minimal machinery for the failure-free
//     common case. Strong connectivity (k = 1) is all a fast round needs
//     — completion requires every message to reach everyone, and any
//     missing message triggers the fallback anyway — so G_U optimizes
//     degree and diameter instead: a binary generalized de Bruijn shape,
//     degree ≤ 2 and diameter ~log2 n, roughly d/2 times fewer relay
//     messages per round than G_R.
//
// analyze_pairing() computes the table the README and allconcur_topo
// print: per-overlay degree, diameter, connectivity, fault diameter, and
// the per-round message cost of the fast vs the fallback path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/view.hpp"
#include "graph/digraph.hpp"

namespace allconcur::plus {

/// Builder for the unreliable overlay G_U: the binary generalized de
/// Bruijn digraph GB(n,2) (edges u -> 2u+a mod n) with self-loops
/// dropped — strongly connected, out-degree ≤ 2, diameter ≤ ⌈log2 n⌉+1.
/// Degenerate sizes (n < 4) fall back to the directed ring (n ≤ 2: the
/// complete digraph), mirroring the GS builder's degenerate handling.
core::GraphBuilder make_unreliable_builder();

/// One row of the pairing table for a given system size.
struct OverlayPairing {
  std::size_t n = 0;
  // G_U (fast path).
  std::size_t u_degree = 0;
  std::optional<std::size_t> u_diameter;
  std::size_t u_connectivity = 0;
  std::size_t u_edges = 0;          ///< relay messages per fast round
  // G_R (fallback path).
  std::size_t r_degree = 0;
  std::optional<std::size_t> r_diameter;
  std::size_t r_connectivity = 0;
  std::optional<std::size_t> r_fault_diameter;  ///< D_f(G_R, k-1) bound
  std::size_t r_edges = 0;          ///< relay messages per tracked round
};

/// Builds both overlays for size n and measures the pairing. Connectivity
/// and fault diameter are exact for small n and degree-bounded estimates
/// above `exact_up_to` (they are Ω(n^3) computations).
OverlayPairing analyze_pairing(std::size_t n,
                               const core::GraphBuilder& fast_builder,
                               const core::GraphBuilder& reliable_builder,
                               std::size_t exact_up_to = 64);

/// Human-readable one-line summary of a pairing row.
std::string describe_pairing(const OverlayPairing& p);

}  // namespace allconcur::plus
