// AllConcur+ — the dual-digraph fast path subsystem.
//
// AllConcur pays the full message-tracking cost (per-round tracking
// digraphs, ⟨FAIL⟩ propagation machinery) in every round even though
// failures are rare. The follow-up paper "A Dual Digraph Approach for
// Leaderless Atomic Broadcast" races an *unreliable* digraph G_U (no
// tracking, minimal vertex-connectivity, small diameter) against the
// *reliable* digraph G_R, falling back to tracked rounds only on
// suspicion — large failure-free speedups while preserving set agreement.
//
// This repo implements it as a mode of the round engine:
//   * plus/dual_overlay — paired ⟨G_U, G_R⟩ construction and analysis
//   * plus/fallback_timer — the round watchdog both deployments share
//   * core/engine — per-round fast/fallback mode, fast bitmap completion,
//     the ⟨UBCAST⟩/⟨FALLBACK⟩ wire protocol, the fallback transition and
//     its FIFO relay discipline, delivered-round retention for late
//     assists (EngineOptions::fast_builder enables it)
//   * api/SimCluster (ClusterOptions::fast_builder / fallback_timeout)
//     and net/TcpNode (TcpNodeOptions::fast_builder / fallback_timeout)
//     route both overlays' links and monitor their union
//
// Enable on a simulated deployment:
//
//   api::ClusterOptions opt;
//   opt.n = 32;
//   opt.fast_builder = plus::make_unreliable_builder();
//   opt.fallback_timeout = ms(50);
//   api::SimCluster cluster(opt);   // failure-free rounds now run G_U
//
// and equivalently on TcpNode via TcpNodeOptions. bench/dual_digraph
// measures the fast-vs-reliable gap and the fallback cost;
// tests/property_dual_test proves delivered-set equivalence across fast,
// fallback, and mixed histories.
#pragma once

#include "plus/dual_overlay.hpp"   // IWYU pragma: export
#include "plus/fallback_timer.hpp" // IWYU pragma: export
