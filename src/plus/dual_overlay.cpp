#include "plus/dual_overlay.hpp"

#include <cstdio>

#include "graph/connectivity.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/properties.hpp"

namespace allconcur::plus {

core::GraphBuilder make_unreliable_builder() {
  return [](std::size_t n) -> graph::Digraph {
    if (n <= 1) return graph::Digraph(n);
    if (n <= 2) return graph::make_complete(n);
    if (n < 4) return graph::make_ring(n);
    graph::Digraph g(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t a = 0; a < 2; ++a) {
        const std::size_t v = (2 * u + a) % n;
        // GB(n,2) has self-loops at u = 0 (a = 0) and u = n-1 (a = 1);
        // an overlay never wants them. Dropping them keeps the digraph
        // strongly connected for n >= 3: vertex 0 still reaches out via
        // 0 -> 1 and n-1 via n-1 -> n-2, and every vertex keeps an
        // in-edge from floor(v/2) or (n+v)/2.
        if (v == u) continue;
        g.add_edge_if_absent(static_cast<NodeId>(u),
                             static_cast<NodeId>(v));
      }
    }
    return g;
  };
}

OverlayPairing analyze_pairing(std::size_t n,
                               const core::GraphBuilder& fast_builder,
                               const core::GraphBuilder& reliable_builder,
                               std::size_t exact_up_to) {
  OverlayPairing p;
  p.n = n;
  const graph::Digraph g_u = fast_builder(n);
  const graph::Digraph g_r = reliable_builder(n);

  p.u_degree = g_u.degree();
  p.u_diameter = graph::diameter(g_u);
  p.u_connectivity = n <= exact_up_to && n >= 2
                         ? graph::vertex_connectivity(g_u)
                         : (n >= 2 ? 1 : 0);
  p.u_edges = g_u.edge_count();

  p.r_degree = g_r.degree();
  p.r_diameter = graph::diameter(g_r);
  p.r_connectivity =
      n <= exact_up_to && n >= 2 ? graph::vertex_connectivity(g_r)
                                 : g_r.degree();
  p.r_edges = g_r.edge_count();
  if (p.r_connectivity >= 1) {
    p.r_fault_diameter =
        graph::fault_diameter_bound(g_r, p.r_connectivity - 1);
  }
  return p;
}

std::string describe_pairing(const OverlayPairing& p) {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "n=%zu  G_U: d=%zu D=%zu k=%zu msgs=%zu | G_R: d=%zu D=%zu k=%zu "
      "D_f=%zu msgs=%zu",
      p.n, p.u_degree, p.u_diameter.value_or(0), p.u_connectivity,
      p.u_edges, p.r_degree, p.r_diameter.value_or(0), p.r_connectivity,
      p.r_fault_diameter.value_or(0), p.r_edges);
  return std::string(buf);
}

}  // namespace allconcur::plus
