// Deployment-agnostic round watchdog for the dual-digraph fast path.
//
// A fast round has no tracking, so a missing message produces no local
// evidence — only silence. The watchdog turns silence into the fallback
// transition: when the engine's in-progress round has been armed (own
// broadcast out, or any message received) and unchanged for longer than
// the timeout, poll() returns the round to hand to
// Engine::on_round_timeout(). Both deployments drive it — SimCluster from
// a scheduled tick on virtual time, TcpNode from its event-loop wake on
// the monotonic clock — so the stall-detection policy lives in exactly
// one place.
//
// With a flight recorder attached, arming, progress re-arms and fires
// are recorded against the watched round (kTimerArm/kTimerRearm/
// kTimerFire, the fire carrying the observed round age) — a dump then
// answers "why did this round fall back" directly: a fire after silence
// shows one arm and a timeout-aged fire; a gray-failure trickle shows
// the re-arm train hitting the age cap.
#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"
#include "obs/recorder.hpp"

namespace allconcur::plus {

class FallbackTimer {
 public:
  /// `timeout` <= 0 disables the watchdog (poll never fires).
  /// `max_round_age` caps how long progress re-arms can defer the fallback
  /// for one round: 0 picks the default of 8x the timeout, < 0 disables
  /// the cap (the pre-cap behaviour — vulnerable to gray-failure trickle).
  explicit FallbackTimer(DurationNs timeout, DurationNs max_round_age = 0)
      : timeout_(timeout),
        max_round_age_(max_round_age == 0 ? 8 * timeout : max_round_age) {}

  DurationNs timeout() const { return timeout_; }
  DurationNs max_round_age() const { return max_round_age_; }

  /// Observability tap (may be null): owned by the deployment, shared
  /// with its engine so watchdog events interleave with the round
  /// lifecycle they explain.
  void set_recorder(obs::FlightRecorder* rec) { rec_ = rec; }

  /// Reports the engine's current state; returns the round to time out
  /// when it has been stuck-and-armed past the timeout with no progress.
  /// `progress` is the round's monotone activity counter
  /// (Engine::front_round_progress): 0 means unarmed (an idle round is
  /// merely quiet — the deadline starts counting only once the round
  /// arms), and any movement re-arms the deadline, so a legitimately
  /// slow round with traffic still flowing is not timed out. After
  /// firing the deadline re-arms, so a round that stays stuck (e.g. the
  /// fallback traffic itself was lost) fires again a full timeout later
  /// — the engine re-floods the transition on such re-fires.
  ///
  /// Re-arming is bounded by max_round_age: a gray-failed peer that
  /// trickles one frame per timeout would otherwise re-arm the deadline
  /// forever and the round would never fall back. Once the watched round
  /// has been armed for longer than the cap, progress movement no longer
  /// defers the fallback.
  std::optional<Round> poll(Round current, std::size_t progress,
                            TimeNs now) {
    if (timeout_ <= 0) return std::nullopt;
    if (current != watched_ || !started_) {
      watched_ = current;
      progress_ = progress;
      since_ = now;
      armed_at_ = progress > 0 ? now : kTimeNever;
      started_ = true;
      if (rec_ && progress > 0) {
        rec_->record(obs::EventKind::kTimerArm, watched_);
      }
      return std::nullopt;
    }
    if (progress == 0) {
      // Unarmed (idle) round: neither the deadline nor the age run.
      progress_ = progress;
      since_ = now;
      armed_at_ = kTimeNever;
      return std::nullopt;
    }
    if (armed_at_ == kTimeNever) {
      armed_at_ = now;
      if (rec_) rec_->record(obs::EventKind::kTimerArm, watched_);
    }
    const bool aged =
        max_round_age_ > 0 && now - armed_at_ >= max_round_age_;
    if (progress != progress_) {
      progress_ = progress;
      since_ = now;
      if (!aged) {
        if (rec_) {
          rec_->record(obs::EventKind::kTimerRearm, watched_,
                       static_cast<std::uint64_t>(now - armed_at_));
        }
        return std::nullopt;
      }
      // Trickling progress past the age cap no longer buys deferral.
      if (rec_) {
        rec_->record(obs::EventKind::kTimerFire, watched_,
                     static_cast<std::uint64_t>(now - armed_at_), progress);
      }
      armed_at_ = now;  // pace re-fires: restart the age window
      return watched_;
    }
    if (now - since_ < timeout_) return std::nullopt;
    if (rec_) {
      rec_->record(obs::EventKind::kTimerFire, watched_,
                   static_cast<std::uint64_t>(now - armed_at_), progress);
    }
    since_ = now;  // re-arm
    return watched_;
  }

  void reset() { started_ = false; }

 private:
  DurationNs timeout_;
  DurationNs max_round_age_;
  Round watched_ = 0;
  std::size_t progress_ = 0;
  TimeNs since_ = 0;
  /// When the watched round first showed progress (kTimeNever = unarmed).
  TimeNs armed_at_ = kTimeNever;
  bool started_ = false;
  obs::FlightRecorder* rec_ = nullptr;
};

}  // namespace allconcur::plus
