#include "chaos/scenario.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::chaos {

Scenario& Scenario::add(Phase p) {
  ALLCONCUR_ASSERT(p.from < p.until, "phase interval must be non-empty");
  phases_.push_back(std::move(p));
  return *this;
}

Scenario& Scenario::partition(TimeNs from, TimeNs until,
                              std::vector<NodeId> group) {
  Phase p;
  p.kind = Phase::Kind::kPartition;
  p.from = from;
  p.until = until;
  p.group = std::move(group);
  return add(std::move(p));
}

Scenario& Scenario::link_down(TimeNs from, TimeNs until, NodeId src,
                              NodeId dst) {
  Phase p;
  p.kind = Phase::Kind::kLinkDown;
  p.from = from;
  p.until = until;
  p.src = src;
  p.dst = dst;
  return add(std::move(p));
}

Scenario& Scenario::flap_link(TimeNs from, TimeNs until, NodeId src,
                              NodeId dst, DurationNs period) {
  ALLCONCUR_ASSERT(period > 1, "flap period must span at least 2 ns");
  Phase p;
  p.kind = Phase::Kind::kFlap;
  p.from = from;
  p.until = until;
  p.src = src;
  p.dst = dst;
  p.period = period;
  return add(std::move(p));
}

Scenario& Scenario::gray(TimeNs from, TimeNs until, NodeId node,
                         DurationNs slowdown, double drop) {
  Phase p;
  p.kind = Phase::Kind::kGray;
  p.from = from;
  p.until = until;
  p.src = node;
  p.slowdown = slowdown;
  p.faults.drop = drop;
  return add(std::move(p));
}

Scenario& Scenario::faults(TimeNs from, TimeNs until, LinkFaults f) {
  Phase p;
  p.kind = Phase::Kind::kFaults;
  p.from = from;
  p.until = until;
  p.faults = f;
  return add(std::move(p));
}

Scenario& Scenario::link_faults(TimeNs from, TimeNs until, NodeId src,
                                NodeId dst, LinkFaults f) {
  Phase p;
  p.kind = Phase::Kind::kFaults;
  p.from = from;
  p.until = until;
  p.src = src;
  p.dst = dst;
  p.faults = f;
  return add(std::move(p));
}

ScenarioEngine::ScenarioEngine(Scenario scenario)
    : scenario_(std::move(scenario)) {}

void ScenarioEngine::set_epoch(TimeNs t0) {
  const std::lock_guard<std::mutex> lock(mutex_);
  epoch_ = t0;
}

Rng& ScenarioEngine::link_rng(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Independent per-link stream derived from (seed, src, dst): a frame's
    // draws depend only on its link and its position in that link's
    // sequence, never on global interleaving.
    const std::uint64_t mix =
        scenario_.seed() ^
        (static_cast<std::uint64_t>(src) + 1) * 0x9e3779b97f4a7c15ull ^
        (static_cast<std::uint64_t>(dst) + 1) * 0xc2b2ae3d27d4eb4full;
    it = links_.emplace(key, Rng(mix)).first;
  }
  return it->second;
}

Action ScenarioEngine::on_frame(NodeId src, NodeId dst, TimeNs now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!epoch_) epoch_ = now;
  const TimeNs t = now - *epoch_;
  ++stats_.frames_seen;

  Action a;
  for (const auto& ph : scenario_.phases()) {
    if (t < ph.from || t >= ph.until) continue;
    switch (ph.kind) {
      case Scenario::Phase::Kind::kPartition: {
        const bool src_in = std::find(ph.group.begin(), ph.group.end(),
                                      src) != ph.group.end();
        const bool dst_in = std::find(ph.group.begin(), ph.group.end(),
                                      dst) != ph.group.end();
        if (src_in != dst_in) a.drop = true;
        break;
      }
      case Scenario::Phase::Kind::kLinkDown:
        if (ph.src == src && ph.dst == dst) a.drop = true;
        break;
      case Scenario::Phase::Kind::kFlap:
        if (ph.src == src && ph.dst == dst &&
            (t - ph.from) % ph.period < ph.period / 2) {
          a.drop = true;
        }
        break;
      case Scenario::Phase::Kind::kGray:
        if (ph.src == src) {
          a.delay += ph.slowdown;
          if (ph.faults.drop > 0 &&
              link_rng(src, dst).next_double() < ph.faults.drop) {
            a.drop = true;
          }
        }
        break;
      case Scenario::Phase::Kind::kFaults: {
        if (ph.src != kInvalidNode && ph.src != src) break;
        if (ph.dst != kInvalidNode && ph.dst != dst) break;
        Rng& rng = link_rng(src, dst);
        const LinkFaults& f = ph.faults;
        // Fixed draw order per active phase keeps the stream aligned
        // between any two engines fed the same frame sequence.
        if (f.drop > 0 && rng.next_double() < f.drop) a.drop = true;
        if (f.duplicate > 0 && rng.next_double() < f.duplicate) {
          a.duplicate = true;
        }
        if (f.corrupt > 0 && rng.next_double() < f.corrupt) {
          a.corrupt = true;
          a.corrupt_at = rng.next_u64();
        }
        if (f.reorder > 0 && rng.next_double() < f.reorder) {
          a.delay += static_cast<DurationNs>(rng.next_below(
              static_cast<std::uint64_t>(f.reorder_jitter) + 1));
        }
        break;
      }
    }
  }

  if (a.drop) {
    ++stats_.dropped;
  } else {
    if (a.duplicate) ++stats_.duplicated;
    if (a.corrupt) ++stats_.corrupted;
    if (a.delay > 0) ++stats_.delayed;
  }
  return a;
}

InjectionStats ScenarioEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t ScenarioEngine::active_phase_mask(TimeNs now) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!epoch_) return 0;
  const TimeNs t = now - *epoch_;
  std::uint64_t mask = 0;
  const auto& phases = scenario_.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (t >= phases[i].from && t < phases[i].until) {
      mask |= 1ull << std::min<std::size_t>(i, 63);
    }
  }
  return mask;
}

}  // namespace allconcur::chaos
