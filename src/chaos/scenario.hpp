// Adversarial scenario engine: composable, seeded fault injection.
//
// AllConcur's correctness argument (early termination via tracking
// digraphs, §3) and the companion safety proof are stated over adversarial
// schedules, not just clean crashes. chaos::Scenario is a declarative
// timeline of fault phases — partitions/heals, asymmetric and flapping
// links, probabilistic reorder/duplication/corruption, and gray failures
// (slow-but-alive) — and chaos::ScenarioEngine turns it into one verdict
// per outbound frame. The same engine drives both deployments: the sim
// fabric consults it through sim::NetworkModel's fault hook, and
// net::TcpNode interposes it on the send path (extending the send_delay
// netem knob), so a committed seed replays the identical fault schedule
// on virtual time and on real sockets alike.
//
// Determinism: every probabilistic decision is drawn from a per-link
// stream keyed on (seed, src, dst) and advanced exactly once per frame,
// so the n-th frame on a link gets the same verdict regardless of global
// interleaving. Timeline phases are keyed on time *since the engine's
// epoch* (first frame observed, or set_epoch), which aligns sim time and
// the monotonic clock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace allconcur::chaos {

/// Per-frame verdict: what happens to one outbound frame on one link.
struct Action {
  bool drop = false;       ///< lose the frame (partition, link-down, loss)
  bool duplicate = false;  ///< deliver a second, unmodified copy
  bool corrupt = false;    ///< flip one wire byte (checksum must catch it)
  DurationNs delay = 0;    ///< extra latency (gray slowdown, reorder jitter)
  std::uint64_t corrupt_at = 0;  ///< which byte to flip (mod frame size)
};

/// Probabilistic per-link fault knobs active during a phase.
struct LinkFaults {
  double drop = 0.0;       ///< P(lose the frame)
  double duplicate = 0.0;  ///< P(deliver it twice)
  double corrupt = 0.0;    ///< P(flip a byte)
  double reorder = 0.0;    ///< P(add jitter — reorders against other links)
  DurationNs reorder_jitter = 0;  ///< max extra delay when jittered
};

/// A seeded, declarative fault timeline. Builder methods append phases;
/// all intervals are half-open [from, until) in nanoseconds since the
/// engine's epoch. Phases compose: every phase active at a frame's send
/// time contributes to its verdict.
class Scenario {
 public:
  explicit Scenario(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Symmetric partition: frames crossing the group boundary are dropped.
  Scenario& partition(TimeNs from, TimeNs until, std::vector<NodeId> group);
  /// Asymmetric link failure: src -> dst frames are dropped (the reverse
  /// direction is untouched).
  Scenario& link_down(TimeNs from, TimeNs until, NodeId src, NodeId dst);
  /// Flapping link: src -> dst is down during the first half of every
  /// `period`, up during the second half.
  Scenario& flap_link(TimeNs from, TimeNs until, NodeId src, NodeId dst,
                      DurationNs period);
  /// Gray failure: everything `node` sends is delayed by `slowdown` and
  /// dropped with probability `drop` — slow-but-alive, the failure mode
  /// heartbeat detectors are worst at.
  Scenario& gray(TimeNs from, TimeNs until, NodeId node, DurationNs slowdown,
                 double drop = 0.0);
  /// Probabilistic faults on every link.
  Scenario& faults(TimeNs from, TimeNs until, LinkFaults f);
  /// Probabilistic faults on one directed link.
  Scenario& link_faults(TimeNs from, TimeNs until, NodeId src, NodeId dst,
                        LinkFaults f);

  struct Phase {
    enum class Kind { kPartition, kLinkDown, kFlap, kGray, kFaults };
    Kind kind = Kind::kFaults;
    TimeNs from = 0;
    TimeNs until = kTimeNever;
    std::vector<NodeId> group;       ///< kPartition
    NodeId src = kInvalidNode;       ///< link scope (kInvalidNode = any);
                                     ///< kGray: the gray node
    NodeId dst = kInvalidNode;
    DurationNs period = 0;           ///< kFlap
    DurationNs slowdown = 0;         ///< kGray
    LinkFaults faults;               ///< kFaults; kGray uses faults.drop
  };
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  Scenario& add(Phase p);

  std::uint64_t seed_;
  std::vector<Phase> phases_;
};

/// Injection-side counters. The wire checksum counters
/// (TcpNetStats::checksum_drops, SimCluster::corrupt_dropped) are the
/// detection side; the chaos gate asserts injected corruption is always
/// detected — never silently delivered.
struct InjectionStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
};

/// Evaluates a Scenario frame by frame. Thread-safe: TCP deployments share
/// one engine across per-node event-loop threads.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(Scenario scenario);

  const Scenario& scenario() const { return scenario_; }

  /// Pins t = 0 of the scenario timeline. Unset, the first on_frame call
  /// adopts its `now` as the epoch — correct for both the simulator
  /// (starts near 0) and wall-clock deployments (arbitrary monotonic
  /// origin).
  void set_epoch(TimeNs t0);

  /// One verdict for one outbound frame on (src, dst) at local time `now`.
  /// Deterministic given the call sequence: probabilistic draws come from
  /// the per-link stream and advance once per active faults phase.
  Action on_frame(NodeId src, NodeId dst, TimeNs now);

  InjectionStats stats() const;

  /// Bitmask of scenario phases whose [from, until) interval covers
  /// `now` (bit i = phases()[i]; phases beyond 64 saturate into bit 63).
  /// 0 before the epoch is pinned. Deployments record phase-set changes
  /// into the flight recorder so a dump shows which faults were live
  /// around each round.
  std::uint64_t active_phase_mask(TimeNs now) const;

 private:
  Rng& link_rng(NodeId src, NodeId dst);

  Scenario scenario_;
  mutable std::mutex mutex_;
  std::optional<TimeNs> epoch_;
  std::map<std::pair<NodeId, NodeId>, Rng> links_;
  InjectionStats stats_;
};

using ScenarioEngineRef = std::shared_ptr<ScenarioEngine>;

}  // namespace allconcur::chaos
