#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace allconcur::sim {

void Simulator::schedule(DurationNs delay, Action fn) {
  ALLCONCUR_ASSERT(delay >= 0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(TimeNs t, Action fn) {
  ALLCONCUR_ASSERT(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run_until(TimeNs t_end) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= t_end) {
    // Copy out before pop: the action may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++processed_;
  }
  if (now_ < t_end) now_ = t_end;
  return ran;
}

std::size_t Simulator::run_to_completion(std::size_t max_events) {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    ALLCONCUR_ASSERT(ran < max_events, "simulation exceeded event budget");
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++ran;
    ++processed_;
  }
  return ran;
}

}  // namespace allconcur::sim
