// Workload generators for the three §1.1 application scenarios and the §5
// benchmarks. All generators answer one question for the round-driver:
// "how many request bytes has this server accumulated since its previous
// broadcast?" — either as a fluid approximation (exact at high rates,
// avoids per-request events) or as discrete Poisson arrivals (faithful at
// low rates, e.g. player actions).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace allconcur::sim {

/// Fluid constant-rate source (Fig. 8/9 travel-reservation & exchange
/// workloads): requests_per_sec * request_bytes flow in continuously;
/// take() returns whole requests' worth of bytes, carrying the remainder.
class FluidRate {
 public:
  FluidRate(double requests_per_sec, std::size_t request_bytes);

  /// Bytes of whole requests accumulated in [last_take, now).
  std::size_t take(TimeNs now);

  std::size_t request_bytes() const { return request_bytes_; }
  double offered_rate() const { return requests_per_sec_; }

 private:
  double requests_per_sec_;
  std::size_t request_bytes_;
  TimeNs last_ = 0;
  double carry_bytes_ = 0.0;
};

/// Discrete Poisson arrivals (memoryless inter-arrival times) — the right
/// model for sparse request streams such as player actions; take() counts
/// the arrivals that fell in the elapsed window.
class PoissonArrivals {
 public:
  PoissonArrivals(double requests_per_sec, std::size_t request_bytes,
                  Rng rng);

  /// Bytes of requests that arrived in [last_take, now).
  std::size_t take(TimeNs now);
  std::size_t count_in(TimeNs now);  ///< same, as a request count

  std::size_t request_bytes() const { return request_bytes_; }

 private:
  double rate_per_ns_;
  std::size_t request_bytes_;
  Rng rng_;
  TimeNs next_arrival_;
};

/// A game player (Fig. 9a): actions-per-minute converted to Poisson
/// arrivals of fixed-size updates (the paper's 40-byte actions).
PoissonArrivals make_apm_player(double apm, std::size_t update_bytes,
                                Rng rng);

/// Splits a system-wide constant rate (Fig. 9b exchanges) evenly across n
/// servers as fluid sources.
FluidRate make_global_rate_share(double global_requests_per_sec,
                                 std::size_t n, std::size_t request_bytes);

}  // namespace allconcur::sim
