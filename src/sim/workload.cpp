#include "sim/workload.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace allconcur::sim {

FluidRate::FluidRate(double requests_per_sec, std::size_t request_bytes)
    : requests_per_sec_(requests_per_sec), request_bytes_(request_bytes) {
  ALLCONCUR_ASSERT(requests_per_sec >= 0.0, "negative rate");
  ALLCONCUR_ASSERT(request_bytes > 0, "requests must have a size");
}

std::size_t FluidRate::take(TimeNs now) {
  ALLCONCUR_ASSERT(now >= last_, "time went backwards");
  carry_bytes_ += requests_per_sec_ * static_cast<double>(request_bytes_) *
                  static_cast<double>(now - last_) / 1e9;
  last_ = now;
  const double whole = std::floor(carry_bytes_ /
                                  static_cast<double>(request_bytes_));
  const std::size_t bytes =
      static_cast<std::size_t>(whole) * request_bytes_;
  carry_bytes_ -= static_cast<double>(bytes);
  return bytes;
}

PoissonArrivals::PoissonArrivals(double requests_per_sec,
                                 std::size_t request_bytes, Rng rng)
    : rate_per_ns_(requests_per_sec / 1e9),
      request_bytes_(request_bytes),
      rng_(rng) {
  ALLCONCUR_ASSERT(requests_per_sec > 0.0, "Poisson rate must be positive");
  ALLCONCUR_ASSERT(request_bytes > 0, "requests must have a size");
  next_arrival_ =
      static_cast<TimeNs>(rng_.next_exponential(1.0 / rate_per_ns_));
}

std::size_t PoissonArrivals::count_in(TimeNs now) {
  std::size_t count = 0;
  while (next_arrival_ < now) {
    ++count;
    next_arrival_ +=
        static_cast<TimeNs>(rng_.next_exponential(1.0 / rate_per_ns_));
  }
  return count;
}

std::size_t PoissonArrivals::take(TimeNs now) {
  return count_in(now) * request_bytes_;
}

PoissonArrivals make_apm_player(double apm, std::size_t update_bytes,
                                Rng rng) {
  return PoissonArrivals(apm / 60.0, update_bytes, rng);
}

FluidRate make_global_rate_share(double global_requests_per_sec,
                                 std::size_t n, std::size_t request_bytes) {
  ALLCONCUR_ASSERT(n > 0, "need at least one server");
  return FluidRate(global_requests_per_sec / static_cast<double>(n),
                   request_bytes);
}

}  // namespace allconcur::sim
