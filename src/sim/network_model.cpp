#include "sim/network_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::sim {

FabricParams FabricParams::infiniband() {
  FabricParams p;
  p.latency = ns(1250);
  p.overhead = ns(380);
  // Verbs saturate the 40 Gbps (5 GB/s) link from a single QP.
  p.stream_ns_per_byte = 0.2;
  p.nic_ns_per_byte = 0.2;
  p.congestion_threshold_bytes = 0;
  return p;
}

FabricParams FabricParams::tcp_ib() {
  FabricParams p;
  p.latency = us(12);
  p.overhead = us(1.8);
  // IPoIB: a single TCP stream reaches ~10 Gbps; the single-threaded
  // event loop handles rx+tx bytes at ~5 GB/s combined.
  p.stream_ns_per_byte = 0.8;
  p.nic_ns_per_byte = 0.2;
  p.shared_cpu = true;
  p.congestion_threshold_bytes = 128 * 1024;
  p.congestion_penalty = 1.35;
  return p;
}

FabricParams FabricParams::tcp_xc40() {
  FabricParams p;
  p.latency = us(14);
  p.overhead = us(1.8);
  // Single-stream TCP ~12 Gbps; the binding per-node limit is the
  // single-threaded TCP/event-loop byte processing (~5 GB/s for rx+tx
  // combined), not the Aries link.
  p.stream_ns_per_byte = 0.55;
  p.nic_ns_per_byte = 0.25;
  p.shared_cpu = true;
  p.congestion_threshold_bytes = 128 * 1024;
  p.congestion_penalty = 1.35;
  return p;
}

NetworkModel::NetworkModel(FabricParams params, std::size_t nodes)
    : params_(params),
      egress_free_(nodes, 0),
      ingress_free_(nodes, 0),
      conn_free_(nodes * nodes, 0),
      nodes_(nodes) {}

double NetworkModel::stream_time(std::size_t bytes) const {
  double t = static_cast<double>(bytes) * params_.stream_ns_per_byte;
  if (params_.congestion_threshold_bytes != 0 &&
      bytes > params_.congestion_threshold_bytes) {
    t *= params_.congestion_penalty;
  }
  return t;
}

TimeNs NetworkModel::sender_done(NodeId src, NodeId dst, std::size_t bytes,
                                 TimeNs now) {
  ALLCONCUR_ASSERT(src < nodes_ && dst < nodes_, "node id out of range");
  // Egress CPU + NIC serialization, shared across all connections of src
  // (and, for single-threaded transports, with the receive side).
  TimeNs& egress =
      params_.shared_cpu ? ingress_free_[src] : egress_free_[src];
  const TimeNs start = std::max(now, egress);
  const TimeNs nic_done =
      start + params_.overhead +
      static_cast<DurationNs>(static_cast<double>(bytes) * params_.nic_ns_per_byte);
  egress = nic_done;

  // Per-connection pacing: a single stream cannot exceed its rate.
  TimeNs& conn = conn_free_[src * nodes_ + dst];
  const TimeNs stream_done =
      std::max(nic_done, conn) + static_cast<DurationNs>(stream_time(bytes));
  conn = stream_done;
  return stream_done;
}

TimeNs NetworkModel::receiver_done(NodeId dst, std::size_t bytes,
                                   TimeNs arrival_at) {
  ALLCONCUR_ASSERT(dst < nodes_, "node id out of range");
  const TimeNs start = std::max(arrival_at, ingress_free_[dst]);
  const TimeNs done =
      start + params_.overhead +
      static_cast<DurationNs>(static_cast<double>(bytes) * params_.nic_ns_per_byte);
  ingress_free_[dst] = done;
  return done;
}

DurationNs NetworkModel::uncontended_transit(std::size_t bytes) const {
  return 2 * params_.overhead + params_.latency +
         static_cast<DurationNs>(static_cast<double>(bytes) *
                                 (params_.nic_ns_per_byte +
                                  params_.stream_ns_per_byte));
}

}  // namespace allconcur::sim
