// Network cost model for the simulated fabric.
//
// The paper analyses AllConcur with LogP (§4: latency L, overhead o, and
// per-byte costs for the throughput regime); this model implements exactly
// that, extended with the two bandwidth levels that make the Fig. 10
// comparisons meaningful on real NICs:
//   * per-connection stream rate (a single TCP stream does not saturate
//     the NIC), and
//   * per-node aggregate NIC rate shared by all connections.
// Every node has one egress and one ingress serialization resource
// (the "o" CPU cost of LogP applies on both sides).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/scenario.hpp"
#include "common/types.hpp"

namespace allconcur::sim {

struct FabricParams {
  DurationNs latency = us(12);   ///< L: wire latency
  DurationNs overhead = us(1.8);  ///< o: per-message CPU cost (each side)
  double stream_ns_per_byte = 0.8;  ///< 1 / per-connection bandwidth
  double nic_ns_per_byte = 0.125;   ///< 1 / per-node aggregate bandwidth
  /// TCP congestion emulation: messages larger than this pay the penalty
  /// factor on their stream time (reproduces the post-peak throughput drop
  /// in Fig. 10); 0 disables.
  std::size_t congestion_threshold_bytes = 0;
  double congestion_penalty = 1.0;
  /// Single-threaded transports (the paper's libev implementation, kernel
  /// TCP): send- and receive-side per-message/per-byte costs share one CPU
  /// per node. Offloaded fabrics (Verbs) keep rx/tx independent.
  bool shared_cpu = false;

  /// InfiniBand Verbs on the IB-hsw cluster (paper's Fig. 6a model
  /// parameters: L = 1.25us, o = 0.38us; 40 Gbps QDR).
  static FabricParams infiniband();
  /// TCP (IPoIB) on the IB-hsw cluster (L = 12us, o = 1.8us).
  static FabricParams tcp_ib();
  /// TCP on the Cray XC40 (Aries): same LogP overheads as TCP, much higher
  /// node injection bandwidth, single-stream TCP cap.
  static FabricParams tcp_xc40();
};

/// Tracks per-node and per-connection resource availability and computes
/// message timing. Connection state is created lazily, keyed on
/// (src, dst) — a deployment of n nodes with degree d touches O(n*d) keys.
class NetworkModel {
 public:
  NetworkModel(FabricParams params, std::size_t nodes);

  const FabricParams& params() const { return params_; }

  /// Sender-side cost: returns the time at which the message has fully
  /// left src toward dst (wire propagation not yet included) and charges
  /// the egress/stream resources.
  TimeNs sender_done(NodeId src, NodeId dst, std::size_t bytes, TimeNs now);

  /// Arrival at dst's NIC: sender_done + L.
  TimeNs arrival(TimeNs sender_done_at) const {
    return sender_done_at + params_.latency;
  }

  /// Receiver-side cost, called at arrival time (events must be processed
  /// in time order): returns when the message is handed to the engine and
  /// charges the ingress resource.
  TimeNs receiver_done(NodeId dst, std::size_t bytes, TimeNs arrival_at);

  /// Sum of LogP model costs for one message ignoring contention — used by
  /// the Fig. 6 model curves.
  DurationNs uncontended_transit(std::size_t bytes) const;

  /// Fault-injection hook: consulted once per message on its send path.
  /// The fabric itself stays a pure cost model — the hook (typically a
  /// chaos::ScenarioEngine) decides drops, duplicates, corruption, and
  /// extra delay; the cluster applies the verdict.
  using FaultHook = std::function<chaos::Action(NodeId src, NodeId dst,
                                                TimeNs now)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// One verdict for one message; the identity Action when no hook is set.
  chaos::Action shape(NodeId src, NodeId dst, TimeNs now) {
    if (!fault_hook_) return {};
    return fault_hook_(src, dst, now);
  }

 private:
  double stream_time(std::size_t bytes) const;

  FabricParams params_;
  FaultHook fault_hook_;
  std::vector<TimeNs> egress_free_;
  std::vector<TimeNs> ingress_free_;
  // conn_free_ keyed by src * nodes + dst.
  std::vector<TimeNs> conn_free_;
  std::size_t nodes_;
};

}  // namespace allconcur::sim
