// Deterministic discrete-event simulator.
//
// All protocol engines in a simulated deployment run single-threaded on one
// event loop with an int64 nanosecond clock. Events at equal timestamps run
// in scheduling order (a monotone sequence number breaks ties), so every
// run is exactly reproducible.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace allconcur::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  TimeNs now() const { return now_; }

  /// Stable pointer to the virtual clock, for consumers that sample it on
  /// their own hot path without a call through the simulator (the flight
  /// recorder's time source). Valid for the simulator's lifetime.
  const TimeNs* now_ptr() const { return &now_; }

  /// Schedules `fn` to run `delay` from now (delay >= 0).
  void schedule(DurationNs delay, Action fn);

  /// Schedules `fn` at absolute time t (t >= now()).
  void schedule_at(TimeNs t, Action fn);

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; the clock ends at min(t_end, last event time). Returns the
  /// number of events processed.
  std::size_t run_until(TimeNs t_end);

  /// Runs everything currently scheduled (and whatever it schedules) until
  /// the queue drains. `max_events` guards against runaway loops.
  std::size_t run_to_completion(std::size_t max_events = 1'000'000'000);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace allconcur::sim
