// SimCluster: a complete AllConcur deployment on the discrete-event
// simulator — n protocol engines, the LogGP fabric model, failure
// injection (fail-stop, optionally mid-broadcast), perfect-oracle or
// heartbeat failure detection, and dynamic membership.
//
// This is the primary public entry point for users experimenting with
// AllConcur in-process, and the substrate all benchmark harnesses run on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "chaos/scenario.hpp"
#include "core/engine.hpp"
#include "core/failure_detector.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "plus/fallback_timer.hpp"
#include "sim/network_model.hpp"
#include "sim/simulator.hpp"

namespace allconcur::api {

struct ClusterOptions {
  std::size_t n = 8;
  core::GraphBuilder builder = core::make_default_graph_builder();
  sim::FabricParams fabric = sim::FabricParams::tcp_ib();
  core::FdMode fd_mode = core::FdMode::kPerfect;

  /// Round-pipelining window W handed to every engine: rounds
  /// [delivered+1, delivered+W] run concurrently (1 = classic
  /// stop-and-wait iteration).
  std::size_t window = 1;

  /// Dual-digraph fast path (AllConcur+): builder for the unreliable
  /// overlay G_U. When set, engines run failure-free rounds untracked
  /// over G_U and fall back to tracked rounds over G_R (built by
  /// `builder`) on suspicion or timeout; the fabric routes both overlays'
  /// links and the FD monitors their union. Empty = classic mode.
  /// plus::make_unreliable_builder() is the stock pairing.
  core::GraphBuilder fast_builder;
  /// Dual mode round watchdog: an armed round stuck longer than this
  /// triggers the fallback transition at the stuck node. 0 disables the
  /// watchdog (fallbacks then come only from suspicions or an explicit
  /// force_fallback).
  DurationNs fallback_timeout = ms(50);

  /// false: a perfect oracle notifies live successors `detection_delay`
  /// after a crash (the paper's evaluation setup: "all the experiments
  /// assume a perfect FD"). true: real heartbeat traffic through the
  /// simulated fabric with the Δhb/Δto below (the Fig. 7 setup).
  bool heartbeat_fd = false;
  core::HeartbeatFd::Params fd_params;
  DurationNs detection_delay = ms(100);

  /// Adversarial fault injection: a seeded chaos::ScenarioEngine consulted
  /// once per frame on the send path (through the fabric's fault hook).
  /// Dropped frames vanish, duplicates arrive twice, corrupted frames
  /// travel as damaged wire bytes (the frame checksum must catch them),
  /// and delays add to the fabric's arrival time. Null = no injection.
  chaos::ScenarioEngineRef chaos;

  /// Dual mode: caps how long per-frame progress can re-arm the round
  /// watchdog (see plus::FallbackTimer). 0 = the default 8x
  /// fallback_timeout; < 0 disables the cap.
  DurationNs fallback_max_round_age = 0;

  /// Extra engine slots reserved for joins (ids n, n+1, ...).
  std::size_t max_joins = 16;

  /// §4.2.2 deployment note: when a round removes failed servers, the
  /// lowest-id live node automatically sponsors one standby join per
  /// removal, restoring the membership size (bounded by max_joins).
  bool auto_heal = false;

  /// Per-node round flight recorder (timestamps on the virtual clock).
  /// Off, every engine tap reduces to one predictable branch —
  /// bench/round_pipeline gates the enabled-mode overhead at <= 5%.
  bool flight_recorder = true;
  /// Events retained per node (rounded up to a power of two).
  std::size_t recorder_capacity = 1024;

  /// Cross-node causal tracing (obs/trace.hpp): sample one origin round
  /// in `trace_sample_period` (0 = off). Sampled broadcasts carry the
  /// wire trace context; every node records virtual-clock spans that
  /// merged_trace() / tools/allconcur_trace turn into the round's
  /// propagation DAG and measured depth. When left at 0, the
  /// ALLCONCUR_TRACE_PERIOD environment variable (CI chaos jobs set it)
  /// supplies the period instead.
  std::uint32_t trace_sample_period = 0;
  /// Spans retained per node (rounded up to a power of two).
  std::size_t trace_capacity = 4096;

  std::uint64_t seed = 1;
};

class SimCluster {
 public:
  explicit SimCluster(ClusterOptions options);
  ~SimCluster();

  sim::Simulator& sim() { return sim_; }
  const ClusterOptions& options() const { return options_; }

  /// Engine access; id must identify a created (initial or joined) node.
  core::Engine& engine(NodeId id);
  bool exists(NodeId id) const;
  bool alive(NodeId id) const;
  std::size_t initial_size() const { return options_.n; }

  /// Ids of live, activated nodes.
  std::vector<NodeId> live_nodes() const;

  // ---- Load ----
  void submit(NodeId id, core::Request request);
  void submit_opaque(NodeId id, std::size_t bytes);
  /// Schedules a broadcast at the current simulation time.
  void broadcast_now(NodeId id);
  void broadcast_all_now();

  // ---- Observation ----
  /// Called on every round delivery: (observer, result, sim time).
  std::function<void(NodeId, const core::RoundResult&, TimeNs)> on_deliver;

  /// Time at which `id` A-broadcast its round-`round` message
  /// (nullopt if it has not).
  std::optional<TimeNs> broadcast_time(NodeId id, Round round) const;

  // ---- Failures & membership ----
  /// Fail-stop at `when`: stops sending and receiving.
  void crash_at(NodeId id, TimeNs when);
  /// Fail-stop at `when`, but the next `more_sends` outgoing messages
  /// still leave (models dying mid-broadcast, §2.3).
  void crash_after_sends(NodeId id, TimeNs when, std::size_t more_sends);
  /// At `when`, `sponsor` submits a join request for a fresh node id
  /// (returned immediately); the node activates once the join commits.
  NodeId schedule_join(TimeNs when, NodeId sponsor);

  /// Induced per-node skew: every message sent by `id` (protocol and
  /// heartbeats alike) arrives `extra` later than the fabric model says —
  /// a slow or distant server. 0 clears. This is the knob the round-
  /// pipelining bench uses to create the convoy effect a window hides.
  void set_send_delay(NodeId id, DurationNs extra);

  /// Dual mode: forces a spurious fallback at `id` for its oldest open
  /// round at the current simulation time (what the round watchdog would
  /// do on a timeout). Safe by design with no real failure — the property
  /// suite and the dual-digraph bench use it to measure fallback cost.
  void force_fallback(NodeId id);

  /// Link-level fault injection (§3.3.1: partitions remove edges, not
  /// vertices): messages for which `drop(src, dst)` returns true are lost.
  /// Pass nullptr to heal. With the heartbeat FD enabled, suspicions arise
  /// naturally from the silence — no oracle involved.
  void set_link_filter(std::function<bool(NodeId, NodeId)> drop);

  /// Convenience: fully separates `group` from everyone else at `when`,
  /// healing at `heal_at` (kTimeNever = never).
  void partition_at(std::vector<NodeId> group, TimeNs when,
                    TimeNs heal_at = kTimeNever);

  // ---- Running ----
  void run_for(DurationNs d) { sim_.run_until(sim_.now() + d); }
  /// Runs until every live node completed round `r` (current_round > r) or
  /// the deadline passes; returns true on success.
  bool run_until_round_done(Round r, TimeNs deadline);

  /// Aggregate engine statistics over live nodes.
  core::EngineStats aggregate_stats() const;

  /// Chaos-corrupted frames the receive path detected (checksum mismatch)
  /// and dropped. With ClusterOptions::chaos set, every injected
  /// corruption must land here...
  std::uint64_t corrupt_dropped() const { return chaos_corrupt_dropped_; }
  /// ...and never here: corrupted frames that still decoded — silent
  /// corruption. The chaos suites assert this stays zero. The first such
  /// delivery also trips an automatic flight-recorder dump (kInvariantTrip
  /// + obs::dump_on_trip over every node).
  std::uint64_t corrupt_delivered() const { return chaos_corrupt_delivered_; }

  /// Per-node flight recorder (null when ClusterOptions::flight_recorder
  /// is off or the node does not exist).
  const obs::FlightRecorder* recorder(NodeId id) const;
  obs::FlightRecorder* recorder(NodeId id);
  /// (label, recorder) pairs for every existing node — the argument
  /// obs::dump_on_trip expects.
  std::vector<std::pair<std::string, const obs::FlightRecorder*>>
  recorders() const;

  /// Per-node causal-trace span buffer (null when tracing is off or the
  /// node does not exist).
  const obs::TraceBuffer* tracer(NodeId id) const;
  obs::TraceBuffer* tracer(NodeId id);
  /// (label, tracer) pairs for every traced node — the argument
  /// obs::trace_dump_on_trip expects (invariant trips dump these next to
  /// the flight dumps).
  std::vector<std::pair<std::string, const obs::TraceBuffer*>>
  tracers() const;
  /// Cluster-wide merge without sockets: every node's retained spans in
  /// one TraceMerge, ready for depth/breakdown/Chrome-JSON queries.
  obs::TraceMerge merged_trace() const;

  /// Unified metrics snapshot: aggregate engine counters, chaos injection
  /// counters, and the cluster-level round-latency histogram, refreshed on
  /// each call (same schema as TcpNode::metrics_json).
  obs::Registry& metrics();
  std::string metrics_json();

  /// A-broadcast -> A-delivery latency per (node, round), on the virtual
  /// clock. Only rounds this node broadcast in are recorded.
  const obs::Histogram& round_latency() const { return *round_latency_; }

 private:
  struct Node {
    std::unique_ptr<core::Engine> engine;
    std::unique_ptr<core::HeartbeatFd> fd;
    bool active = false;   // joiners stay dormant until their join commits
    bool crashed = false;
    bool send_limited = false;
    std::size_t sends_left = 0;
    std::vector<std::pair<NodeId, core::FrameRef>> preactivation;
    std::map<Round, TimeNs> bcast_times;
    /// Dual-mode round watchdog (shared policy, see plus/fallback_timer).
    std::unique_ptr<plus::FallbackTimer> watchdog;
    /// Round flight recorder (virtual-clock timestamps); null when off.
    std::unique_ptr<obs::FlightRecorder> recorder;
    /// Causal-trace span buffer (virtual-clock timestamps); null when
    /// tracing is off.
    std::unique_ptr<obs::TraceBuffer> tracer;
  };

  std::function<bool(NodeId, NodeId)> link_filter_;

  void create_node(NodeId id, core::View view, Round start_round);
  void reinject_oracle_suspicions(NodeId id);
  void activate_node(NodeId id);
  void wire_fd(NodeId id);
  /// In-flight messages are the engine's shared frames: the fabric model
  /// charges frame->wire_size() and the destination reads the decoded form
  /// through frame->msg() — nothing is copied anywhere along the path.
  void handle_send(NodeId src, NodeId dst, const core::FrameRef& frame);
  /// Schedules one physical delivery of `frame` at `arrive`; a corrupt
  /// delivery re-parses the damaged wire bytes like a transport would.
  /// `sent_at` (the sender's hook time) feeds the per-hop relay latency
  /// histogram at hand-off.
  void schedule_arrival(NodeId src, NodeId dst, const core::FrameRef& frame,
                        TimeNs sent_at, TimeNs arrive, bool corrupt,
                        std::uint64_t corrupt_at);
  void handle_delivery(NodeId id, const core::RoundResult& result);
  void schedule_fd_tick(NodeId id);
  void schedule_watchdog_tick(NodeId id);

  ClusterOptions options_;
  sim::Simulator sim_;
  sim::NetworkModel model_;
  std::vector<std::unique_ptr<Node>> nodes_;  // indexed by NodeId
  std::vector<DurationNs> send_delay_;        // induced skew, by NodeId
  NodeId next_join_id_;
  std::uint64_t chaos_corrupt_dropped_ = 0;
  std::uint64_t chaos_corrupt_delivered_ = 0;
  obs::Registry metrics_;
  obs::Histogram* round_latency_;  // owned by metrics_; never null
  /// Modeled one-way hop latency (sender_done -> handed to the engine)
  /// per relayed frame — live even with trace sampling off, and the
  /// per-hop estimate the tracer stamps into sampled frames.
  obs::Histogram* relay_hop_;  // owned by metrics_; never null
};

}  // namespace allconcur::api
