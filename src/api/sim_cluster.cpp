#include "api/sim_cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>

#include "common/assert.hpp"
#include "obs/schema.hpp"

namespace allconcur::api {

using core::Engine;
using core::FrameRef;
using core::HeartbeatFd;
using core::Message;
using core::MsgType;
using core::RoundResult;
using core::View;

SimCluster::SimCluster(ClusterOptions options)
    : options_(std::move(options)),
      model_(options_.fabric, options_.n + options_.max_joins),
      send_delay_(options_.n + options_.max_joins, 0),
      next_join_id_(static_cast<NodeId>(options_.n)),
      round_latency_(&metrics_.histogram(
          "sim_round_latency_ns",
          "A-broadcast to A-delivery latency per (node, round) on the "
          "virtual clock",
          obs::Unit::kNanoseconds)),
      relay_hop_(&metrics_.histogram(
          "relay_hop_latency_ns",
          "Per-hop relay latency: one frame's modeled one-way time from "
          "the sender's send to the receiving engine (LogP sender "
          "overhead + wire + receiver overhead, plus induced skew and "
          "chaos delay). Live regardless of trace sampling; also the "
          "per-hop estimate sampled frames accumulate",
          obs::Unit::kNanoseconds)) {
  ALLCONCUR_ASSERT(options_.n >= 1, "cluster needs at least one node");
  ALLCONCUR_ASSERT(options_.window >= 1, "window must be at least 1");
  nodes_.resize(options_.n + options_.max_joins);

  // CI escape hatch: ALLCONCUR_TRACE_PERIOD turns sampling on for every
  // SimCluster that did not ask for it, so a red chaos run ships causal
  // traces next to its flight dumps without touching each suite. An
  // explicit trace_sample_period always wins.
  if (options_.trace_sample_period == 0) {
    if (const char* p = std::getenv("ALLCONCUR_TRACE_PERIOD")) {
      const long v = std::strtol(p, nullptr, 10);
      if (v > 0) options_.trace_sample_period = static_cast<std::uint32_t>(v);
    }
  }

  if (options_.chaos) {
    // The scenario timeline runs on virtual time; pin its epoch to t = 0
    // so test scenarios can name absolute sim times.
    options_.chaos->set_epoch(sim_.now());
    model_.set_fault_hook([chaos = options_.chaos](NodeId src, NodeId dst,
                                                   TimeNs now) {
      return chaos->on_frame(src, dst, now);
    });
  }

  std::vector<NodeId> members(options_.n);
  for (std::size_t i = 0; i < options_.n; ++i) {
    members[i] = static_cast<NodeId>(i);
  }
  for (std::size_t i = 0; i < options_.n; ++i) {
    create_node(static_cast<NodeId>(i),
                View(members, options_.builder, options_.fast_builder),
                /*start_round=*/0);
    nodes_[i]->active = true;
  }
  for (std::size_t i = 0; i < options_.n; ++i) {
    wire_fd(static_cast<NodeId>(i));
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::create_node(NodeId id, View view, Round start_round) {
  ALLCONCUR_ASSERT(id < nodes_.size(), "node id beyond reserved slots");
  ALLCONCUR_ASSERT(!nodes_[id], "node already exists");
  auto node = std::make_unique<Node>();
  Engine::Hooks hooks;
  hooks.send = [this, id](NodeId dst, const FrameRef& frame) {
    handle_send(id, dst, frame);
  };
  hooks.deliver = [this, id](const RoundResult& r) { handle_delivery(id, r); };
  Engine::Options eopts;
  eopts.fd_mode = options_.fd_mode;
  eopts.window = options_.window;
  eopts.fast_builder = options_.fast_builder;
  if (options_.flight_recorder) {
    node->recorder = std::make_unique<obs::FlightRecorder>(
        options_.recorder_capacity, /*enabled=*/true);
    // Events are stamped straight off the virtual clock — the recorder
    // dereferences the simulator's own now_ on each record().
    node->recorder->set_time_source(sim_.now_ptr());
    eopts.recorder = node->recorder.get();
  }
  if (options_.trace_sample_period != 0) {
    node->tracer = std::make_unique<obs::TraceBuffer>(options_.trace_capacity,
                                                      /*enabled=*/true);
    node->tracer->set_time_source(sim_.now_ptr());
    node->tracer->set_self(id);
    // Sampled relays stamp the modeled per-hop latency into the frame's
    // cumulative estimate, read off the cluster-wide relay histogram.
    node->tracer->set_hop_histogram(relay_hop_);
    eopts.tracer = node->tracer.get();
    eopts.trace_sample_period = options_.trace_sample_period;
  }
  node->engine = std::make_unique<Engine>(id, std::move(view),
                                          options_.builder, hooks, eopts,
                                          start_round);
  nodes_[id] = std::move(node);
  if (options_.fast_builder && options_.fallback_timeout > 0) {
    nodes_[id]->watchdog = std::make_unique<plus::FallbackTimer>(
        options_.fallback_timeout, options_.fallback_max_round_age);
    nodes_[id]->watchdog->set_recorder(nodes_[id]->recorder.get());
    schedule_watchdog_tick(id);
  }
}

void SimCluster::wire_fd(NodeId id) {
  if (!options_.heartbeat_fd) return;
  Node& node = *nodes_[id];
  HeartbeatFd::Hooks hooks;
  hooks.send = [this, id](NodeId dst, const FrameRef& frame) {
    handle_send(id, dst, frame);
  };
  hooks.suspect = [this, id](NodeId suspect) {
    Node& n = *nodes_[id];
    if (!n.crashed && n.active) n.engine->on_suspect(suspect);
  };
  node.fd = std::make_unique<HeartbeatFd>(id, options_.fd_params, hooks);
  // Dual mode monitors the union overlay: a fallback's tracking liveness
  // needs every G_U ∪ G_R successor of a crashed server to suspect it.
  node.fd->set_peers(node.engine->view().monitor_successors_of(id),
                     node.engine->view().monitor_predecessors_of(id),
                     sim_.now());
  schedule_fd_tick(id);
}

void SimCluster::schedule_watchdog_tick(NodeId id) {
  // Half the timeout bounds the detection lag at 1.5x the nominal value.
  sim_.schedule(options_.fallback_timeout / 2, [this, id] {
    Node& node = *nodes_[id];
    if (node.crashed) return;  // dead: the watchdog dies with the node
    if (node.active && !node.engine->departed()) {
      Engine& e = *node.engine;
      if (const auto stuck = node.watchdog->poll(
              e.current_round(), e.front_round_progress(), sim_.now())) {
        e.on_round_timeout(*stuck);
      }
    }
    schedule_watchdog_tick(id);
  });
}

void SimCluster::force_fallback(NodeId id) {
  sim_.schedule(0, [this, id] {
    if (!alive(id)) return;
    Engine& e = *nodes_[id]->engine;
    e.on_round_timeout(e.current_round());
  });
}

void SimCluster::schedule_fd_tick(NodeId id) {
  sim_.schedule(options_.fd_params.period, [this, id] {
    Node& node = *nodes_[id];
    if (node.crashed || !node.fd) return;  // dead: heartbeats stop
    if (node.active) node.fd->tick(sim_.now());
    schedule_fd_tick(id);
  });
}

core::Engine& SimCluster::engine(NodeId id) {
  ALLCONCUR_ASSERT(exists(id), "no such node");
  return *nodes_[id]->engine;
}

bool SimCluster::exists(NodeId id) const {
  return id < nodes_.size() && nodes_[id] != nullptr;
}

bool SimCluster::alive(NodeId id) const {
  return exists(id) && !nodes_[id]->crashed && nodes_[id]->active;
}

std::vector<NodeId> SimCluster::live_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (alive(id)) out.push_back(id);
  }
  return out;
}

void SimCluster::submit(NodeId id, core::Request request) {
  engine(id).submit(std::move(request));
}

void SimCluster::submit_opaque(NodeId id, std::size_t bytes) {
  engine(id).submit_opaque(bytes);
}

void SimCluster::broadcast_now(NodeId id) {
  if (!alive(id)) return;
  sim_.schedule(0, [this, id] {
    if (alive(id)) nodes_[id]->engine->broadcast_now();
  });
}

void SimCluster::broadcast_all_now() {
  for (NodeId id : live_nodes()) broadcast_now(id);
}

std::optional<TimeNs> SimCluster::broadcast_time(NodeId id,
                                                 Round round) const {
  if (!exists(id)) return std::nullopt;
  const auto& times = nodes_[id]->bcast_times;
  const auto it = times.find(round);
  if (it == times.end()) return std::nullopt;
  return it->second;
}

void SimCluster::handle_send(NodeId src, NodeId dst, const FrameRef& frame) {
  Node& sender = *nodes_[src];
  if (sender.crashed) {
    if (!sender.send_limited || sender.sends_left == 0) return;
    --sender.sends_left;
  }
  if (link_filter_ && link_filter_(src, dst)) return;  // partitioned link
  // Chaos verdict: drawn once per frame on the send path, exactly where
  // the TCP transport's interposition draws it.
  const chaos::Action act = model_.shape(src, dst, sim_.now());
  if (act.drop) return;
  const Message& msg = frame->msg();
  // Record the instant a node A-broadcasts its own message (used by the
  // latency harnesses as the round start at that node).
  if ((msg.type == MsgType::kBroadcast || msg.type == MsgType::kUBcast) &&
      msg.origin == src) {
    sender.bcast_times.emplace(msg.round, sim_.now());
  }

  // The fabric charges for the frame as it would go on the wire; only the
  // refcounted handle travels through the event queue.
  const TimeNs done =
      model_.sender_done(src, dst, frame->wire_size(), sim_.now());
  // Induced per-node skew and chaos jitter: the frame arrives late.
  const TimeNs arrive = model_.arrival(done) + send_delay_[src] + act.delay;
  if (sender.tracer && msg.trace_sampled() &&
      (msg.type == MsgType::kBroadcast || msg.type == MsgType::kUBcast)) {
    // Sampled frame leaving this node: the enqueue span now, the send
    // span once the modeled serialization finishes (o_s + bytes on the
    // wire), both against the virtual clock.
    sender.tracer->record(obs::SpanKind::kEnqueue, msg.round, msg.origin,
                          dst, msg.trace_hop(), msg.detector);
    sim_.schedule_at(done, [this, src, dst, frame] {
      Node* n = nodes_[src].get();
      if (n == nullptr || !n->tracer) return;
      const Message& m = frame->msg();
      n->tracer->record(obs::SpanKind::kSend, m.round, m.origin, dst,
                        m.trace_hop(), m.detector);
    });
  }
  schedule_arrival(src, dst, frame, sim_.now(), arrive, act.corrupt,
                   act.corrupt_at);
  if (act.duplicate) {
    // The duplicate travels unmodified a little behind the original
    // (a corrupted original still has a healthy twin, and receiver dedup
    // gets exercised either way).
    schedule_arrival(src, dst, frame, sim_.now(),
                     arrive + model_.params().latency / 2,
                     /*corrupt=*/false, 0);
  }
}

void SimCluster::schedule_arrival(NodeId src, NodeId dst,
                                  const FrameRef& frame, TimeNs sent_at,
                                  TimeNs arrive, bool corrupt,
                                  std::uint64_t corrupt_at) {
  sim_.schedule_at(arrive, [this, src, dst, frame, sent_at, corrupt,
                            corrupt_at] {
    const TimeNs handed =
        model_.receiver_done(dst, frame->wire_size(), sim_.now());
    sim_.schedule_at(handed, [this, src, dst, frame, sent_at, corrupt,
                              corrupt_at] {
      Node* node = nodes_[dst].get();
      if (!node || node->crashed) return;
      if (!node->active) {
        node->preactivation.emplace_back(src, frame);
        return;
      }
      if (corrupt) {
        // Injected corruption travels as real damaged wire bytes: re-parse
        // them like a transport would. The frame checksum must catch the
        // flip — a decode that succeeds anyway is silent corruption,
        // counted separately so the chaos gate can assert it never happens.
        const auto tainted = core::Frame::corrupt_copy(*frame, corrupt_at);
        const auto bytes = tainted->to_bytes();
        const auto parsed = core::decode(
            std::span<const std::uint8_t>(bytes.data(), bytes.size()));
        if (!parsed) {
          ++chaos_corrupt_dropped_;
          return;
        }
        // Silent corruption: a flipped byte survived the checksum. This
        // is the invariant the chaos gate asserts never happens — ship
        // the evidence (every node's timeline) with the first trip.
        if (chaos_corrupt_delivered_ == 0 && nodes_[dst]->recorder) {
          nodes_[dst]->recorder->record(
              obs::EventKind::kInvariantTrip, parsed->round,
              static_cast<std::uint64_t>(obs::TripCode::kCorruptDelivered),
              src);
          obs::dump_on_trip("corrupt_delivered", recorders());
          obs::trace_dump_on_trip("corrupt_delivered", tracers());
        }
        ++chaos_corrupt_delivered_;
        if (node->fd) node->fd->on_heartbeat(src, sim_.now());
        if (parsed->type != MsgType::kHeartbeat) {
          node->engine->on_message(src, *parsed);
        }
        return;
      }
      if (node->fd) node->fd->on_heartbeat(src, sim_.now());
      if (frame->msg().type != MsgType::kHeartbeat) {
        const Message& m = frame->msg();
        // Modeled one-way hop latency, live regardless of sampling — the
        // registry histogram tracing reads its per-hop estimate from.
        relay_hop_->record(
            static_cast<std::uint64_t>(std::max<TimeNs>(0, sim_.now() -
                                                               sent_at)));
        if (node->tracer && m.trace_sampled() &&
            (m.type == MsgType::kBroadcast || m.type == MsgType::kUBcast)) {
          node->tracer->record(obs::SpanKind::kRecv, m.round, m.origin, src,
                               m.trace_hop(), m.detector);
        }
        node->engine->on_message(src, m);
      }
    });
  });
}

void SimCluster::handle_delivery(NodeId id, const RoundResult& result) {
  Node& node = *nodes_[id];
  // Round latency: this node's A-broadcast instant to now. The entry is
  // kept (broadcast_time() serves it to latency harnesses post-delivery).
  if (const auto it = node.bcast_times.find(result.round);
      it != node.bcast_times.end()) {
    round_latency_->record(static_cast<std::uint64_t>(
        std::max<TimeNs>(0, sim_.now() - it->second)));
  }
  // Membership changed: reconfigure the FD and activate any joiners.
  if (!result.joined.empty() || !result.removed.empty()) {
    if (node.fd && !node.engine->departed()) {
      node.fd->set_peers(node.engine->view().monitor_successors_of(id),
                         node.engine->view().monitor_predecessors_of(id),
                         sim_.now());
    }
    // The rebuilt overlay may hand this node *new* predecessors that are
    // long dead but still members (their last message was delivered).
    // A real FD keeps timing out on them (§3.2: successors detect the
    // lack of heartbeats, per the *current* G); the oracle must do the
    // same or their tracking digraphs never resolve.
    if (!options_.heartbeat_fd && !node.engine->departed()) {
      reinject_oracle_suspicions(id);
    }
    for (NodeId joiner : result.joined) {
      if (!nodes_[joiner]) {
        // First commit observation anywhere in the cluster instantiates
        // the joiner with the new view, starting at the next round.
        create_node(joiner,
                    View(node.engine->view().members(), options_.builder,
                         options_.fast_builder),
                    result.round + 1);
        wire_fd(joiner);
      }
      if (!nodes_[joiner]->active) activate_node(joiner);
    }
  }
  if (options_.auto_heal && !result.removed.empty() &&
      next_join_id_ < nodes_.size()) {
    // Exactly one sponsor acts per round: the lowest live id. The joins
    // ride in its next broadcast and commit through ordinary agreement.
    const auto live = live_nodes();
    if (!live.empty() && id == live.front()) {
      for (std::size_t i = 0;
           i < result.removed.size() && next_join_id_ < nodes_.size(); ++i) {
        schedule_join(sim_.now(), id);
      }
    }
  }
  if (on_deliver) on_deliver(id, result, sim_.now());
}

void SimCluster::reinject_oracle_suspicions(NodeId id) {
  for (NodeId pred :
       nodes_[id]->engine->view().monitor_predecessors_of(id)) {
    if (exists(pred) && nodes_[pred]->crashed) {
      sim_.schedule(options_.detection_delay, [this, id, pred] {
        if (alive(id)) nodes_[id]->engine->on_suspect(pred);
      });
    }
  }
}

void SimCluster::activate_node(NodeId id) {
  Node& node = *nodes_[id];
  node.active = true;
  // Replay traffic that arrived while dormant, then participate in the
  // current round (the others cannot finish it without our message).
  const auto buffered = std::move(node.preactivation);
  node.preactivation.clear();
  for (const auto& [src, frame] : buffered) {
    if (node.fd) node.fd->on_heartbeat(src, sim_.now());
    if (frame->msg().type != MsgType::kHeartbeat) {
      node.engine->on_message(src, frame->msg());
    }
  }
  // A joiner may inherit dead-but-member predecessors (see
  // reinject_oracle_suspicions).
  if (!options_.heartbeat_fd) reinject_oracle_suspicions(id);
  node.engine->broadcast_now();
}

void SimCluster::crash_at(NodeId id, TimeNs when) {
  crash_after_sends(id, when, 0);
}

void SimCluster::crash_after_sends(NodeId id, TimeNs when,
                                   std::size_t more_sends) {
  sim_.schedule_at(when, [this, id, more_sends] {
    Node& node = *nodes_[id];
    node.crashed = true;
    node.send_limited = true;
    node.sends_left = more_sends;
    if (options_.heartbeat_fd) return;  // detection via missing heartbeats
    // Perfect oracle: live successors learn of the crash after the
    // configured detection delay.
    sim_.schedule(options_.detection_delay, [this, id] {
      for (NodeId other = 0; other < nodes_.size(); ++other) {
        if (other == id || !alive(other)) continue;
        Engine& e = *nodes_[other]->engine;
        if (!e.view().contains(id)) continue;
        const auto preds = e.view().monitor_predecessors_of(other);
        if (std::find(preds.begin(), preds.end(), id) != preds.end()) {
          e.on_suspect(id);
        }
      }
    });
  });
}

void SimCluster::set_send_delay(NodeId id, DurationNs extra) {
  ALLCONCUR_ASSERT(id < send_delay_.size(), "node id beyond reserved slots");
  ALLCONCUR_ASSERT(extra >= 0, "send delay must be non-negative");
  send_delay_[id] = extra;
}

void SimCluster::set_link_filter(
    std::function<bool(NodeId, NodeId)> drop) {
  link_filter_ = std::move(drop);
}

void SimCluster::partition_at(std::vector<NodeId> group, TimeNs when,
                              TimeNs heal_at) {
  sim_.schedule_at(when, [this, group = std::move(group)] {
    set_link_filter([group](NodeId src, NodeId dst) {
      const bool src_in =
          std::find(group.begin(), group.end(), src) != group.end();
      const bool dst_in =
          std::find(group.begin(), group.end(), dst) != group.end();
      return src_in != dst_in;
    });
  });
  if (heal_at != kTimeNever) {
    sim_.schedule_at(heal_at, [this] { set_link_filter(nullptr); });
  }
}

NodeId SimCluster::schedule_join(TimeNs when, NodeId sponsor) {
  ALLCONCUR_ASSERT(next_join_id_ < nodes_.size(),
                   "join capacity exhausted; raise ClusterOptions::max_joins");
  const NodeId id = next_join_id_++;
  sim_.schedule_at(when, [this, id, sponsor] {
    if (alive(sponsor)) {
      nodes_[sponsor]->engine->submit(core::Request::join(id));
    }
  });
  return id;
}

bool SimCluster::run_until_round_done(Round r, TimeNs deadline) {
  const DurationNs chunk = ms(1);
  for (;;) {
    bool done = true;
    for (NodeId id : live_nodes()) {
      if (nodes_[id]->engine->current_round() <= r) {
        done = false;
        break;
      }
    }
    if (done) return true;
    if (sim_.now() >= deadline) return false;
    if (sim_.idle()) return false;
    sim_.run_until(std::min(deadline, sim_.now() + chunk));
  }
}

const obs::FlightRecorder* SimCluster::recorder(NodeId id) const {
  if (!exists(id)) return nullptr;
  return nodes_[id]->recorder.get();
}

obs::FlightRecorder* SimCluster::recorder(NodeId id) {
  if (!exists(id)) return nullptr;
  return nodes_[id]->recorder.get();
}

std::vector<std::pair<std::string, const obs::FlightRecorder*>>
SimCluster::recorders() const {
  std::vector<std::pair<std::string, const obs::FlightRecorder*>> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!exists(id) || !nodes_[id]->recorder) continue;
    out.emplace_back("node" + std::to_string(id),
                     nodes_[id]->recorder.get());
  }
  return out;
}

std::vector<std::pair<std::string, const obs::TraceBuffer*>>
SimCluster::tracers() const {
  std::vector<std::pair<std::string, const obs::TraceBuffer*>> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!exists(id) || !nodes_[id]->tracer) continue;
    out.emplace_back("node" + std::to_string(id), nodes_[id]->tracer.get());
  }
  return out;
}

const obs::TraceBuffer* SimCluster::tracer(NodeId id) const {
  if (!exists(id)) return nullptr;
  return nodes_[id]->tracer.get();
}

obs::TraceBuffer* SimCluster::tracer(NodeId id) {
  if (!exists(id)) return nullptr;
  return nodes_[id]->tracer.get();
}

obs::TraceMerge SimCluster::merged_trace() const {
  obs::TraceMerge merge;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!exists(id) || !nodes_[id]->tracer) continue;
    merge.add_spans(nodes_[id]->tracer->spans());
  }
  return merge;
}

obs::Registry& SimCluster::metrics() {
  obs::fill_engine_stats(metrics_, aggregate_stats());
  if (options_.chaos) {
    obs::fill_chaos_stats(metrics_, options_.chaos->stats());
  }
  metrics_
      .gauge("sim_now_ns", "Virtual clock at snapshot time",
             obs::Unit::kNanoseconds)
      .set(sim_.now());
  metrics_
      .gauge("sim_live_nodes", "Live, activated nodes", obs::Unit::kNone)
      .set(static_cast<std::int64_t>(live_nodes().size()));
  metrics_
      .counter("sim_corrupt_dropped",
               "Chaos-corrupted frames the receive path detected and "
               "dropped (checksum mismatch)",
               obs::Unit::kFrames)
      .set(chaos_corrupt_dropped_);
  metrics_
      .counter("sim_corrupt_delivered",
               "Corrupted frames that decoded anyway — silent corruption; "
               "the chaos gate asserts 0",
               obs::Unit::kFrames)
      .set(chaos_corrupt_delivered_);
  return metrics_;
}

std::string SimCluster::metrics_json() { return metrics().to_json(2); }

core::EngineStats SimCluster::aggregate_stats() const {
  core::EngineStats total;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!exists(id)) continue;
    const auto& s = nodes_[id]->engine->stats();
    total.bcast_sent += s.bcast_sent;
    total.bcast_received += s.bcast_received;
    total.fail_sent += s.fail_sent;
    total.fail_received += s.fail_received;
    total.fwd_bwd_sent += s.fwd_bwd_sent;
    total.fwd_bwd_received += s.fwd_bwd_received;
    total.ubcast_sent += s.ubcast_sent;
    total.ubcast_received += s.ubcast_received;
    total.fallback_sent += s.fallback_sent;
    total.fallback_received += s.fallback_received;
    total.fallbacks_initiated += s.fallbacks_initiated;
    total.fast_rounds += s.fast_rounds;
    total.fallback_rounds += s.fallback_rounds;
    total.tracking_resets += s.tracking_resets;
    total.bytes_sent += s.bytes_sent;
    total.frames_encoded += s.frames_encoded;
    total.dropped_stale += s.dropped_stale;
    total.dropped_suspected += s.dropped_suspected;
    total.dropped_foreign += s.dropped_foreign;
    total.dropped_lost += s.dropped_lost;
    total.dropped_ahead += s.dropped_ahead;
    total.parked_duplicates += s.parked_duplicates;
    total.rounds_completed += s.rounds_completed;
  }
  return total;
}

}  // namespace allconcur::api
