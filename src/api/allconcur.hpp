// Umbrella header: the public API of the AllConcur library.
//
//   #include "api/allconcur.hpp"
//
//   allconcur::api::ClusterOptions opt;
//   opt.n = 8;
//   allconcur::api::SimCluster cluster(opt);
//   cluster.submit(0, allconcur::core::Request::of_data({...}));
//   cluster.on_deliver = [](NodeId who, const core::RoundResult& r,
//                           TimeNs when) { ... };
//   cluster.broadcast_all_now();
//   cluster.run_until_round_done(0, sec(1));
//
// Layers (each usable on its own):
//   graph/  — fault-tolerant overlay digraphs: GS(n,d), binomial, de
//             Bruijn; connectivity, fault diameter, reliability (§2, §4.4)
//   core/   — the AllConcur algorithm: engine, tracking digraphs, failure
//             detectors, LogP models (§3, §4)
//   sim/    — deterministic discrete-event fabric simulation (§5 testbed
//             substitute; see DESIGN.md)
//   api/    — SimCluster deployments
//   net/    — real TCP transport (epoll) for multi-process runs
//   plus/   — the AllConcur+ dual-digraph fast path: paired ⟨G_U, G_R⟩
//             overlays, the fallback watchdog (untracked failure-free
//             rounds with automatic fallback to tracked rounds)
//   smr/    — state-machine replication on the delivered stream: the
//             replicated KV store, client sessions (exactly-once),
//             snapshots, and the Sim/TCP mounts
#pragma once

#include "api/sim_cluster.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/failure_detector.hpp"
#include "core/logp_model.hpp"
#include "core/message.hpp"
#include "core/view.hpp"
#include "graph/binomial_graph.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "graph/fault_diameter.hpp"
#include "graph/gs_digraph.hpp"
#include "graph/properties.hpp"
#include "graph/reliability.hpp"
#include "net/tcp_transport.hpp"
#include "plus/plus.hpp"
#include "sim/network_model.hpp"
#include "sim/simulator.hpp"
#include "smr/smr.hpp"
