// Replicated key-value store: the repo's first real SMR workload.
//
// A deterministic StateMachine over an ordered map of binary-safe keys
// and values, driven by the KV command format of smr/command.hpp. Every
// applied command (including reads — they are part of the agreed stream)
// is folded into a running FNV-1a state hash, so replicas can cheaply
// assert they never diverged: same commands in the same order ⇒ same
// hash, and any ordering or determinism bug flips it loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "smr/command.hpp"
#include "smr/state_machine.hpp"

namespace allconcur::smr {

class KvStore final : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      std::span<const std::uint8_t> command) override;
  std::vector<std::uint8_t> snapshot() const override;
  bool restore(std::span<const std::uint8_t> bytes) override;
  std::uint64_t state_hash() const override { return hash_; }

  /// Local read, bypassing the agreed stream: reflects everything this
  /// replica has applied (read-your-writes once the client's commands
  /// were applied here; see Replica's read barrier for linearizability).
  std::optional<Bytes> get_local(const Bytes& key) const;
  bool contains(const Bytes& key) const { return map_.count(key) > 0; }

  std::size_t size() const { return map_.size(); }
  std::uint64_t commands_applied() const { return applied_; }

  /// Deterministic iteration (ordered map) — tests and tools only.
  const std::map<Bytes, Bytes>& contents() const { return map_; }

 private:
  KvResponse execute(const Command& cmd);

  std::map<Bytes, Bytes> map_;
  std::uint64_t hash_ = kFnv64Offset;
  std::uint64_t applied_ = 0;
};

}  // namespace allconcur::smr
