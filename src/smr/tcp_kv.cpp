#include "smr/tcp_kv.hpp"

#include <chrono>

#include "common/assert.hpp"

namespace allconcur::smr {
namespace {

std::chrono::steady_clock::time_point deadline_in(DurationNs d) {
  return std::chrono::steady_clock::now() + std::chrono::nanoseconds(d);
}

}  // namespace

KvNode::KvNode(net::TcpNodeOptions options)
    : replica_(std::make_unique<KvStore>()) {
  node_ = std::make_unique<net::TcpNode>(
      std::move(options), [this](const core::RoundResult& r) {
        const std::lock_guard<std::mutex> lock(mutex_);
        replica_.on_round(r);
      });
}

KvNode::~KvNode() { stop(); }

void KvNode::start() {
  ALLCONCUR_ASSERT(!started_, "KvNode::start called twice");
  started_ = true;
  thread_ = std::thread([this] { node_->run(); });
}

void KvNode::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  node_->stop();
  thread_.join();
}

bool KvNode::wait_connected(DurationNs timeout) {
  return node_->wait_connected(timeout);
}

Round KvNode::next_round() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.next_round();
}

std::uint64_t KvNode::state_hash() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.state_hash();
}

std::uint64_t KvNode::commands_applied() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.commands_applied();
}

std::uint64_t KvNode::duplicates_suppressed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.duplicates_suppressed();
}

std::optional<Bytes> KvNode::get_local(const Bytes& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto* store = dynamic_cast<const KvStore*>(&replica_.machine());
  ALLCONCUR_ASSERT(store != nullptr, "KvNode mounts a KvStore");
  return store->get_local(key);
}

std::vector<std::uint8_t> KvNode::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.snapshot();
}

std::optional<std::vector<std::uint8_t>> KvNode::response_for(
    std::uint64_t session, std::uint64_t seq) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return replica_.response(session, seq);
}

std::optional<KvResponse> KvNode::await_response(const KvSession& session,
                                                 DurationNs timeout) {
  const auto deadline = deadline_in(timeout);
  for (;;) {
    if (const auto bytes = response_for(session.id(), session.last_seq())) {
      return decode_response(*bytes);
    }
    if (std::chrono::steady_clock::now() > deadline) return std::nullopt;
    // Nudge round progress: a no-op while this round's own message is
    // already out, otherwise starts the round that carries our command.
    node_->broadcast_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::optional<KvResponse> KvNode::execute(KvSession& session,
                                          const Command& cmd,
                                          DurationNs timeout) {
  node_->submit(core::Request::of_data(session.issue(cmd)));
  node_->broadcast_now();
  return await_response(session, timeout);
}

std::optional<KvResponse> KvNode::retry(KvSession& session,
                                        DurationNs timeout) {
  auto envelope = session.retry();
  ALLCONCUR_ASSERT(!envelope.empty(), "retry before any command was issued");
  node_->submit(core::Request::of_data(std::move(envelope)));
  node_->broadcast_now();
  return await_response(session, timeout);
}

bool KvNode::read_barrier(Round round, DurationNs timeout) {
  const auto deadline = deadline_in(timeout);
  while (next_round() <= round) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    // Drive empty rounds if nobody else is broadcasting.
    node_->broadcast_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace allconcur::smr
