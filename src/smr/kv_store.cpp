#include "smr/kv_store.hpp"

#include "smr/wire.hpp"

namespace allconcur::smr {

using wire::get_blob;
using wire::get_u64;
using wire::put_u32;
using wire::put_u64;

std::vector<std::uint8_t> KvStore::apply(
    std::span<const std::uint8_t> command) {
  // Fold the exact agreed bytes into the divergence hash before anything
  // else: even a malformed command must perturb every replica equally.
  hash_ = fnv1a64(hash_, command);
  ++applied_;
  KvResponse resp;
  const auto cmd = decode_command(command);
  if (!cmd) {
    resp.status = KvResponse::Status::kBadCommand;
  } else {
    resp = execute(*cmd);
  }
  return encode_response(resp);
}

KvResponse KvStore::execute(const Command& cmd) {
  KvResponse resp;
  switch (cmd.op) {
    case Command::Op::kPut:
      map_[cmd.key] = cmd.value;
      break;
    case Command::Op::kGet: {
      const auto it = map_.find(cmd.key);
      if (it == map_.end()) {
        resp.status = KvResponse::Status::kNotFound;
      } else {
        resp.value = it->second;
        resp.has_value = true;
      }
      break;
    }
    case Command::Op::kDelete:
      if (map_.erase(cmd.key) == 0) {
        resp.status = KvResponse::Status::kNotFound;
      }
      break;
    case Command::Op::kCas: {
      const auto it = map_.find(cmd.key);
      const bool match = cmd.expect_absent
                             ? it == map_.end()
                             : it != map_.end() && it->second == cmd.expected;
      if (match) {
        map_[cmd.key] = cmd.value;
      } else {
        resp.status = KvResponse::Status::kCasFailed;
        if (it != map_.end()) {
          resp.value = it->second;
          resp.has_value = true;
        }
      }
      break;
    }
  }
  return resp;
}

std::optional<Bytes> KvStore::get_local(const Bytes& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

// Snapshot layout:
//   [u64 hash][u64 applied][u64 entry count]
//   then per entry: [u32 klen][key][u32 vlen][value]
// The map is ordered, so snapshots of equal states are byte-identical.
std::vector<std::uint8_t> KvStore::snapshot() const {
  std::vector<std::uint8_t> out;
  put_u64(out, hash_);
  put_u64(out, applied_);
  put_u64(out, static_cast<std::uint64_t>(map_.size()));
  for (const auto& [key, value] : map_) {
    put_u32(out, static_cast<std::uint32_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    put_u32(out, static_cast<std::uint32_t>(value.size()));
    out.insert(out.end(), value.begin(), value.end());
  }
  return out;
}

bool KvStore::restore(std::span<const std::uint8_t> bytes) {
  std::size_t at = 0;
  std::uint64_t hash = 0, applied = 0, count = 0;
  if (!get_u64(bytes, at, hash) || !get_u64(bytes, at, applied) ||
      !get_u64(bytes, at, count)) {
    return false;
  }
  std::map<Bytes, Bytes> map;
  for (std::uint64_t i = 0; i < count; ++i) {
    Bytes key, value;
    if (!get_blob(bytes, at, key) || !get_blob(bytes, at, value)) {
      return false;
    }
    map.emplace(std::move(key), std::move(value));
  }
  if (at != bytes.size()) return false;
  map_ = std::move(map);
  hash_ = hash;
  applied_ = applied;
  return true;
}

}  // namespace allconcur::smr
