// State-machine replication over AllConcur (§1: atomic broadcast is the
// substrate of SMR — "all non-faulty servers apply the same sequence of
// updates to their replicated state").
//
// A StateMachine is the deterministic application half of that contract:
// it consumes opaque command bytes in the canonical delivery order and
// must produce identical state and responses on every replica. The
// ordering half (sessions, exactly-once dedup, round iteration) lives in
// smr::Replica, which drives implementations of this interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace allconcur::smr {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one command (already deduplicated and ordered by the caller)
  /// and returns the encoded response. Must be deterministic: identical
  /// command sequences yield identical states and responses everywhere.
  /// Malformed commands must be handled deterministically too (e.g. an
  /// error response), never by aborting — the bytes were agreed on.
  virtual std::vector<std::uint8_t> apply(
      std::span<const std::uint8_t> command) = 0;

  /// Serializes the complete state. Must be deterministic: two replicas
  /// with equal state produce byte-identical snapshots.
  virtual std::vector<std::uint8_t> snapshot() const = 0;

  /// Replaces the state from snapshot() bytes; false on malformed input
  /// (state unspecified afterwards — the caller must discard the machine).
  virtual bool restore(std::span<const std::uint8_t> bytes) = 0;

  /// Cheap running digest of the applied command history. Replicas that
  /// applied the same commands in the same order agree on this value;
  /// any divergence (an ordering or determinism bug) makes it differ.
  virtual std::uint64_t state_hash() const = 0;
};

// FNV-1a, the divergence-guard digest: fast, dependency-free, and good
// enough to make silent replica divergence loud (it is not cryptographic).
inline constexpr std::uint64_t kFnv64Offset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ull;

inline std::uint64_t fnv1a64(std::uint64_t hash,
                             std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= kFnv64Prime;
  }
  return hash;
}

inline std::uint64_t fnv1a64_u64(std::uint64_t hash, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<std::uint8_t>(v >> (8 * i));
    hash *= kFnv64Prime;
  }
  return hash;
}

}  // namespace allconcur::smr
