// Umbrella header for the SMR layer: state-machine replication over
// AllConcur's totally-ordered delivery stream.
//
//   smr::SimKvCluster cluster(api::ClusterOptions{.n = 5});
//   auto session = cluster.make_session();
//   cluster.execute(0, session, smr::Command::put(smr::to_bytes("k"),
//                                                 smr::to_bytes("v")));
//   cluster.kv(2).get_local(smr::to_bytes("k"));  // after a read barrier
//
// Pieces (each usable on its own):
//   state_machine — the deterministic apply/snapshot/restore interface
//   command       — session envelopes + the KV command/response formats
//   kv_store      — the replicated KV StateMachine (divergence-hashed)
//   session       — client sessions and the replicated dedup table
//   replica       — applies delivered rounds exactly once, snapshots
//   kv_cluster    — mount on the simulated deployment (SimCluster)
//   tcp_kv        — mount on the real TCP deployment (TcpNode)
#pragma once

#include "smr/command.hpp"
#include "smr/kv_cluster.hpp"
#include "smr/kv_store.hpp"
#include "smr/replica.hpp"
#include "smr/session.hpp"
#include "smr/state_machine.hpp"
#include "smr/tcp_kv.hpp"
