#include "smr/replica.hpp"

#include "common/assert.hpp"
#include "core/batch.hpp"
#include "smr/wire.hpp"

namespace allconcur::smr {

using wire::get_u32;
using wire::get_u64;
using wire::put_u32;
using wire::put_u64;

namespace {

// Snapshot framing: a magic prefix guards against feeding a bare
// KvStore snapshot (or garbage) to Replica::restore.
constexpr std::uint32_t kSnapshotMagic = 0x52534d53;  // "SMSR"

}  // namespace

Replica::Replica(std::unique_ptr<StateMachine> machine)
    : machine_(std::move(machine)) {
  ALLCONCUR_ASSERT(machine_ != nullptr, "Replica needs a state machine");
}

void Replica::on_round(const core::RoundResult& result) {
  // With round pipelining the engine *completes* rounds out of order, but
  // A-delivery (and therefore this apply stream) must stay strictly
  // sequential — a skipped or reordered round would silently fork the
  // replicated state. Assert the contract instead of trusting the caller.
  ALLCONCUR_ASSERT(result.round == next_round_,
                   "rounds must be applied consecutively (out-of-order "
                   "delivery from a pipelined engine is a protocol bug)");
  // RoundResult::deliveries is sorted by origin id — the canonical,
  // replica-independent order. Within one delivery, batch order is the
  // origin's submission order, identical everywhere by agreement.
  for (const core::Delivery& delivery : result.deliveries) {
    const auto batch = core::unpack_batch(delivery.payload);
    if (!batch) continue;  // size-only / foreign payload: not ours
    for (const core::Request& request : *batch) {
      if (request.kind != core::Request::Kind::kData) continue;
      const auto env = decode_envelope(request.data);
      if (!env) continue;  // non-SMR data sharing the stream
      if (sessions_.is_duplicate(env->session, env->seq)) {
        ++duplicates_;
        continue;
      }
      auto response = machine_->apply(env->command);
      sessions_.record(env->session, env->seq, std::move(response));
      ++applied_;
    }
  }
  ++next_round_;
}

std::uint64_t Replica::state_hash() const {
  return fnv1a64_u64(machine_->state_hash(), next_round_);
}

std::vector<std::uint8_t> Replica::snapshot() const {
  std::vector<std::uint8_t> out;
  put_u32(out, kSnapshotMagic);
  put_u64(out, next_round_);
  put_u64(out, applied_);
  put_u64(out, duplicates_);
  sessions_.encode_into(out);
  const auto machine = machine_->snapshot();
  out.insert(out.end(), machine.begin(), machine.end());
  return out;
}

bool Replica::restore(std::span<const std::uint8_t> bytes) {
  std::size_t at = 0;
  std::uint32_t magic = 0;
  std::uint64_t next_round = 0, applied = 0, duplicates = 0;
  if (!get_u32(bytes, at, magic) || magic != kSnapshotMagic) return false;
  if (!get_u64(bytes, at, next_round) || !get_u64(bytes, at, applied) ||
      !get_u64(bytes, at, duplicates)) {
    return false;
  }
  SessionTable sessions;
  if (!sessions.decode_from(bytes, at)) return false;
  if (!machine_->restore(bytes.subspan(at))) return false;
  sessions_ = std::move(sessions);
  next_round_ = next_round;
  applied_ = applied;
  duplicates_ = duplicates;
  return true;
}

}  // namespace allconcur::smr
