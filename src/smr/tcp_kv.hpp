// KvNode: the replicated KV store mounted on a real TCP AllConcur node.
//
// One KvNode owns one net::TcpNode plus one Replica+KvStore. Deliveries
// arrive on the transport's event-loop thread and are applied under a
// mutex; client operations (execute/retry/reads) are safe from any
// thread and poll wall-clock deadlines, mirroring what a networked
// client library would do.
//
// Round progress on TCP needs broadcasts: execute() broadcasts its own
// round and keeps nudging broadcast_now() while waiting (a no-op while a
// round is in flight), so a single active client is enough to drive the
// cluster. All replicas converge on the same state hash — assert it at
// the end of every test and example.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "net/tcp_transport.hpp"
#include "smr/kv_store.hpp"
#include "smr/replica.hpp"

namespace allconcur::smr {

class KvNode {
 public:
  explicit KvNode(net::TcpNodeOptions options);
  ~KvNode();

  KvNode(const KvNode&) = delete;
  KvNode& operator=(const KvNode&) = delete;

  /// Spawns the transport's event-loop thread.
  void start();
  /// Stops the transport and joins the thread (idempotent; fail-stop for
  /// crash tests: sockets close, heartbeats cease).
  void stop();
  bool wait_connected(DurationNs timeout);

  NodeId self() const { return node_->self(); }
  net::TcpNode& transport() { return *node_; }

  /// Bytes submitted but not yet A-broadcast by the underlying engine —
  /// the client-side throttle signal: while the round window is full (or
  /// draining for a membership change) submissions queue up here instead
  /// of going out, and a well-behaved client backs off.
  std::uint64_t pending_bytes() const { return node_->pending_bytes(); }

  // ---- Replica state (thread-safe snapshots) ----
  Round next_round() const;
  std::uint64_t state_hash() const;
  std::uint64_t commands_applied() const;
  std::uint64_t duplicates_suppressed() const;
  std::optional<Bytes> get_local(const Bytes& key) const;
  std::vector<std::uint8_t> snapshot() const;
  std::optional<std::vector<std::uint8_t>> response_for(
      std::uint64_t session, std::uint64_t seq) const;

  // ---- Client operations ----
  /// Submits `cmd` under `session` here, drives rounds, and blocks until
  /// this replica applied it (nullopt on timeout — retry elsewhere).
  std::optional<KvResponse> execute(KvSession& session, const Command& cmd,
                                    DurationNs timeout = sec(10));
  /// Resubmits the session's last command here (exactly-once even if the
  /// original broadcast also made it through).
  std::optional<KvResponse> retry(KvSession& session,
                                  DurationNs timeout = sec(10));
  /// Blocks until this replica applied `round` (linearizable read point:
  /// barrier on a round the client observed, then get_local).
  bool read_barrier(Round round, DurationNs timeout = sec(10));

 private:
  std::optional<KvResponse> await_response(const KvSession& session,
                                           DurationNs timeout);

  mutable std::mutex mutex_;
  Replica replica_;  // guarded by mutex_
  std::unique_ptr<net::TcpNode> node_;
  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace allconcur::smr
