// Little-endian wire primitives shared by the SMR serializers
// (command/session/kv_store/replica). One checked implementation: the
// putters append to a byte vector, the getters consume via a cursor and
// report truncation instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace allconcur::smr::wire {

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline bool get_u32(std::span<const std::uint8_t> b, std::size_t& at,
                    std::uint32_t& v) {
  if (b.size() < 4 || at > b.size() - 4) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  }
  at += 4;
  return true;
}

inline bool get_u64(std::span<const std::uint8_t> b, std::size_t& at,
                    std::uint64_t& v) {
  if (b.size() < 8 || at > b.size() - 8) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[at + static_cast<std::size_t>(i)];
  }
  at += 8;
  return true;
}

/// [u32 length][length bytes].
inline void put_blob(std::vector<std::uint8_t>& out,
                     std::span<const std::uint8_t> blob) {
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

inline bool get_blob(std::span<const std::uint8_t> b, std::size_t& at,
                     std::vector<std::uint8_t>& out) {
  std::uint32_t len = 0;
  if (!get_u32(b, at, len)) return false;
  if (len > b.size() - at) return false;
  out.assign(b.begin() + static_cast<std::ptrdiff_t>(at),
             b.begin() + static_cast<std::ptrdiff_t>(at + len));
  at += len;
  return true;
}

}  // namespace allconcur::smr::wire
