#include "smr/command.hpp"

#include "smr/wire.hpp"

namespace allconcur::smr {

using wire::get_u32;
using wire::get_u64;
using wire::put_blob;
using wire::put_u32;
using wire::put_u64;

// Envelope layout: [u8 magic][u64 session][u64 seq][command bytes].
std::vector<std::uint8_t> encode_envelope(
    std::uint64_t session, std::uint64_t seq,
    std::span<const std::uint8_t> command) {
  std::vector<std::uint8_t> out;
  out.reserve(17 + command.size());
  out.push_back(kEnvelopeMagic);
  put_u64(out, session);
  put_u64(out, seq);
  out.insert(out.end(), command.begin(), command.end());
  return out;
}

std::optional<Envelope> decode_envelope(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 17 || bytes[0] != kEnvelopeMagic) return std::nullopt;
  Envelope env;
  std::size_t at = 1;
  if (!get_u64(bytes, at, env.session) || !get_u64(bytes, at, env.seq)) {
    return std::nullopt;
  }
  env.command = bytes.subspan(at);
  return env;
}

Command Command::put(Bytes key, Bytes value) {
  Command c;
  c.op = Op::kPut;
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

Command Command::get(Bytes key) {
  Command c;
  c.op = Op::kGet;
  c.key = std::move(key);
  return c;
}

Command Command::del(Bytes key) {
  Command c;
  c.op = Op::kDelete;
  c.key = std::move(key);
  return c;
}

Command Command::cas(Bytes key, Bytes expected, Bytes value) {
  Command c;
  c.op = Op::kCas;
  c.key = std::move(key);
  c.expected = std::move(expected);
  c.value = std::move(value);
  return c;
}

Command Command::cas_absent(Bytes key, Bytes value) {
  Command c;
  c.op = Op::kCas;
  c.key = std::move(key);
  c.value = std::move(value);
  c.expect_absent = true;
  return c;
}

// Command layout:
//   [u8 op][u8 flags][u32 klen][u32 vlen][u32 elen][key][value][expected]
Bytes encode_command(const Command& cmd) {
  Bytes out;
  out.reserve(14 + cmd.key.size() + cmd.value.size() + cmd.expected.size());
  out.push_back(static_cast<std::uint8_t>(cmd.op));
  out.push_back(cmd.expect_absent ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(cmd.key.size()));
  put_u32(out, static_cast<std::uint32_t>(cmd.value.size()));
  put_u32(out, static_cast<std::uint32_t>(cmd.expected.size()));
  out.insert(out.end(), cmd.key.begin(), cmd.key.end());
  out.insert(out.end(), cmd.value.begin(), cmd.value.end());
  out.insert(out.end(), cmd.expected.begin(), cmd.expected.end());
  return out;
}

std::optional<Command> decode_command(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 14) return std::nullopt;
  const std::uint8_t op = bytes[0];
  if (op < 1 || op > 4) return std::nullopt;
  const std::uint8_t flags = bytes[1];
  if (flags > 1) return std::nullopt;
  std::size_t at = 2;
  std::uint32_t klen = 0, vlen = 0, elen = 0;
  if (!get_u32(bytes, at, klen) || !get_u32(bytes, at, vlen) ||
      !get_u32(bytes, at, elen)) {
    return std::nullopt;
  }
  if (static_cast<std::uint64_t>(klen) + vlen + elen != bytes.size() - at) {
    return std::nullopt;
  }
  Command cmd;
  cmd.op = static_cast<Command::Op>(op);
  cmd.expect_absent = flags == 1;
  const auto take = [&](std::uint32_t len, Bytes& out) {
    out.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
               bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  };
  take(klen, cmd.key);
  take(vlen, cmd.value);
  take(elen, cmd.expected);
  return cmd;
}

// Response layout: [u8 status][u8 has_value][u32 len][value bytes].
Bytes encode_response(const KvResponse& r) {
  Bytes out;
  out.reserve(6 + r.value.size());
  out.push_back(static_cast<std::uint8_t>(r.status));
  out.push_back(r.has_value ? 1 : 0);
  put_blob(out, r.value);
  return out;
}

std::optional<KvResponse> decode_response(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 6) return std::nullopt;
  if (bytes[0] > 3 || bytes[1] > 1) return std::nullopt;
  KvResponse r;
  r.status = static_cast<KvResponse::Status>(bytes[0]);
  r.has_value = bytes[1] == 1;
  std::size_t at = 2;
  if (!wire::get_blob(bytes, at, r.value) || at != bytes.size()) {
    return std::nullopt;
  }
  return r;
}

}  // namespace allconcur::smr
