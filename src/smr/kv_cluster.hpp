// SimKvCluster: the replicated KV store mounted on a simulated AllConcur
// deployment — one Replica+KvStore per node, driven by the cluster's
// delivery stream.
//
// Beyond per-node replicas it keeps the machinery a real deployment
// needs:
//   * a round log (each agreed RoundResult, recorded once) and periodic
//     reference snapshots, so joiners and lagging replicas catch up via
//     snapshot + bounded log replay instead of replaying from round 0;
//   * a per-round divergence guard: the reference replica's state hash is
//     recorded when a round is first applied, and every other replica is
//     asserted against it — a silent ordering bug aborts loudly;
//   * client session plumbing: execute() submits a command at a node,
//     runs the simulation until the command's response is applied there,
//     and returns it; retry() resubmits the last command (possibly at a
//     different node after a crash) with exactly-once semantics.
//
// Reads: kv(id).get_local() is a local read (read-your-writes relative to
// what node `id` has applied). read_barrier(id, r) runs the simulation
// until node `id` applied round r — after a barrier on a round the client
// observed, a local read is linearizable (the replica's state includes
// every command that was agreed before the observation).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "api/sim_cluster.hpp"
#include "smr/kv_store.hpp"
#include "smr/replica.hpp"

namespace allconcur::smr {

struct SimKvOptions {
  api::ClusterOptions cluster;
  /// Take a reference snapshot every this many rounds (join/catch-up
  /// restore points). 0 disables periodic snapshots.
  Round snapshot_every = 8;
  /// Restore points retained; the round log is truncated below the
  /// oldest retained snapshot.
  std::size_t keep_snapshots = 4;
};

class SimKvCluster {
 public:
  explicit SimKvCluster(SimKvOptions options);
  explicit SimKvCluster(api::ClusterOptions cluster_options)
      : SimKvCluster(SimKvOptions{.cluster = std::move(cluster_options)}) {}

  api::SimCluster& cluster() { return cluster_; }
  sim::Simulator& sim() { return cluster_.sim(); }

  bool has_replica(NodeId id) const;
  Replica& replica(NodeId id);
  const Replica& replica(NodeId id) const;
  const KvStore& kv(NodeId id) const;

  /// Chained observation (the cluster's own on_deliver is taken by the
  /// SMR layer; this fires after the replica applied the round).
  std::function<void(NodeId, const core::RoundResult&, TimeNs)> on_deliver;

  /// Divergence-guard trip handler. When a replica's post-round state
  /// hash mismatches the reference, the guard first records an
  /// obs::EventKind::kInvariantTrip on the diverging node and auto-dumps
  /// every node's flight recorder (obs::dump_on_trip, so a CI failure
  /// ships the per-replica timelines), then: aborts via ALLCONCUR_ASSERT
  /// when this is unset, or calls it (who, round) and returns when set —
  /// tests use the override to exercise the dump path on a forced
  /// divergence without dying.
  std::function<void(NodeId, Round)> on_divergence;

  /// A fresh client session (deterministic unique id).
  KvSession make_session();

  // ---- Client operations ----
  /// Submits `cmd` under `session` at `node` and runs the simulation
  /// until node's replica applied it (or `budget` sim time passed).
  std::optional<KvResponse> execute(NodeId node, KvSession& session,
                                    const Command& cmd,
                                    DurationNs budget = sec(5));
  /// Resubmits the session's last command at `node` (retry after a crash
  /// or timeout; applied exactly once even if the original also landed).
  std::optional<KvResponse> retry(NodeId node, KvSession& session,
                                  DurationNs budget = sec(5));
  /// Submit without driving the simulation (to pack several commands
  /// into one round); pair with cluster().broadcast_now() + run.
  void submit(NodeId node, KvSession& session, const Command& cmd);

  /// Runs the simulation until node `id` applied round `round`.
  bool read_barrier(NodeId id, Round round, DurationNs budget = sec(5));

  // ---- Catch-up machinery ----
  /// The agreed result of a logged round (nullptr if truncated/unknown).
  const core::RoundResult* logged_round(Round round) const;
  /// Builds a fresh replica from the best retained snapshot ≤ `upto` and
  /// replays the log to round `upto` (exclusive). Returns nullptr if the
  /// log no longer covers the gap.
  std::unique_ptr<Replica> spawn_replica_at(Round upto) const;

  /// True iff all live replicas that reached the same round agree on the
  /// state hash (the per-round guard asserts this continuously; this is
  /// the end-of-test summary check).
  bool converged() const;
  /// Reference hash after applying `round` (nullopt if not yet applied).
  std::optional<std::uint64_t> hash_after(Round round) const;

 private:
  void handle_delivery(NodeId who, const core::RoundResult& result,
                       TimeNs when);
  /// Advances the reference replica over consecutively logged rounds,
  /// recording hashes and taking periodic restore points.
  void drain_reference();
  /// Mounts replicas for joiners whose history gap has been filled.
  void flush_pending_mounts();
  void apply_to(NodeId who, const core::RoundResult& result);
  bool drive(DurationNs budget, const std::function<bool()>& done);
  std::optional<KvResponse> await_response(NodeId node,
                                           const KvSession& session,
                                           DurationNs budget);

  SimKvOptions options_;
  api::SimCluster cluster_;
  std::vector<std::unique_ptr<Replica>> replicas_;  // indexed by NodeId

  // Agreed history: RoundResults are identical across nodes, recorded on
  // first delivery. The reference replica applies them as consecutive
  // rounds become available (a freshly activated joiner can deliver its
  // first round before its sponsor's own delivery callback ran, so first
  // observations are not always in order) and provides the per-round
  // hash and the periodic snapshots.
  std::map<Round, core::RoundResult> round_log_;
  Replica reference_;
  std::map<Round, std::uint64_t> hash_after_round_;
  std::deque<std::pair<Round, std::vector<std::uint8_t>>> snapshots_;
  // Joiner deliveries buffered until the history below them is complete.
  std::map<NodeId, std::vector<core::RoundResult>> pending_mounts_;

  std::uint64_t next_session_ = 1;
};

}  // namespace allconcur::smr
