#include "smr/kv_cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace allconcur::smr {
namespace {

std::unique_ptr<Replica> make_kv_replica() {
  return std::make_unique<Replica>(std::make_unique<KvStore>());
}

}  // namespace

SimKvCluster::SimKvCluster(SimKvOptions options)
    : options_(std::move(options)),
      cluster_(options_.cluster),
      reference_(std::make_unique<KvStore>()) {
  // Slots for the initial members plus every admissible joiner.
  replicas_.resize(options_.cluster.n + options_.cluster.max_joins);
  for (NodeId id = 0; id < options_.cluster.n; ++id) {
    replicas_[id] = make_kv_replica();
  }
  cluster_.on_deliver = [this](NodeId who, const core::RoundResult& r,
                               TimeNs t) { handle_delivery(who, r, t); };
}

bool SimKvCluster::has_replica(NodeId id) const {
  return id < replicas_.size() && replicas_[id] != nullptr;
}

Replica& SimKvCluster::replica(NodeId id) {
  ALLCONCUR_ASSERT(has_replica(id), "no replica mounted for this node");
  return *replicas_[id];
}

const Replica& SimKvCluster::replica(NodeId id) const {
  ALLCONCUR_ASSERT(has_replica(id), "no replica mounted for this node");
  return *replicas_[id];
}

const KvStore& SimKvCluster::kv(NodeId id) const {
  const auto* store = dynamic_cast<const KvStore*>(&replica(id).machine());
  ALLCONCUR_ASSERT(store != nullptr, "replica does not mount a KvStore");
  return *store;
}

KvSession SimKvCluster::make_session() { return KvSession(next_session_++); }

void SimKvCluster::handle_delivery(NodeId who, const core::RoundResult& result,
                                   TimeNs when) {
  round_log_.try_emplace(result.round, result);
  drain_reference();

  if (!replicas_[who]) {
    // A joiner. Its activation can complete a round synchronously inside
    // its sponsor's delivery (preactivation replay), i.e. before the
    // round that committed the join was even logged — so buffer until
    // the agreed history below its first round is complete, then mount
    // by snapshot + bounded log replay (never by replaying from 0).
    pending_mounts_[who].push_back(result);
  } else {
    apply_to(who, result);
  }
  flush_pending_mounts();

  if (on_deliver) on_deliver(who, result, when);
}

void SimKvCluster::drain_reference() {
  for (auto it = round_log_.find(reference_.next_round());
       it != round_log_.end();
       it = round_log_.find(reference_.next_round())) {
    reference_.on_round(it->second);
    hash_after_round_[it->first] = reference_.state_hash();
    if (options_.snapshot_every > 0 &&
        reference_.next_round() % options_.snapshot_every == 0) {
      snapshots_.emplace_back(reference_.next_round(), reference_.snapshot());
      while (snapshots_.size() >
             std::max<std::size_t>(1, options_.keep_snapshots)) {
        snapshots_.pop_front();
      }
      // The log only feeds catch-up from retained restore points; the
      // guard hashes age out with it (a replica lagging below the
      // oldest restore point skips the guard, like it skips catch-up),
      // keeping memory bounded on long runs.
      round_log_.erase(round_log_.begin(),
                       round_log_.lower_bound(snapshots_.front().first));
      hash_after_round_.erase(
          hash_after_round_.begin(),
          hash_after_round_.lower_bound(snapshots_.front().first));
    }
  }
}

void SimKvCluster::flush_pending_mounts() {
  for (auto it = pending_mounts_.begin(); it != pending_mounts_.end();) {
    const Round first = it->second.front().round;
    if (reference_.next_round() < first) {
      ++it;
      continue;
    }
    replicas_[it->first] = spawn_replica_at(first);
    ALLCONCUR_ASSERT(replicas_[it->first] != nullptr,
                     "joiner catch-up outran the retained log");
    for (const core::RoundResult& result : it->second) {
      apply_to(it->first, result);
    }
    it = pending_mounts_.erase(it);
  }
}

void SimKvCluster::apply_to(NodeId who, const core::RoundResult& result) {
  replicas_[who]->on_round(result);
  // Divergence guard: every replica that applies round R must land on the
  // reference hash. A silent ordering/determinism bug dies here, loudly.
  const auto expected = hash_after_round_.find(result.round);
  if (expected != hash_after_round_.end() &&
      replicas_[who]->state_hash() != expected->second) {
    // Ship the evidence before dying: the per-replica round timelines
    // identify where the diverging node's history forked.
    if (auto* rec = cluster_.recorder(who)) {
      rec->record(obs::EventKind::kInvariantTrip, result.round,
                  static_cast<std::uint64_t>(
                      obs::TripCode::kSmrHashDivergence),
                  who);
    }
    obs::dump_on_trip("smr_hash_divergence", cluster_.recorders());
    obs::trace_dump_on_trip("smr_hash_divergence", cluster_.tracers());
    if (on_divergence) {
      on_divergence(who, result.round);
      return;
    }
    ALLCONCUR_ASSERT(false,
                     "replica state diverged from the agreed history");
  }
}

const core::RoundResult* SimKvCluster::logged_round(Round round) const {
  const auto it = round_log_.find(round);
  return it == round_log_.end() ? nullptr : &it->second;
}

std::unique_ptr<Replica> SimKvCluster::spawn_replica_at(Round upto) const {
  auto replica = make_kv_replica();
  // Newest retained restore point at or before `upto`.
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->first <= upto) {
      const bool ok = replica->restore(it->second);
      ALLCONCUR_ASSERT(ok, "retained snapshot failed to restore");
      break;
    }
  }
  for (Round r = replica->next_round(); r < upto; ++r) {
    const core::RoundResult* logged = logged_round(r);
    if (!logged) return nullptr;
    replica->on_round(*logged);
  }
  return replica;
}

std::optional<std::uint64_t> SimKvCluster::hash_after(Round round) const {
  const auto it = hash_after_round_.find(round);
  if (it == hash_after_round_.end()) return std::nullopt;
  return it->second;
}

bool SimKvCluster::converged() const {
  for (NodeId id = 0; id < replicas_.size(); ++id) {
    if (!replicas_[id] || !cluster_.alive(id)) continue;
    const Round next = replicas_[id]->next_round();
    if (next == 0) continue;
    const auto expected = hash_after(next - 1);
    // A hash that aged out with the log was already asserted when the
    // replica applied that round (apply_to's guard) — skip, don't fail.
    if (expected && replicas_[id]->state_hash() != *expected) return false;
  }
  return true;
}

bool SimKvCluster::drive(DurationNs budget,
                         const std::function<bool()>& done) {
  const TimeNs deadline = sim().now() + budget;
  const DurationNs chunk = ms(1);
  while (!done()) {
    if (sim().now() >= deadline) return false;
    if (sim().idle()) return done();
    cluster_.run_for(std::min<DurationNs>(chunk, deadline - sim().now()));
  }
  return true;
}

std::optional<KvResponse> SimKvCluster::await_response(
    NodeId node, const KvSession& session, DurationNs budget) {
  const auto applied = [&] {
    return replicas_[node] &&
           replicas_[node]->response(session.id(), session.last_seq())
               .has_value();
  };
  if (!drive(budget, applied)) return std::nullopt;
  const auto bytes =
      replicas_[node]->response(session.id(), session.last_seq());
  if (!bytes) return std::nullopt;
  return decode_response(*bytes);
}

void SimKvCluster::submit(NodeId node, KvSession& session,
                          const Command& cmd) {
  cluster_.submit(node, core::Request::of_data(session.issue(cmd)));
}

std::optional<KvResponse> SimKvCluster::execute(NodeId node,
                                                KvSession& session,
                                                const Command& cmd,
                                                DurationNs budget) {
  submit(node, session, cmd);
  cluster_.broadcast_now(node);
  return await_response(node, session, budget);
}

std::optional<KvResponse> SimKvCluster::retry(NodeId node, KvSession& session,
                                              DurationNs budget) {
  auto envelope = session.retry();
  ALLCONCUR_ASSERT(!envelope.empty(), "retry before any command was issued");
  cluster_.submit(node, core::Request::of_data(std::move(envelope)));
  cluster_.broadcast_now(node);
  return await_response(node, session, budget);
}

bool SimKvCluster::read_barrier(NodeId id, Round round, DurationNs budget) {
  return drive(budget, [&] {
    return has_replica(id) && replicas_[id]->next_round() > round;
  });
}

}  // namespace allconcur::smr
