// Wire formats of the SMR layer, layered inside core::Request payloads.
//
// Two independent layers:
//
//   * The session envelope — generic SMR infrastructure. Every replicated
//     command travels as [magic][session][seq][command bytes]; the
//     Replica uses (session, seq) for exactly-once dedup and hands the
//     inner bytes to the mounted StateMachine. The magic byte lets
//     replicas coexist with non-SMR traffic in the same agreed stream
//     (anything that is not an envelope is ignored).
//
//   * The KV command — the KvStore's own format: get/put/delete/cas over
//     binary-safe keys and values, plus the encoded response.
//
// All integers are little-endian. Lengths are u32 (the engine's payload
// limit is 32-bit anyway, see core::Message::kMaxPayloadBytes).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace allconcur::smr {

// ---------------------------------------------------------------------------
// Session envelope
// ---------------------------------------------------------------------------

/// First byte of every SMR envelope; chosen to be an invalid
/// core::Request::Kind so stray decoding attempts fail fast.
inline constexpr std::uint8_t kEnvelopeMagic = 0xC5;

struct Envelope {
  std::uint64_t session = 0;  ///< client session id (unique per client)
  std::uint64_t seq = 0;      ///< per-session command number, 1-based
  /// The state-machine command; a view into the decoded buffer.
  std::span<const std::uint8_t> command;
};

std::vector<std::uint8_t> encode_envelope(
    std::uint64_t session, std::uint64_t seq,
    std::span<const std::uint8_t> command);

/// nullopt unless `bytes` is a well-formed envelope. The returned command
/// span aliases `bytes`.
std::optional<Envelope> decode_envelope(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// KV commands
// ---------------------------------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

/// Convenience for string-literal keys/values (keys remain binary-safe;
/// this is just sugar for tests, examples and the CLI).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}
inline std::string_view to_view(const Bytes& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

struct Command {
  enum class Op : std::uint8_t {
    kPut = 1,     ///< key := value
    kGet = 2,     ///< linearizable read through the agreed stream
    kDelete = 3,  ///< erase key
    kCas = 4,     ///< compare-and-swap: see expect_absent below
  };
  Op op = Op::kGet;
  Bytes key;
  Bytes value;     ///< put/cas: the new value
  Bytes expected;  ///< cas only: required current value
  /// cas only: succeed iff the key is absent (create-if-missing); when
  /// set, `expected` is ignored.
  bool expect_absent = false;

  static Command put(Bytes key, Bytes value);
  static Command get(Bytes key);
  static Command del(Bytes key);
  static Command cas(Bytes key, Bytes expected, Bytes value);
  static Command cas_absent(Bytes key, Bytes value);
};

Bytes encode_command(const Command& cmd);
std::optional<Command> decode_command(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------------------
// KV responses
// ---------------------------------------------------------------------------

struct KvResponse {
  enum class Status : std::uint8_t {
    kOk = 0,
    kNotFound = 1,    ///< get/delete on a missing key
    kCasFailed = 2,   ///< current value (returned in `value`) mismatched
    kBadCommand = 3,  ///< undecodable command bytes (deterministic error)
  };
  Status status = Status::kOk;
  /// get: the read value; failed cas: the actual current value.
  Bytes value;
  bool has_value = false;

  bool ok() const { return status == Status::kOk; }
};

Bytes encode_response(const KvResponse& r);
std::optional<KvResponse> decode_response(std::span<const std::uint8_t> bytes);

}  // namespace allconcur::smr
