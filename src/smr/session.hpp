// Client sessions: exactly-once command application over at-least-once
// submission.
//
// A client that never hears back (its contact node crashed, the response
// was lost) can only safely retry if retries are idempotent. The standard
// SMR construction (Raft §6.3 client interaction, Chubby sessions) tags
// every command with a (session id, sequence number) pair; replicas keep
// a dedup table keyed by session and apply a command only when its seq is
// new, caching the latest response for replay to the retrying client.
//
// The table itself is replicated state: it is driven purely by the agreed
// command stream, so all replicas hold identical tables, and it rides
// inside Replica snapshots so exactly-once survives snapshot/restore.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "smr/command.hpp"

namespace allconcur::smr {

// ---------------------------------------------------------------------------
// Replica side: the replicated dedup table
// ---------------------------------------------------------------------------

class SessionTable {
 public:
  struct Entry {
    std::uint64_t last_seq = 0;      ///< highest applied seq for the session
    std::vector<std::uint8_t> response;  ///< response of that command
  };

  /// True iff (session, seq) was already applied: seq ≤ the session's
  /// last applied sequence number.
  bool is_duplicate(std::uint64_t session, std::uint64_t seq) const;

  /// Records a freshly applied command and caches its response.
  /// Pre: !is_duplicate(session, seq).
  void record(std::uint64_t session, std::uint64_t seq,
              std::vector<std::uint8_t> response);

  /// Cached response for the session's most recent command, if it is
  /// exactly `seq` (older responses are not retained: clients retry only
  /// their latest in-flight command).
  std::optional<std::vector<std::uint8_t>> response(std::uint64_t session,
                                                    std::uint64_t seq) const;

  const Entry* find(std::uint64_t session) const;
  std::size_t size() const { return sessions_.size(); }

  /// Deterministic serialization (ordered by session id), appended to
  /// `out`; decode consumes from `bytes` at `at`.
  void encode_into(std::vector<std::uint8_t>& out) const;
  bool decode_from(std::span<const std::uint8_t> bytes, std::size_t& at);

 private:
  std::map<std::uint64_t, Entry> sessions_;
};

// ---------------------------------------------------------------------------
// Client side: session id + sequence numbering + retry
// ---------------------------------------------------------------------------

/// Issues envelopes for one client session. Session ids must be unique
/// across clients; deployments pick them (the cluster mounts hand out
/// counters — a production system would allocate them through the stream
/// itself or use sufficiently-random 64-bit ids).
class KvSession {
 public:
  explicit KvSession(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const { return id_; }
  /// Sequence number of the most recently issued command (0 = none yet).
  std::uint64_t last_seq() const { return seq_; }

  /// Encodes `cmd` under the next sequence number. The returned bytes go
  /// into core::Request::of_data and may be submitted any number of
  /// times — replicas apply the command exactly once.
  std::vector<std::uint8_t> issue(const Command& cmd);

  /// The most recent envelope again, byte-identical (safe resubmission
  /// after a timeout or contact-node crash). Empty if nothing issued.
  std::vector<std::uint8_t> retry() const { return last_envelope_; }

 private:
  std::uint64_t id_;
  std::uint64_t seq_ = 0;
  std::vector<std::uint8_t> last_envelope_;
};

}  // namespace allconcur::smr
