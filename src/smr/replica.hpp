// Replica: turns the agreed round stream into replicated application
// state.
//
// One Replica mounts one StateMachine on one AllConcur node. Feed it
// every RoundResult the node A-delivers, in order; it walks the round's
// deliveries in the canonical order (RoundResult::deliveries is sorted by
// origin id — the paper's deterministic delivery order), unwraps session
// envelopes, deduplicates via the replicated SessionTable, and applies
// fresh commands to the machine. Non-SMR payloads in the same stream
// (opaque bench traffic, membership control) are ignored.
//
// Snapshots capture machine state + session table + stream position, so a
// fresh or lagging replica restores and resumes from round `next_round()`
// instead of replaying from round 0 — exactly-once semantics included
// (the dedup table crosses the snapshot boundary).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "smr/session.hpp"
#include "smr/state_machine.hpp"

namespace allconcur::smr {

class Replica {
 public:
  explicit Replica(std::unique_ptr<StateMachine> machine);

  /// Applies one A-delivered round. Rounds must arrive in order: the
  /// result's round must equal next_round() (protocol deliveries are
  /// consecutive; after restore, resume from the snapshot's position).
  void on_round(const core::RoundResult& result);

  /// The first round not yet applied (0 on a fresh replica).
  Round next_round() const { return next_round_; }

  StateMachine& machine() { return *machine_; }
  const StateMachine& machine() const { return *machine_; }
  const SessionTable& sessions() const { return sessions_; }

  /// Cached response for a session's most recent command — how a client
  /// (or its retry) learns the outcome once the command was applied here.
  std::optional<std::vector<std::uint8_t>> response(std::uint64_t session,
                                                    std::uint64_t seq) const {
    return sessions_.response(session, seq);
  }

  /// Divergence digest: the machine's running hash additionally folded
  /// with the stream position, so "same hash" means "same commands, same
  /// rounds".
  std::uint64_t state_hash() const;

  std::uint64_t commands_applied() const { return applied_; }
  /// Commands skipped because their (session, seq) was already applied.
  std::uint64_t duplicates_suppressed() const { return duplicates_; }

  /// Serializes stream position + session table + machine snapshot.
  std::vector<std::uint8_t> snapshot() const;
  /// Restores from snapshot() bytes; false on malformed input (replica
  /// state is unspecified afterwards — discard it).
  bool restore(std::span<const std::uint8_t> bytes);

 private:
  std::unique_ptr<StateMachine> machine_;
  SessionTable sessions_;
  Round next_round_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace allconcur::smr
