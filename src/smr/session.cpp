#include "smr/session.hpp"

#include "smr/wire.hpp"

namespace allconcur::smr {

using wire::get_u32;
using wire::get_u64;
using wire::put_u32;
using wire::put_u64;

bool SessionTable::is_duplicate(std::uint64_t session,
                                std::uint64_t seq) const {
  const auto it = sessions_.find(session);
  return it != sessions_.end() && seq <= it->second.last_seq;
}

void SessionTable::record(std::uint64_t session, std::uint64_t seq,
                          std::vector<std::uint8_t> response) {
  Entry& e = sessions_[session];
  e.last_seq = seq;
  e.response = std::move(response);
}

std::optional<std::vector<std::uint8_t>> SessionTable::response(
    std::uint64_t session, std::uint64_t seq) const {
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.last_seq != seq) {
    return std::nullopt;
  }
  return it->second.response;
}

const SessionTable::Entry* SessionTable::find(std::uint64_t session) const {
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : &it->second;
}

// Layout: [u32 count] then per session
//   [u64 session][u64 last_seq][u32 response len][response bytes].
void SessionTable::encode_into(std::vector<std::uint8_t>& out) const {
  put_u32(out, static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [id, entry] : sessions_) {
    put_u64(out, id);
    put_u64(out, entry.last_seq);
    wire::put_blob(out, entry.response);
  }
}

bool SessionTable::decode_from(std::span<const std::uint8_t> bytes,
                               std::size_t& at) {
  std::uint32_t count = 0;
  if (!get_u32(bytes, at, count)) return false;
  std::map<std::uint64_t, Entry> sessions;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    Entry e;
    if (!get_u64(bytes, at, id) || !get_u64(bytes, at, e.last_seq) ||
        !wire::get_blob(bytes, at, e.response)) {
      return false;
    }
    sessions.emplace(id, std::move(e));
  }
  sessions_ = std::move(sessions);
  return true;
}

std::vector<std::uint8_t> KvSession::issue(const Command& cmd) {
  ++seq_;
  last_envelope_ = encode_envelope(id_, seq_, encode_command(cmd));
  return last_envelope_;
}

}  // namespace allconcur::smr
