#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/assert.hpp"
#include "obs/schema.hpp"

namespace allconcur::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  ALLCONCUR_ASSERT(flags >= 0, "fcntl(F_GETFL) failed");
  ALLCONCUR_ASSERT(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL) failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TimeNs monotonic_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Max iovec segments gathered per sendmsg. Each frame contributes up to
/// two (header, payload); 64 keeps the stack array small while still
/// coalescing 32 frames per syscall — far above the steady-state queue
/// depth, and the flush loops if a burst exceeds it.
constexpr std::size_t kMaxIov = 64;

/// Receive-buffer compaction threshold: the dead prefix is memmoved away
/// only once it exceeds this *and* outweighs the live tail. In steady
/// state every wake consumes the buffer completely, which resets it for
/// free instead.
constexpr std::size_t kCompactAt = 64 * 1024;

}  // namespace

TcpNode::TcpNode(TcpNodeOptions options, DeliverFn on_deliver)
    : options_(std::move(options)),
      on_deliver_(std::move(on_deliver)),
      recorder_(options_.recorder_capacity, options_.recorder_enabled),
      tracer_(options_.trace_capacity, options_.trace_sample_period != 0) {
  if (!options_.builder) options_.builder = core::make_default_graph_builder();
  // Events are stamped with the event-loop wake time: one clock read per
  // wake covers every event it triggers (the wire path stays clean).
  recorder_.set_time_source(&loop_now_);
  tracer_.set_time_source(&loop_now_);
  tracer_.set_self(options_.self);
  relay_hop_ = &metrics_.histogram(
      "relay_hop_latency_ns",
      "Per-hop relay latency: one broadcast frame's parse-to-relayed time "
      "on this node (monotonic clock around the engine's relay decision). "
      "Live regardless of trace sampling; its mean is the per-hop estimate "
      "sampled frames accumulate",
      obs::Unit::kNanoseconds);
  tracer_.set_hop_histogram(relay_hop_);

  core::Engine::Hooks hooks;
  hooks.send = [this](NodeId dst, const core::FrameRef& frame) {
    queue_frame(dst, frame);
  };
  hooks.deliver = [this](const core::RoundResult& r) {
    completed_rounds_.fetch_add(1, std::memory_order_release);
    if (on_deliver_) on_deliver_(r);
  };
  core::Engine::Options eopts;
  eopts.fd_mode = options_.fd_mode;
  eopts.window = options_.window;
  eopts.fast_builder = options_.fast_builder;
  eopts.recorder = &recorder_;
  eopts.tracer = &tracer_;
  eopts.trace_sample_period = options_.trace_sample_period;
  engine_ = std::make_unique<core::Engine>(
      options_.self,
      core::View(options_.members, options_.builder, options_.fast_builder),
      options_.builder, hooks, eopts);

  if (options_.enable_heartbeats) {
    core::HeartbeatFd::Hooks fd_hooks;
    fd_hooks.send = [this](NodeId dst, const core::FrameRef& frame) {
      queue_frame(dst, frame);
    };
    fd_hooks.suspect = [this](NodeId suspect) { engine_->on_suspect(suspect); };
    fd_ = std::make_unique<core::HeartbeatFd>(options_.self,
                                              options_.fd_params, fd_hooks);
    // Dual mode monitors (and connects, see dial_successors) the union
    // overlay G_U ∪ G_R; classic mode this is exactly G.
    fd_->set_peers(engine_->view().monitor_successors_of(options_.self),
                   engine_->view().monitor_predecessors_of(options_.self),
                   monotonic_now());
  }
  if (options_.fast_builder && options_.fallback_timeout > 0) {
    watchdog_ = std::make_unique<plus::FallbackTimer>(
        options_.fallback_timeout, options_.fallback_max_round_age);
    watchdog_->set_recorder(&recorder_);
  }
}

TcpNode::~TcpNode() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  for (auto& [fd, conn] : admin_conns_) ::close(fd);
  if (admin_fd_ >= 0) ::close(admin_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

TcpNetStats TcpNode::net_stats() const {
  TcpNetStats s;
  s.sendmsg_calls = net_.sendmsg_calls.load(std::memory_order_relaxed);
  s.frames_sent = net_.frames_sent.load(std::memory_order_relaxed);
  s.bytes_sent = net_.bytes_sent.load(std::memory_order_relaxed);
  s.preamble_bytes = net_.preamble_bytes.load(std::memory_order_relaxed);
  s.partial_writes = net_.partial_writes.load(std::memory_order_relaxed);
  s.eagain_waits = net_.eagain_waits.load(std::memory_order_relaxed);
  s.frames_received = net_.frames_received.load(std::memory_order_relaxed);
  s.rbuf_compactions = net_.rbuf_compactions.load(std::memory_order_relaxed);
  s.checksum_drops = net_.checksum_drops.load(std::memory_order_relaxed);
  s.resyncs = net_.resyncs.load(std::memory_order_relaxed);
  return s;
}

void TcpNode::setup_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ALLCONCUR_ASSERT(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(options_.base_port + options_.self));
  ALLCONCUR_ASSERT(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind() failed (port in use?)");
  ALLCONCUR_ASSERT(::listen(listen_fd_, 64) == 0, "listen() failed");
  set_nonblocking(listen_fd_);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void TcpNode::dial(NodeId peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ALLCONCUR_ASSERT(fd >= 0, "socket() failed");
  set_nodelay(fd);
  if (options_.sndbuf_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
               sizeof(options_.sndbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.base_port + peer));
  // Blocking connect with retries: peers may not be listening yet.
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nonblocking(fd);
      Conn conn;
      conn.fd = fd;
      conn.peer = peer;
      conn.outbound = true;
      // Hello: announce who we are so the acceptor can map the link.
      const std::uint32_t hello = options_.self;
      conn.preamble.resize(4);
      std::memcpy(conn.preamble.data(), &hello, 4);
      conns_[fd] = std::move(conn);
      out_by_peer_[peer] = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
      Conn& c = conns_[fd];
      if (!flush(c)) {
        close_conn(fd);
      } else {
        update_epoll(c);
      }
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ALLCONCUR_ASSERT(false, "could not connect to successor");
}

void TcpNode::dial_successors() {
  // Dual mode dials two overlays' worth of links: fast rounds relay over
  // G_U, fallback/tracking traffic over G_R (monitor_* is their union;
  // classic mode it is exactly G's successor set).
  for (NodeId s : engine_->view().monitor_successors_of(options_.self)) {
    dial(s);
  }
  connected_.store(true, std::memory_order_release);
}

bool TcpNode::wait_connected(DurationNs timeout) {
  const TimeNs start = monotonic_now();
  while (!connected_.load(std::memory_order_acquire)) {
    if (monotonic_now() - start > timeout) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void TcpNode::run() {
  epoll_fd_ = epoll_create1(0);
  ALLCONCUR_ASSERT(epoll_fd_ >= 0, "epoll_create1 failed");

  event_fd_ = eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  if (fd_) {
    timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK);
    itimerspec spec{};
    const auto period_ns = options_.fd_params.period;
    spec.it_interval.tv_sec = period_ns / 1'000'000'000;
    spec.it_interval.tv_nsec = period_ns % 1'000'000'000;
    spec.it_value = spec.it_interval;
    timerfd_settime(timer_fd_, 0, &spec, nullptr);
    epoll_event tev{};
    tev.events = EPOLLIN;
    tev.data.fd = timer_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &tev);
  }

  setup_listener();
  setup_admin_listener();
  dial_successors();

  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    // One clock read per wake stamps every flight-recorder event this
    // iteration produces.
    loop_now_ = monotonic_now();
    // Commands may have been queued before the eventfd existed.
    drain_commands();
    int wait_ms = 50;
    if (options_.send_delay > 0 || options_.chaos) {
      wait_ms = std::min(wait_ms, release_delayed(loop_now_));
    }
    if (options_.chaos && recorder_.enabled()) {
      // Phase-set transitions bracket the fault windows in a dump.
      const std::uint64_t mask = options_.chaos->active_phase_mask(loop_now_);
      if (mask != chaos_phase_mask_) {
        chaos_phase_mask_ = mask;
        recorder_.record(obs::EventKind::kChaosPhase,
                         engine_->current_round(), mask);
      }
    }
    if (watchdog_) {
      // Poll the round watchdog once per wake; cap the sleep so a stall
      // with no socket activity still fires the fallback promptly.
      if (const auto stuck =
              watchdog_->poll(engine_->current_round(),
                              engine_->front_round_progress(),
                              monotonic_now())) {
        engine_->on_round_timeout(*stuck);
      }
      const int tick_ms =
          static_cast<int>(std::max<DurationNs>(options_.fallback_timeout / 2,
                                                ms(1)) / 1'000'000);
      wait_ms = std::min(wait_ms, tick_ms);
    }
    flush_dirty();
    const int ready = epoll_wait(epoll_fd_, events, 64, wait_ms);
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        on_accept();
      } else if (fd == admin_fd_) {
        on_admin_accept();
      } else if (admin_conns_.count(fd) != 0) {
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 ||
            !on_admin_io(fd, events[i].events)) {
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
          ::close(fd);
          admin_conns_.erase(fd);
        }
      } else if (fd == event_fd_) {
        std::uint64_t buf;
        while (::read(event_fd_, &buf, 8) == 8) {
        }
        drain_commands();
      } else if (fd == timer_fd_) {
        std::uint64_t expirations;
        while (::read(timer_fd_, &expirations, 8) == 8) {
        }
        fd_tick();
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) on_readable(fd);
        if (conns_.count(fd) && (events[i].events & EPOLLOUT)) {
          on_writable(fd);
        }
      }
    }
    // One coalesced flush per wake: everything the handlers above queued
    // (relays, broadcasts, heartbeats) leaves in a single vectored write
    // per peer instead of one syscall per message.
    flush_dirty();
  }
}

void TcpNode::fd_tick() {
  if (!fd_) return;
  fd_->tick(monotonic_now());
}

void TcpNode::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    set_nodelay(fd);
    Conn conn;
    conn.fd = fd;
    conns_[fd] = std::move(conn);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpNode::on_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got > 0) {
      conn.rbuf.insert(conn.rbuf.end(), buf, buf + got);
    } else if (got == 0) {
      close_conn(fd);  // peer closed — its FD heartbeats stop with it
      return;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      close_conn(fd);  // hard error (ECONNRESET & co): the peer is gone
      return;
    }
  }
  parse_frames(conn);
}

void TcpNode::parse_frames(Conn& conn) {
  std::size_t at = conn.rstart;
  // Inbound links start with the peer's 4-byte hello.
  if (conn.peer == kInvalidNode) {
    if (conn.rbuf.size() - at < 4) return;
    std::uint32_t hello;
    std::memcpy(&hello, conn.rbuf.data() + at, 4);
    conn.peer = hello;
    at += 4;
  }
  // Checksum-verified stream parse with torn-frame resync: a corrupted or
  // hostile frame (bad magic, absurd length, checksum mismatch) is dropped
  // and the parser hunts for the next plausible header instead of
  // desyncing the connection or stalling on a 4 GiB length field.
  core::StreamStats ss;
  at = core::parse_stream({conn.rbuf.data(), conn.rbuf.size()}, at, ss,
                          [this, &conn](const core::Message& msg) {
                            net_.frames_received.fetch_add(
                                1, std::memory_order_relaxed);
                            if (fd_) {
                              // Any verified traffic counts as liveness.
                              fd_->on_heartbeat(conn.peer, monotonic_now());
                            }
                            if (msg.type == core::MsgType::kHeartbeat) return;
                            const bool bc =
                                msg.type == core::MsgType::kBroadcast ||
                                msg.type == core::MsgType::kUBcast;
                            if (bc) {
                              if (msg.trace_sampled()) {
                                tracer_.record(obs::SpanKind::kRecv, msg.round,
                                               msg.origin, conn.peer,
                                               msg.trace_hop(), msg.detector);
                              }
                              // Parse-to-relayed time feeds the per-hop
                              // histogram for every broadcast frame — the
                              // metric (and the tracer's hop estimate)
                              // stays live with sampling off.
                              const TimeNs t0 = monotonic_now();
                              engine_->on_message(conn.peer, msg);
                              relay_hop_->record(
                                  static_cast<std::uint64_t>(
                                      std::max<TimeNs>(0, monotonic_now() - t0)));
                            } else {
                              engine_->on_message(conn.peer, msg);
                            }
                          });
  if (ss.corrupt_drops > 0) {
    net_.checksum_drops.fetch_add(ss.corrupt_drops,
                                  std::memory_order_relaxed);
  }
  if (ss.resyncs > 0) {
    net_.resyncs.fetch_add(ss.resyncs, std::memory_order_relaxed);
  }
  conn.rstart = at;
  if (conn.rstart == conn.rbuf.size()) {
    // Everything consumed — the common case: resetting is free, no memmove.
    conn.rbuf.clear();
    conn.rstart = 0;
  } else if (conn.rstart >= kCompactAt &&
             conn.rstart > conn.rbuf.size() - conn.rstart) {
    // A large dead prefix outweighs the live tail: compact once.
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.rstart));
    conn.rstart = 0;
    net_.rbuf_compactions.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpNode::queue_frame(NodeId dst, const core::FrameRef& frame) {
  core::FrameRef out = frame;
  DurationNs extra = options_.send_delay;
  bool duplicate = false;
  if (options_.chaos) {
    // Chaos interposition: same verdict point as the sim fabric's fault
    // hook — one Action per outbound frame, drawn before any queueing.
    const chaos::Action act =
        options_.chaos->on_frame(options_.self, dst, monotonic_now());
    if (act.drop || act.duplicate || act.corrupt || act.delay > 0) {
      const std::uint64_t bits = (act.drop ? 1u : 0u) |
                                 (act.duplicate ? 2u : 0u) |
                                 (act.corrupt ? 4u : 0u) |
                                 (act.delay > 0 ? 8u : 0u);
      recorder_.record(obs::EventKind::kChaosInject, engine_->current_round(),
                       dst, bits);
    }
    if (act.drop) return;
    if (act.corrupt) out = core::Frame::corrupt_copy(*frame, act.corrupt_at);
    duplicate = act.duplicate;
    extra += act.delay;
  }
  if (extra > 0) {
    // netem-style skew: park until now + delay; the event loop releases
    // due frames each wake.
    const TimeNs when = monotonic_now() + extra;
    park_delayed(when, dst, out);
    if (duplicate) park_delayed(when, dst, out);
    return;
  }
  queue_frame_now(dst, out);
  if (duplicate) queue_frame_now(dst, out);
}

void TcpNode::park_delayed(TimeNs when, NodeId dst, core::FrameRef frame) {
  // Sorted insert from the back: constant send_delay keeps this O(1); only
  // chaos jitter pays a short walk.
  auto it = delayed_.end();
  while (it != delayed_.begin() && std::get<0>(*std::prev(it)) > when) --it;
  delayed_.insert(it, std::make_tuple(when, dst, std::move(frame)));
}

int TcpNode::release_delayed(TimeNs now) {
  while (!delayed_.empty() && std::get<0>(delayed_.front()) <= now) {
    const auto& [when, dst, frame] = delayed_.front();
    queue_frame_now(dst, frame);
    delayed_.pop_front();
  }
  if (delayed_.empty()) return 50;
  const TimeNs next = std::get<0>(delayed_.front()) - now;
  // Round up so we do not spin on a sub-millisecond residue.
  return static_cast<int>(std::min<TimeNs>(50, (next + 999'999) / 1'000'000 + 1));
}

void TcpNode::queue_frame_now(NodeId dst, const core::FrameRef& frame) {
  const auto it = out_by_peer_.find(dst);
  if (it == out_by_peer_.end()) return;  // peer gone (crashed / removed)
  const auto conn_it = conns_.find(it->second);
  if (conn_it == conns_.end()) return;
  Conn& conn = conn_it->second;
  if (tracer_.enabled()) {
    const core::Message& m = frame->msg();
    if (m.trace_sampled() && (m.type == core::MsgType::kBroadcast ||
                              m.type == core::MsgType::kUBcast)) {
      tracer_.record(obs::SpanKind::kEnqueue, m.round, m.origin, dst,
                     m.trace_hop(), m.detector);
    }
  }
  conn.wqueue.push_back(frame);  // shared reference, no copy
  if (!conn.flush_pending) {
    conn.flush_pending = true;
    dirty_fds_.push_back(conn.fd);
  }
}

void TcpNode::flush_dirty() {
  // Swap out first: close_conn during the loop may mutate conns_.
  if (dirty_fds_.empty()) return;
  for (std::size_t i = 0; i < dirty_fds_.size(); ++i) {
    const int fd = dirty_fds_[i];
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed since queued
    it->second.flush_pending = false;
    if (!flush(it->second)) {
      close_conn(fd);
    } else {
      update_epoll(it->second);
    }
  }
  dirty_fds_.clear();
}

void TcpNode::advance_tx(Conn& conn, std::size_t sent) {
  net_.bytes_sent.fetch_add(sent, std::memory_order_relaxed);
  if (conn.preamble_sent < conn.preamble.size()) {
    const std::size_t take =
        std::min(sent, conn.preamble.size() - conn.preamble_sent);
    conn.preamble_sent += take;
    net_.preamble_bytes.fetch_add(take, std::memory_order_relaxed);
    sent -= take;
  }
  while (sent > 0) {
    const core::Frame& front = *conn.wqueue.front();
    const std::size_t remaining = front.wire_size() - conn.wqueue_offset;
    if (sent >= remaining) {
      sent -= remaining;
      if (tracer_.enabled()) {
        const core::Message& m = front.msg();
        if (m.trace_sampled() && (m.type == core::MsgType::kBroadcast ||
                                  m.type == core::MsgType::kUBcast)) {
          // The frame's last byte entered the kernel: the wire edge starts.
          tracer_.record(obs::SpanKind::kSend, m.round, m.origin, conn.peer,
                         m.trace_hop(), m.detector);
        }
      }
      conn.wqueue.pop_front();
      conn.wqueue_offset = 0;
      net_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    } else {
      conn.wqueue_offset += sent;
      sent = 0;
    }
  }
}

bool TcpNode::flush(Conn& conn) {
  while (conn.has_tx_backlog()) {
    // Gather the backlog into one iovec batch: the hello preamble, then
    // [header, payload] per queued frame, the front frame offset by what
    // already left in a previous partial write.
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t gathered = 0;
    if (conn.preamble_sent < conn.preamble.size()) {
      iov[niov].iov_base = conn.preamble.data() + conn.preamble_sent;
      iov[niov].iov_len = conn.preamble.size() - conn.preamble_sent;
      gathered += iov[niov].iov_len;
      ++niov;
    }
    std::size_t skip = conn.wqueue_offset;
    for (const core::FrameRef& f : conn.wqueue) {
      if (niov + 2 > kMaxIov) break;
      const auto header = f->header();
      if (skip < header.size()) {
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(header.data() + skip);
        iov[niov].iov_len = header.size() - skip;
        gathered += iov[niov].iov_len;
        ++niov;
        skip = 0;
      } else {
        skip -= header.size();
      }
      const core::Payload& payload = f->wire_payload();
      if (payload && skip < payload->size()) {
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(payload->data() + skip);
        iov[niov].iov_len = payload->size() - skip;
        gathered += iov[niov].iov_len;
        ++niov;
      }
      skip = 0;  // only the front frame is partially sent
    }

    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t sent = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    net_.sendmsg_calls.fetch_add(1, std::memory_order_relaxed);
    if (sent < 0) {
      if (errno == EINTR) continue;  // interrupted: retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: park the backlog and wait for EPOLLOUT.
        net_.eagain_waits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Hard error (EPIPE, ECONNRESET, ...): the peer is dead — report it
      // so the connection is torn down promptly instead of queueing into
      // the void until the FD times out.
      return false;
    }
    advance_tx(conn, static_cast<std::size_t>(sent));
    if (static_cast<std::size_t>(sent) < gathered) {
      // Short write: the kernel took what it could; a retry now would
      // only earn an EAGAIN. Wait for EPOLLOUT.
      net_.partial_writes.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Full batch accepted; loop only if the iovec cap left frames queued.
  }
  return true;
}

void TcpNode::update_epoll(Conn& conn) {
  const bool want = conn.has_tx_backlog();
  if (want == conn.want_writable) return;  // registration already right
  conn.want_writable = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpNode::on_writable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (!flush(it->second)) {
    close_conn(fd);
  } else {
    update_epoll(it->second);
  }
}

void TcpNode::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.outbound) out_by_peer_.erase(it->second.peer);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

void TcpNode::drain_commands() {
  std::deque<std::function<void()>> pending;
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    pending.swap(commands_);
  }
  for (auto& fn : pending) fn();
  // Publish the backpressure signal after the commands (submits,
  // broadcasts) took effect on the engine.
  pending_bytes_.store(engine_->pending_bytes(), std::memory_order_release);
}

void TcpNode::submit(core::Request request) {
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    commands_.push_back(
        [this, request = std::move(request)]() mutable {
          engine_->submit(std::move(request));
        });
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

void TcpNode::broadcast_now() {
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    commands_.push_back([this] { engine_->broadcast_now(); });
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

void TcpNode::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

// ---------------------------------------------------------------------------
// Introspection plane. Entirely off the wire path: its own listener, its
// own connection map, request/response handled in at most a few wakes.
// ---------------------------------------------------------------------------

std::string TcpNode::metrics_json() {
  obs::fill_engine_stats(metrics_, engine_->stats());
  obs::fill_net_stats(metrics_, net_stats());
  if (options_.chaos) obs::fill_chaos_stats(metrics_, options_.chaos->stats());
  metrics_
      .gauge("node_rounds_completed", "Rounds A-delivered by this node",
             obs::Unit::kRounds)
      .set(static_cast<std::int64_t>(rounds_completed()));
  metrics_
      .gauge("node_pending_bytes",
             "Submitted but not yet A-broadcast bytes (backpressure signal)",
             obs::Unit::kBytes)
      .set(static_cast<std::int64_t>(pending_bytes()));
  return metrics_.to_json(2);
}

std::string TcpNode::metrics_prometheus() {
  metrics_json();  // refresh the registry; discard the JSON rendering
  return metrics_.to_prometheus();
}

void TcpNode::setup_admin_listener() {
  if (options_.admin_port == 0) return;
  admin_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ALLCONCUR_ASSERT(admin_fd_ >= 0, "socket() failed (admin)");
  const int one = 1;
  setsockopt(admin_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(options_.admin_port + options_.self));
  ALLCONCUR_ASSERT(::bind(admin_fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind() failed (admin port in use?)");
  ALLCONCUR_ASSERT(::listen(admin_fd_, 16) == 0, "listen() failed (admin)");
  set_nonblocking(admin_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = admin_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, admin_fd_, &ev);
}

void TcpNode::on_admin_accept() {
  for (;;) {
    const int fd = ::accept(admin_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    admin_conns_[fd] = AdminConn{};
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

std::string TcpNode::admin_body(const std::string& path, bool& ok) {
  ok = true;
  const std::string label = "node" + std::to_string(options_.self);
  if (path == "/metrics") return metrics_prometheus();
  if (path == "/metrics.json") return metrics_json();
  if (path == "/recorder") return recorder_.dump_json(label);
  if (path == "/recorder.txt") return recorder_.dump_text(label);
  if (path == "/trace") return tracer_.dump_json(label);
  if (path == "/healthz") return "ok\n";
  ok = false;
  return "unknown path: " + path +
         " (try /metrics /metrics.json /recorder /recorder.txt /trace "
         "/healthz)\n";
}

bool TcpNode::on_admin_io(int fd, std::uint32_t events) {
  const auto it = admin_conns_.find(fd);
  if (it == admin_conns_.end()) return false;
  AdminConn& ac = it->second;

  if (!ac.responding && (events & EPOLLIN) != 0) {
    char buf[4096];
    for (;;) {
      const ssize_t got = ::read(fd, buf, sizeof(buf));
      if (got > 0) {
        ac.request.append(buf, static_cast<std::size_t>(got));
        if (ac.request.size() > 64 * 1024) return false;  // abusive client
      } else if (got == 0) {
        // EOF before a full request: nothing sensible to answer.
        if (ac.request.find("\r\n") == std::string::npos) return false;
        break;
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        return false;
      }
    }
    // One-shot request: the GET line is everything we need, so respond as
    // soon as it is complete (headers, if any, are ignored).
    const std::size_t eol = ac.request.find("\r\n");
    if (eol == std::string::npos) return true;  // keep reading
    const std::string line = ac.request.substr(0, eol);
    std::string pth = "/";
    if (line.rfind("GET ", 0) == 0) {
      const std::size_t sp = line.find(' ', 4);
      pth = line.substr(4, sp == std::string::npos ? std::string::npos
                                                   : sp - 4);
    }
    bool found = false;
    const std::string body = admin_body(pth, found);
    const char* status = found ? "200 OK" : "404 Not Found";
    const char* ctype =
        (pth == "/metrics.json" || pth == "/recorder" || pth == "/trace")
            ? "application/json"
            : "text/plain; charset=utf-8";
    ac.response = "HTTP/1.0 " + std::string(status) +
                  "\r\nContent-Type: " + ctype +
                  "\r\nContent-Length: " + std::to_string(body.size()) +
                  "\r\nConnection: close\r\n\r\n" + body;
    ac.responding = true;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }

  if (ac.responding && (events & EPOLLOUT) != 0) {
    while (ac.sent < ac.response.size()) {
      const ssize_t put = ::send(fd, ac.response.data() + ac.sent,
                                 ac.response.size() - ac.sent, MSG_NOSIGNAL);
      if (put > 0) {
        ac.sent += static_cast<std::size_t>(put);
      } else if (put < 0 && errno == EINTR) {
        continue;
      } else if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;  // kernel buffer full; wait for the next EPOLLOUT
      } else {
        return false;
      }
    }
    return false;  // fully sent: close (HTTP/1.0, Connection: close)
  }
  return true;
}

}  // namespace allconcur::net
