#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/assert.hpp"

namespace allconcur::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  ALLCONCUR_ASSERT(flags >= 0, "fcntl(F_GETFL) failed");
  ALLCONCUR_ASSERT(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL) failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TimeNs monotonic_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TcpNode::TcpNode(TcpNodeOptions options, DeliverFn on_deliver)
    : options_(std::move(options)), on_deliver_(std::move(on_deliver)) {
  if (!options_.builder) options_.builder = core::make_default_graph_builder();

  core::Engine::Hooks hooks;
  hooks.send = [this](NodeId dst, const core::Message& m) {
    send_bytes(dst, core::encode(m));
  };
  hooks.deliver = [this](const core::RoundResult& r) {
    completed_rounds_.fetch_add(1, std::memory_order_release);
    if (on_deliver_) on_deliver_(r);
  };
  core::Engine::Options eopts;
  eopts.fd_mode = options_.fd_mode;
  engine_ = std::make_unique<core::Engine>(
      options_.self, core::View(options_.members, options_.builder),
      options_.builder, hooks, eopts);

  if (options_.enable_heartbeats) {
    core::HeartbeatFd::Hooks fd_hooks;
    fd_hooks.send = [this](NodeId dst, const core::Message& m) {
      send_bytes(dst, core::encode(m));
    };
    fd_hooks.suspect = [this](NodeId suspect) { engine_->on_suspect(suspect); };
    fd_ = std::make_unique<core::HeartbeatFd>(options_.self,
                                              options_.fd_params, fd_hooks);
    fd_->set_peers(engine_->view().successors_of(options_.self),
                   engine_->view().predecessors_of(options_.self),
                   monotonic_now());
  }
}

TcpNode::~TcpNode() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void TcpNode::setup_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ALLCONCUR_ASSERT(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(options_.base_port + options_.self));
  ALLCONCUR_ASSERT(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind() failed (port in use?)");
  ALLCONCUR_ASSERT(::listen(listen_fd_, 64) == 0, "listen() failed");
  set_nonblocking(listen_fd_);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

void TcpNode::dial(NodeId peer) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ALLCONCUR_ASSERT(fd >= 0, "socket() failed");
  set_nodelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.base_port + peer));
  // Blocking connect with retries: peers may not be listening yet.
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nonblocking(fd);
      Conn conn;
      conn.fd = fd;
      conn.peer = peer;
      conn.outbound = true;
      // Hello: announce who we are so the acceptor can map the link.
      const std::uint32_t hello = options_.self;
      std::vector<std::uint8_t> bytes(4);
      std::memcpy(bytes.data(), &hello, 4);
      conn.wqueue.push_back(std::move(bytes));
      conns_[fd] = std::move(conn);
      out_by_peer_[peer] = fd;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = fd;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
      flush(conns_[fd]);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ALLCONCUR_ASSERT(false, "could not connect to successor");
}

void TcpNode::dial_successors() {
  for (NodeId s : engine_->view().successors_of(options_.self)) {
    dial(s);
  }
  connected_.store(true, std::memory_order_release);
}

bool TcpNode::wait_connected(DurationNs timeout) {
  const TimeNs start = monotonic_now();
  while (!connected_.load(std::memory_order_acquire)) {
    if (monotonic_now() - start > timeout) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void TcpNode::run() {
  epoll_fd_ = epoll_create1(0);
  ALLCONCUR_ASSERT(epoll_fd_ >= 0, "epoll_create1 failed");

  event_fd_ = eventfd(0, EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  if (fd_) {
    timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK);
    itimerspec spec{};
    const auto period_ns = options_.fd_params.period;
    spec.it_interval.tv_sec = period_ns / 1'000'000'000;
    spec.it_interval.tv_nsec = period_ns % 1'000'000'000;
    spec.it_value = spec.it_interval;
    timerfd_settime(timer_fd_, 0, &spec, nullptr);
    epoll_event tev{};
    tev.events = EPOLLIN;
    tev.data.fd = timer_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &tev);
  }

  setup_listener();
  dial_successors();

  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    // Commands may have been queued before the eventfd existed.
    drain_commands();
    const int ready = epoll_wait(epoll_fd_, events, 64, 50);
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        on_accept();
      } else if (fd == event_fd_) {
        std::uint64_t buf;
        while (::read(event_fd_, &buf, 8) == 8) {
        }
        drain_commands();
      } else if (fd == timer_fd_) {
        std::uint64_t expirations;
        while (::read(timer_fd_, &expirations, 8) == 8) {
        }
        fd_tick();
      } else {
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (events[i].events & EPOLLIN) on_readable(fd);
        if (conns_.count(fd) && (events[i].events & EPOLLOUT)) {
          on_writable(fd);
        }
      }
    }
  }
}

void TcpNode::fd_tick() {
  if (!fd_) return;
  fd_->tick(monotonic_now());
}

void TcpNode::on_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    set_nodelay(fd);
    Conn conn;
    conn.fd = fd;
    conns_[fd] = std::move(conn);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void TcpNode::on_readable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got > 0) {
      conn.rbuf.insert(conn.rbuf.end(), buf, buf + got);
    } else if (got == 0) {
      close_conn(fd);  // peer closed — its FD heartbeats stop with it
      return;
    } else {
      break;  // EAGAIN
    }
  }
  parse_frames(conn);
}

void TcpNode::parse_frames(Conn& conn) {
  std::size_t at = 0;
  // Inbound links start with the peer's 4-byte hello.
  if (conn.peer == kInvalidNode) {
    if (conn.rbuf.size() < 4) return;
    std::uint32_t hello;
    std::memcpy(&hello, conn.rbuf.data(), 4);
    conn.peer = hello;
    at = 4;
  }
  while (at < conn.rbuf.size()) {
    const auto frame = core::frame_size(
        std::span(conn.rbuf.data() + at, conn.rbuf.size() - at));
    if (!frame || conn.rbuf.size() - at < *frame) break;
    const auto msg =
        core::decode(std::span(conn.rbuf.data() + at, *frame));
    at += *frame;
    if (!msg) continue;  // malformed frame: skip
    if (msg->type == core::MsgType::kHeartbeat) {
      if (fd_) fd_->on_heartbeat(conn.peer, monotonic_now());
      continue;
    }
    if (fd_) fd_->on_heartbeat(conn.peer, monotonic_now());  // traffic = alive
    engine_->on_message(conn.peer, *msg);
  }
  conn.rbuf.erase(conn.rbuf.begin(),
                  conn.rbuf.begin() + static_cast<std::ptrdiff_t>(at));
}

void TcpNode::send_bytes(NodeId dst, std::vector<std::uint8_t> bytes) {
  const auto it = out_by_peer_.find(dst);
  if (it == out_by_peer_.end()) return;  // peer gone (crashed / removed)
  const auto conn_it = conns_.find(it->second);
  if (conn_it == conns_.end()) return;
  conn_it->second.wqueue.push_back(std::move(bytes));
  flush(conn_it->second);
}

void TcpNode::flush(Conn& conn) {
  while (!conn.wqueue.empty()) {
    const auto& front = conn.wqueue.front();
    const std::size_t remaining = front.size() - conn.wqueue_offset;
    const ssize_t sent =
        ::send(conn.fd, front.data() + conn.wqueue_offset, remaining,
               MSG_NOSIGNAL);
    if (sent < 0) break;  // EAGAIN: wait for EPOLLOUT
    conn.wqueue_offset += static_cast<std::size_t>(sent);
    if (conn.wqueue_offset == front.size()) {
      conn.wqueue.pop_front();
      conn.wqueue_offset = 0;
    }
  }
  update_epoll(conn);
}

void TcpNode::update_epoll(Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn.wqueue.empty() ? 0u : EPOLLOUT);
  ev.data.fd = conn.fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TcpNode::on_writable(int fd) {
  auto it = conns_.find(fd);
  if (it != conns_.end()) flush(it->second);
}

void TcpNode::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.outbound) out_by_peer_.erase(it->second.peer);
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

void TcpNode::drain_commands() {
  std::deque<std::function<void()>> pending;
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    pending.swap(commands_);
  }
  for (auto& fn : pending) fn();
}

void TcpNode::submit(core::Request request) {
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    commands_.push_back(
        [this, request = std::move(request)]() mutable {
          engine_->submit(std::move(request));
        });
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

void TcpNode::broadcast_now() {
  {
    const std::lock_guard<std::mutex> lock(cmd_mutex_);
    commands_.push_back([this] { engine_->broadcast_now(); });
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

void TcpNode::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, 8);
}

}  // namespace allconcur::net
