// Real TCP transport for AllConcur nodes (§5: the paper's implementation
// uses sockets-based TCP driven by libev; this is the epoll equivalent).
//
// Topology follows the overlay digraph: a node dials a connection to every
// successor and accepts connections from its predecessors; peers identify
// themselves with a 4-byte hello. Messages use the length-prefixed framing
// of core::encode/decode.
//
// Wire path (zero-copy): the engine hands the transport refcounted
// core::Frame objects — encoded once per message regardless of out-degree.
// Each connection queues the shared frames and flushes them with one
// vectored sendmsg per event-loop wake (iovec batching across queued
// frames), so the relay fan-out costs neither per-destination copies nor
// per-message syscalls. The receive side uses a consume-offset buffer that
// compacts only when sparse, so steady-state parsing does no memmove.
//
// One TcpTransport serves one node and is single-threaded: all socket and
// protocol work happens on the owning thread inside run()/poll_once().
// Cross-thread control (submit, broadcast, stop) goes through an eventfd
// command queue, keeping the engine free of locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "chaos/scenario.hpp"
#include "core/engine.hpp"
#include "core/failure_detector.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "plus/fallback_timer.hpp"

namespace allconcur::net {

struct TcpNodeOptions {
  NodeId self = 0;
  std::vector<NodeId> members;        ///< initial membership
  std::uint16_t base_port = 39000;    ///< node i listens on base_port + i
  core::GraphBuilder builder;         ///< defaults to the paper overlay
  core::FdMode fd_mode = core::FdMode::kPerfect;
  /// Round-pipelining window W: up to W consecutive rounds in flight
  /// (1 = classic stop-and-wait iteration).
  std::size_t window = 1;
  /// Dual-digraph fast path (AllConcur+): builder for the unreliable
  /// overlay G_U. The node then dials/accepts both overlays' links
  /// (connections follow G_U ∪ G_R) and runs failure-free rounds
  /// untracked over G_U. Empty = classic mode.
  core::GraphBuilder fast_builder;
  /// Dual mode round watchdog: an armed round stuck longer than this on
  /// the monotonic clock triggers the fallback transition. 0 disables.
  DurationNs fallback_timeout = 0;
  /// netem-style induced skew, mirroring SimCluster::set_send_delay:
  /// every outbound frame of this node (protocol and heartbeats alike)
  /// is held back this long before it is flushed to the socket. Lets the
  /// real-socket legs of bench/round_pipeline and bench/dual_digraph
  /// reproduce the convoy/fallback claims on actual TCP instead of
  /// relying on scheduler noise. 0 = no delay.
  DurationNs send_delay = 0;
  /// Adversarial fault injection extending the send_delay knob: a seeded
  /// chaos::ScenarioEngine consulted once per outbound frame (protocol and
  /// heartbeats alike). Drops discard the frame, duplicates queue it
  /// twice, corruption flips a wire byte (the receiver's checksum must
  /// catch it), and delays park the frame like send_delay does. Share one
  /// engine across a cluster's nodes to replay a whole-cluster scenario.
  chaos::ScenarioEngineRef chaos;
  /// Dual mode: caps how long per-frame progress can re-arm the round
  /// watchdog (see plus::FallbackTimer). 0 = the default 8x
  /// fallback_timeout; < 0 disables the cap.
  DurationNs fallback_max_round_age = 0;
  bool enable_heartbeats = true;
  core::HeartbeatFd::Params fd_params{.period = ms(25), .timeout = ms(250),
                                      .adaptive = false,
                                      .max_timeout = sec(10)};
  /// SO_SNDBUF for outbound (successor) sockets; 0 keeps the OS default.
  /// Tests shrink this to force partial vectored writes (backpressure).
  int sndbuf_bytes = 0;
  /// Introspection listener: node i serves HTTP/1.0 GETs ("/metrics",
  /// "/metrics.json", "/recorder", "/trace", "/healthz") on
  /// admin_port + i. 0 disables the listener (metrics and the recorder
  /// stay readable in-process). Consumed by tools/allconcur_inspect and
  /// tools/allconcur_trace.
  std::uint16_t admin_port = 0;
  /// Flight-recorder ring size (events per node; rounded up to a power
  /// of two). The ring is fixed-allocation: old events overwrite.
  std::size_t recorder_capacity = 1024;
  /// Master switch for round tracing. Off, every engine-side tap reduces
  /// to one predictable branch (bench/wire_path gates the enabled-mode
  /// overhead at <= 5%).
  bool recorder_enabled = true;
  /// Cross-node causal tracing (obs/trace.hpp): sample one origin round
  /// in `trace_sample_period` (0 = off). Sampled broadcasts carry the
  /// wire trace context; this node records recv/enqueue/send spans
  /// stamped with the event-loop wake clock, dumped via the admin
  /// `/trace` route and merged by tools/allconcur_trace.
  std::uint32_t trace_sample_period = 0;
  /// Spans retained per node (rounded up to a power of two).
  std::size_t trace_capacity = 4096;
};

/// Wire-level transport counters (snapshot; safe to read from any thread).
struct TcpNetStats {
  std::uint64_t sendmsg_calls = 0;    ///< flush syscalls issued
  std::uint64_t frames_sent = 0;      ///< frames fully transmitted
  std::uint64_t bytes_sent = 0;       ///< payload+header bytes on the wire
  /// Connection-hello bytes within bytes_sent. With heartbeats off and no
  /// chaos drops, bytes_sent == EngineStats::bytes_sent + preamble_bytes
  /// once all queues flush (asserted in net_tcp_test; see obs/schema.hpp).
  std::uint64_t preamble_bytes = 0;
  std::uint64_t partial_writes = 0;   ///< short sendmsg (kernel backpressure)
  std::uint64_t eagain_waits = 0;     ///< flushes parked on EPOLLOUT
  std::uint64_t frames_received = 0;
  std::uint64_t rbuf_compactions = 0; ///< receive-buffer memmoves
  /// Torn frames the stream parser dropped (magic/type/length/checksum
  /// failures) instead of delivering — the detection side of injected
  /// corruption.
  std::uint64_t checksum_drops = 0;
  std::uint64_t resyncs = 0;          ///< forward scans to a plausible header
};

class TcpNode {
 public:
  using DeliverFn = std::function<void(const core::RoundResult&)>;

  TcpNode(TcpNodeOptions options, DeliverFn on_deliver);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// Runs the event loop until stop() (call from a dedicated thread).
  void run();

  /// Thread-safe controls.
  void submit(core::Request request);
  void broadcast_now();
  void stop();

  /// Blocks until connections to all successors are established.
  bool wait_connected(DurationNs timeout);

  NodeId self() const { return options_.self; }
  const core::EngineStats& stats() const { return engine_->stats(); }
  TcpNetStats net_stats() const;
  Round rounds_completed() const {
    return completed_rounds_.load(std::memory_order_acquire);
  }
  /// Bytes submitted but not yet A-broadcast — the backpressure signal a
  /// client should throttle on while the engine's window is full (or
  /// draining for a membership change). Snapshotted once per event-loop
  /// wake, so it may lag a just-queued submit by one wake.
  std::uint64_t pending_bytes() const {
    return pending_bytes_.load(std::memory_order_acquire);
  }

  /// Round flight recorder (per node). Reading it while run() is live is
  /// inherently racy — snapshot-quality only, same caveat as stats().
  const obs::FlightRecorder& recorder() const { return recorder_; }
  obs::FlightRecorder& recorder() { return recorder_; }

  /// Causal-trace span buffer (per node); same racy-snapshot caveat.
  const obs::TraceBuffer& tracer() const { return tracer_; }
  obs::TraceBuffer& tracer() { return tracer_; }

  /// Refreshes the unified metrics registry from the engine / wire /
  /// chaos counters and renders it. Safe from any thread (counter reads
  /// are relaxed snapshots, like stats()).
  std::string metrics_json();
  std::string metrics_prometheus();
  obs::Registry& metrics() { return metrics_; }

 private:
  struct Conn {
    int fd = -1;
    NodeId peer = kInvalidNode;
    bool outbound = false;
    // Receive side: consume-offset buffer. parse_frames advances `rstart`;
    // the dead prefix is dropped wholesale once everything is consumed
    // (free) and compacted (memmove) only when it dominates the buffer.
    std::vector<std::uint8_t> rbuf;
    std::size_t rstart = 0;
    // Transmit side: shared frames queued per connection, coalesced into
    // one vectored sendmsg per event-loop wake.
    std::vector<std::uint8_t> preamble;  ///< connection hello, sent first
    std::size_t preamble_sent = 0;
    std::deque<core::FrameRef> wqueue;
    std::size_t wqueue_offset = 0;  ///< bytes of wqueue.front() already sent
    bool want_writable = false;     ///< EPOLLOUT currently registered
    bool flush_pending = false;     ///< queued for the end-of-wake flush

    bool has_tx_backlog() const {
      return preamble_sent < preamble.size() || !wqueue.empty();
    }
  };

  void setup_listener();
  void setup_admin_listener();
  void on_admin_accept();
  /// Drives one admin connection through request-parse -> respond ->
  /// close; returns false when the connection is done (caller erases).
  bool on_admin_io(int fd, std::uint32_t events);
  /// Builds the response body for an admin GET path ("/metrics", ...).
  std::string admin_body(const std::string& path, bool& ok);
  void dial_successors();
  void dial(NodeId peer);
  void on_accept();
  void on_readable(int fd);
  void on_writable(int fd);
  void parse_frames(Conn& conn);
  /// Engine/FD send hook: applies the chaos interposition and the
  /// send_delay knob, then queues.
  void queue_frame(NodeId dst, const core::FrameRef& frame);
  /// Queues a frame on its connection for the end-of-wake flush.
  void queue_frame_now(NodeId dst, const core::FrameRef& frame);
  /// Parks a frame until `when` (sorted insert: chaos jitter makes release
  /// times non-monotone).
  void park_delayed(TimeNs when, NodeId dst, core::FrameRef frame);
  /// Moves delay-parked frames whose release time passed to their
  /// connections; returns the epoll timeout (ms) until the next release.
  int release_delayed(TimeNs now);
  /// Vectored flush of everything queued; returns false on a hard socket
  /// error (caller must close_conn).
  bool flush(Conn& conn);
  void flush_dirty();
  void advance_tx(Conn& conn, std::size_t sent);
  void close_conn(int fd);
  void drain_commands();
  void update_epoll(Conn& conn);
  void fd_tick();

  TcpNodeOptions options_;
  DeliverFn on_deliver_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::HeartbeatFd> fd_;
  /// Dual mode: round watchdog polled once per event-loop wake.
  std::unique_ptr<plus::FallbackTimer> watchdog_;
  /// send_delay/chaos knobs: frames parked until their release time
  /// (monotonic ns), kept sorted by release time (chaos jitter varies
  /// per frame, so enqueue order is not release order).
  std::deque<std::tuple<TimeNs, NodeId, core::FrameRef>> delayed_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int event_fd_ = -1;
  int timer_fd_ = -1;
  int admin_fd_ = -1;                  // introspection listener (optional)
  std::map<int, Conn> conns_;          // by socket fd
  std::map<NodeId, int> out_by_peer_;  // successor -> socket fd
  std::vector<int> dirty_fds_;         // conns with frames queued this wake

  /// One short-lived introspection connection: read the GET line, write
  /// the whole response, close. Never touches the protocol wire path.
  struct AdminConn {
    std::string request;
    std::string response;
    std::size_t sent = 0;
    bool responding = false;
  };
  std::map<int, AdminConn> admin_conns_;

  // Observability plane. loop_now_ is the event-loop wake timestamp the
  // recorder stamps events with — one clock_gettime per wake, not per
  // event (the wire path stays syscall-free).
  obs::FlightRecorder recorder_;
  obs::TraceBuffer tracer_;
  obs::Registry metrics_;
  /// Per-hop relay latency (frame parsed -> engine relay done, measured
  /// per broadcast frame on the monotonic clock). Registered at
  /// construction so the Prometheus exposition always carries it, even
  /// with trace sampling off; its running mean is the per-hop estimate
  /// sampled frames accumulate. Owned by metrics_; never null.
  obs::Histogram* relay_hop_ = nullptr;
  TimeNs loop_now_ = 0;
  std::uint64_t chaos_phase_mask_ = 0;  ///< last recorded phase set

  // Wire counters; relaxed atomics so tests can snapshot while running.
  struct {
    std::atomic<std::uint64_t> sendmsg_calls{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> preamble_bytes{0};
    std::atomic<std::uint64_t> partial_writes{0};
    std::atomic<std::uint64_t> eagain_waits{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> rbuf_compactions{0};
    std::atomic<std::uint64_t> checksum_drops{0};
    std::atomic<std::uint64_t> resyncs{0};
  } net_;

  std::mutex cmd_mutex_;
  std::deque<std::function<void()>> commands_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> completed_rounds_{0};
  std::atomic<std::uint64_t> pending_bytes_{0};
};

}  // namespace allconcur::net
