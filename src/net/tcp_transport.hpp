// Real TCP transport for AllConcur nodes (§5: the paper's implementation
// uses sockets-based TCP driven by libev; this is the epoll equivalent).
//
// Topology follows the overlay digraph: a node dials a connection to every
// successor and accepts connections from its predecessors; peers identify
// themselves with a 4-byte hello. Messages use the length-prefixed framing
// of core::encode/decode.
//
// One TcpTransport serves one node and is single-threaded: all socket and
// protocol work happens on the owning thread inside run()/poll_once().
// Cross-thread control (submit, broadcast, stop) goes through an eventfd
// command queue, keeping the engine free of locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/engine.hpp"
#include "core/failure_detector.hpp"

namespace allconcur::net {

struct TcpNodeOptions {
  NodeId self = 0;
  std::vector<NodeId> members;        ///< initial membership
  std::uint16_t base_port = 39000;    ///< node i listens on base_port + i
  core::GraphBuilder builder;         ///< defaults to the paper overlay
  core::FdMode fd_mode = core::FdMode::kPerfect;
  bool enable_heartbeats = true;
  core::HeartbeatFd::Params fd_params{.period = ms(25), .timeout = ms(250),
                                      .adaptive = false,
                                      .max_timeout = sec(10)};
};

class TcpNode {
 public:
  using DeliverFn = std::function<void(const core::RoundResult&)>;

  TcpNode(TcpNodeOptions options, DeliverFn on_deliver);
  ~TcpNode();

  TcpNode(const TcpNode&) = delete;
  TcpNode& operator=(const TcpNode&) = delete;

  /// Runs the event loop until stop() (call from a dedicated thread).
  void run();

  /// Thread-safe controls.
  void submit(core::Request request);
  void broadcast_now();
  void stop();

  /// Blocks until connections to all successors are established.
  bool wait_connected(DurationNs timeout);

  NodeId self() const { return options_.self; }
  const core::EngineStats& stats() const { return engine_->stats(); }
  Round rounds_completed() const {
    return completed_rounds_.load(std::memory_order_acquire);
  }

 private:
  struct Conn {
    int fd = -1;
    NodeId peer = kInvalidNode;
    bool outbound = false;
    bool hello_sent = false;
    std::vector<std::uint8_t> rbuf;
    std::deque<std::vector<std::uint8_t>> wqueue;
    std::size_t wqueue_offset = 0;  // into wqueue.front()
  };

  void setup_listener();
  void dial_successors();
  void dial(NodeId peer);
  void on_accept();
  void on_readable(int fd);
  void on_writable(int fd);
  void parse_frames(Conn& conn);
  void send_bytes(NodeId dst, std::vector<std::uint8_t> bytes);
  void flush(Conn& conn);
  void close_conn(int fd);
  void drain_commands();
  void update_epoll(Conn& conn);
  void fd_tick();

  TcpNodeOptions options_;
  DeliverFn on_deliver_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<core::HeartbeatFd> fd_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int event_fd_ = -1;
  int timer_fd_ = -1;
  std::map<int, Conn> conns_;          // by socket fd
  std::map<NodeId, int> out_by_peer_;  // successor -> socket fd

  std::mutex cmd_mutex_;
  std::deque<std::function<void()>> commands_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> completed_rounds_{0};
};

}  // namespace allconcur::net
