#include "obs/inspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace allconcur::obs {

namespace {

/// Reads until EOF or timeout; the admin server closes after the body.
bool read_all(int fd, int timeout_ms, std::string& out) {
  char buf[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    const int rv = ::poll(&p, 1, timeout_ms);
    if (rv <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return false;
    if (n == 0) return true;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

std::optional<std::string> admin_fetch(std::uint16_t port,
                                       const std::string& path,
                                       int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  const bool ok = read_all(fd, timeout_ms, resp);
  ::close(fd);
  if (!ok) return std::nullopt;
  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\n<body>"
  if (resp.rfind("HTTP/", 0) != 0) return std::nullopt;
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || resp.compare(sp + 1, 3, "200") != 0) {
    return std::nullopt;
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) return std::nullopt;
  return resp.substr(body + 4);
}

int run_inspect(std::uint16_t port, const std::string& path, std::FILE* out) {
  const auto body = admin_fetch(port, path);
  if (!body) {
    std::fprintf(stderr,
                 "allconcur_inspect: GET 127.0.0.1:%u %s failed "
                 "(is the node running with --admin-port?)\n",
                 static_cast<unsigned>(port), path.c_str());
    return 1;
  }
  std::fwrite(body->data(), 1, body->size(), out);
  if (!body->empty() && body->back() != '\n') std::fputc('\n', out);
  return 0;
}

}  // namespace allconcur::obs
