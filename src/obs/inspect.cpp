#include "obs/inspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace allconcur::obs {

namespace {

/// Reads until EOF or timeout; the admin server closes after the body.
/// Distinguishes the two failure shapes: poll expiring (timeout) versus
/// the socket erroring out (connection failure).
FetchStatus read_all(int fd, int timeout_ms, std::string& out) {
  char buf[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    const int rv = ::poll(&p, 1, timeout_ms);
    if (rv == 0) return FetchStatus::kTimeout;
    if (rv < 0) return FetchStatus::kConnectFail;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return FetchStatus::kConnectFail;
    if (n == 0) return FetchStatus::kOk;
    out.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> fail(FetchStatus why, FetchStatus* status) {
  if (status != nullptr) *status = why;
  return std::nullopt;
}

}  // namespace

std::optional<std::string> admin_fetch(std::uint16_t port,
                                       const std::string& path,
                                       int timeout_ms, FetchStatus* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(FetchStatus::kConnectFail, status);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return fail(FetchStatus::kConnectFail, status);
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return fail(FetchStatus::kConnectFail, status);
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string resp;
  const FetchStatus read_st = read_all(fd, timeout_ms, resp);
  ::close(fd);
  if (read_st != FetchStatus::kOk) return fail(read_st, status);
  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\n<body>"
  if (resp.rfind("HTTP/", 0) != 0) {
    return fail(FetchStatus::kBadResponse, status);
  }
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || resp.compare(sp + 1, 3, "200") != 0) {
    return fail(FetchStatus::kHttpError, status);
  }
  const std::size_t body = resp.find("\r\n\r\n");
  if (body == std::string::npos) {
    return fail(FetchStatus::kBadResponse, status);
  }
  if (status != nullptr) *status = FetchStatus::kOk;
  return resp.substr(body + 4);
}

int run_inspect(std::uint16_t port, const std::string& path, std::FILE* out,
                int timeout_ms) {
  FetchStatus st = FetchStatus::kOk;
  const auto body = admin_fetch(port, path, timeout_ms, &st);
  if (!body) {
    const char* why = "failed";
    int code = 1;
    switch (st) {
      case FetchStatus::kTimeout:
        why = "timed out (node busy or hung? raise --timeout-ms)";
        code = 3;
        break;
      case FetchStatus::kHttpError:
        why = "returned a non-200 status (unknown path?)";
        code = 4;
        break;
      case FetchStatus::kConnectFail:
        why = "failed (is the node running with --admin-port?)";
        code = 1;
        break;
      default:
        why = "returned a malformed response";
        code = 1;
        break;
    }
    std::fprintf(stderr, "allconcur_inspect: GET 127.0.0.1:%u %s %s\n",
                 static_cast<unsigned>(port), path.c_str(), why);
    return code;
  }
  std::fwrite(body->data(), 1, body->size(), out);
  if (!body->empty() && body->back() != '\n') std::fputc('\n', out);
  return 0;
}

}  // namespace allconcur::obs
