// Round flight recorder: a bounded per-node ring of round-lifecycle
// events, with the round id as the correlation key (Dapper-style: every
// event of one agreement instance shares its round number, so grepping a
// dump for `r=<round>` reconstructs that round's causal timeline).
//
// The hot path is one inline branch when disabled and a 32-byte ring
// store when enabled — no locks, no allocation, no clock call (the
// deployment donates a time source pointer: the simulator's virtual
// clock or the TCP loop's per-wake monotonic stamp).
//
// Dumps are taken on demand (admin endpoint, SimCluster accessor) and
// automatically when an invariant trips — SMR hash-guard divergence or
// silently delivered corruption — so a chaos CI failure ships with the
// per-replica timelines that explain it instead of a bare assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace allconcur::obs {

enum class EventKind : std::uint8_t {
  kRoundOpen,       ///< round state created; a = 1 if opened in fast mode,
                    ///< b = open window depth
  kBcastSent,       ///< own A-broadcast sent; a = payload bytes, b = fast
  kMsgRecv,         ///< round message accepted; a = origin rank,
                    ///< b = 1 if via G_U
  kFastComplete,    ///< unreliable-path termination; a = messages gathered
  kComplete,        ///< tracked-path termination (early termination fired);
                    ///< a = messages gathered, b = 1 if the round fell back
  kFallbackInit,    ///< this node triggered fallback; a = attempt
  kFallbackRecv,    ///< received a peer's fallback trigger; a = attempt,
                    ///< b = sender
  kFallbackEnter,   ///< round switched fast -> tracked; a = messages held
  kFallbackAssist,  ///< re-relayed a held set to assist; a = messages held
  kDelivered,       ///< A-delivery; a = deliveries, b = 1 if fast path
  kFailureLearned,  ///< tracking learned FAIL(j,k); a = j, b = k
  kSuspect,         ///< local FD suspected node a
  kParked,          ///< frame beyond the window parked; a = sender,
                    ///< b = message type
  kDroppedAhead,    ///< frame too far ahead; a = sender, b = 1 if parked too
  kDroppedMsg,      ///< round message dropped; a = DropReason, b = sender
  kTimerArm,        ///< fallback watchdog armed on this round
  kTimerRearm,      ///< watchdog re-armed on progress; a = round age so far
  kTimerFire,       ///< watchdog fired; a = observed round age, b = progress
  kChaosInject,     ///< chaos verdict on an outbound frame; a = dst,
                    ///< b = bitmask (1 drop, 2 dup, 4 corrupt, 8 delay)
  kChaosPhase,      ///< active chaos phase set changed; a = phase bitmask
  kInvariantTrip,   ///< invariant violated; a = TripCode (round = culprit)
};

/// a-field of kDroppedMsg.
enum class DropReason : std::uint8_t {
  kStale,            ///< round already delivered
  kSuspectedOrigin,  ///< origin already suspected in this round
  kForeignEpoch,     ///< frame from another membership epoch
  kLostRace,         ///< fallback attempt raced and lost
};

/// a-field of kInvariantTrip.
enum class TripCode : std::uint8_t {
  kSmrHashDivergence,   ///< replica state hash != agreed reference hash
  kCorruptDelivered,    ///< corrupted frame survived the checksum
  kPropertyViolation,   ///< a property-suite predicate failed
};

const char* event_name(EventKind k);
const char* drop_reason_name(DropReason r);
const char* trip_code_name(TripCode c);

/// Read-path view of one recorded event. `seq` is not stored in the
/// ring — a slot's sequence number is implied by its position relative
/// to the write head, and events() reconstructs it — so the hot-path
/// store stays at five words (40 bytes) per event.
struct Event {
  std::uint64_t seq = 0;  ///< monotone per recorder; survives wraparound
  TimeNs t = 0;           ///< deployment clock at record time (0 if none)
  Round round = 0;
  EventKind kind = EventKind::kRoundOpen;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two; the ring keeps the most
  /// recent `capacity` events and counts what it overwrote. The default
  /// (1024 slots, 40 KiB) keeps the ring L2-resident — a round emits
  /// ~10 events, so ~100 rounds of history survive for a postmortem,
  /// an order of magnitude past the deepest pipelining window.
  explicit FlightRecorder(std::size_t capacity = 1024, bool enabled = true);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Donates the clock: the recorder reads `*t` at each record() call.
  /// The pointee must outlive the recorder (or be reset). Null reverts
  /// to timestamp 0 (ordering still carried by seq).
  void set_time_source(const TimeNs* t) { time_src_ = t; }

  void record(EventKind k, Round r, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    Slot& s = ring_[head_ & mask_];
    s.t = time_src_ ? *time_src_ : 0;
    s.rk = (static_cast<std::uint64_t>(k) << kKindShift) | (r & kRoundMask);
    s.a = a;
    s.b = b;
    ++head_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Events overwritten since construction (ring wrapped this often).
  std::uint64_t dropped() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }
  std::uint64_t total_recorded() const { return head_; }

  /// Retained events, oldest first (seq strictly increasing).
  std::vector<Event> events() const;
  /// Retained events of one round, oldest first.
  std::vector<Event> events_for_round(Round r) const;

  /// Human-readable dump, one event per line:
  ///   [label] seq=12 t=3400 r=7 delivered a=5 b=0
  std::string dump_text(const std::string& label) const;
  /// JSON-lines dump (one object per event; `node` carries the label).
  std::string dump_json(const std::string& label) const;

  void clear() { head_ = 0; }

 private:
  /// Ring storage: Event compressed to four words. seq is reconstructed
  /// from ring position, and the kind rides in the round's top byte
  /// (rounds are nowhere near 2^56) — the ring's cache footprint is the
  /// dominant cost of enabled-mode tracing, and a 32-byte aligned slot
  /// both minimises traffic and tiles cache lines exactly (a record()
  /// never dirties two lines).
  static constexpr unsigned kKindShift = 56;
  static constexpr std::uint64_t kRoundMask = (std::uint64_t{1} << 56) - 1;
  struct alignas(32) Slot {
    TimeNs t = 0;
    std::uint64_t rk = 0;  ///< kind << 56 | round
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  static_assert(sizeof(Slot) == 32);

  std::vector<Slot> ring_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;
  bool enabled_;
  const TimeNs* time_src_ = nullptr;
};

/// Auto-dump entry point for invariant trips: writes one dump per
/// recorder. If the environment variable ALLCONCUR_FLIGHT_DIR is set,
/// dumps go to `<dir>/flight_<reason>_<label>.jsonl` (the directory is
/// created if missing — CI uploads it as a failure artifact); otherwise,
/// and additionally for the tail of each timeline, they go to stderr.
/// Returns the file paths written (empty when dumping to stderr only).
std::vector<std::string> dump_on_trip(
    const std::string& reason,
    const std::vector<std::pair<std::string, const FlightRecorder*>>& nodes);

}  // namespace allconcur::obs
