#include "obs/recorder.hpp"

#include <sys/stat.h>

#include <bit>
#include <cstdio>
#include <cstdlib>

namespace allconcur::obs {

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kRoundOpen: return "round_open";
    case EventKind::kBcastSent: return "bcast_sent";
    case EventKind::kMsgRecv: return "msg_recv";
    case EventKind::kFastComplete: return "fast_complete";
    case EventKind::kComplete: return "complete";
    case EventKind::kFallbackInit: return "fallback_init";
    case EventKind::kFallbackRecv: return "fallback_recv";
    case EventKind::kFallbackEnter: return "fallback_enter";
    case EventKind::kFallbackAssist: return "fallback_assist";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kFailureLearned: return "failure_learned";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kParked: return "parked";
    case EventKind::kDroppedAhead: return "dropped_ahead";
    case EventKind::kDroppedMsg: return "dropped_msg";
    case EventKind::kTimerArm: return "timer_arm";
    case EventKind::kTimerRearm: return "timer_rearm";
    case EventKind::kTimerFire: return "timer_fire";
    case EventKind::kChaosInject: return "chaos_inject";
    case EventKind::kChaosPhase: return "chaos_phase";
    case EventKind::kInvariantTrip: return "invariant_trip";
  }
  return "unknown";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kStale: return "stale";
    case DropReason::kSuspectedOrigin: return "suspected_origin";
    case DropReason::kForeignEpoch: return "foreign_epoch";
    case DropReason::kLostRace: return "lost_race";
  }
  return "unknown";
}

const char* trip_code_name(TripCode c) {
  switch (c) {
    case TripCode::kSmrHashDivergence: return "smr_hash_divergence";
    case TripCode::kCorruptDelivered: return "corrupt_delivered";
    case TripCode::kPropertyViolation: return "property_violation";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity, bool enabled)
    : enabled_(enabled) {
  if (capacity < 2) capacity = 2;
  capacity = std::bit_ceil(capacity);
  ring_.resize(capacity);
  mask_ = capacity - 1;
}

std::vector<Event> FlightRecorder::events() const {
  std::vector<Event> out;
  const std::uint64_t n = head_ < ring_.size()
                              ? head_
                              : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t seq = head_ - n; seq < head_; ++seq) {
    const Slot& s = ring_[seq & mask_];
    out.push_back(Event{seq, s.t, s.rk & kRoundMask,
                        static_cast<EventKind>(s.rk >> kKindShift), s.a,
                        s.b});
  }
  return out;
}

std::vector<Event> FlightRecorder::events_for_round(Round r) const {
  std::vector<Event> out;
  for (const Event& e : events()) {
    if (e.round == r) out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::dump_text(const std::string& label) const {
  std::string out;
  char line[256];
  for (const Event& e : events()) {
    std::snprintf(line, sizeof(line),
                  "[%s] seq=%llu t=%lld r=%llu %s a=%llu b=%llu\n",
                  label.c_str(), static_cast<unsigned long long>(e.seq),
                  static_cast<long long>(e.t),
                  static_cast<unsigned long long>(e.round),
                  event_name(e.kind), static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  return out;
}

std::string FlightRecorder::dump_json(const std::string& label) const {
  std::string out;
  char line[320];
  for (const Event& e : events()) {
    std::snprintf(line, sizeof(line),
                  "{\"node\": \"%s\", \"seq\": %llu, \"t\": %lld, "
                  "\"round\": %llu, \"event\": \"%s\", \"a\": %llu, "
                  "\"b\": %llu}\n",
                  label.c_str(), static_cast<unsigned long long>(e.seq),
                  static_cast<long long>(e.t),
                  static_cast<unsigned long long>(e.round),
                  event_name(e.kind), static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  return out;
}

std::vector<std::string> dump_on_trip(
    const std::string& reason,
    const std::vector<std::pair<std::string, const FlightRecorder*>>& nodes) {
  std::vector<std::string> written;
  const char* dir = std::getenv("ALLCONCUR_FLIGHT_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    ::mkdir(dir, 0755);  // best effort; single level is all CI needs
    for (const auto& [label, rec] : nodes) {
      if (rec == nullptr) continue;
      const std::string path =
          std::string(dir) + "/flight_" + reason + "_" + label + ".jsonl";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string dump = rec->dump_json(label);
        std::fwrite(dump.data(), 1, dump.size(), f);
        std::fclose(f);
        written.push_back(path);
      }
    }
  }
  // Always narrate the tail to stderr: even without a dump dir a failing
  // CI log shows the last events of every replica's timeline.
  std::fprintf(stderr, "=== flight recorder trip: %s ===\n", reason.c_str());
  for (const auto& [label, rec] : nodes) {
    if (rec == nullptr) continue;
    auto evs = rec->events();
    const std::size_t tail = evs.size() > 16 ? evs.size() - 16 : 0;
    for (std::size_t i = tail; i < evs.size(); ++i) {
      const Event& e = evs[i];
      std::fprintf(stderr, "[%s] seq=%llu t=%lld r=%llu %s a=%llu b=%llu\n",
                   label.c_str(), static_cast<unsigned long long>(e.seq),
                   static_cast<long long>(e.t),
                   static_cast<unsigned long long>(e.round),
                   event_name(e.kind), static_cast<unsigned long long>(e.a),
                   static_cast<unsigned long long>(e.b));
    }
  }
  if (!written.empty()) {
    std::fprintf(stderr, "flight dumps written to %s (%zu files)\n", dir,
                 written.size());
  }
  return written;
}

}  // namespace allconcur::obs
