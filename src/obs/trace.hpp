// Cross-node causal tracer: sampled A-broadcasts carry a compact trace
// context on the wire (core/message.hpp: header byte 1 = sampled flag +
// hop count, the detector word = cumulative one-way estimate), and every
// node records fixed-size span events as the broadcast crosses it —
// recv -> process -> enqueue -> send, stamped from the deployment's
// donated time source with the same no-lock/no-alloc ring discipline as
// the flight recorder.
//
// Where the recorder answers "what did THIS node do in round R", the
// tracer answers "what path did THIS broadcast take across the overlay":
// merging every node's span dump (admin `/trace`, or SimCluster
// accessors) reconstructs the round's propagation DAG, its empirical
// depth D-hat, the per-hop latency breakdown (queue wait vs serialize vs
// wire vs process), and the critical path — the measured counterpart of
// the paper's analytic 2(L + o_s + o)·D bound (§4.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace allconcur::obs {

/// One phase of a broadcast's passage through a node. Every span of one
/// (round, origin) broadcast shares those two correlation keys; `hop` is
/// the frame's out-hop at that node (origin = 0, each relay +1), except
/// for kRecv, which records the in-hop of the arriving frame.
enum class SpanKind : std::uint8_t {
  kOrigin,    ///< sampled broadcast born here; peer = self, hop = 0
  kRecv,      ///< transport accepted a sampled frame; peer = sender,
              ///< hop = the arriving frame's hop
  kProcess,   ///< engine relayed the broadcast; peer = sender,
              ///< hop = out-hop of the relayed frame
  kEnqueue,   ///< frame queued toward peer (out-hop)
  kSend,      ///< frame handed to the wire toward peer (out-hop)
  kFallback,  ///< fast -> tracked handoff of a traced round; peer = the
              ///< fallback initiator — the DAG edge explaining why the
              ///< broadcast re-entered the reliable overlay
};

const char* span_name(SpanKind k);

/// Read-path view of one recorded span. `node` is the recording node —
/// filled by TraceBuffer::spans() (self id) and by the merge parser.
struct Span {
  std::uint64_t seq = 0;
  TimeNs t = 0;
  Round round = 0;
  SpanKind kind = SpanKind::kOrigin;
  NodeId node = kInvalidNode;
  NodeId origin = kInvalidNode;
  NodeId peer = kInvalidNode;
  std::uint8_t hop = 0;
  std::uint32_t est_ns = 0;  ///< cumulative one-way estimate on the frame
};

/// Per-node span ring: identical hot-path discipline to FlightRecorder —
/// one inline branch when disabled, a 32-byte aligned ring store when
/// enabled, no locks, no allocation, clock read through a donated pointer.
class TraceBuffer {
 public:
  /// `capacity` rounds up to a power of two. A traced broadcast costs
  /// ~2 + out-degree spans per node it crosses; the default keeps tens of
  /// sampled rounds of history at d <= 4.
  explicit TraceBuffer(std::size_t capacity = 2048, bool enabled = true);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Donates the clock (see FlightRecorder::set_time_source).
  void set_time_source(const TimeNs* t) { time_src_ = t; }
  TimeNs now() const { return time_src_ ? *time_src_ : 0; }

  /// The recording node's rank, stamped into spans() and dump_json().
  void set_self(NodeId id) { self_ = id; }
  NodeId self() const { return self_; }

  /// Donates the deployment's per-hop relay latency histogram (the
  /// registry metric that stays live even when sampling is off). Its
  /// running mean is the node's local one-hop estimate, added to the
  /// frame's cumulative estimate at every relay.
  void set_hop_histogram(const Histogram* h) { hop_hist_ = h; }
  std::uint32_t hop_estimate_ns() const {
    if (hop_hist_ == nullptr) return 0;
    const double m = hop_hist_->mean();
    constexpr double kMax = 4294967295.0;
    return m >= kMax ? 0xffffffffu : static_cast<std::uint32_t>(m);
  }

  void record(SpanKind k, Round r, NodeId origin, NodeId peer,
              std::uint8_t hop, std::uint32_t est_ns) {
    if (!enabled_) return;
    Slot& s = ring_[head_ & mask_];
    s.t = time_src_ ? *time_src_ : 0;
    s.rk = (static_cast<std::uint64_t>(k) << kKindShift) | (r & kRoundMask);
    s.a = (static_cast<std::uint64_t>(origin) << 32) | peer;
    s.b = (static_cast<std::uint64_t>(hop) << 32) | est_ns;
    ++head_;
  }

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  std::uint64_t dropped() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }
  std::uint64_t total_recorded() const { return head_; }

  /// Retained spans, oldest first, `node` = self().
  std::vector<Span> spans() const;
  std::vector<Span> spans_for_round(Round r) const;

  /// JSON-lines dump, one span per line; the admin `/trace` body and the
  /// input format of TraceMerge::add_dump / tools/allconcur_trace.
  std::string dump_json(const std::string& label) const;

  void clear() { head_ = 0; }

 private:
  static constexpr unsigned kKindShift = 56;
  static constexpr std::uint64_t kRoundMask = (std::uint64_t{1} << 56) - 1;
  struct alignas(32) Slot {
    TimeNs t = 0;
    std::uint64_t rk = 0;  ///< kind << 56 | round
    std::uint64_t a = 0;   ///< origin << 32 | peer
    std::uint64_t b = 0;   ///< hop << 32 | est_ns
  };
  static_assert(sizeof(Slot) == 32);

  std::vector<Slot> ring_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;
  bool enabled_;
  NodeId self_ = kInvalidNode;
  const TimeNs* time_src_ = nullptr;
  const Histogram* hop_hist_ = nullptr;
};

/// Postmortem companion to obs::dump_on_trip: writes each node's span
/// dump to `$ALLCONCUR_FLIGHT_DIR/trace_<reason>_<label>.jsonl` (same
/// directory the flight dumps land in, so one CI artifact carries both;
/// tools/allconcur_trace --in merges the files). Nodes whose tracer is
/// null, disabled, or empty are skipped. Returns the paths written —
/// empty when the env var is unset.
std::vector<std::string> trace_dump_on_trip(
    const std::string& reason,
    const std::vector<std::pair<std::string, const TraceBuffer*>>& nodes);

// ---------------------------------------------------------------------------
// Merge + analysis: per-node dumps -> the round's propagation DAG.
// ---------------------------------------------------------------------------

/// One step of a broadcast's critical path: `node` first received the
/// frame from `from` at time `t`, at distance `dist` from the origin.
struct TraceStep {
  NodeId node = kInvalidNode;
  NodeId from = kInvalidNode;
  std::size_t dist = 0;
  TimeNs t = 0;
};

/// Everything the merge learned about one traced broadcast.
struct BroadcastTrace {
  Round round = 0;
  NodeId origin = kInvalidNode;
  std::size_t depth = 0;    ///< D-hat: max distance over first receipts
  std::size_t reached = 0;  ///< nodes that received it (origin excluded)
  TimeNs origin_t = 0;      ///< origin span time (0 if the dump lost it)
  TimeNs completed_t = 0;   ///< latest first-receipt time
  std::uint32_t max_est_ns = 0;  ///< deepest cumulative wire estimate
  std::vector<TraceStep> critical_path;  ///< origin -> deepest node
  bool fell_back = false;  ///< a kFallback span annotated this round
};

/// Per-hop latency attribution summed over every matched phase pair.
struct TraceBreakdown {
  double process_ns = 0;    ///< recv -> relay decision (engine)
  double queue_ns = 0;      ///< relay decision -> enqueue on the conn
  double serialize_ns = 0;  ///< enqueue -> handed to the wire
  double wire_ns = 0;       ///< sender's send -> receiver's recv
  std::uint64_t hops = 0;   ///< matched wire edges
};

/// Merges per-node span streams and reconstructs the propagation DAG.
class TraceMerge {
 public:
  /// Spans from a TraceBuffer (node already filled) or a parsed dump.
  void add_spans(const std::vector<Span>& spans);
  /// Parses a dump_json() JSONL blob; returns spans accepted. Lines that
  /// do not parse are skipped (a merge of truncated dumps still works).
  std::size_t add_dump(std::string_view jsonl);

  const std::vector<Span>& spans() const { return spans_; }

  /// One entry per traced (round, origin), round-major order.
  std::vector<BroadcastTrace> broadcasts() const;
  /// Max depth over every traced broadcast — the measured D-hat that
  /// work_depth_model compares against the analytic diameter.
  std::size_t empirical_depth() const;
  TraceBreakdown breakdown() const;

  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto):
  /// per-node residency slices plus flow arrows for every wire edge.
  /// Timestamps are the deployment clock in microseconds.
  std::string chrome_trace_json() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace allconcur::obs
