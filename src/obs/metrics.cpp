#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace allconcur::obs {

const char* unit_name(Unit u) {
  switch (u) {
    case Unit::kNone: return "";
    case Unit::kBytes: return "bytes";
    case Unit::kNanoseconds: return "ns";
    case Unit::kMessages: return "messages";
    case Unit::kFrames: return "frames";
    case Unit::kRounds: return "rounds";
    case Unit::kEvents: return "events";
  }
  return "";
}

std::uint64_t Histogram::bucket_lo(std::size_t i) {
  if (i < kSubBuckets) return i;
  const std::uint64_t octave = (i - kSubBuckets) / kSubBuckets + kSubBits;
  const std::uint64_t sub = (i - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << (octave - kSubBits);
}

std::uint64_t Histogram::bucket_hi(std::size_t i) {
  if (i < kSubBuckets) return i + 1;
  const std::uint64_t octave = (i - kSubBuckets) / kSubBuckets + kSubBits;
  const std::uint64_t lo = bucket_lo(i);
  const std::uint64_t hi = lo + (1ull << (octave - kSubBits));
  return hi > lo ? hi : ~0ull;  // top bucket's bound wraps past 2^64
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  const std::uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (mn == ~0ull) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Same rank convention as common::Summary: position q*(count-1) in the
  // sorted sample, interpolated — here linearly within the covering
  // bucket, which bounds the error by the bucket width (<= 1/kSubBuckets
  // relative).
  const double target = q * static_cast<double>(count - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    // Ranks [cum, cum + c - 1] live in this bucket.
    if (target <= static_cast<double>(cum + c - 1)) {
      const double lo = static_cast<double>(bucket_lo(i));
      const double hi = static_cast<double>(bucket_hi(i));
      if (c == 1) return lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c - 1);
      return lo + frac * (hi - 1.0 - lo);
    }
    cum += c;
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end() && it->second.first == Kind::kCounter) {
    return counters_[it->second.second].second;
  }
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(Desc{name, help, unit}),
                         std::forward_as_tuple());
  index_[name] = {Kind::kCounter, counters_.size() - 1};
  return counters_.back().second;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end() && it->second.first == Kind::kGauge) {
    return gauges_[it->second.second].second;
  }
  gauges_.emplace_back(std::piecewise_construct,
                       std::forward_as_tuple(Desc{name, help, unit}),
                       std::forward_as_tuple());
  index_[name] = {Kind::kGauge, gauges_.size() - 1};
  return gauges_.back().second;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               Unit unit, std::uint64_t max_trackable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end() && it->second.first == Kind::kHistogram) {
    return histograms_[it->second.second].second;
  }
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(Desc{name, help, unit}),
                           std::forward_as_tuple(max_trackable));
  index_[name] = {Kind::kHistogram, histograms_.size() - 1};
  return histograms_.back().second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::kCounter) return nullptr;
  return &counters_[it->second.second].second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::kGauge) return nullptr;
  return &gauges_[it->second.second].second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::kHistogram)
    return nullptr;
  return &histograms_[it->second.second].second;
}

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Registry::to_json(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string inner =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) + 2, ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  std::string out = "{";
  out += nl;
  bool first = true;
  // index_ is name-sorted, so the output is stable across runs.
  for (const auto& [name, where] : index_) {
    if (!first) {
      out += ",";
      out += nl;
    }
    first = false;
    out += inner;
    out += '"';
    json_escape_into(out, name);
    out += "\": {";
    const auto emit_desc = [&](const Desc& d, const char* type) {
      out += "\"type\": \"";
      out += type;
      out += "\", \"unit\": \"";
      out += unit_name(d.unit);
      out += "\"";
    };
    switch (where.first) {
      case Kind::kCounter: {
        const auto& [desc, c] = counters_[where.second];
        emit_desc(desc, "counter");
        out += ", \"value\": " + std::to_string(c.value());
        break;
      }
      case Kind::kGauge: {
        const auto& [desc, g] = gauges_[where.second];
        emit_desc(desc, "gauge");
        out += ", \"value\": " + std::to_string(g.value());
        break;
      }
      case Kind::kHistogram: {
        const auto& [desc, h] = histograms_[where.second];
        emit_desc(desc, "histogram");
        const auto s = h.snapshot();
        out += ", \"count\": " + std::to_string(s.count);
        out += ", \"sum\": " + std::to_string(s.sum);
        out += ", \"min\": " + std::to_string(s.min);
        out += ", \"max\": " + std::to_string(s.max);
        out += ", \"overflow\": " + std::to_string(s.overflow);
        out += ", \"p50\": " + fmt_double(s.quantile(0.5));
        out += ", \"p90\": " + fmt_double(s.quantile(0.9));
        out += ", \"p99\": " + fmt_double(s.quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += nl;
  out += pad + "}";
  return out;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Prometheus text format: HELP text escapes backslash and newline
  // (label values additionally escape the double quote, handled inline
  // below should labeled series ever carry dynamic values).
  const auto help_escape = [](const std::string& s) {
    std::string esc;
    esc.reserve(s.size());
    for (char c : s) {
      if (c == '\\') {
        esc += "\\\\";
      } else if (c == '\n') {
        esc += "\\n";
      } else {
        esc += c;
      }
    }
    return esc;
  };
  const auto header = [&](const Desc& d, const char* type) {
    out += "# HELP allconcur_" + d.name + " " + help_escape(d.help);
    if (d.unit != Unit::kNone) {
      out += " [";
      out += unit_name(d.unit);
      out += "]";
    }
    out += "\n# TYPE allconcur_" + d.name + " " + type + "\n";
  };
  for (const auto& [name, where] : index_) {
    switch (where.first) {
      case Kind::kCounter: {
        const auto& [desc, c] = counters_[where.second];
        header(desc, "counter");
        out += "allconcur_" + name + " " + std::to_string(c.value()) + "\n";
        break;
      }
      case Kind::kGauge: {
        const auto& [desc, g] = gauges_[where.second];
        header(desc, "gauge");
        out += "allconcur_" + name + " " + std::to_string(g.value()) + "\n";
        break;
      }
      case Kind::kHistogram: {
        const auto& [desc, h] = histograms_[where.second];
        header(desc, "summary");
        const auto s = h.snapshot();
        for (double q : {0.5, 0.9, 0.99}) {
          out += "allconcur_" + name + "{quantile=\"" + fmt_double(q) + "\"} " +
                 fmt_double(s.quantile(q)) + "\n";
        }
        out += "allconcur_" + name + "_sum " + std::to_string(s.sum) + "\n";
        out += "allconcur_" + name + "_count " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace allconcur::obs
