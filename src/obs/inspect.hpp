// Introspection client for the TcpNode admin endpoint.
//
// The admin listener speaks minimal HTTP/1.0 (GET only, loopback only)
// so it is equally reachable from `curl`, from this client, and from the
// `allconcur_inspect` CLI — which is a thin main() over run_inspect(), so
// net_tcp_test exercising run_inspect() runs the tool's actual code path
// against a live node.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace allconcur::obs {

/// Blocking HTTP/1.0 GET against 127.0.0.1:`port`. Returns the response
/// body on a 200, nullopt on connect/IO failure or non-200 status.
std::optional<std::string> admin_fetch(std::uint16_t port,
                                       const std::string& path,
                                       int timeout_ms = 2000);

/// The `allconcur_inspect` entry point: fetches `path` from the admin
/// port and writes the body to `out`. Returns a process exit code.
int run_inspect(std::uint16_t port, const std::string& path, std::FILE* out);

}  // namespace allconcur::obs
