// Introspection client for the TcpNode admin endpoint.
//
// The admin listener speaks minimal HTTP/1.0 (GET only, loopback only)
// so it is equally reachable from `curl`, from this client, and from the
// `allconcur_inspect` CLI — which is a thin main() over run_inspect(), so
// net_tcp_test exercising run_inspect() runs the tool's actual code path
// against a live node.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

namespace allconcur::obs {

/// Why an admin_fetch produced no body. A timeout is operationally a
/// different failure from a refused connection (node down) or a 404
/// (wrong path), so the tool surfaces each as its own exit code.
enum class FetchStatus {
  kOk,          ///< 200 with a body
  kConnectFail, ///< socket/connect/send failed — nothing is listening
  kTimeout,     ///< connected, but the response did not finish in time
  kHttpError,   ///< completed response with a non-200 status line
  kBadResponse, ///< completed bytes that do not parse as HTTP
};

/// Blocking HTTP/1.0 GET against 127.0.0.1:`port`. Returns the response
/// body on a 200, nullopt otherwise; `status` (when non-null) reports
/// which way it failed.
std::optional<std::string> admin_fetch(std::uint16_t port,
                                       const std::string& path,
                                       int timeout_ms = 2000,
                                       FetchStatus* status = nullptr);

/// The `allconcur_inspect` entry point: fetches `path` from the admin
/// port and writes the body to `out`. Exit codes: 0 = ok, 1 = connect or
/// malformed response, 3 = timeout, 4 = non-200 status.
int run_inspect(std::uint16_t port, const std::string& path, std::FILE* out,
                int timeout_ms = 2000);

}  // namespace allconcur::obs
