#include "obs/trace.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

namespace allconcur::obs {

const char* span_name(SpanKind k) {
  switch (k) {
    case SpanKind::kOrigin: return "origin";
    case SpanKind::kRecv: return "recv";
    case SpanKind::kProcess: return "process";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kSend: return "send";
    case SpanKind::kFallback: return "fallback";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity, bool enabled)
    : enabled_(enabled) {
  if (capacity < 2) capacity = 2;
  capacity = std::bit_ceil(capacity);
  ring_.resize(capacity);
  mask_ = capacity - 1;
}

std::vector<Span> TraceBuffer::spans() const {
  std::vector<Span> out;
  const std::uint64_t n = head_ < ring_.size()
                              ? head_
                              : static_cast<std::uint64_t>(ring_.size());
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t seq = head_ - n; seq < head_; ++seq) {
    const Slot& s = ring_[seq & mask_];
    Span sp;
    sp.seq = seq;
    sp.t = s.t;
    sp.round = s.rk & kRoundMask;
    sp.kind = static_cast<SpanKind>(s.rk >> kKindShift);
    sp.node = self_;
    sp.origin = static_cast<NodeId>(s.a >> 32);
    sp.peer = static_cast<NodeId>(s.a & 0xffffffffu);
    sp.hop = static_cast<std::uint8_t>(s.b >> 32);
    sp.est_ns = static_cast<std::uint32_t>(s.b & 0xffffffffu);
    out.push_back(sp);
  }
  return out;
}

std::vector<Span> TraceBuffer::spans_for_round(Round r) const {
  std::vector<Span> out;
  for (const Span& s : spans()) {
    if (s.round == r) out.push_back(s);
  }
  return out;
}

std::string TraceBuffer::dump_json(const std::string& label) const {
  std::string out;
  char line[320];
  for (const Span& s : spans()) {
    std::snprintf(line, sizeof(line),
                  "{\"node\": \"%s\", \"id\": %llu, \"seq\": %llu, "
                  "\"t\": %lld, \"round\": %llu, \"span\": \"%s\", "
                  "\"origin\": %llu, \"peer\": %llu, \"hop\": %u, "
                  "\"est\": %llu}\n",
                  label.c_str(), static_cast<unsigned long long>(s.node),
                  static_cast<unsigned long long>(s.seq),
                  static_cast<long long>(s.t),
                  static_cast<unsigned long long>(s.round),
                  span_name(s.kind),
                  static_cast<unsigned long long>(s.origin),
                  static_cast<unsigned long long>(s.peer),
                  static_cast<unsigned>(s.hop),
                  static_cast<unsigned long long>(s.est_ns));
    out += line;
  }
  return out;
}

std::vector<std::string> trace_dump_on_trip(
    const std::string& reason,
    const std::vector<std::pair<std::string, const TraceBuffer*>>& nodes) {
  std::vector<std::string> written;
  const char* dir = std::getenv("ALLCONCUR_FLIGHT_DIR");
  if (dir == nullptr || dir[0] == '\0') return written;
  ::mkdir(dir, 0755);  // best effort, same single level as dump_on_trip
  for (const auto& [label, tb] : nodes) {
    if (tb == nullptr || !tb->enabled() || tb->size() == 0) continue;
    const std::string path =
        std::string(dir) + "/trace_" + reason + "_" + label + ".jsonl";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string dump = tb->dump_json(label);
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      written.push_back(path);
    }
  }
  if (!written.empty()) {
    std::fprintf(stderr,
                 "causal-trace dumps written to %s (%zu files) — merge "
                 "with allconcur_trace --in\n",
                 dir, written.size());
  }
  return written;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

namespace {

/// Extracts the number following `"key": ` in one JSONL line; false when
/// the key is absent or not followed by digits.
bool json_u64(std::string_view line, std::string_view key,
              std::uint64_t& out) {
  std::string needle = "\"";
  needle.append(key);
  needle += "\": ";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  std::size_t i = pos + needle.size();
  bool neg = false;
  if (i < line.size() && line[i] == '-') {
    neg = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  out = neg ? static_cast<std::uint64_t>(-static_cast<std::int64_t>(v)) : v;
  return true;
}

bool span_kind_from(std::string_view line, SpanKind& out) {
  const std::size_t pos = line.find("\"span\": \"");
  if (pos == std::string_view::npos) return false;
  const std::string_view rest = line.substr(pos + 9);
  for (SpanKind k :
       {SpanKind::kOrigin, SpanKind::kRecv, SpanKind::kProcess,
        SpanKind::kEnqueue, SpanKind::kSend, SpanKind::kFallback}) {
    const std::string_view name = span_name(k);
    if (rest.size() > name.size() && rest.substr(0, name.size()) == name &&
        rest[name.size()] == '"') {
      out = k;
      return true;
    }
  }
  return false;
}

bool parse_span_line(std::string_view line, Span& out) {
  std::uint64_t id = 0, seq = 0, t = 0, round = 0, origin = 0, peer = 0,
                hop = 0, est = 0;
  if (!json_u64(line, "id", id) || !json_u64(line, "t", t) ||
      !json_u64(line, "round", round) || !json_u64(line, "origin", origin) ||
      !json_u64(line, "peer", peer) || !json_u64(line, "hop", hop) ||
      !json_u64(line, "est", est) || !span_kind_from(line, out.kind)) {
    return false;
  }
  json_u64(line, "seq", seq);  // optional: ordering also carried by t
  out.seq = seq;
  out.t = static_cast<TimeNs>(t);
  out.round = round;
  out.node = static_cast<NodeId>(id);
  out.origin = static_cast<NodeId>(origin);
  out.peer = static_cast<NodeId>(peer);
  out.hop = static_cast<std::uint8_t>(hop & 0xff);
  out.est_ns = static_cast<std::uint32_t>(est & 0xffffffffu);
  return true;
}

using BcastKey = std::pair<Round, NodeId>;

/// First receipt of a broadcast at one node: the earliest recv span
/// (ties broken toward the smaller hop — the shorter path).
struct FirstRecv {
  TimeNs t = 0;
  std::uint8_t hop = 0;
  NodeId from = kInvalidNode;
  std::uint32_t est_ns = 0;
};

}  // namespace

void TraceMerge::add_spans(const std::vector<Span>& spans) {
  spans_.insert(spans_.end(), spans.begin(), spans.end());
}

std::size_t TraceMerge::add_dump(std::string_view jsonl) {
  std::size_t accepted = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string_view::npos) end = jsonl.size();
    const std::string_view line = jsonl.substr(start, end - start);
    Span s;
    if (!line.empty() && parse_span_line(line, s)) {
      spans_.push_back(s);
      ++accepted;
    }
    start = end + 1;
  }
  return accepted;
}

std::vector<BroadcastTrace> TraceMerge::broadcasts() const {
  // First receipts, origin stamps and fallback marks per (round, origin).
  std::map<BcastKey, std::map<NodeId, FirstRecv>> first;
  std::map<BcastKey, TimeNs> origin_t;
  std::map<Round, bool> round_fell_back;
  for (const Span& s : spans_) {
    if (s.kind == SpanKind::kFallback) {
      round_fell_back[s.round] = true;
      continue;
    }
    const BcastKey key{s.round, s.origin};
    if (s.kind == SpanKind::kOrigin) {
      origin_t[key] = s.t;
      continue;
    }
    if (s.kind != SpanKind::kRecv) continue;
    // The broadcast looping back to its own origin is the G_R cycle
    // closing, not dissemination: the origin sits at distance 0.
    if (s.node == s.origin) continue;
    auto& per_node = first[key];
    auto it = per_node.find(s.node);
    if (it == per_node.end() || s.t < it->second.t ||
        (s.t == it->second.t && s.hop < it->second.hop)) {
      per_node[s.node] = FirstRecv{s.t, s.hop, s.peer, s.est_ns};
    }
  }

  std::vector<BroadcastTrace> out;
  for (const auto& [key, per_node] : first) {
    BroadcastTrace b;
    b.round = key.first;
    b.origin = key.second;
    b.reached = per_node.size();
    if (const auto it = origin_t.find(key); it != origin_t.end()) {
      b.origin_t = it->second;
    }
    if (const auto it = round_fell_back.find(b.round);
        it != round_fell_back.end()) {
      b.fell_back = it->second;
    }
    // Deepest first receipt: max distance, then latest time.
    NodeId deepest = kInvalidNode;
    for (const auto& [node, fr] : per_node) {
      const std::size_t dist = static_cast<std::size_t>(fr.hop) + 1;
      b.depth = std::max(b.depth, dist);
      b.completed_t = std::max(b.completed_t, fr.t);
      b.max_est_ns = std::max(b.max_est_ns, fr.est_ns);
      if (deepest == kInvalidNode ||
          dist > static_cast<std::size_t>(per_node.at(deepest).hop) + 1 ||
          (dist == static_cast<std::size_t>(per_node.at(deepest).hop) + 1 &&
           fr.t > per_node.at(deepest).t)) {
        deepest = node;
      }
    }
    // Walk the first-receipt parents back to the origin.
    std::vector<TraceStep> path;
    NodeId cur = deepest;
    std::size_t guard = per_node.size() + 1;
    while (cur != kInvalidNode && cur != b.origin && guard-- > 0) {
      const auto it = per_node.find(cur);
      if (it == per_node.end()) break;
      path.push_back(TraceStep{cur, it->second.from,
                               static_cast<std::size_t>(it->second.hop) + 1,
                               it->second.t});
      cur = it->second.from;
    }
    path.push_back(TraceStep{b.origin, kInvalidNode, 0, b.origin_t});
    std::reverse(path.begin(), path.end());
    b.critical_path = std::move(path);
    out.push_back(std::move(b));
  }
  return out;
}

std::size_t TraceMerge::empirical_depth() const {
  std::size_t depth = 0;
  for (const BroadcastTrace& b : broadcasts()) {
    depth = std::max(depth, b.depth);
  }
  return depth;
}

TraceBreakdown TraceMerge::breakdown() const {
  // Phase pairs are matched per (round, origin) on (node[, peer], hop):
  // process/enqueue/send carry the out-hop, recv the in-hop, so the wire
  // edge send(A -> B, h) pairs with recv(at B, from A, h) and the node-
  // local phases chain out-hop h back to in-hop h-1.
  using NodeHop = std::tuple<Round, NodeId, NodeId, std::uint32_t>;
  using EdgeKey = std::tuple<Round, NodeId, NodeId, NodeId, std::uint32_t>;
  std::map<NodeHop, TimeNs> recv_t;     // in-hop
  std::map<NodeHop, TimeNs> process_t;  // out-hop
  std::map<NodeHop, TimeNs> origin_at;  // origin span, hop 0
  std::map<EdgeKey, TimeNs> enqueue_t;  // (node, peer), out-hop
  std::map<EdgeKey, TimeNs> send_t;
  for (const Span& s : spans_) {
    const std::uint32_t hop = s.hop;
    switch (s.kind) {
      case SpanKind::kRecv: {
        const NodeHop k{s.round, s.origin, s.node, hop};
        const auto it = recv_t.find(k);
        if (it == recv_t.end() || s.t < it->second) recv_t[k] = s.t;
        break;
      }
      case SpanKind::kProcess:
        process_t[{s.round, s.origin, s.node, hop}] = s.t;
        break;
      case SpanKind::kOrigin:
        origin_at[{s.round, s.origin, s.node, 0}] = s.t;
        break;
      case SpanKind::kEnqueue:
        enqueue_t[{s.round, s.origin, s.node, s.peer, hop}] = s.t;
        break;
      case SpanKind::kSend:
        send_t[{s.round, s.origin, s.node, s.peer, hop}] = s.t;
        break;
      case SpanKind::kFallback:
        break;
    }
  }
  TraceBreakdown out;
  for (const auto& [k, t] : process_t) {
    const auto& [round, origin, node, hop] = k;
    if (hop == 0) continue;
    const auto it = recv_t.find({round, origin, node, hop - 1});
    if (it != recv_t.end() && t >= it->second) {
      out.process_ns += static_cast<double>(t - it->second);
    }
  }
  for (const auto& [k, t] : enqueue_t) {
    const auto& [round, origin, node, peer, hop] = k;
    const auto pit = process_t.find({round, origin, node, hop});
    if (pit != process_t.end() && t >= pit->second) {
      out.queue_ns += static_cast<double>(t - pit->second);
    } else if (const auto oit = origin_at.find({round, origin, node, hop});
               oit != origin_at.end() && t >= oit->second) {
      out.queue_ns += static_cast<double>(t - oit->second);
    }
    const auto sit = send_t.find(k);
    if (sit != send_t.end() && sit->second >= t) {
      out.serialize_ns += static_cast<double>(sit->second - t);
    }
  }
  for (const auto& [k, t] : recv_t) {
    const auto& [round, origin, node, hop] = k;
    // The matching send names this node as its peer; scan the senders.
    for (const auto& [sk, st] : send_t) {
      const auto& [sround, sorigin, snode, speer, shop] = sk;
      if (sround == round && sorigin == origin && speer == node &&
          shop == hop && t >= st) {
        out.wire_ns += static_cast<double>(t - st);
        ++out.hops;
        break;
      }
    }
  }
  return out;
}

std::string TraceMerge::chrome_trace_json() const {
  // One track (pid) per node; per-broadcast residency slices plus flow
  // arrows across wire edges. ts/dur are microseconds (trace-event spec).
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char buf[256];
  bool first_ev = true;
  const auto emit = [&](const char* s) {
    if (!first_ev) out += ",\n";
    first_ev = false;
    out += s;
  };
  std::map<NodeId, bool> named;
  const auto name_node = [&](NodeId node) {
    if (named[node]) return;
    named[node] = true;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %llu, "
                  "\"tid\": 0, \"args\": {\"name\": \"node%llu\"}}",
                  static_cast<unsigned long long>(node),
                  static_cast<unsigned long long>(node));
    emit(buf);
  };
  // Residency slices: [first span, last span] of each (round, origin)
  // broadcast at each node.
  std::map<std::tuple<Round, NodeId, NodeId>,
           std::pair<TimeNs, TimeNs>> residency;
  for (const Span& s : spans_) {
    if (s.kind == SpanKind::kFallback) continue;
    auto& r = residency[{s.round, s.origin, s.node}];
    if (r.first == 0 && r.second == 0) {
      r = {s.t, s.t};
    } else {
      r.first = std::min(r.first, s.t);
      r.second = std::max(r.second, s.t);
    }
  }
  for (const auto& [key, span] : residency) {
    const auto& [round, origin, node] = key;
    name_node(node);
    const double ts = static_cast<double>(span.first) / 1000.0;
    const double dur =
        std::max(0.001, static_cast<double>(span.second - span.first) / 1000.0);
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"r%llu o%llu\", \"cat\": \"bcast\", "
                  "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": %llu, \"tid\": 0}",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(origin),
                  ts, dur, static_cast<unsigned long long>(node));
    emit(buf);
  }
  // Flow arrows: one s/f pair per send span (the matching recv, when the
  // dump retained it, is found the same way breakdown() matches edges).
  std::uint64_t flow_id = 0;
  for (const Span& s : spans_) {
    if (s.kind != SpanKind::kSend) continue;
    const Span* recv = nullptr;
    for (const Span& r : spans_) {
      if (r.kind == SpanKind::kRecv && r.round == s.round &&
          r.origin == s.origin && r.node == s.peer && r.peer == s.node &&
          r.hop == s.hop && r.t >= s.t) {
        recv = &r;
        break;
      }
    }
    if (recv == nullptr) continue;
    name_node(s.node);
    name_node(recv->node);
    ++flow_id;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"hop\", \"cat\": \"wire\", \"ph\": \"s\", "
                  "\"id\": %llu, \"ts\": %.3f, \"pid\": %llu, \"tid\": 0}",
                  static_cast<unsigned long long>(flow_id),
                  static_cast<double>(s.t) / 1000.0,
                  static_cast<unsigned long long>(s.node));
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"hop\", \"cat\": \"wire\", \"ph\": \"f\", "
                  "\"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, "
                  "\"pid\": %llu, \"tid\": 0}",
                  static_cast<unsigned long long>(flow_id),
                  static_cast<double>(recv->t) / 1000.0,
                  static_cast<unsigned long long>(recv->node));
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace allconcur::obs
