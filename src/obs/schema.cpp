#include "obs/schema.hpp"

#include "chaos/scenario.hpp"
#include "core/engine.hpp"
#include "net/tcp_transport.hpp"

namespace allconcur::obs {

void fill_engine_stats(Registry& reg, const core::EngineStats& s) {
  const auto set = [&](const char* name, const char* help, Unit unit,
                       std::uint64_t v) {
    reg.counter(name, help, unit).set(v);
  };
  set("engine_bcast_sent", "Tracked-path <BCAST> messages sent (G_R)",
      Unit::kMessages, s.bcast_sent);
  set("engine_bcast_received", "Tracked-path <BCAST> messages received",
      Unit::kMessages, s.bcast_received);
  set("engine_fail_sent", "<FAIL> notifications sent", Unit::kMessages,
      s.fail_sent);
  set("engine_fail_received", "<FAIL> notifications received", Unit::kMessages,
      s.fail_received);
  set("engine_fwd_bwd_sent", "Diamond-P FWD/BWD gate messages sent",
      Unit::kMessages, s.fwd_bwd_sent);
  set("engine_fwd_bwd_received", "Diamond-P FWD/BWD gate messages received",
      Unit::kMessages, s.fwd_bwd_received);
  set("engine_ubcast_sent",
      "Fast-path <UBCAST> messages sent over the unreliable overlay G_U",
      Unit::kMessages, s.ubcast_sent);
  set("engine_ubcast_received", "Fast-path <UBCAST> messages received",
      Unit::kMessages, s.ubcast_received);
  set("engine_fallback_sent", "<FALLBACK> triggers sent", Unit::kMessages,
      s.fallback_sent);
  set("engine_fallback_received", "<FALLBACK> triggers received",
      Unit::kMessages, s.fallback_received);
  set("engine_fallbacks_initiated",
      "Rounds this engine switched to the reliable path on its own "
      "initiative (local suspicion or round timeout)",
      Unit::kRounds, s.fallbacks_initiated);
  set("engine_fast_rounds",
      "Delivered rounds that completed on the untracked fast path",
      Unit::kRounds, s.fast_rounds);
  set("engine_fallback_rounds",
      "Delivered rounds that went through the tracked path", Unit::kRounds,
      s.fallback_rounds);
  set("engine_tracking_resets",
      "Tracking digraphs instantiated (zero across a failure-free fast run)",
      Unit::kEvents, s.tracking_resets);
  set("engine_bytes_sent",
      "Encode-time accounting: wire bytes (header+payload) of every frame "
      "handed to the transport send hook, counted once per destination. "
      "Excludes connection preambles and transport heartbeats; includes "
      "frames the transport later drops (chaos, closed peer). Compare "
      "net_bytes_sent.",
      Unit::kBytes, s.bytes_sent);
  set("engine_frames_encoded",
      "Wire frames built: exactly one per message emitted regardless of "
      "overlay out-degree (the zero-copy invariant)",
      Unit::kFrames, s.frames_encoded);
  set("engine_dropped_stale", "Messages dropped: round already delivered",
      Unit::kMessages, s.dropped_stale);
  set("engine_dropped_suspected",
      "Messages dropped: origin already suspected (ignore-after-suspect)",
      Unit::kMessages, s.dropped_suspected);
  set("engine_dropped_foreign", "Messages dropped: origin not in the view",
      Unit::kMessages, s.dropped_foreign);
  set("engine_dropped_lost",
      "Messages dropped: arrived after declared lost (Diamond-P)",
      Unit::kMessages, s.dropped_lost);
  set("engine_dropped_ahead",
      "Frames beyond the reachable pipelining horizon, discarded",
      Unit::kFrames, s.dropped_ahead);
  set("engine_parked_duplicates",
      "Identical ahead-of-window frames suppressed at the park",
      Unit::kFrames, s.parked_duplicates);
  set("engine_rounds_completed", "Rounds this engine A-delivered",
      Unit::kRounds, s.rounds_completed);
}

void fill_net_stats(Registry& reg, const net::TcpNetStats& s) {
  const auto set = [&](const char* name, const char* help, Unit unit,
                       std::uint64_t v) {
    reg.counter(name, help, unit).set(v);
  };
  set("net_sendmsg_calls", "Flush syscalls issued", Unit::kEvents,
      s.sendmsg_calls);
  set("net_frames_sent", "Frames fully transmitted", Unit::kFrames,
      s.frames_sent);
  set("net_bytes_sent",
      "Bytes the kernel accepted onto sockets: frame header+payload plus "
      "the 4-byte connection hello preamble, heartbeats included. Excludes "
      "frames still queued and frames dropped before the socket. On a "
      "quiescent, heartbeat-free, chaos-free node this equals "
      "engine_bytes_sent + net_preamble_bytes (asserted in net_tcp_test).",
      Unit::kBytes, s.bytes_sent);
  set("net_preamble_bytes",
      "Connection hello bytes written (4 per outbound connection) — the "
      "reconciliation term between net_bytes_sent and engine_bytes_sent",
      Unit::kBytes, s.preamble_bytes);
  set("net_partial_writes", "Short sendmsg results (kernel backpressure)",
      Unit::kEvents, s.partial_writes);
  set("net_eagain_waits", "Flushes parked on EPOLLOUT", Unit::kEvents,
      s.eagain_waits);
  set("net_frames_received", "Frames parsed off the wire", Unit::kFrames,
      s.frames_received);
  set("net_rbuf_compactions", "Receive-buffer memmoves", Unit::kEvents,
      s.rbuf_compactions);
  set("net_checksum_drops",
      "Torn frames the stream parser dropped (magic/type/length/checksum "
      "failures) instead of delivering",
      Unit::kFrames, s.checksum_drops);
  set("net_resyncs", "Forward scans to a plausible header", Unit::kEvents,
      s.resyncs);
}

void fill_chaos_stats(Registry& reg, const chaos::InjectionStats& s) {
  const auto set = [&](const char* name, const char* help, Unit unit,
                       std::uint64_t v) {
    reg.counter(name, help, unit).set(v);
  };
  set("chaos_frames_seen", "Frames evaluated by the scenario engine",
      Unit::kFrames, s.frames_seen);
  set("chaos_dropped", "Frames dropped by fault injection", Unit::kFrames,
      s.dropped);
  set("chaos_duplicated", "Frames duplicated by fault injection",
      Unit::kFrames, s.duplicated);
  set("chaos_corrupted", "Frames corrupted by fault injection", Unit::kFrames,
      s.corrupted);
  set("chaos_delayed", "Frames delayed by fault injection", Unit::kFrames,
      s.delayed);
}

}  // namespace allconcur::obs
