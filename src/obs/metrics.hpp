// Unified metrics plane: named counters, gauges and fixed-allocation
// log-bucketed histograms behind one registry with JSON and
// Prometheus-text exposition.
//
// Design constraints (ROADMAP items 3/4 both consume this):
//   * wait-free single-writer increments — every mutation is one relaxed
//     atomic op on a fixed slot, no locks, no allocation after
//     registration;
//   * snapshot-on-read — readers copy the bucket array under relaxed
//     loads; a torn read across buckets skews a quantile by at most the
//     in-flight increments, never corrupts state;
//   * fixed allocation — a histogram owns a flat power-of-2 bucket array
//     (HDR-style: exact below 2^kSubBits, then kSubBuckets linear
//     sub-buckets per octave, relative error <= 1/kSubBuckets ~ 3%),
//     sized once at construction and never resized.
//
// The registry is the schema: every metric carries a help string and a
// unit, so the scattered `EngineStats` / `TcpNetStats` / chaos counters
// get documented semantics when mirrored in (see obs/schema.hpp — in
// particular the engine-vs-net bytes_sent reconciliation).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace allconcur::obs {

/// The unit a metric's value is denominated in; part of the schema and
/// rendered into both expositions.
enum class Unit : std::uint8_t {
  kNone,
  kBytes,
  kNanoseconds,
  kMessages,
  kFrames,
  kRounds,
  kEvents,
};

const char* unit_name(Unit u);

/// Monotonic counter. `add` is the live-increment path; `set` exists for
/// mirroring an externally-maintained cumulative counter (EngineStats and
/// friends) into the registry at snapshot time.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value (queue depths, window occupancy, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over uint64 values.
///
/// Bucketing: values below kSubBuckets are exact (one bucket per value);
/// a value v >= kSubBuckets with msb m lands in one of kSubBuckets linear
/// sub-buckets of the octave [2^m, 2^(m+1)), so the recorded value is
/// known to within a factor of 1/kSubBuckets. Values above max_trackable
/// are clamped into max_trackable's bucket and counted as overflow.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // Indices: [0, kSubBuckets) exact values, then 32 sub-buckets for each
  // octave msb = kSubBits..63.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  explicit Histogram(std::uint64_t max_trackable = ~0ull)
      : max_trackable_(max_trackable) {}

  /// Wait-free: one relaxed fetch_add per slot touched.
  void record(std::uint64_t v) {
    if (v > max_trackable_) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
      v = max_trackable_;
    }
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Single-writer min/max: load + store (no CAS needed under the
    // registry's one-writer-per-metric discipline; racing writers only
    // risk a slightly stale extreme, never corruption).
    const std::uint64_t mn = min_.load(std::memory_order_relaxed);
    if (v < mn) min_.store(v, std::memory_order_relaxed);
    const std::uint64_t mx = max_.load(std::memory_order_relaxed);
    if (v > mx) max_.store(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;   ///< 0 when empty
    std::uint64_t max = 0;
    std::uint64_t overflow = 0;  ///< records clamped to max_trackable
    std::vector<std::uint64_t> buckets;  ///< dense, kBucketCount entries

    /// Rank-interpolated quantile (same convention as
    /// common::Summary::quantile: position q*(count-1), linearly
    /// interpolated — here within the covering bucket). 0 when empty.
    double quantile(double q) const;
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };

  Snapshot snapshot() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Running mean from two relaxed loads — no snapshot, so hot paths that
  /// need a live estimate (the tracer's per-hop stamp) can afford it.
  double mean() const {
    const std::uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }
  std::uint64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_trackable() const { return max_trackable_; }

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
    return static_cast<std::size_t>(kSubBuckets +
                                    (msb - kSubBits) * kSubBuckets + sub);
  }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lo(std::size_t i);
  /// Exclusive upper bound of bucket i (saturates at uint64 max).
  static std::uint64_t bucket_hi(std::size_t i);

 private:
  std::uint64_t max_trackable_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
};

/// Name -> metric registry with stable addresses: registering returns a
/// reference that stays valid for the registry's lifetime, so hot paths
/// capture the pointer once and never look up again. Registration takes a
/// mutex (rare); increments on the returned objects are wait-free.
/// Re-registering an existing name returns the same object (help/unit
/// from the first registration win).
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help,
                   Unit unit = Unit::kNone);
  Gauge& gauge(const std::string& name, const std::string& help,
               Unit unit = Unit::kNone);
  Histogram& histogram(const std::string& name, const std::string& help,
                       Unit unit = Unit::kNone,
                       std::uint64_t max_trackable = ~0ull);

  /// nullptr if `name` is not a registered counter (ditto below).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// One JSON object, keys sorted: counters/gauges as
  /// {"type","unit","help","value"}, histograms additionally with
  /// count/sum/min/max/overflow and p50/p90/p99.
  std::string to_json(int indent = 0) const;

  /// Prometheus text exposition (metrics prefixed `allconcur_`;
  /// histograms rendered summary-style with quantile labels).
  std::string to_prometheus() const;

 private:
  struct Desc {
    std::string name;
    std::string help;
    Unit unit;
  };
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  mutable std::mutex mu_;
  std::deque<std::pair<Desc, Counter>> counters_;
  std::deque<std::pair<Desc, Gauge>> gauges_;
  std::deque<std::pair<Desc, Histogram>> histograms_;
  std::map<std::string, std::pair<Kind, std::size_t>> index_;
};

}  // namespace allconcur::obs
