// The metric name catalog: mirrors the legacy per-subsystem stats
// structs (core::EngineStats, net::TcpNetStats, chaos::InjectionStats)
// into one obs::Registry under documented names and units, so every
// exposition surface — admin endpoint, SimCluster snapshot, bench
// `--json` "metrics" blocks — speaks the same schema.
//
// Naming: `<subsystem>_<field>` (engine_*, net_*, chaos_*). The two
// bytes_sent counters deliberately keep distinct names because they
// measure different things (see the help strings in schema.cpp):
//
//   engine_bytes_sent  encode-time accounting — wire bytes
//                      (header+payload) of every frame handed to the
//                      transport send hook, counted once per
//                      destination; excludes connection preambles and
//                      transport heartbeats, includes frames the
//                      transport later drops (chaos, closed peer).
//   net_bytes_sent     bytes the kernel actually accepted onto
//                      sockets: frame header+payload plus the 4-byte
//                      connection hello preamble, heartbeats included.
//   net_preamble_bytes the hello bytes alone — the exact
//                      reconciliation term: on a quiescent,
//                      heartbeat-free, chaos-free node,
//                      net_bytes_sent == engine_bytes_sent +
//                      net_preamble_bytes (asserted in net_tcp_test).
#pragma once

#include "obs/metrics.hpp"

namespace allconcur::core {
struct EngineStats;
}
namespace allconcur::net {
struct TcpNetStats;
}
namespace allconcur::chaos {
struct InjectionStats;
}

namespace allconcur::obs {

/// Mirrors an engine's cumulative counters into `reg` (set-to-value, so
/// repeated calls refresh rather than double-count).
void fill_engine_stats(Registry& reg, const core::EngineStats& s);

/// Mirrors a TCP transport's wire counters into `reg`.
void fill_net_stats(Registry& reg, const net::TcpNetStats& s);

/// Mirrors a chaos scenario engine's injection counters into `reg`.
void fill_chaos_stats(Registry& reg, const chaos::InjectionStats& s);

}  // namespace allconcur::obs
