// Tracking digraphs g_i[p*] — AllConcur's early-termination engine
// (§2.3, Algorithm 1 lines 21-41).
//
// For every peer p*, server p_i tracks the possible whereabouts of p*'s
// message m*: vertices are servers that (according to p_i's information)
// may have m*, an edge (p_j, p_k) is the suspicion that p_k received m*
// directly from p_j. The digraph shrinks as failure notifications arrive;
// p_i delivers the round once every tracking digraph is empty.
//
// All vertices here are *ranks* within the round's View.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace allconcur::core {

/// Context the tracking update needs from the engine: the round's overlay
/// (over ranks) and the failure notifications received so far.
class FailureKnowledge {
 public:
  virtual ~FailureKnowledge() = default;
  /// True iff any ⟨FAIL, p, *⟩ was received (p is "known to have failed").
  virtual bool is_failed(NodeId rank) const = 0;
  /// True iff ⟨FAIL, p_j, p_k⟩ in particular was received.
  virtual bool has_pair(NodeId rank_j, NodeId rank_k) const = 0;
};

class TrackingDigraph {
 public:
  TrackingDigraph() = default;

  /// Starts tracking m_root: V = {root}, E = {} (Algorithm 1 input).
  void reset(NodeId root_rank);

  /// Starts already-resolved (used for the self digraph g_i[p_i]).
  void reset_empty();

  NodeId root() const { return root_; }
  bool empty() const { return vertices_.empty(); }
  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  bool contains(NodeId rank) const;
  bool has_edge(NodeId from, NodeId to) const;
  const std::vector<NodeId>& vertices() const { return vertices_; }
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

  /// m_root received: stop tracking (Algorithm 1 line 19).
  void clear();

  /// Processes ⟨FAIL, p_j, p_k⟩ (lines 24-40): expansion with the FIFO
  /// queue on the first notification, edge removal on subsequent ones,
  /// then reachability and all-failed pruning. Returns true if the digraph
  /// transitioned to empty (the caller tracks the active count).
  bool on_failure(NodeId rank_j, NodeId rank_k, const graph::Digraph& overlay,
                  const FailureKnowledge& fk);

 private:
  void add_vertex(NodeId rank);
  void add_edge(NodeId from, NodeId to);
  void remove_edge(NodeId from, NodeId to);
  bool successors_empty(NodeId rank) const;
  /// Lines 37-40; returns true if the digraph became empty.
  bool prune(const FailureKnowledge& fk);

  NodeId root_ = kInvalidNode;
  std::vector<NodeId> vertices_;                   // sorted
  std::vector<std::pair<NodeId, NodeId>> edges_;   // sorted
};

}  // namespace allconcur::core
