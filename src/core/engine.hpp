// The AllConcur protocol engine: Algorithm 1 plus round iteration, dynamic
// membership and the ⋄P surviving-partition extension (§3).
//
// The engine is a pure message-driven state machine: it owns no sockets,
// threads or clocks. It consumes (from, Message) events and emits messages
// through a send hook; round completion is reported through a deliver
// hook. The same engine instance runs under the discrete-event simulator,
// under the real TCP transport, and directly inside unit tests.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/batch.hpp"
#include "core/message.hpp"
#include "core/tracking.hpp"
#include "core/view.hpp"

namespace allconcur::core {

/// Failure-detector regime (§3.2 / §3.3.2). kPerfect trusts every
/// notification (P); kEventuallyPerfect adds the FWD/BWD majority gate
/// before delivery so that false suspicions cannot break set agreement.
enum class FdMode { kPerfect, kEventuallyPerfect };

struct Delivery {
  NodeId origin = kInvalidNode;
  Payload payload;               ///< null for empty or size-only messages
  std::uint64_t bytes = 0;       ///< payload size (valid also size-only)
};

struct RoundResult {
  Round round = 0;
  std::size_t view_size = 0;            ///< n of this round
  std::vector<Delivery> deliveries;     ///< deterministic order (by id)
  std::vector<NodeId> removed;          ///< tagged failed at round end
  std::vector<NodeId> joined;           ///< admitted from the next round
};

struct EngineStats {
  std::uint64_t bcast_sent = 0, bcast_received = 0;
  std::uint64_t fail_sent = 0, fail_received = 0;
  std::uint64_t fwd_bwd_sent = 0, fwd_bwd_received = 0;
  std::uint64_t bytes_sent = 0;
  /// Wire frames built: exactly one per message this engine emitted,
  /// regardless of the overlay out-degree (the zero-copy invariant).
  std::uint64_t frames_encoded = 0;
  std::uint64_t dropped_stale = 0;      ///< messages for completed rounds
  std::uint64_t dropped_suspected = 0;  ///< ignore-after-suspect (§3.3.2)
  std::uint64_t dropped_foreign = 0;    ///< origin not in the view
  std::uint64_t dropped_lost = 0;       ///< arrived after declared lost (⋄P)
  std::uint64_t rounds_completed = 0;
};

struct EngineOptions {
  FdMode fd_mode = FdMode::kPerfect;
};

class Engine {
 public:
  struct Hooks {
    /// Emit one protocol message toward a peer (required). The frame is
    /// shared across the whole fan-out of a send — the engine encodes it
    /// exactly once per message; transports queue the reference (the bytes
    /// are immutable and refcounted) instead of copying. The decoded form
    /// stays available through frame->msg() for in-process consumers.
    std::function<void(NodeId dst, const FrameRef& frame)> send;
    /// A-deliver one completed round (required).
    std::function<void(const RoundResult&)> deliver;
  };
  using Options = EngineOptions;

  /// `start_round` > 0 is used by joiners entering an existing deployment.
  Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
         Options options = Options(), Round start_round = 0);

  NodeId self() const { return self_; }
  Round current_round() const { return round_; }
  const View& view() const { return *view_; }
  const EngineStats& stats() const { return stats_; }
  bool has_broadcast() const { return own_broadcast_; }
  bool departed() const { return departed_; }

  /// Queues a request for this server's next A-broadcast.
  void submit(Request request);

  /// Queues `bytes` of size-only load (throughput benches: the simulator
  /// charges for the bytes, nothing is materialized).
  void submit_opaque(std::size_t bytes);

  /// A-broadcasts this round's own message (packing everything queued).
  /// No-op if the round's message was already sent; the engine also
  /// broadcasts automatically upon the first ⟨BCAST⟩ it receives
  /// (Algorithm 1 line 15).
  void broadcast_now();

  /// Transport delivery: `from` is the link peer (the relaying
  /// predecessor), not necessarily the origin.
  void on_message(NodeId from, const Message& msg);

  /// Local failure detector: predecessor `suspect` is considered failed.
  void on_suspect(NodeId suspect);

  /// Number of still-unresolved tracking digraphs (0 means the message
  /// set is decided; in ⋄P delivery additionally waits for the gate).
  std::size_t active_tracking() const { return active_tracking_; }

  /// Read-only access for tests: tracking digraph for a peer (by rank).
  const TrackingDigraph& tracking_of(std::size_t rank) const {
    return tracking_[rank];
  }

 private:
  class Knowledge;  // FailureKnowledge adapter over engine state

  void start_round_state();
  void do_broadcast();
  void handle_bcast(NodeId from, const Message& msg);
  void handle_fail(const Message& msg);
  void handle_fwdbwd(NodeId from, const Message& msg);
  void process_failure_pair(NodeId global_j, NodeId global_k,
                            bool disseminate);
  /// Encode-once fan-out: the wire frame is built lazily on the first
  /// live destination and shared by reference with every further one.
  /// Returns the number of messages actually handed to the send hook.
  std::size_t send_to_successors(const Message& msg,
                                 NodeId skip = kInvalidNode);
  std::size_t send_to_predecessors(const Message& msg,
                                   NodeId skip = kInvalidNode);
  std::size_t fan_out(const std::vector<NodeId>& dsts, const Message& msg,
                      NodeId skip);
  void check_termination();
  void deliver_round();

  NodeId self_;
  GraphBuilder builder_;
  Hooks hooks_;
  Options options_;

  Round round_ = 0;
  std::shared_ptr<const View> view_;  // immutable; shared across rounds
  std::size_t self_rank_ = 0;
  bool departed_ = false;
  // Overlay neighbor lists of self (global ids), recomputed only when the
  // view object changes: the send fast path must not rebuild them per
  // message.
  const View* neighbors_view_ = nullptr;
  std::vector<NodeId> succs_;
  std::vector<NodeId> preds_;

  // Requests buffered for the next own broadcast (§5 batching).
  std::vector<Request> pending_;
  std::size_t pending_opaque_bytes_ = 0;

  // Per-round state (reset by start_round_state).
  std::vector<Payload> msgs_;            // by rank
  std::vector<std::uint64_t> msg_bytes_; // by rank
  std::vector<bool> have_;               // m ∈ M_i
  bool own_broadcast_ = false;
  std::vector<TrackingDigraph> tracking_;
  // Free-list: digraphs parked when the view shrinks, so their vertex/edge
  // capacity is reused when it grows again instead of reallocating.
  std::vector<TrackingDigraph> tracking_spares_;
  std::size_t active_tracking_ = 0;
  std::set<std::pair<NodeId, NodeId>> fails_;  // F_i as global-id pairs
  std::vector<bool> failed_rank_;
  std::vector<bool> suspected_rank_;  // own-FD suspicions (ranks)
  std::vector<bool> lost_;            // tracking pruned: message declared lost
  // ⋄P state.
  bool decided_ = false;
  std::vector<bool> fwd_seen_, bwd_seen_;
  std::size_t fwd_count_ = 0, bwd_count_ = 0;
  // Messages for round R+1 received while still in R.
  std::vector<std::pair<NodeId, Message>> next_round_buffer_;

  EngineStats stats_;
};

}  // namespace allconcur::core
