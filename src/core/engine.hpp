// The AllConcur protocol engine: Algorithm 1 plus round iteration, dynamic
// membership, the ⋄P surviving-partition extension (§3) — and round
// pipelining: a window of W consecutive rounds runs concurrently, the way
// the paper's performance model assumes (§5: a server that finished round
// R immediately starts R+1 while slower peers are still relaying R).
//
// The engine is a pure message-driven state machine: it owns no sockets,
// threads or clocks. It consumes (from, Message) events and emits messages
// through a send hook; round completion is reported through a deliver
// hook. The same engine instance runs under the discrete-event simulator,
// under the real TCP transport, and directly inside unit tests.
//
// Pipelining model (Options::window = W ≥ 1):
//   * Rounds [r_delivered+1, r_delivered+W] are *open*: their BCAST, FAIL,
//     FWD and BWD traffic is processed — and relayed — immediately on
//     arrival, each round on its own RoundState. Rounds may *complete*
//     (message set decided) out of order; A-delivery stays strictly in
//     round order.
//   * Own broadcasts fill the window front-to-back: broadcast_now() packs
//     the pending batch into the lowest round not yet broadcast, so a
//     producer can keep up to W rounds in flight before any delivery.
//   * Membership changes drain the window before the view switches: a
//     change decided by round t takes effect at round t+W (deterministic
//     across servers — no node can have opened t+W under the old view,
//     because opening it requires having delivered t). Rounds t..t+W-1
//     run out under the old view, with failed servers resolved by the
//     carried failure notifications; the close round t+W-1 reports the
//     accumulated removed/joined sets and the next round starts the new
//     view. With W = 1 this is exactly the classic per-round iteration.
//   * Messages beyond the window (round > r_delivered+W) are counted in
//     EngineStats::dropped_ahead; those still reachable by a live peer
//     (≤ r_delivered+2W — a peer can be at most W rounds ahead of our
//     frontier, and broadcast W more) are parked and replayed when the
//     window advances, anything farther means we were evicted.
//
// RoundStates are pooled: a delivered round's state (flag vectors,
// tracking digraphs, message slots) is recycled for the next opened round,
// so a steady-state round transition performs no heap allocation at any
// window size (bench/wire_path and bench/round_pipeline measure this).
//
// Dual-digraph fast path (Options::fast_builder — AllConcur+, "A Dual
// Digraph Approach for Leaderless Atomic Broadcast"): rounds open in FAST
// mode and run untracked over the unreliable overlay G_U — completion is
// a simple all-n bitmap, no tracking digraphs are instantiated. A
// suspicion, a round timeout, or a peer's ⟨FALLBACK, r⟩ switches round r
// (and only round r) to the tracked RELIABLE path over G_R: every server
// re-broadcasts its round-r message and relays everything it holds over
// G_R *before* emitting any round-r ⟨FAIL⟩ (the per-link FIFO discipline
// that keeps the tracking inferences sound when a message travelled G_U),
// then standard AllConcur termination applies. A fast round can only
// complete with the full view's message set, so a round that completed
// fast anywhere is recoverable to the identical set everywhere: the
// completer assists by re-relaying its full set (from the live round, or
// from the W-deep retention ring if it already delivered). Rounds opened
// while failure notifications are pending start reliable directly; once a
// membership change evicts the failed servers, fast rounds resume. See
// src/plus/ for the overlay pairing and the deployment-side watchdog.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/batch.hpp"
#include "core/message.hpp"
#include "core/tracking.hpp"
#include "core/view.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace allconcur::core {

/// Failure-detector regime (§3.2 / §3.3.2). kPerfect trusts every
/// notification (P); kEventuallyPerfect adds the FWD/BWD majority gate
/// before delivery so that false suspicions cannot break set agreement.
enum class FdMode { kPerfect, kEventuallyPerfect };

struct Delivery {
  NodeId origin = kInvalidNode;
  Payload payload;               ///< null for empty or size-only messages
  std::uint64_t bytes = 0;       ///< payload size (valid also size-only)
};

struct RoundResult {
  Round round = 0;
  std::size_t view_size = 0;            ///< n of this round
  std::vector<Delivery> deliveries;     ///< deterministic order (by id)
  /// Servers leaving the membership after this round. Reported on the
  /// round that *closes* an epoch (the last round before the view
  /// switches); with window > 1 a failure decided at round t is thus
  /// reported at t+W-1, after the window drained.
  std::vector<NodeId> removed;
  std::vector<NodeId> joined;           ///< admitted from the next round
};

struct EngineStats {
  std::uint64_t bcast_sent = 0, bcast_received = 0;
  std::uint64_t fail_sent = 0, fail_received = 0;
  std::uint64_t fwd_bwd_sent = 0, fwd_bwd_received = 0;
  // ---- Dual-digraph fast path (AllConcur+ mode) ----
  std::uint64_t ubcast_sent = 0, ubcast_received = 0;   ///< G_U traffic
  std::uint64_t fallback_sent = 0, fallback_received = 0;
  /// Rounds this engine switched to the reliable path on its own
  /// initiative (local suspicion or round timeout), vs. following a
  /// peer's ⟨FALLBACK⟩.
  std::uint64_t fallbacks_initiated = 0;
  /// Delivered rounds that completed on the untracked fast path.
  std::uint64_t fast_rounds = 0;
  /// Delivered rounds that went through the tracked path: mid-round
  /// fallback transitions and rounds that opened reliable outright
  /// (inherited failure notifications).
  std::uint64_t fallback_rounds = 0;
  /// Tracking digraphs instantiated (reset to a live root). Zero across a
  /// failure-free fast-path run — the bench-asserted invariant that fast
  /// rounds skip the tracking machinery entirely.
  std::uint64_t tracking_resets = 0;
  /// Encode-time accounting: wire bytes (header+payload) of every frame
  /// handed to the send hook, counted once per destination. Excludes
  /// transport-level extras (connection preambles, heartbeats) and still
  /// counts frames the transport later drops (chaos, closed peer) — see
  /// TcpNetStats::bytes_sent for the socket-side view and obs/schema.hpp
  /// for the documented reconciliation.
  std::uint64_t bytes_sent = 0;
  /// Wire frames built: exactly one per message this engine emitted,
  /// regardless of the overlay out-degree (the zero-copy invariant).
  std::uint64_t frames_encoded = 0;
  std::uint64_t dropped_stale = 0;      ///< messages for completed rounds
  std::uint64_t dropped_suspected = 0;  ///< ignore-after-suspect (§3.3.2)
  std::uint64_t dropped_foreign = 0;    ///< origin not in the view
  std::uint64_t dropped_lost = 0;       ///< arrived after declared lost (⋄P)
  /// Messages ahead of the active window (round > r_delivered + window).
  /// Those within the reachable horizon (≤ r_delivered + 2*window) are
  /// parked and replayed once the window advances; farther-future traffic
  /// means we were evicted and is discarded (the harness decides on
  /// rejoin). Before pipelining these were silently discarded.
  std::uint64_t dropped_ahead = 0;
  /// Identical ahead-of-window frames suppressed at the park (duplicated
  /// wire traffic): parked once, counted once, replayed once.
  std::uint64_t parked_duplicates = 0;
  std::uint64_t rounds_completed = 0;
};

struct EngineOptions {
  FdMode fd_mode = FdMode::kPerfect;
  /// Number of concurrently active rounds W (≥ 1). 1 reproduces the
  /// classic stop-and-wait iteration exactly.
  std::size_t window = 1;
  /// Dual-digraph fast path (AllConcur+, PAPERS.md): when set, the engine
  /// runs failure-free rounds untracked over the unreliable overlay G_U
  /// this builder produces (the View must be constructed with the same
  /// builder), falling back to tracked rounds over G_R on suspicion, on a
  /// peer's ⟨FALLBACK⟩, or on a round timeout. Empty = classic mode.
  /// Requires FdMode::kPerfect (the paper's evaluation assumption; the
  /// ⋄P gate composes with tracked rounds only).
  GraphBuilder fast_builder;
  /// Observability tap (may be null — the hot path then pays one
  /// predictable branch per would-be event). The engine records round
  /// lifecycle events (open/broadcast/receive/complete/fallback/deliver,
  /// drops, parks, suspicions) against the recorder, which the owning
  /// deployment timestamps via its clock (FlightRecorder::
  /// set_time_source). Not owned.
  obs::FlightRecorder* recorder = nullptr;
  /// Cross-node causal tracer (may be null; see obs/trace.hpp). The
  /// engine stamps sampled origins (trace context in the frame header),
  /// increments the hop count and the cumulative one-way estimate at
  /// every relay, and records its process spans against this buffer.
  /// Not owned.
  obs::TraceBuffer* tracer = nullptr;
  /// Sample one A-broadcast origin round in `trace_sample_period` (0 =
  /// tracing off). Round-number based, so every origin samples the same
  /// rounds and a sampled round's full propagation DAG is captured.
  std::uint32_t trace_sample_period = 0;
};

class Engine {
 public:
  struct Hooks {
    /// Emit one protocol message toward a peer (required). The frame is
    /// shared across the whole fan-out of a send — the engine encodes it
    /// exactly once per message; transports queue the reference (the bytes
    /// are immutable and refcounted) instead of copying. The decoded form
    /// stays available through frame->msg() for in-process consumers.
    std::function<void(NodeId dst, const FrameRef& frame)> send;
    /// A-deliver one completed round (required). Rounds are delivered in
    /// strict round order even when they complete out of order.
    std::function<void(const RoundResult&)> deliver;
  };
  using Options = EngineOptions;

  /// `start_round` > 0 is used by joiners entering an existing deployment.
  Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
         Options options = Options(), Round start_round = 0);

  NodeId self() const { return self_; }
  /// Oldest round not yet A-delivered (the in-progress round).
  Round current_round() const { return base_round_; }
  const View& view() const { return *view_; }
  const EngineStats& stats() const { return stats_; }
  /// True iff the oldest open round carries this server's own broadcast.
  bool has_broadcast() const;
  bool departed() const { return departed_; }
  std::size_t window() const { return options_.window; }
  /// Lowest open round this server has not yet broadcast in (== the round
  /// the next broadcast_now() with pending work would target), or nullopt
  /// if every open round already carries our message (window full).
  std::optional<Round> next_broadcast_round() const;

  /// Queues a request for this server's next A-broadcast.
  void submit(Request request);

  /// Queues `bytes` of size-only load (throughput benches: the simulator
  /// charges for the bytes, nothing is materialized).
  void submit_opaque(std::size_t bytes);

  /// Payload bytes submitted but not yet A-broadcast — the backpressure
  /// signal: while a full (or draining) window refuses further
  /// broadcasts, submissions accumulate here and clients should throttle.
  std::uint64_t pending_bytes() const;

  /// A-broadcasts the pending batch in the lowest open round that has no
  /// own message yet. The in-progress round broadcasts even empty (round
  /// progress); later window rounds only with pending work, so repeated
  /// calls fill the pipeline without spinning empty speculative rounds.
  /// No-op when every open round already carries our message; the engine
  /// also broadcasts automatically upon the first ⟨BCAST⟩ it receives
  /// for a round (Algorithm 1 line 15, applied to every round up to it).
  void broadcast_now();

  /// Transport delivery: `from` is the link peer (the relaying
  /// predecessor), not necessarily the origin.
  void on_message(NodeId from, const Message& msg);

  /// Local failure detector: predecessor `suspect` is considered failed.
  void on_suspect(NodeId suspect);

  /// Dual-digraph mode: the deployment's round watchdog reports that round
  /// `r` has been stuck beyond the fallback timeout. If `r` is an open,
  /// incomplete fast round with any activity (our broadcast or a received
  /// message), the engine initiates the fallback transition: R-broadcasts
  /// ⟨FALLBACK, r⟩ over G_R and re-executes the round tracked. No-op in
  /// classic mode, for complete rounds, and for untouched idle rounds —
  /// calling it spuriously (no real failure) is safe by design and is how
  /// the property suite forces fallbacks.
  void on_round_timeout(Round r);

  /// True iff the dual-digraph fast path is enabled.
  bool fast_path() const { return static_cast<bool>(options_.fast_builder); }
  /// Dual mode: true iff the oldest open round saw any activity (own
  /// broadcast or a received message) — the watchdog's "armed" signal.
  bool front_round_active() const;
  /// Dual mode: monotone per-round progress counter of the oldest open
  /// round (messages received + own broadcast). The watchdog re-arms its
  /// deadline whenever this moves, so a legitimately slow round (latency
  /// above the timeout but traffic still flowing) is not timed out.
  std::size_t front_round_progress() const;

  /// Number of still-unresolved tracking digraphs of the oldest open
  /// round (0 means its message set is decided; in ⋄P delivery
  /// additionally waits for the gate).
  std::size_t active_tracking() const;

  /// Read-only access for tests: tracking digraph for a peer (by rank) in
  /// the oldest open round.
  const TrackingDigraph& tracking_of(std::size_t rank) const;

 private:
  class Knowledge;  // FailureKnowledge adapter over engine state

  /// All per-round protocol state (Algorithm 1's M_i and F_i, the
  /// tracking digraphs, and the ⋄P gate), pooled and recycled across
  /// rounds. The failure set is per round because a ⟨FAIL, p_j, p_k⟩
  /// tagged with round r asserts "p_k did not receive m_j^(r)" — valid
  /// for r and, since suspicion persists, every later round, but *not*
  /// for earlier open rounds (p_k may well have received m_j there).
  struct RoundState {
    Round round = 0;
    std::vector<Payload> msgs;             // by rank
    std::vector<std::uint64_t> msg_bytes;  // by rank
    std::vector<bool> have;                // m ∈ M_i
    std::size_t have_count = 0;            // popcount of have
    bool own_broadcast = false;
    // ---- Per-round mode tag (dual-digraph) ----
    /// True while the round runs the untracked fast path over G_U:
    /// completion is have_count == n, the tracking vector is untouched
    /// stale pool state and must not be read. Flipped (once, forward
    /// only) by enter_fallback. Always false in classic mode.
    bool fast = false;
    bool fell_back = false;       ///< entered the tracked fallback path
    bool fallback_relayed = false;  ///< ⟨FALLBACK, r⟩ sent/relayed already
    /// Highest trigger attempt seen or sent: a trigger with a higher
    /// attempt (a watchdog re-fire somewhere) penetrates the dedup and
    /// re-floods, so a lost transition is recoverable.
    std::uint32_t fallback_attempt = 0;
    /// Fast-complete round: full message set re-relayed over G_R to help
    /// fallen-back laggards (once per trigger attempt).
    bool assisted = false;
    std::vector<TrackingDigraph> tracking;
    std::size_t active_tracking = 0;
    std::set<std::pair<NodeId, NodeId>> fails;  // F_i, global-id pairs
    std::vector<bool> failed_rank;
    std::vector<bool> lost;  // tracking pruned: message declared lost
    // ⋄P state.
    bool decided = false;
    std::vector<bool> fwd_seen, bwd_seen;
    std::size_t fwd_count = 0, bwd_count = 0;
    /// Termination reached; awaiting in-order delivery.
    bool complete = false;
  };

  /// Message set of a delivered fast-path round, retained for the last
  /// `window` rounds: a laggard's ⟨FALLBACK, r⟩ can arrive after we
  /// delivered r and recycled its state, and the fallback's termination
  /// may depend on messages only we still hold. The window bound is
  /// exact: a peer stuck at round r caps everyone's progress at r+W
  /// (no round beyond r+W-1 can complete without the stuck peer's
  /// broadcast, which never comes).
  struct RetainedRound {
    Round round = 0;
    std::vector<Delivery> deliveries;
    /// The round's failure pairs: a laggard's tracked re-execution may
    /// need the evidence (not just the messages) to terminate — e.g. to
    /// prune a crashed member whose FAIL it lost.
    std::vector<std::pair<NodeId, NodeId>> fails;
    /// Highest trigger attempt already assisted (-1: never) — a re-fired
    /// trigger (higher attempt) is re-relayed and re-assisted, so a
    /// laggard whose assist traffic was lost can still recover.
    std::int64_t assisted_attempt = -1;
  };

  RoundState* find_round(Round r);
  /// Opens the next round after the current window tail (pool-recycled
  /// state, carried failure notifications re-seeded and re-disseminated).
  void open_round();
  void refill_window();
  void recycle(std::unique_ptr<RoundState> st);
  /// Highest round the window may currently hold open: base+W-1, capped
  /// at the epoch close while a membership change is draining.
  Round max_open_round() const;

  void do_broadcast(RoundState& st);
  /// Algorithm 1 line 15, windowed: our own message must be out in every
  /// round up to `r` before we relay someone else's round-`r` message.
  void ensure_broadcast_up_to(Round r);
  /// (Re-)instantiates the tracking digraphs of `st` for every message
  /// not yet received, seeding active_tracking. Classic rounds run it at
  /// open; dual-mode rounds only on the fallback transition.
  void init_tracking(RoundState& st);
  /// Handles ⟨BCAST⟩ and ⟨UBCAST⟩ — the payload semantics are identical;
  /// only the relay overlay differs by the round's current mode.
  void handle_bcast(NodeId from, const Message& msg, RoundState& st);
  /// Handles ⟨FALLBACK, r⟩ for an open round: relays it over G_R and
  /// enters the fallback transition.
  void handle_fallback(NodeId from, const Message& msg, RoundState& st);
  /// ⟨FALLBACK, r⟩ for an already-delivered round: re-relay the trigger
  /// and assist the laggard with the retained message set.
  void handle_fallback_stale(NodeId from, const Message& msg);
  /// The fallback transition for an open round. Incomplete fast round:
  /// flip to tracked mode, re-broadcast our message and relay everything
  /// held over G_R (strictly before any round-r ⟨FAIL⟩ leaves — the
  /// per-link FIFO discipline the tracking inferences rest on), then
  /// replay the accumulated failure pairs against the fresh digraphs.
  /// Complete fast round: keep the completion (the set is the full view
  /// — the only set a fast round can decide) and assist.
  void enter_fallback(RoundState& st);
  /// Local fallback trigger (suspicion / timeout / FAIL for a fast
  /// round): R-broadcast ⟨FALLBACK, r⟩, then run the transition.
  void initiate_fallback(RoundState& st);
  /// Re-relays the full message set of a fast-complete round over G_R
  /// (once per trigger attempt) so fallen-back peers can terminate by
  /// receipt.
  void assist_fallback(RoundState& st);
  /// Re-issues a stuck tracked round's transition traffic (held messages
  /// then failure evidence) — the watchdog re-fire path.
  void reflood_fallback(RoundState& st);
  /// Sends one held round message as a ⟨BCAST⟩ over G_R.
  void rebroadcast_reliable(Round round, NodeId origin_global,
                            const Payload& payload, std::uint64_t bytes);
  void retain_delivered(const RoundState& st, const RoundResult& result);
  void handle_fail(const Message& msg);
  void handle_fwdbwd(NodeId from, const Message& msg, RoundState& st);
  /// Records (p_j, p_k) in every open round ≥ `from_round` (suspicion
  /// persists forward, never backward); each round that learns the pair
  /// disseminates it under its own tag and updates its tracking digraphs.
  void learn_failure(NodeId global_j, NodeId global_k, Round from_round,
                     bool disseminate);
  void apply_failure_to_round(RoundState& st, std::size_t rank_j,
                              NodeId k_rank_or_sentinel);
  /// Encode-once fan-out: the wire frame is built lazily on the first
  /// live destination and shared by reference with every further one.
  /// Returns the number of messages actually handed to the send hook.
  std::size_t send_to_successors(const Message& msg,
                                 NodeId skip = kInvalidNode);
  std::size_t send_to_predecessors(const Message& msg,
                                   NodeId skip = kInvalidNode);
  std::size_t fan_out(const std::vector<NodeId>& dsts, const Message& msg,
                      NodeId skip);
  void check_termination(RoundState& st);
  /// Delivers every leading complete round in order (reentrancy-safe:
  /// calls from within a deliver hook fold into the outer loop).
  void deliver_ready();
  void deliver_front();
  void park_future(NodeId from, const Message& msg);
  void replay_parked();

  /// Flight-recorder tap; nullptr when tracing is off (single branch).
  void rec(obs::EventKind k, Round r, std::uint64_t a = 0,
           std::uint64_t b = 0) {
    if (rec_ != nullptr) rec_->record(k, r, a, b);
  }

  /// Causal-tracer helpers (obs/trace.hpp). trace_sampled_round answers
  /// whether a fresh origin broadcast in round r should carry the trace
  /// context; trace_relay mutates an in-flight copy of a sampled message
  /// for its next hop (hop count +1, cumulative estimate += this node's
  /// per-hop estimate) and records the process span.
  bool trace_sampled_round(Round r) const {
    return options_.tracer != nullptr && options_.trace_sample_period != 0 &&
           r % options_.trace_sample_period == 0;
  }
  void trace_relay(Message& out, NodeId from) {
    out.trace = Message::trace_relay_context(out.trace);
    const std::uint32_t step = options_.tracer->hop_estimate_ns();
    const std::uint32_t est = out.detector;
    out.detector = est > 0xffffffffu - step ? 0xffffffffu : est + step;
    options_.tracer->record(obs::SpanKind::kProcess, out.round, out.origin,
                            from, out.trace_hop(), out.detector);
  }

  NodeId self_;
  GraphBuilder builder_;
  Hooks hooks_;
  Options options_;
  obs::FlightRecorder* rec_ = nullptr;

  /// Round of window_.front(): the oldest not-yet-delivered round.
  Round base_round_ = 0;
  std::shared_ptr<const View> view_;  // immutable; shared by all open rounds
  std::size_t self_rank_ = 0;
  bool departed_ = false;
  // Overlay neighbor lists of self (global ids), recomputed only when the
  // view object changes: the send fast path must not rebuild them per
  // message. succs_/preds_ follow G_R; u_succs_ follows G_U (dual mode
  // only, empty otherwise — G_U predecessors matter only to the FD,
  // which the deployments wire via View::monitor_predecessors_of).
  const View* neighbors_view_ = nullptr;
  std::vector<NodeId> succs_;
  std::vector<NodeId> preds_;
  std::vector<NodeId> u_succs_;

  // Requests buffered for the next own broadcast (§5 batching).
  std::vector<Request> pending_;
  std::size_t pending_opaque_bytes_ = 0;
  std::uint64_t pending_request_bytes_ = 0;

  /// Open rounds, contiguous: window_[i] runs round base_round_ + i.
  std::deque<std::unique_ptr<RoundState>> window_;
  /// Recycled round states (vectors and tracking digraphs keep capacity).
  std::vector<std::unique_ptr<RoundState>> pool_;
  // Free-list: digraphs parked when the view shrinks, so their
  // vertex/edge capacity is reused when it grows again.
  std::vector<TrackingDigraph> tracking_spares_;

  // ---- Epoch state (valid for every open round; reset on view switch) --
  /// Own-FD suspicions by rank. Epoch-level: a suspicion raised "now"
  /// covers every open round (all ≥ the round it was raised in), and
  /// carried pairs re-seed it across the view switch, like the classic
  /// per-round re-seeding did.
  std::vector<bool> suspected_rank_;
  /// Failure pairs carried across a view switch (line 12): seeds the
  /// first round of the new epoch; within an epoch each new round seeds
  /// from its predecessor's F_i instead.
  std::set<std::pair<NodeId, NodeId>> carry_fails_;
  /// Set once a delivered round decides a membership change: the last
  /// round of the current view's epoch (= decision round + W - 1). No
  /// round beyond it opens until the window drained and the view
  /// switched.
  std::optional<Round> epoch_close_;
  std::vector<NodeId> epoch_absent_;  // accumulated removals (decision order)
  std::vector<NodeId> epoch_leaves_;  // accumulated voluntary leaves
  std::vector<NodeId> epoch_joined_;  // accumulated admissions

  /// Delivered-round message sets kept for late ⟨FALLBACK⟩ assists (dual
  /// mode only); ring of the last `window` rounds, entries recycled.
  std::deque<RetainedRound> retained_;

  /// Messages ahead of the window, parked until their round opens.
  std::deque<std::pair<NodeId, Message>> future_;
  bool replaying_ = false;   // re-parking during replay: don't recount
  bool delivering_ = false;  // deliver_ready reentrancy guard

  EngineStats stats_;
};

}  // namespace allconcur::core
