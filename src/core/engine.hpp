// The AllConcur protocol engine: Algorithm 1 plus round iteration, dynamic
// membership, the ⋄P surviving-partition extension (§3) — and round
// pipelining: a window of W consecutive rounds runs concurrently, the way
// the paper's performance model assumes (§5: a server that finished round
// R immediately starts R+1 while slower peers are still relaying R).
//
// The engine is a pure message-driven state machine: it owns no sockets,
// threads or clocks. It consumes (from, Message) events and emits messages
// through a send hook; round completion is reported through a deliver
// hook. The same engine instance runs under the discrete-event simulator,
// under the real TCP transport, and directly inside unit tests.
//
// Pipelining model (Options::window = W ≥ 1):
//   * Rounds [r_delivered+1, r_delivered+W] are *open*: their BCAST, FAIL,
//     FWD and BWD traffic is processed — and relayed — immediately on
//     arrival, each round on its own RoundState. Rounds may *complete*
//     (message set decided) out of order; A-delivery stays strictly in
//     round order.
//   * Own broadcasts fill the window front-to-back: broadcast_now() packs
//     the pending batch into the lowest round not yet broadcast, so a
//     producer can keep up to W rounds in flight before any delivery.
//   * Membership changes drain the window before the view switches: a
//     change decided by round t takes effect at round t+W (deterministic
//     across servers — no node can have opened t+W under the old view,
//     because opening it requires having delivered t). Rounds t..t+W-1
//     run out under the old view, with failed servers resolved by the
//     carried failure notifications; the close round t+W-1 reports the
//     accumulated removed/joined sets and the next round starts the new
//     view. With W = 1 this is exactly the classic per-round iteration.
//   * Messages beyond the window (round > r_delivered+W) are counted in
//     EngineStats::dropped_ahead; those still reachable by a live peer
//     (≤ r_delivered+2W — a peer can be at most W rounds ahead of our
//     frontier, and broadcast W more) are parked and replayed when the
//     window advances, anything farther means we were evicted.
//
// RoundStates are pooled: a delivered round's state (flag vectors,
// tracking digraphs, message slots) is recycled for the next opened round,
// so a steady-state round transition performs no heap allocation at any
// window size (bench/wire_path and bench/round_pipeline measure this).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/batch.hpp"
#include "core/message.hpp"
#include "core/tracking.hpp"
#include "core/view.hpp"

namespace allconcur::core {

/// Failure-detector regime (§3.2 / §3.3.2). kPerfect trusts every
/// notification (P); kEventuallyPerfect adds the FWD/BWD majority gate
/// before delivery so that false suspicions cannot break set agreement.
enum class FdMode { kPerfect, kEventuallyPerfect };

struct Delivery {
  NodeId origin = kInvalidNode;
  Payload payload;               ///< null for empty or size-only messages
  std::uint64_t bytes = 0;       ///< payload size (valid also size-only)
};

struct RoundResult {
  Round round = 0;
  std::size_t view_size = 0;            ///< n of this round
  std::vector<Delivery> deliveries;     ///< deterministic order (by id)
  /// Servers leaving the membership after this round. Reported on the
  /// round that *closes* an epoch (the last round before the view
  /// switches); with window > 1 a failure decided at round t is thus
  /// reported at t+W-1, after the window drained.
  std::vector<NodeId> removed;
  std::vector<NodeId> joined;           ///< admitted from the next round
};

struct EngineStats {
  std::uint64_t bcast_sent = 0, bcast_received = 0;
  std::uint64_t fail_sent = 0, fail_received = 0;
  std::uint64_t fwd_bwd_sent = 0, fwd_bwd_received = 0;
  std::uint64_t bytes_sent = 0;
  /// Wire frames built: exactly one per message this engine emitted,
  /// regardless of the overlay out-degree (the zero-copy invariant).
  std::uint64_t frames_encoded = 0;
  std::uint64_t dropped_stale = 0;      ///< messages for completed rounds
  std::uint64_t dropped_suspected = 0;  ///< ignore-after-suspect (§3.3.2)
  std::uint64_t dropped_foreign = 0;    ///< origin not in the view
  std::uint64_t dropped_lost = 0;       ///< arrived after declared lost (⋄P)
  /// Messages ahead of the active window (round > r_delivered + window).
  /// Those within the reachable horizon (≤ r_delivered + 2*window) are
  /// parked and replayed once the window advances; farther-future traffic
  /// means we were evicted and is discarded (the harness decides on
  /// rejoin). Before pipelining these were silently discarded.
  std::uint64_t dropped_ahead = 0;
  std::uint64_t rounds_completed = 0;
};

struct EngineOptions {
  FdMode fd_mode = FdMode::kPerfect;
  /// Number of concurrently active rounds W (≥ 1). 1 reproduces the
  /// classic stop-and-wait iteration exactly.
  std::size_t window = 1;
};

class Engine {
 public:
  struct Hooks {
    /// Emit one protocol message toward a peer (required). The frame is
    /// shared across the whole fan-out of a send — the engine encodes it
    /// exactly once per message; transports queue the reference (the bytes
    /// are immutable and refcounted) instead of copying. The decoded form
    /// stays available through frame->msg() for in-process consumers.
    std::function<void(NodeId dst, const FrameRef& frame)> send;
    /// A-deliver one completed round (required). Rounds are delivered in
    /// strict round order even when they complete out of order.
    std::function<void(const RoundResult&)> deliver;
  };
  using Options = EngineOptions;

  /// `start_round` > 0 is used by joiners entering an existing deployment.
  Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
         Options options = Options(), Round start_round = 0);

  NodeId self() const { return self_; }
  /// Oldest round not yet A-delivered (the in-progress round).
  Round current_round() const { return base_round_; }
  const View& view() const { return *view_; }
  const EngineStats& stats() const { return stats_; }
  /// True iff the oldest open round carries this server's own broadcast.
  bool has_broadcast() const;
  bool departed() const { return departed_; }
  std::size_t window() const { return options_.window; }
  /// Lowest open round this server has not yet broadcast in (== the round
  /// the next broadcast_now() with pending work would target), or nullopt
  /// if every open round already carries our message (window full).
  std::optional<Round> next_broadcast_round() const;

  /// Queues a request for this server's next A-broadcast.
  void submit(Request request);

  /// Queues `bytes` of size-only load (throughput benches: the simulator
  /// charges for the bytes, nothing is materialized).
  void submit_opaque(std::size_t bytes);

  /// Payload bytes submitted but not yet A-broadcast — the backpressure
  /// signal: while a full (or draining) window refuses further
  /// broadcasts, submissions accumulate here and clients should throttle.
  std::uint64_t pending_bytes() const;

  /// A-broadcasts the pending batch in the lowest open round that has no
  /// own message yet. The in-progress round broadcasts even empty (round
  /// progress); later window rounds only with pending work, so repeated
  /// calls fill the pipeline without spinning empty speculative rounds.
  /// No-op when every open round already carries our message; the engine
  /// also broadcasts automatically upon the first ⟨BCAST⟩ it receives
  /// for a round (Algorithm 1 line 15, applied to every round up to it).
  void broadcast_now();

  /// Transport delivery: `from` is the link peer (the relaying
  /// predecessor), not necessarily the origin.
  void on_message(NodeId from, const Message& msg);

  /// Local failure detector: predecessor `suspect` is considered failed.
  void on_suspect(NodeId suspect);

  /// Number of still-unresolved tracking digraphs of the oldest open
  /// round (0 means its message set is decided; in ⋄P delivery
  /// additionally waits for the gate).
  std::size_t active_tracking() const;

  /// Read-only access for tests: tracking digraph for a peer (by rank) in
  /// the oldest open round.
  const TrackingDigraph& tracking_of(std::size_t rank) const;

 private:
  class Knowledge;  // FailureKnowledge adapter over engine state

  /// All per-round protocol state (Algorithm 1's M_i and F_i, the
  /// tracking digraphs, and the ⋄P gate), pooled and recycled across
  /// rounds. The failure set is per round because a ⟨FAIL, p_j, p_k⟩
  /// tagged with round r asserts "p_k did not receive m_j^(r)" — valid
  /// for r and, since suspicion persists, every later round, but *not*
  /// for earlier open rounds (p_k may well have received m_j there).
  struct RoundState {
    Round round = 0;
    std::vector<Payload> msgs;             // by rank
    std::vector<std::uint64_t> msg_bytes;  // by rank
    std::vector<bool> have;                // m ∈ M_i
    bool own_broadcast = false;
    std::vector<TrackingDigraph> tracking;
    std::size_t active_tracking = 0;
    std::set<std::pair<NodeId, NodeId>> fails;  // F_i, global-id pairs
    std::vector<bool> failed_rank;
    std::vector<bool> lost;  // tracking pruned: message declared lost
    // ⋄P state.
    bool decided = false;
    std::vector<bool> fwd_seen, bwd_seen;
    std::size_t fwd_count = 0, bwd_count = 0;
    /// Termination reached; awaiting in-order delivery.
    bool complete = false;
  };

  RoundState* find_round(Round r);
  /// Opens the next round after the current window tail (pool-recycled
  /// state, carried failure notifications re-seeded and re-disseminated).
  void open_round();
  void refill_window();
  void recycle(std::unique_ptr<RoundState> st);
  /// Highest round the window may currently hold open: base+W-1, capped
  /// at the epoch close while a membership change is draining.
  Round max_open_round() const;

  void do_broadcast(RoundState& st);
  /// Algorithm 1 line 15, windowed: our own message must be out in every
  /// round up to `r` before we relay someone else's round-`r` message.
  void ensure_broadcast_up_to(Round r);
  void handle_bcast(NodeId from, const Message& msg, RoundState& st);
  void handle_fail(const Message& msg);
  void handle_fwdbwd(NodeId from, const Message& msg, RoundState& st);
  /// Records (p_j, p_k) in every open round ≥ `from_round` (suspicion
  /// persists forward, never backward); each round that learns the pair
  /// disseminates it under its own tag and updates its tracking digraphs.
  void learn_failure(NodeId global_j, NodeId global_k, Round from_round,
                     bool disseminate);
  void apply_failure_to_round(RoundState& st, std::size_t rank_j,
                              NodeId k_rank_or_sentinel);
  /// Encode-once fan-out: the wire frame is built lazily on the first
  /// live destination and shared by reference with every further one.
  /// Returns the number of messages actually handed to the send hook.
  std::size_t send_to_successors(const Message& msg,
                                 NodeId skip = kInvalidNode);
  std::size_t send_to_predecessors(const Message& msg,
                                   NodeId skip = kInvalidNode);
  std::size_t fan_out(const std::vector<NodeId>& dsts, const Message& msg,
                      NodeId skip);
  void check_termination(RoundState& st);
  /// Delivers every leading complete round in order (reentrancy-safe:
  /// calls from within a deliver hook fold into the outer loop).
  void deliver_ready();
  void deliver_front();
  void park_future(NodeId from, const Message& msg);
  void replay_parked();

  NodeId self_;
  GraphBuilder builder_;
  Hooks hooks_;
  Options options_;

  /// Round of window_.front(): the oldest not-yet-delivered round.
  Round base_round_ = 0;
  std::shared_ptr<const View> view_;  // immutable; shared by all open rounds
  std::size_t self_rank_ = 0;
  bool departed_ = false;
  // Overlay neighbor lists of self (global ids), recomputed only when the
  // view object changes: the send fast path must not rebuild them per
  // message.
  const View* neighbors_view_ = nullptr;
  std::vector<NodeId> succs_;
  std::vector<NodeId> preds_;

  // Requests buffered for the next own broadcast (§5 batching).
  std::vector<Request> pending_;
  std::size_t pending_opaque_bytes_ = 0;
  std::uint64_t pending_request_bytes_ = 0;

  /// Open rounds, contiguous: window_[i] runs round base_round_ + i.
  std::deque<std::unique_ptr<RoundState>> window_;
  /// Recycled round states (vectors and tracking digraphs keep capacity).
  std::vector<std::unique_ptr<RoundState>> pool_;
  // Free-list: digraphs parked when the view shrinks, so their
  // vertex/edge capacity is reused when it grows again.
  std::vector<TrackingDigraph> tracking_spares_;

  // ---- Epoch state (valid for every open round; reset on view switch) --
  /// Own-FD suspicions by rank. Epoch-level: a suspicion raised "now"
  /// covers every open round (all ≥ the round it was raised in), and
  /// carried pairs re-seed it across the view switch, like the classic
  /// per-round re-seeding did.
  std::vector<bool> suspected_rank_;
  /// Failure pairs carried across a view switch (line 12): seeds the
  /// first round of the new epoch; within an epoch each new round seeds
  /// from its predecessor's F_i instead.
  std::set<std::pair<NodeId, NodeId>> carry_fails_;
  /// Set once a delivered round decides a membership change: the last
  /// round of the current view's epoch (= decision round + W - 1). No
  /// round beyond it opens until the window drained and the view
  /// switched.
  std::optional<Round> epoch_close_;
  std::vector<NodeId> epoch_absent_;  // accumulated removals (decision order)
  std::vector<NodeId> epoch_leaves_;  // accumulated voluntary leaves
  std::vector<NodeId> epoch_joined_;  // accumulated admissions

  /// Messages ahead of the window, parked until their round opens.
  std::deque<std::pair<NodeId, Message>> future_;
  bool replaying_ = false;   // re-parking during replay: don't recount
  bool delivering_ = false;  // deliver_ready reentrancy guard

  EngineStats stats_;
};

}  // namespace allconcur::core
