#include "core/engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace allconcur::core {

// Adapter exposing one round's failure knowledge (F_i) to the tracking
// digraphs in rank space. F_i is per round: a notification tagged with
// round r applies to r and later rounds, never to earlier open ones.
class Engine::Knowledge final : public FailureKnowledge {
 public:
  Knowledge(const Engine& e, const RoundState& st) : e_(e), st_(st) {}
  bool is_failed(NodeId rank) const override {
    return st_.failed_rank[rank];
  }
  bool has_pair(NodeId rank_j, NodeId rank_k) const override {
    return st_.fails.count({e_.view_->member(rank_j),
                            e_.view_->member(rank_k)}) > 0;
  }

 private:
  const Engine& e_;
  const RoundState& st_;
};

Engine::Engine(NodeId self, View view, GraphBuilder builder, Hooks hooks,
               Options options, Round start_round)
    : self_(self),
      builder_(std::move(builder)),
      hooks_(std::move(hooks)),
      options_(options),
      base_round_(start_round),
      view_(std::make_shared<const View>(std::move(view))) {
  ALLCONCUR_ASSERT(hooks_.send && hooks_.deliver, "engine hooks required");
  ALLCONCUR_ASSERT(view_->contains(self_), "self must be a view member");
  ALLCONCUR_ASSERT(options_.window >= 1, "window must be at least 1");
  suspected_rank_.assign(view_->size(), false);
  refill_window();
}

Round Engine::max_open_round() const {
  const Round window_max = base_round_ + options_.window - 1;
  // A pending membership change caps the window: no round beyond the
  // epoch close may open under the old view.
  if (epoch_close_ && *epoch_close_ < window_max) return *epoch_close_;
  return window_max;
}

Engine::RoundState* Engine::find_round(Round r) {
  if (r < base_round_ || r >= base_round_ + window_.size()) return nullptr;
  return window_[static_cast<std::size_t>(r - base_round_)].get();
}

void Engine::refill_window() {
  while (base_round_ + window_.size() <= max_open_round()) {
    open_round();
  }
}

void Engine::open_round() {
  const Round r =
      window_.empty() ? base_round_ : window_.back()->round + 1;
  const std::size_t n = view_->size();
  // Failure notifications carry forward (line 12): within an epoch the new
  // round inherits its predecessor's F_i; the first round after a view
  // switch (empty window) seeds from the carried, membership-filtered set.
  const RoundState* prev = window_.empty() ? nullptr : window_.back().get();

  // Failure-free fast path: the common round keeps the same view, so the
  // rank and neighbor lists survive; only a membership change recomputes
  // them. Everything below reuses capacity — assign() refills the flag and
  // slot vectors in place, and the tracking digraphs are reset one by one
  // so their vertex/edge storage persists. A steady-state round transition
  // performs no heap allocation (bench/wire_path measures this).
  if (neighbors_view_ != view_.get()) {
    const auto rank = view_->rank_of(self_);
    ALLCONCUR_ASSERT(rank.has_value(), "self not in view");
    self_rank_ = *rank;
    succs_ = view_->successors_of(self_);
    preds_ = view_->predecessors_of(self_);
    neighbors_view_ = view_.get();
  }

  std::unique_ptr<RoundState> st;
  if (!pool_.empty()) {
    st = std::move(pool_.back());
    pool_.pop_back();
  } else {
    st = std::make_unique<RoundState>();
  }
  st->round = r;
  st->msgs.assign(n, nullptr);
  st->msg_bytes.assign(n, 0);
  st->have.assign(n, false);
  st->own_broadcast = false;
  if (st->tracking.size() > n) {
    // View shrank: park the spare digraphs (with their capacity) on the
    // free-list instead of destroying them.
    std::move(st->tracking.begin() + static_cast<std::ptrdiff_t>(n),
              st->tracking.end(), std::back_inserter(tracking_spares_));
    st->tracking.resize(n);
  }
  while (st->tracking.size() < n) {
    if (!tracking_spares_.empty()) {
      st->tracking.push_back(std::move(tracking_spares_.back()));
      tracking_spares_.pop_back();
    } else {
      st->tracking.emplace_back();
    }
  }
  for (std::size_t rank = 0; rank < n; ++rank) {
    if (rank == self_rank_) {
      st->tracking[rank].reset_empty();
    } else {
      st->tracking[rank].reset(static_cast<NodeId>(rank));
    }
  }
  st->active_tracking = n > 0 ? n - 1 : 0;
  st->fails.clear();
  st->failed_rank.assign(n, false);
  st->lost.assign(n, false);
  st->decided = false;
  st->fwd_seen.assign(n, false);
  st->bwd_seen.assign(n, false);
  st->fwd_count = st->bwd_count = 0;
  st->complete = false;
  window_.push_back(std::move(st));

  // Carry the inherited failure notifications into the fresh round
  // (Algorithm 1 lines 12-13): re-disseminate each pair under the new
  // round's tag and replay it against the new tracking digraphs, one at a
  // time exactly like the classic per-round transition, so servers that
  // failed in an earlier round resolve here too (and joiners hear about
  // them).
  const std::set<std::pair<NodeId, NodeId>>& seed =
      prev ? prev->fails : carry_fails_;
  if (!seed.empty()) {
    RoundState& ref = *window_.back();
    for (const auto& [j, k] : seed) {
      const auto rank_j = view_->rank_of(j);
      ALLCONCUR_ASSERT(rank_j.has_value(), "carried failure left the view");
      ref.fails.insert({j, k});
      ref.failed_rank[*rank_j] = true;
      stats_.fail_sent += send_to_successors(Message::fail(r, j, k));
      const auto rank_k = view_->rank_of(k);
      apply_failure_to_round(
          ref, *rank_j, rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode);
    }
  }
}

void Engine::recycle(std::unique_ptr<RoundState> st) {
  // Drop the payload references now — a parked state must not pin message
  // buffers until its next reuse. Capacity is retained.
  st->msgs.assign(st->msgs.size(), nullptr);
  pool_.push_back(std::move(st));
}

void Engine::submit(Request request) {
  pending_request_bytes_ += kRequestHeaderBytes + request.data.size();
  pending_.push_back(std::move(request));
}

void Engine::submit_opaque(std::size_t bytes) {
  pending_opaque_bytes_ += bytes;
}

std::uint64_t Engine::pending_bytes() const {
  return pending_request_bytes_ + pending_opaque_bytes_;
}

bool Engine::has_broadcast() const {
  return !window_.empty() && window_.front()->own_broadcast;
}

std::optional<Round> Engine::next_broadcast_round() const {
  for (const auto& st : window_) {
    if (!st->own_broadcast) return st->round;
  }
  return std::nullopt;
}

std::size_t Engine::active_tracking() const {
  ALLCONCUR_ASSERT(!window_.empty(), "no open round");
  return window_.front()->active_tracking;
}

const TrackingDigraph& Engine::tracking_of(std::size_t rank) const {
  ALLCONCUR_ASSERT(!window_.empty(), "no open round");
  return window_.front()->tracking[rank];
}

void Engine::broadcast_now() {
  if (departed_) return;
  RoundState* target = nullptr;
  for (auto& st : window_) {
    if (!st->own_broadcast) {
      target = st.get();
      break;
    }
  }
  // The in-progress round broadcasts even empty (round progress); later
  // window rounds are opened speculatively only for actual payload, so
  // idle nudging cannot spin the pipeline on empty rounds. When every
  // open round already carries our message, submissions keep pending
  // (see pending_bytes() — the backpressure signal).
  if (target != nullptr &&
      (target->round == base_round_ || !pending_.empty() ||
       pending_opaque_bytes_ > 0)) {
    do_broadcast(*target);
  }
  deliver_ready();
}

void Engine::do_broadcast(RoundState& st) {
  ALLCONCUR_ASSERT(!st.own_broadcast, "already broadcast this round");
  Message msg;
  if (pending_opaque_bytes_ > 0 && pending_.empty()) {
    msg = Message::bcast_sized(st.round, self_, pending_opaque_bytes_);
  } else {
    msg = Message::bcast(st.round, self_, pack_batch(pending_));
    // Size-only load can ride along with structured requests: the declared
    // size grows, the fabric charges for the bytes, nothing is
    // materialized. (Simulation-only: the TCP encoder requires the payload
    // to match the declared size.)
    msg.payload_bytes += pending_opaque_bytes_;
    pending_.clear();
  }
  pending_opaque_bytes_ = 0;
  pending_request_bytes_ = 0;
  st.own_broadcast = true;
  st.msgs[self_rank_] = msg.payload;
  st.msg_bytes[self_rank_] = msg.payload_bytes;
  st.have[self_rank_] = true;
  stats_.bcast_sent += send_to_successors(msg);
  check_termination(st);
}

void Engine::ensure_broadcast_up_to(Round r) {
  for (auto& st : window_) {
    if (st->round > r) break;
    if (!st->own_broadcast) do_broadcast(*st);
  }
}

std::size_t Engine::fan_out(const std::vector<NodeId>& dsts,
                            const Message& msg, NodeId skip) {
  std::size_t sent = 0;
  FrameRef frame;
  for (NodeId dst : dsts) {
    if (dst == skip) continue;
    if (!frame) {
      // Built once per message, on the first live destination; every
      // further destination shares the same bytes by reference.
      frame = Frame::make(msg);
      ++stats_.frames_encoded;
    }
    stats_.bytes_sent += frame->wire_size();
    hooks_.send(dst, frame);
    ++sent;
  }
  return sent;
}

std::size_t Engine::send_to_successors(const Message& msg, NodeId skip) {
  return fan_out(succs_, msg, skip);
}

std::size_t Engine::send_to_predecessors(const Message& msg, NodeId skip) {
  return fan_out(preds_, msg, skip);
}

void Engine::on_message(NodeId from, const Message& msg) {
  if (departed_) return;
  if (msg.type == MsgType::kHeartbeat) return;  // FD traffic, not ours

  if (msg.type == MsgType::kFail) {
    // A ⟨FAIL⟩ tagged with round r is valid for r and every later round
    // (suspicion persists forward): a stale tag clamps to the current
    // window instead of being dropped — no information is lost — while a
    // tag beyond the window parks like any other future traffic.
    if (msg.round > base_round_ + window_.size() - 1) {
      park_future(from, msg);
      return;
    }
    handle_fail(msg);
    deliver_ready();
    return;
  }

  if (msg.round < base_round_) {
    ++stats_.dropped_stale;
    return;
  }
  RoundState* st = find_round(msg.round);
  if (st == nullptr) {
    park_future(from, msg);
    return;
  }

  switch (msg.type) {
    case MsgType::kBroadcast:
      handle_bcast(from, msg, *st);
      break;
    case MsgType::kFwd:
    case MsgType::kBwd:
      handle_fwdbwd(from, msg, *st);
      break;
    case MsgType::kFail:
    case MsgType::kHeartbeat:
      break;
  }
  deliver_ready();
}

void Engine::park_future(NodeId from, const Message& msg) {
  // Beyond the window. A live peer can legitimately be up to W rounds
  // ahead of our delivered frontier and broadcast W more, so anything up
  // to base+2W-1 is parked for replay once the window advances (replays
  // that park again are not recounted). Farther-future traffic means we
  // were evicted — drop it, the harness decides on rejoin.
  if (!replaying_ && msg.round >= base_round_ + options_.window) {
    ++stats_.dropped_ahead;
  }
  if (msg.round < base_round_ + 2 * options_.window) {
    future_.emplace_back(from, msg);
  }
}

void Engine::replay_parked() {
  if (future_.empty()) return;
  std::deque<std::pair<NodeId, Message>> parked;
  parked.swap(future_);
  const bool was_replaying = replaying_;
  replaying_ = true;
  for (const auto& [from, msg] : parked) {
    on_message(from, msg);
  }
  replaying_ = was_replaying;
}

void Engine::handle_bcast(NodeId from, const Message& msg, RoundState& st) {
  ++stats_.bcast_received;
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    // §3.3.2: once a predecessor is suspected, everything but failure
    // notifications from it must be ignored, or the FAIL-implies-relayed
    // inference of the tracking digraphs breaks.
    ++stats_.dropped_suspected;
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    return;
  }

  // Algorithm 1 line 15: A-broadcast our own message at the latest upon
  // receiving someone else's — in every round up to the message's (our
  // broadcasts stay in round order).
  ensure_broadcast_up_to(st.round);

  if (st.have[*origin_rank]) return;  // duplicate: already relayed it

  if (st.lost[*origin_rank] || st.decided) {
    // ⋄P only (cannot happen with an accurate FD, see tests): the message
    // set was already fixed without m_origin — adding it now would break
    // the FWD/BWD set inferences. Count and drop.
    ++stats_.dropped_lost;
    return;
  }

  st.have[*origin_rank] = true;
  st.msgs[*origin_rank] = msg.payload;
  st.msg_bytes[*origin_rank] = msg.payload_bytes;

  // Line 17-18: relay to our successors (skipping the link it came from —
  // that peer evidently has it). Counts actual sends: the skipped inbound
  // link does not inflate bcast_sent.
  stats_.bcast_sent += send_to_successors(msg, from);

  // Line 19: m_origin is here, stop tracking it.
  if (!st.tracking[*origin_rank].empty()) {
    st.tracking[*origin_rank].clear();
    ALLCONCUR_ASSERT(st.active_tracking > 0, "tracking count underflow");
    --st.active_tracking;
  }
  check_termination(st);
}

void Engine::handle_fail(const Message& msg) {
  ++stats_.fail_received;
  learn_failure(msg.origin, msg.detector, msg.round, /*disseminate=*/true);
}

void Engine::on_suspect(NodeId suspect) {
  if (departed_) return;
  if (!view_->contains(suspect)) return;  // not (or no longer) a member
  // A suspicion raised now covers every currently open round.
  learn_failure(suspect, self_, base_round_, /*disseminate=*/true);
  deliver_ready();
}

void Engine::learn_failure(NodeId global_j, NodeId global_k, Round from_round,
                           bool disseminate) {
  const auto rank_j = view_->rank_of(global_j);
  if (!rank_j) {
    ++stats_.dropped_foreign;
    return;
  }
  if (global_k == self_) suspected_rank_[*rank_j] = true;

  // The detector may have left the membership between rounds; its
  // non-receipt information is then moot (it is not a successor in the
  // current overlay), but "p_j failed" still matters.
  const auto rank_k = view_->rank_of(global_k);
  const NodeId k_or_sentinel =
      rank_k ? static_cast<NodeId>(*rank_k) : kInvalidNode;

  for (auto& st : window_) {
    if (st->round < from_round) continue;  // never applies backward
    if (!st->fails.insert({global_j, global_k}).second) continue;  // dup
    st->failed_rank[*rank_j] = true;
    if (disseminate) {
      // Line 22: R-broadcast the notification onward, tagged with each
      // round that learned it (every round needs its own failure stream;
      // fail_sent counts actual sends, not the nominal out-degree).
      stats_.fail_sent +=
          send_to_successors(Message::fail(st->round, global_j, global_k));
    }
    apply_failure_to_round(*st, *rank_j, k_or_sentinel);
  }
}

void Engine::apply_failure_to_round(RoundState& st, std::size_t rank_j,
                                    NodeId k_rank_or_sentinel) {
  // Lines 24-41: update every tracking digraph that contains p_j.
  const Knowledge fk(*this, st);
  for (std::size_t r = 0; r < st.tracking.size(); ++r) {
    if (st.tracking[r].empty()) continue;
    if (st.tracking[r].on_failure(static_cast<NodeId>(rank_j),
                                  k_rank_or_sentinel, view_->overlay(), fk)) {
      ALLCONCUR_ASSERT(st.active_tracking > 0, "tracking count underflow");
      --st.active_tracking;
      st.lost[r] = true;  // pruned to empty: m_r is lost, not received
    }
  }
  check_termination(st);
}

void Engine::handle_fwdbwd(NodeId from, const Message& msg, RoundState& st) {
  ++stats_.fwd_bwd_received;
  if (options_.fd_mode != FdMode::kEventuallyPerfect) return;
  const auto from_rank = view_->rank_of(from);
  if (from_rank && suspected_rank_[*from_rank]) {
    ++stats_.dropped_suspected;
    return;
  }
  const auto origin_rank = view_->rank_of(msg.origin);
  if (!origin_rank) {
    ++stats_.dropped_foreign;
    return;
  }
  if (msg.type == MsgType::kFwd) {
    if (st.fwd_seen[*origin_rank]) return;
    st.fwd_seen[*origin_rank] = true;
    if (msg.origin != self_) ++st.fwd_count;
    send_to_successors(msg, from);
  } else {
    if (st.bwd_seen[*origin_rank]) return;
    st.bwd_seen[*origin_rank] = true;
    if (msg.origin != self_) ++st.bwd_count;
    // ⟨BWD⟩ travels on the transpose of G.
    send_to_predecessors(msg, from);
  }
  ++stats_.fwd_bwd_sent;
  check_termination(st);
}

void Engine::check_termination(RoundState& st) {
  if (departed_ || st.complete) return;
  if (!st.own_broadcast) return;
  if (st.active_tracking != 0) return;

  if (options_.fd_mode == FdMode::kEventuallyPerfect) {
    if (!st.decided) {
      // §3.3.2: the message set M_i is decided; announce it forward along
      // G and backward along G's transpose (Kosaraju-style probes).
      st.decided = true;
      st.fwd_seen[self_rank_] = true;
      st.bwd_seen[self_rank_] = true;
      send_to_successors(Message::fwd(st.round, self_));
      send_to_predecessors(Message::bwd(st.round, self_));
      stats_.fwd_bwd_sent += 2;
    }
    // Deliver only inside a surviving partition: ⌊n/2⌋ distinct FWD and
    // BWD origins besides ourselves make a strict majority with us.
    const std::size_t needed = view_->size() / 2;
    if (st.fwd_count < needed || st.bwd_count < needed) return;
  }
  // Completion is out-of-order; A-delivery is not. The round is marked
  // done here and delivered by deliver_ready() once every earlier round
  // delivered.
  st.complete = true;
}

void Engine::deliver_ready() {
  if (delivering_) return;  // folds into the outer loop
  delivering_ = true;
  while (!departed_ && !window_.empty() && window_.front()->complete) {
    deliver_front();
  }
  delivering_ = false;
}

void Engine::deliver_front() {
  RoundState& st = *window_.front();

  // --- Assemble the result (deliveries in deterministic id order). ---
  RoundResult result;
  result.round = st.round;
  result.view_size = view_->size();
  bool change_here = false;
  const auto track_unique = [&change_here](std::vector<NodeId>& list,
                                           NodeId id) {
    if (std::find(list.begin(), list.end(), id) == list.end()) {
      list.push_back(id);
      change_here = true;
    }
  };
  // One scan callback for the whole round, not one per delivery.
  const std::function<void(Request::Kind, NodeId)> on_control =
      [&](Request::Kind kind, NodeId subject) {
        if (kind == Request::Kind::kJoin && !view_->contains(subject)) {
          track_unique(epoch_joined_, subject);
        } else if (kind == Request::Kind::kLeave &&
                   view_->contains(subject)) {
          track_unique(epoch_leaves_, subject);
        }
      };
  for (std::size_t r = 0; r < view_->size(); ++r) {
    if (!st.have[r]) {
      // Absent: decided failed. During a draining window the server stays
      // a member for the remaining old-view rounds, so only the first
      // deciding round accumulates it (reported at the epoch close).
      track_unique(epoch_absent_, view_->member(r));
      continue;
    }
    Delivery d;
    d.origin = view_->member(r);
    d.payload = st.msgs[r];
    d.bytes = st.msg_bytes[r];
    result.deliveries.push_back(d);
    // Membership control requests ride in ordinary batches; scanned
    // without materializing the batch (no per-request data copies).
    if (d.payload) scan_membership(d.payload, on_control);
  }
  if (change_here && !epoch_close_) {
    // First membership change of this epoch: the view switches after the
    // window drained. No server can have opened round R+W under the old
    // view (opening it requires having delivered R), so R+W-1 closes the
    // epoch deterministically everywhere. W = 1 reduces to the classic
    // next-round switch.
    epoch_close_ = st.round + options_.window - 1;
  }
  ++stats_.rounds_completed;

  // --- Transition (Algorithm 1 lines 9-13, windowed). ---
  const bool closing = epoch_close_ && *epoch_close_ == st.round;
  if (closing) {
    std::sort(epoch_absent_.begin(), epoch_absent_.end());
    std::sort(epoch_joined_.begin(), epoch_joined_.end());
    result.removed = epoch_absent_;
    result.joined = epoch_joined_;

    std::vector<NodeId> removed_all = epoch_absent_;
    removed_all.insert(removed_all.end(), epoch_leaves_.begin(),
                       epoch_leaves_.end());
    std::sort(removed_all.begin(), removed_all.end());
    removed_all.erase(std::unique(removed_all.begin(), removed_all.end()),
                      removed_all.end());

    if (std::find(removed_all.begin(), removed_all.end(), self_) !=
        removed_all.end()) {
      // Departing: freeze at this round (no transition, no new rounds).
      departed_ = true;
      hooks_.deliver(result);
      return;
    }

    auto next_view = std::make_shared<const View>(
        view_->next(removed_all, result.joined, builder_));

    // Carry failure notifications of servers that remain members
    // (line 12); open_round() seeds the new epoch's first round from
    // carry_fails_ and re-disseminates them under its tag.
    carry_fails_.clear();
    for (const auto& [j, k] : st.fails) {
      if (next_view->contains(j)) carry_fails_.insert({j, k});
    }
    view_ = std::move(next_view);
    suspected_rank_.assign(view_->size(), false);
    for (const auto& [j, k] : carry_fails_) {
      if (k == self_) {
        const auto rank_j = view_->rank_of(j);
        ALLCONCUR_ASSERT(rank_j.has_value(), "carried failure left the view");
        suspected_rank_[*rank_j] = true;
      }
    }
    epoch_absent_.clear();
    epoch_leaves_.clear();
    epoch_joined_.clear();
    epoch_close_.reset();
  } else {
    // Carry on every transition, not only at epoch closes (classic line
    // 12): with W = 1 the window is empty the instant the front pops, so
    // the next round seeds from carry_fails_ — without this, a pair
    // learned during a round whose origin still delivered (crash after a
    // complete broadcast) would vanish and the dead server's tracking
    // could never resolve again.
    carry_fails_ = st.fails;
  }

  std::unique_ptr<RoundState> done = std::move(window_.front());
  window_.pop_front();
  ++base_round_;
  recycle(std::move(done));
  refill_window();

  // Report R before replaying any parked future traffic so deliveries
  // stay in round order; the hook may submit/broadcast for the new
  // window.
  hooks_.deliver(result);
  replay_parked();
}

}  // namespace allconcur::core
